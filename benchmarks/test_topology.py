"""Topology benchmark assertions: sharding must actually scale.

Unlike the wall-clock micro-benches these numbers are *simulated* (per-
node ``DevicePort.busy_s``), so they are deterministic and can be
asserted hard:

* the PR acceptance criterion — 4 disjoint-range writers over a 4-node
  sharded disk backend deliver at least 2x the aggregate write
  throughput of the single plain-disk manager;
* node-count scaling is monotone 1 -> 2 -> 4 -> 8 at R=1;
* replication costs writes roughly linearly (R=3 writes every byte three
  times) but leaves read throughput alone (reads go to one replica);
* load skew erodes the critical-path win — the busiest node bounds the
  fleet.
"""

from repro.bench.topology import (BASELINE, Topology, render, run_scenario,
                                  run_suite)


def test_four_node_sharded_beats_single_disk_2x(tmp_path):
    """The ISSUE acceptance criterion, on real files for both sides."""
    base = run_scenario(BASELINE, clients=4, bands_per_client=6,
                        directory=str(tmp_path / "disk"))
    shard = run_scenario(Topology("sharded 4xR1", 4), clients=4,
                         bands_per_client=6,
                         directory=str(tmp_path / "shard"))
    assert base.bytes_written == shard.bytes_written > 0
    assert shard.write_mb_s >= 2 * base.write_mb_s, (
        f"sharded {shard.write_mb_s:.2f} MB/s vs "
        f"disk {base.write_mb_s:.2f} MB/s")
    assert shard.read_mb_s >= 2 * base.read_mb_s


def test_node_count_scaling_is_monotone():
    results = {n: run_scenario(Topology(f"{n}n", n), clients=4)
               for n in (1, 2, 4, 8)}
    assert results[1].write_mb_s < results[2].write_mb_s \
        < results[4].write_mb_s < results[8].write_mb_s
    # 4 uniform clients over 4 nodes: banded range placement spreads the
    # bands evenly, so no node carries more than half the service time.
    assert results[4].balance <= 0.5


def test_replication_taxes_writes_not_reads():
    r1 = run_scenario(Topology("4xR1", 4), clients=4)
    r3 = run_scenario(Topology("4xR3", 4, replication=3, write_quorum=2),
                      clients=4)
    # Every byte is written three times instead of once; allow slack for
    # placement imbalance, but at least half the ideal 3x tax must show.
    assert r1.write_mb_s >= 1.5 * r3.write_mb_s
    # Reads hit one fresh replica, so R does not slow them down.
    assert r3.read_mb_s >= 0.9 * r1.read_mb_s


def test_skew_erodes_the_parallel_win():
    uniform = run_scenario(Topology("4xR1", 4), clients=4, skew=0.0)
    skewed = run_scenario(Topology("4xR1", 4), clients=4, skew=2.0)
    assert skewed.balance > uniform.balance
    assert skewed.write_mb_s < uniform.write_mb_s


def test_suite_renders_every_scenario():
    results = run_suite(clients=2, bands_per_client=2)
    text = render(results)
    for result in results:
        assert result.topology.name in text
    assert "write throughput" in text
