"""Regenerates paper Figure 1: storage used by each implementation.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the table.
"""

import pytest

from repro.bench.figures import run_figure1
from repro.bench.report import render_table


@pytest.fixture(scope="module")
def figure1(config):
    return run_figure1(config)


def test_figure1_regenerates(benchmark, config, capsys):
    figure = benchmark.pedantic(run_figure1, args=(config,),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table(figure))


class TestFigure1Shape:
    """The relationships the paper's Figure 1 exhibits."""

    def test_native_files_have_no_overhead(self, figure1, config):
        from repro.bench.workload import Workload
        expected = Workload(config.scale).object_size
        assert figure1.get("user file", "data") == expected
        assert figure1.get("POSTGRES file", "data") == expected

    def test_fchunk_overhead_is_small(self, figure1):
        overhead = (figure1.get("f-chunk 0%", "total")
                    / figure1.get("user file", "data"))
        assert 1.0 < overhead < 1.08  # paper: 1.8%

    def test_fchunk30_saves_nothing(self, figure1):
        assert figure1.get("f-chunk 30%", "data") \
            == figure1.get("f-chunk 0%", "data")

    def test_fchunk50_halves_data(self, figure1):
        ratio = (figure1.get("f-chunk 50%", "data")
                 / figure1.get("f-chunk 0%", "data"))
        assert 0.45 < ratio < 0.60  # paper: 0.50

    def test_vsegment_reflects_any_compression(self, figure1):
        ratio30 = (figure1.get("v-segment 30%", "data")
                   / figure1.get("f-chunk 0%", "data"))
        ratio50 = (figure1.get("v-segment 50%", "data")
                   / figure1.get("f-chunk 0%", "data"))
        assert 0.62 < ratio30 < 0.85  # paper: 0.709
        assert 0.45 < ratio50 < 0.65

    def test_vsegment_carries_map_overhead(self, figure1):
        assert figure1.get("v-segment 30%", "segment_map") > 0
        assert figure1.get("v-segment 30%", "btree") > 0
