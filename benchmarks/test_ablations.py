"""Ablation benches for the design choices DESIGN.md calls out."""


from repro.bench.figures import (
    run_ablation_buffer_pool,
    run_ablation_chunk_size,
    run_ablation_compression_cost,
    run_ablation_worm_cache,
)
from repro.bench.report import render_table


def test_chunk_size_ablation(benchmark, config, capsys):
    figure = benchmark.pedantic(run_ablation_chunk_size, args=(config,),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table(figure))
    # Bigger chunks -> fewer records -> less load overhead.
    assert figure.get("data bytes", "8000B chunks") \
        < figure.get("data bytes", "2000B chunks")


def test_buffer_pool_ablation(benchmark, config, capsys):
    figure = benchmark.pedantic(run_ablation_buffer_pool, args=(config,),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table(figure))
    # A bigger pool never hurts the locality read.
    assert figure.get("1MB 80/20 read seconds", "512 pages") \
        <= figure.get("1MB 80/20 read seconds", "32 pages") * 1.1


def test_worm_cache_ablation(benchmark, config, capsys):
    figure = benchmark.pedantic(run_ablation_worm_cache, args=(config,),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table(figure))
    # More cache -> higher hit rate (the Figure 3 mechanism).
    assert figure.get("cache hit rate", "1024 blocks") \
        >= figure.get("cache hit rate", "64 blocks")


def test_compression_cost_ablation(benchmark, config, capsys):
    figure = benchmark.pedantic(run_ablation_compression_cost,
                                args=(config,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table(figure))
    # The CPU/I/O race of §9.2: costlier algorithms eventually lose the
    # I/O savings on a fast disk.
    row = "10MB sequential read seconds"
    assert figure.get(row, "60 instr/byte") > figure.get(row, "0 instr/byte")
    # Space saved is identical regardless of CPU price.
    assert figure.get("data bytes", "0 instr/byte") \
        == figure.get("data bytes", "60 instr/byte")


def test_inversion_overhead_ablation(benchmark, config, capsys):
    from repro.bench.figures import run_ablation_inversion_overhead
    figure = benchmark.pedantic(run_ablation_inversion_overhead,
                                args=(config,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table(figure))
    # Inversion adds metadata work but stays within ~40% of raw f-chunk
    # on bulk I/O (the per-file cost amortizes over the transfer).
    ratio = (figure.get("1MB sequential read seconds", "Inversion file")
             / figure.get("1MB sequential read seconds", "raw f-chunk"))
    assert ratio < 1.4
