"""Micro-benchmarks of the substrate layers (wall-clock, pytest-benchmark).

These complement the figure benches: the figures report *simulated* device
seconds; these report real Python-execution time of the hot paths so
regressions in the implementation itself are visible.
"""

import pytest

from repro.bench.datasets import frame_bytes
from repro.db import Database


@pytest.fixture
def db():
    database = Database(charge_cpu=False)
    yield database
    database.close()


class TestPageMicro:
    def test_page_add_get(self, benchmark):
        from repro.storage.page import SlottedPage

        def work():
            page = SlottedPage()
            slots = [page.add_item(b"x" * 100) for _ in range(50)]
            return sum(len(page.get_item(s)) for s in slots)

        assert benchmark(work) == 5000

    def test_page_checksum(self, benchmark):
        from repro.storage.page import SlottedPage
        page = SlottedPage()
        page.add_item(b"payload" * 500)
        benchmark(page.compute_checksum)


class TestBTreeMicro:
    def test_btree_insert_1000(self, benchmark, db):
        counter = iter(range(10**9))

        def work():
            run = next(counter)
            index = db.create_index if False else None  # noqa: F841
            from repro.access.btree import BTree
            tree = BTree(f"micro{run}", db.storage_manager("memory"),
                         db.bufmgr, key_arity=1)
            tree.create_storage()
            for i in range(1000):
                tree.insert((i,), (i, 0))
            return tree

        tree = benchmark.pedantic(work, rounds=3, iterations=1)
        assert tree.entry_count() == 1000

    def test_btree_search(self, benchmark, db):
        from repro.access.btree import BTree
        tree = BTree("searchme", db.storage_manager("memory"),
                     db.bufmgr, key_arity=1)
        tree.create_storage()
        for i in range(5000):
            tree.insert((i,), (i, 0))
        result = benchmark(tree.search, (2500,))
        assert result == [(2500, 0)]


class TestCompressionMicro:
    @pytest.mark.parametrize("name", ["zero-rle", "zlib"])
    def test_compress_frame(self, benchmark, name):
        from repro.compress import get_compressor
        compressor = get_compressor(name)
        frame = frame_bytes(0, 0.5)
        image = benchmark(compressor.compress, frame)
        assert compressor.decompress(image) == frame


class TestLargeObjectMicro:
    @pytest.mark.parametrize("impl", ["fchunk", "vsegment"])
    def test_frame_write(self, benchmark, db, impl):
        txn = db.begin()
        designator = db.lo.create(txn, impl)
        obj = db.lo.open(designator, txn, "rw")
        frame = frame_bytes(0, 0.0)
        position = iter(range(10**9))

        def work():
            obj.seek((next(position) % 2000) * 4096)
            obj.write(frame)

        benchmark(work)
        obj.close()
        txn.commit()

    @pytest.mark.parametrize("impl", ["fchunk", "vsegment"])
    def test_frame_read(self, benchmark, db, impl):
        txn = db.begin()
        designator = db.lo.create(txn, impl)
        with db.lo.open(designator, txn, "rw") as obj:
            for i in range(100):
                obj.write(frame_bytes(i, 0.0))
        txn.commit()
        reader = db.lo.open(designator)
        position = iter(range(10**9))

        def work():
            reader.seek((next(position) * 37 % 100) * 4096)
            return reader.read(4096)

        data = benchmark(work)
        assert len(data) == 4096
        reader.close()


@pytest.mark.perf
class TestReadPathMicro:
    """Sequential vs. random f-chunk reads: the streaming read path.

    The pair makes the §9.2 measurement visible in wall-clock terms and
    records the read-path counters in ``extra_info`` so they land in the
    pytest-benchmark JSON (``--benchmark-json=BENCH_READPATH.json``).
    """

    FRAMES = 256  # a 1 MB object of 4 KB frames

    def _loaded(self, db):
        txn = db.begin()
        designator = db.lo.create(txn, "fchunk")
        with db.lo.open(designator, txn, "rw") as obj:
            for i in range(self.FRAMES):
                obj.write(frame_bytes(i, 0.0))
        txn.commit()
        return designator

    def _record_counters(self, benchmark, db):
        stats = db.bufmgr.stats
        benchmark.extra_info["node_cache_hits"] = stats.node_cache_hits
        benchmark.extra_info["node_cache_misses"] = stats.node_cache_misses
        benchmark.extra_info["prefetched"] = stats.prefetched
        benchmark.extra_info["prefetch_hits"] = stats.prefetch_hits

    def test_fchunk_sequential_stream(self, benchmark, db):
        designator = self._loaded(db)

        def work():
            with db.lo.open(designator) as obj:
                total = 0
                while True:
                    data = obj.read(8192)
                    if not data:
                        return total
                    total += len(data)

        assert benchmark(work) == self.FRAMES * 4096
        # The whole point: a sequential pass costs O(chunks / fanout)
        # node reads, not one full descent per chunk.
        db.bufmgr.invalidate_all()
        before = db.bufmgr.stats.node_cache_misses
        work()
        node_reads = db.bufmgr.stats.node_cache_misses - before
        nchunks = (self.FRAMES * 4096) // 8000 + 1
        assert node_reads < nchunks / 4
        self._record_counters(benchmark, db)

    def test_fchunk_random_read(self, benchmark, db):
        designator = self._loaded(db)
        reader = db.lo.open(designator)
        position = iter(range(10**9))

        def work():
            reader.seek((next(position) * 131 % self.FRAMES) * 4096)
            return reader.read(4096)

        assert len(benchmark(work)) == 4096
        reader.close()
        self._record_counters(benchmark, db)

    def test_fchunk_repeated_range_read_hits_cache(self, benchmark, db):
        """Re-reading the same byte range must be served from the
        descriptor's decompressed-chunk cache, not re-fetched."""
        designator = self._loaded(db)
        reader = db.lo.open(designator)

        def work():
            reader.seek(0)
            return reader.read(16384)  # 3 chunks, all cache-resident

        assert len(benchmark(work)) == 16384
        reader.close()
        caches = db.statistics()["largeobjects"]
        assert caches["read_cache_hits"] > caches["read_cache_misses"]
        benchmark.extra_info.update(caches)

    def test_vsegment_repeated_range_read_hits_cache(self, benchmark, db):
        txn = db.begin()
        designator = db.lo.create(txn, "vsegment")
        with db.lo.open(designator, txn, "rw") as obj:
            for i in range(self.FRAMES // 4):
                obj.write(frame_bytes(i, 0.0))
        txn.commit()
        reader = db.lo.open(designator)

        def work():
            reader.seek(0)
            return reader.read(16384)

        assert len(benchmark(work)) == 16384
        reader.close()
        caches = db.statistics()["largeobjects"]
        assert caches["segment_cache_hits"] > caches["segment_cache_misses"]
        benchmark.extra_info.update(caches)


@pytest.mark.perf
class TestConcurrencyMicro:
    """Threaded mixed read/write traffic on shared large objects.

    Eight sessions split between readers (streaming an already-committed
    object, lock-free under no-overwrite versioning) and writers
    (appending to one shared object, serialized by its EXCLUSIVE lock).
    The benchmark reports whole-workload wall-clock and records the lock
    counters in ``extra_info``; readers finishing means writers never
    starve them, and the byte-exact tail check means writer handoff
    never tears an append.
    """

    THREADS = 8  # half read, half write
    OPS = 12     # transactions per thread per round

    def _loaded(self, db, frames=64):
        txn = db.begin()
        designator = db.lo.create(txn, "fchunk")
        with db.lo.open(designator, txn, "rw") as obj:
            for i in range(frames):
                obj.write(frame_bytes(i, 0.0))
        txn.commit()
        return designator

    def test_mixed_readers_writers(self, benchmark, db):
        import threading

        from repro.errors import DeadlockError

        read_target = self._loaded(db)
        write_target = self._loaded(db, frames=1)
        payload = b"APPEND##"

        def reader():
            session = db.session()
            for _ in range(self.OPS):
                with db.lo.open(read_target) as obj:
                    while obj.read(16384):
                        pass
            del session

        def writer():
            session = db.session()
            for _ in range(self.OPS):
                while True:
                    session.begin()
                    try:
                        with session.lo_open(write_target, "rw") as obj:
                            obj.seek(0, 2)
                            obj.write(payload)
                        session.commit()
                        break
                    except DeadlockError:
                        session.rollback()

        def work():
            threads = [threading.Thread(
                target=reader if i % 2 == 0 else writer, daemon=True)
                for i in range(self.THREADS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            assert not any(t.is_alive() for t in threads)

        benchmark.pedantic(work, rounds=3, iterations=1)
        with db.lo.open(write_target) as obj:
            obj.seek(4096)  # past the preloaded frame: only appends
            tail = obj.read()
        assert len(tail) % len(payload) == 0
        assert set(tail[i:i + len(payload)]
                   for i in range(0, len(tail), len(payload))) == {payload}
        locks = db.statistics()["locks"]
        benchmark.extra_info.update(
            {k: locks[k] for k in ("waits", "wait_time",
                                   "deadlocks_detected", "victims")})
        assert locks["timeouts"] == 0
        assert db.locks.grant_table_empty()


class TestInversionMicro:
    def test_path_resolution(self, benchmark, db):
        fs = db.inversion
        with db.begin() as txn:
            fs.mkdir(txn, "/a")
            fs.mkdir(txn, "/a/b")
            fs.mkdir(txn, "/a/b/c")
            fs.write_file(txn, "/a/b/c/leaf", b"x")
        info = benchmark(fs.stat, "/a/b/c/leaf")
        assert info["size"] == 1


class TestQueryMicro:
    def test_retrieve_with_qual(self, benchmark, db):
        db.execute("create EMP (name = text, age = int4)")
        with db.begin() as txn:
            for i in range(200):
                db.insert(txn, "EMP", (f"e{i}", i % 60))
        result = benchmark(db.execute,
                           'retrieve (EMP.name) where EMP.age = 30')
        assert result.count > 0
