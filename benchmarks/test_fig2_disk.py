"""Regenerates paper Figure 2: disk performance on the §9.1 benchmark."""

import pytest

from repro.bench.claims import RAND_READ, SEQ_READ
from repro.bench.figures import run_figure2
from repro.bench.report import render_table


@pytest.fixture(scope="module")
def figure2(config):
    return run_figure2(config)


def test_figure2_regenerates(benchmark, config, capsys):
    figure = benchmark.pedantic(run_figure2, args=(config,),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table(figure))


class TestFigure2Shape:
    """Orderings §9.2's prose asserts about the disk table."""

    def test_native_files_are_identical(self, figure2):
        for row in figure2.row_labels:
            assert figure2.get(row, "user file") \
                == pytest.approx(figure2.get(row, "POSTGRES file"),
                                 rel=0.05)

    def test_fchunk_sequential_read_near_native(self, figure2):
        ratio = figure2.ratio(SEQ_READ, "f-chunk 0%", "user file")
        assert ratio < 1.4  # paper: within 7%

    def test_fchunk_random_read_slower_than_native(self, figure2):
        ratio = figure2.ratio(RAND_READ, "f-chunk 0%", "user file")
        assert 1.05 < ratio < 3.0  # paper: throughput 1/2 to 3/4

    def test_compression_costs_cpu_at_30pct(self, figure2):
        ratio = figure2.ratio(SEQ_READ, "f-chunk 30%", "f-chunk 0%")
        assert 1.0 <= ratio < 1.45  # paper: ~13% slower

    def test_vsegment_random_pays_index_hop(self, figure2):
        ratio = figure2.ratio(RAND_READ, "v-segment 30%", "f-chunk 0%")
        assert ratio > 1.0  # paper: ~25% slower

    def test_fchunk50_reads_less_than_uncompressed(self, figure2, config):
        ratio = figure2.ratio(SEQ_READ, "f-chunk 50%", "f-chunk 0%")
        if config.scale >= 0.1:
            assert ratio < 1.0  # paper: reduced traffic beats the CPU
        else:
            # At tiny scales fixed overheads (B-tree height, size-row
            # lookups) dominate and mask the transfer savings.
            assert ratio < 1.35

    def test_writes_cost_more_than_reads_under_no_overwrite(self, figure2):
        """Replace = read old + stamp old + insert new: >= 2x read cost."""
        ratio = (figure2.get("10MB sequential write", "f-chunk 0%")
                 / figure2.get(SEQ_READ, "f-chunk 0%"))
        assert ratio > 1.5
