"""Shared configuration for the benchmark suite.

``REPRO_BENCH_SCALE`` (default 0.05) sets the fraction of the paper's
51.2 MB object the suite runs at; ``repro-bench --scale 1.0`` regenerates
the figures at full scale outside pytest.
"""

import os

import pytest

from repro.bench.figures import BenchConfig


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


@pytest.fixture(scope="session")
def config() -> BenchConfig:
    return BenchConfig(scale=bench_scale())
