"""Regenerates paper Figure 3: WORM jukebox performance (read portion)."""

import pytest

from repro.bench.claims import LOC_READ, RAND_READ, SEQ_READ
from repro.bench.figures import run_figure3
from repro.bench.report import render_table


@pytest.fixture(scope="module")
def figure3(config):
    return run_figure3(config)


def test_figure3_regenerates(benchmark, config, capsys):
    figure = benchmark.pedantic(run_figure3, args=(config,),
                                rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table(figure))


class TestFigure3Shape:
    """Orderings §9.3's prose asserts about the WORM table."""

    def test_special_program_wins_sequential(self, figure3):
        ratio = figure3.ratio(SEQ_READ, "f-chunk 0%", "special program")
        assert 1.0 < ratio < 1.8  # paper: ~20% faster, no cache overhead

    def test_fchunk_wins_random_via_cache(self, figure3):
        ratio = figure3.ratio(RAND_READ, "special program", "f-chunk 0%")
        assert ratio > 1.1  # paper: "dramatically superior"

    def test_fchunk_wins_locality_via_cache(self, figure3):
        ratio = figure3.ratio(LOC_READ, "special program", "f-chunk 0%")
        assert ratio > 1.3  # paper: "most of the requests ... cache"

    def test_compression_pays_on_slow_media(self, figure3):
        ratio = figure3.ratio(SEQ_READ, "f-chunk 50%", "f-chunk 0%")
        assert ratio < 0.8  # paper: fewer slow transfers win

    def test_vsegment_no_faster_than_fchunk_on_worm_random(self, figure3):
        """v-segment adds an index hop; at worst the disk cache absorbs
        it (the segment index is small and recently written), so it is
        comparable to or slower than f-chunk — never faster."""
        assert figure3.get(RAND_READ, "v-segment 30%") \
            >= figure3.get(RAND_READ, "f-chunk 30%") * 0.9
