#!/usr/bin/env python3
"""Time travel at scale: the archival vacuum and the history APIs.

The no-overwrite storage system keeps every version forever — which is
wonderful for time travel and terrible for the magnetic disk.  POSTGRES's
answer ([STON87B], leaned on throughout the paper) was the vacuum
cleaner: dead versions migrate to an *archive* relation on the WORM
jukebox, and historical queries transparently read both.

This example edits a document many times, archives the history to
write-once media, and shows that:

* the current relation shrinks back down,
* every historical state is still readable (`as_of`, time ranges,
  `db.history`),
* the archive really lives on the jukebox.

Run:  python examples/archival_history.py
"""

from repro.db import Database


def main() -> None:
    db = Database()
    db.execute('create DOCS (title = text, body = text, revision = int4)')

    # -- write ten revisions of a document ---------------------------------
    stamps = []
    db.execute('append DOCS (title = "design", '
               'body = "draft 0", revision = 0)')
    stamps.append((0, db.clock.now()))
    for revision in range(1, 10):
        db.execute(f'replace DOCS (body = "draft {revision}", '
                   f'revision = {revision}) where DOCS.title = "design"')
        stamps.append((revision, db.clock.now()))

    relation = db.get_class("DOCS")
    versions_before = len(list(relation.scan_versions()))
    print(f"versions on magnetic disk before archiving: {versions_before}")

    # -- migrate history to the WORM jukebox --------------------------------
    result = db.archive_class("DOCS")
    print(f"archived {result['archived']} dead versions to the jukebox "
          f"(class a_DOCS on the 'worm' storage manager)")
    print(f"versions on magnetic disk now: "
          f"{len(list(relation.scan_versions()))}")

    # -- every historical state survives ------------------------------------
    revision, stamp = stamps[3]
    row = next(db.scan("DOCS", as_of=stamp))
    print(f"\nas of revision {revision}'s commit: body = {row.values[1]!r}")

    t_start, t_end = stamps[2][1], stamps[5][1]
    in_range = sorted(t.values[2] for t in
                      db.scan("DOCS", as_of=t_start, until=t_end))
    print(f"revisions alive during [rev2, rev5]: {in_range}")

    # -- the full lineage of the logical tuple ------------------------------
    oid = next(db.scan("DOCS")).oid
    chain = db.history("DOCS", oid)
    print(f"\nhistory of the document ({len(chain)} versions):")
    for version in chain[:3] + chain[-1:]:
        closing = (f"{version['valid_to']:.3f}"
                   if version['valid_to'] is not None else "now")
        print(f"  [{version['valid_from']:.3f} .. {closing}) "
              f"{version['values'][1]!r}")

    # -- and the archive is genuinely on write-once media -------------------
    worm = db.storage_manager("worm")
    worm.sync_all()
    print(f"\njukebox media blocks in use: "
          f"{worm.base.media_blocks_used()}")
    assert db.check_integrity() == []
    print("integrity check: clean")
    db.close()


if __name__ == "__main__":
    main()
