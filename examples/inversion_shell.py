#!/usr/bin/env python3
"""The Inversion file system as a tiny interactive shell (paper §8).

Demonstrates:

* a directory tree whose metadata lives in the DIRECTORY / STORAGE /
  FILESTAT classes,
* transaction-protected file operations (an aborted edit vanishes),
* whole-file-system time travel (list a directory as it was),
* querying file-system metadata through the query language.

Run non-interactively (scripted demo):  python examples/inversion_shell.py
Run interactively:                      python examples/inversion_shell.py -i
"""

import shlex
import sys

from repro.db import Database


def demo(db: Database) -> None:
    fs = db.inversion

    with db.begin() as txn:
        fs.mkdir(txn, "/home")
        fs.mkdir(txn, "/home/joe")
        fs.write_file(txn, "/home/joe/notes.txt",
                      b"POSTGRES large objects are files now.\n")
        fs.write_file(txn, "/home/joe/todo.txt", b"- benchmark the WORM\n")
    print("tree after setup:")
    for path, dirs, files in fs.walk():
        print(f"  {path}: dirs={dirs} files={files}")

    checkpoint = db.clock.now()

    # A transaction that goes wrong rolls everything back together.
    txn = db.begin()
    fs.unlink(txn, "/home/joe/todo.txt")
    fs.rename(txn, "/home/joe/notes.txt", "/home/joe/renamed.txt")
    with fs.open("/home/joe/renamed.txt", txn, "rw") as handle:
        handle.write(b"SCRIBBLE")
    txn.abort()
    print("\nafter aborted edit, still intact:",
          fs.listdir("/home/joe"))
    print("contents:", fs.read_file("/home/joe/notes.txt").decode().strip())

    # A committed reorganization...
    with db.begin() as txn:
        fs.unlink(txn, "/home/joe/todo.txt")
        fs.write_file(txn, "/home/joe/done.txt", b"- benchmarked!\n")
    print("\nafter committed edit:", fs.listdir("/home/joe"))

    # ... and the past is still fully readable.
    print("as of checkpoint:",
          fs.listdir("/home/joe", as_of=checkpoint))
    print("old todo.txt:",
          fs.read_file("/home/joe/todo.txt", as_of=checkpoint)
          .decode().strip())

    # §8: "a user can use the query language to perform searches on the
    # DIRECTORY class."
    result = db.execute(
        'retrieve (DIRECTORY.file_name, DIRECTORY.file_id) '
        'where DIRECTORY.kind = "f"')
    print("\nfiles according to the DIRECTORY class:")
    for name, file_id in sorted(result.rows):
        print(f"  {name} (file id {file_id})")


def interactive(db: Database) -> None:  # pragma: no cover - manual use
    fs = db.inversion
    print("inversion shell — commands: ls [path], cat <path>, "
          "write <path> <text>, mkdir <path>, rm <path>, mv <src> <dst>, "
          "stat <path>, quit")
    while True:
        try:
            line = input("inversion> ").strip()
        except EOFError:
            break
        if not line:
            continue
        try:
            parts = shlex.split(line)
            cmd, args = parts[0], parts[1:]
            if cmd == "quit":
                break
            elif cmd == "ls":
                print("  ".join(fs.listdir(args[0] if args else "/")))
            elif cmd == "cat":
                sys.stdout.write(fs.read_file(args[0]).decode())
            elif cmd == "write":
                with db.begin() as txn:
                    fs.write_file(txn, args[0],
                                  (" ".join(args[1:]) + "\n").encode())
            elif cmd == "mkdir":
                with db.begin() as txn:
                    fs.mkdir(txn, args[0])
            elif cmd == "rm":
                with db.begin() as txn:
                    fs.unlink(txn, args[0])
            elif cmd == "mv":
                with db.begin() as txn:
                    fs.rename(txn, args[0], args[1])
            elif cmd == "stat":
                for key, value in fs.stat(args[0]).items():
                    print(f"  {key}: {value}")
            else:
                print(f"unknown command {cmd!r}")
        except Exception as exc:  # interactive shell: show, don't die
            print(f"error: {exc}")


def main() -> None:
    db = Database()
    demo(db)
    if "-i" in sys.argv:
        interactive(db)
    db.close()


if __name__ == "__main__":
    main()
