#!/usr/bin/env python3
"""Quickstart: the paper's §4 flow, end to end.

Creates a database, defines a large ADT, stores an employee photo as an
f-chunk large object, retrieves it through the query language, and reads
it back through the file-oriented interface — then shows what the
no-overwrite storage system gives for free: rollback and time travel.

Run:  python examples/quickstart.py
"""

from repro.db import Database


def main() -> None:
    db = Database()  # in-memory; pass a path for a durable database

    # -- define a large ADT and a class using it (paper §4) ----------------
    db.execute('create large type image (storage = f-chunk)')
    db.execute('create EMP (name = text, picture = image)')

    # -- store a "photo" through the file-oriented interface ---------------
    photo_bytes = b"\x89PNG...pretend this is 38 megabytes..." * 1000
    txn = db.begin()
    designator = db.lo.create_for_type(txn, "image")
    with db.lo.open(designator, txn, "rw") as photo:
        photo.write(photo_bytes)
    db.execute(f'append EMP (name = "Joe", picture = "{designator}")', txn)
    txn.commit()
    print(f"stored {len(photo_bytes):,} bytes as {designator}")

    # -- the paper's retrieve: get the designator, then open/seek/read -----
    result = db.execute('retrieve (EMP.picture) where EMP.name = "Joe"')
    fetched = result.scalar()
    with db.lo.open(fetched) as photo:
        photo.seek(5)
        print("bytes 5..15 of Joe's picture:", photo.read(10))
        print("picture size:", f"{photo.size():,} bytes")

    # -- transactions for free: an aborted scribble never happened ---------
    vandal = db.begin()
    with db.lo.open(fetched, vandal, "rw") as photo:
        photo.write(b"GRAFFITI")
    vandal.abort()
    with db.lo.open(fetched) as photo:
        assert photo.read(8) == photo_bytes[:8]
    print("aborted overwrite rolled back cleanly")

    # -- time travel for free: read the object as of an earlier instant ----
    before_edit = db.clock.now()
    editor = db.begin()
    with db.lo.open(fetched, editor, "rw") as photo:
        photo.write(b"EDITED!!")
    editor.commit()
    with db.lo.open(fetched, as_of=before_edit) as photo:
        assert photo.read(8) == photo_bytes[:8]
    with db.lo.open(fetched) as photo:
        assert photo.read(8) == b"EDITED!!"
    print("time travel reads the pre-edit contents at a past timestamp")

    db.close()
    print("quickstart complete")


if __name__ == "__main__":
    main()
