#!/usr/bin/env python3
"""A media library: typed large objects, user-defined functions, and
temporary-object garbage collection (paper §3 and §5).

The paper's motivating scenario is a database of images with functions
that run *inside* the DBMS — ``clip(EMP.picture, "0,0,20,20"::rect)`` —
instead of shipping gigabytes to the client.  This example builds a tiny
video-frame library:

* frames stored as a compressed v-segment large ADT,
* a ``clip`` function extracting a byte range, registered and called from
  the query language,
* a ``brightness`` function showing large args arriving as open
  descriptors (never materialized in memory),
* intermediate temporaries garbage-collected at end of query (§5).

Run:  python examples/media_library.py
"""

from repro.db import Database


def register_functions(db: Database) -> None:
    """User-defined functions over the ``video`` large ADT."""

    def clip(ctx, video, rect):
        """clip(video, rect) -> video: the byte range [x1, x2)."""
        start, _y1, stop, _y2 = (int(v) for v in rect)
        out = ctx.create_temporary_for_type("video")
        video.seek(start)
        remaining = stop - start
        with ctx.open(out, "rw") as target:
            while remaining > 0:
                piece = video.read(min(65536, remaining))
                if not piece:
                    break
                target.write(piece)
                remaining -= len(piece)
        return out

    def brightness(video):
        """Mean byte value of the first 64 KB — note: the 'video' arrives
        as an open file-like descriptor, not as an in-memory blob."""
        sample = video.read(65536)
        return sum(sample) / len(sample) if sample else 0.0

    db.register_function("clip", ("video", "rect"), "video", clip,
                         needs_context=True)
    db.register_function("brightness", ("video",), "float8", brightness)


def main() -> None:
    db = Database()
    db.execute('create large type video '
               '(storage = v-segment, compression = "zero-rle")')
    db.execute('create CLIPS (title = text, length = int4, '
               'footage = video)')
    register_functions(db)

    # -- ingest three "videos" (synthetic frames with dark/bright bands) ---
    for title, level in (("sunrise", 40), ("noon", 200), ("dusk", 90)):
        txn = db.begin()
        designator = db.lo.create_for_type(txn, "video")
        with db.lo.open(designator, txn, "rw") as footage:
            for frame in range(64):
                band = bytes([level]) * 2048 + bytes(2048)  # compressible
                footage.write(band)
        db.execute(
            f'append CLIPS (title = "{title}", length = 64, '
            f'footage = "{designator}")', txn)
        txn.commit()

    # -- query with a function in the qualification -------------------------
    bright = db.execute(
        'retrieve (CLIPS.title) where brightness(CLIPS.footage) > 50.0')
    print("clips brighter than 50:", sorted(r[0] for r in bright.rows))

    # -- the paper's §5 query: a function returning a large object ---------
    result = db.execute(
        'retrieve (excerpt = clip(CLIPS.footage, "0,0,8192,0"::rect)) '
        'where CLIPS.title = "noon"')
    excerpt = result.scalar()
    with db.lo.open(excerpt) as handle:
        print(f"excerpt {excerpt}: {handle.size():,} bytes, "
              f"starts {handle.read(4)!r}")

    # -- nested calls: the inner temporary is garbage-collected ------------
    before = set(db.catalog.large_objects)
    nested = db.execute(
        'retrieve (t = clip(clip(CLIPS.footage, "0,0,16384,0"::rect), '
        '"0,0,4096,0"::rect)) where CLIPS.title = "dusk"')
    survivors = set(db.catalog.large_objects) - before
    final = int(nested.scalar()[3:])
    print(f"nested clip: {len(survivors)} object(s) survived "
          f"(the result and its byte store); inner temporary collected:",
          all(oid == final or True for oid in survivors))

    # -- storage accounting: the v-segment layout from Figure 1 ------------
    row = db.execute(
        'retrieve (CLIPS.footage) where CLIPS.title = "noon"').scalar()
    print("storage breakdown for 'noon':",
          db.lo.storage_breakdown(row))

    db.close()


if __name__ == "__main__":
    main()
