#!/usr/bin/env python3
"""The paper's benchmark scenario in miniature: a video frame store.

§9.1 models a large object as "a group of 12,500 frames, each of size
4096 bytes" — a digitized video.  This example stores a (tiny) such video
under each of the four implementations, runs a frame-access pattern over
them, and prints a miniature Figure 2, using the same simulated device
clock as the real benchmark harness.

Run:  python examples/video_frames.py
"""

from repro.bench.datasets import frame_bytes
from repro.bench.workload import Workload
from repro.db import Database

FRAME = 4096


def store_video(db, impl, frames):
    txn = db.begin()
    if impl == "ufile":
        designator = db.lo.create(txn, "ufile", path="/videos/raw")
    else:
        designator = db.lo.create(txn, impl)
    with db.lo.open(designator, txn, "rw") as video:
        for n in range(frames):
            video.write(frame_bytes(n, 0.3, FRAME))
    txn.commit()
    return designator


def play(db, designator, frame_numbers):
    """Read a sequence of frames; returns simulated seconds."""
    snap = db.clock.snapshot()
    with db.lo.open(designator) as video:
        for n in frame_numbers:
            video.seek(n * FRAME)
            data = video.read(FRAME)
            assert len(data) == FRAME
    return snap.since(db.clock).elapsed


def main() -> None:
    workload = Workload(scale=0.02)  # 250 frames = 1 MB of video
    patterns = {
        "sequential playback": workload.sequential(),
        "random seeking": workload.random_frames(1),
        "80/20 scrubbing": workload.locality_frames(2),
    }

    print(f"{'pattern':<22}", end="")
    impls = ["ufile", "pfile", "fchunk", "vsegment"]
    for impl in impls:
        print(f"{impl:>12}", end="")
    print()

    databases = {}
    videos = {}
    for impl in impls:
        databases[impl] = Database()
        videos[impl] = store_video(databases[impl], impl,
                                   workload.total_frames)
        databases[impl].bufmgr.invalidate_all()

    for pattern_name, frame_numbers in patterns.items():
        print(f"{pattern_name:<22}", end="")
        for impl in impls:
            seconds = play(databases[impl], videos[impl], frame_numbers)
            print(f"{seconds * 1000:>10.1f}ms", end="")
        print()

    # What did the f-chunk run actually do, physically?
    stats = databases["fchunk"].statistics()
    print("\nf-chunk database statistics:")
    print(f"  buffer pool hit rate: {stats['buffer']['hit_rate']:.1%}")
    print(f"  disk accesses: {stats['storage']['disk']['reads']} reads, "
          f"{stats['storage']['disk']['writes']} writes, "
          f"{stats['storage']['disk']['seeks']} seeks")
    print(f"  simulated elapsed: {stats['clock']['elapsed']:.2f}s "
          f"(of which CPU {stats['clock'].get('cpu', 0):.2f}s)")

    for db in databases.values():
        db.close()


if __name__ == "__main__":
    main()
