#!/usr/bin/env python3
"""Multi-client server demo: four writers share one large object.

Starts an in-process ``ReproServer`` on a loopback port, then connects
four socket clients that write *disjoint* ranges of one f-chunk large
object at the same time.  Under the old whole-object writer lock these
clients would have run strictly one after another; with range-granular
write locks they all hold EXCLUSIVE locks on the same object at once —
the server reports zero range-lock waits — and the final image is
byte-exact.  A fifth round of *overlapping* appends shows the locks
still serialize where they must.

Run:  python examples/server_demo.py

(The standalone equivalent is ``repro-server``: serve a database from
one terminal, connect ``ServerClient`` instances from others.)
"""

import threading

from repro.db import Database
from repro.lo.fchunk import LOCK_GRAIN_CHUNKS
from repro.server import ReproServer, ServerClient
from repro.storage.constants import CHUNK_PAYLOAD

N_CLIENTS = 4
GRAIN = CHUNK_PAYLOAD * LOCK_GRAIN_CHUNKS  # one range-lock grain
SPAN = 4096  # bytes each client writes inside its own grain


def main() -> None:
    db = Database(charge_cpu=False)
    with ReproServer(db) as server:
        host, port = server.address
        print(f"serving on {host}:{port}")

        # One client sets up the shared object.
        with ServerClient(host, port) as client:
            client.begin()
            designator = client.lo_create("fchunk")
            client.commit()
        print(f"shared object: {designator}")

        # -- disjoint ranges: all four proceed in parallel ----------------
        waits_before = db.locks.stats.range_waits

        def write_region(client_no: int) -> None:
            with ServerClient(host, port) as client:
                client.begin()
                fd = client.lo_open(designator, "rw")
                client.lo_seek(fd, client_no * GRAIN)
                client.lo_write(fd, bytes([client_no + 1]) * SPAN)
                client.lo_close(fd)
                client.commit()

        threads = [threading.Thread(target=write_region, args=(i,))
                   for i in range(N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        waits = db.locks.stats.range_waits - waits_before
        print(f"{N_CLIENTS} clients wrote disjoint ranges; "
              f"range-lock waits: {waits}")

        # -- verify byte-exactness over the wire --------------------------
        with ServerClient(host, port) as client:
            client.begin()
            fd = client.lo_open(designator)
            exact = all(
                client.lo_seek(fd, i * GRAIN) == i * GRAIN
                and client.lo_read(fd, SPAN) == bytes([i + 1]) * SPAN
                for i in range(N_CLIENTS))
            size = client.lo_size(fd)
            client.rollback()
        print(f"final image byte-exact: {exact} "
              f"({size:,} bytes, sparse regions read as zeros)")

        # -- overlapping appends still serialize --------------------------
        def append_tag(client_no: int) -> None:
            with ServerClient(host, port) as client:
                client.begin()
                fd = client.lo_open(designator, "rw")
                client.lo_append(fd, b"<client %d>" % client_no)
                client.lo_close(fd)
                client.commit()

        threads = [threading.Thread(target=append_tag, args=(i,))
                   for i in range(N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with ServerClient(host, port) as client:
            client.begin()
            fd = client.lo_open(designator)
            client.lo_seek(fd, size)
            tail = client.lo_read(fd)
            client.rollback()
        tags = sorted(tail.decode().replace("><", ">|<").split("|"))
        print(f"appends landed exactly once each: {tags}")

    db.close()
    print("server demo complete")


if __name__ == "__main__":
    main()
