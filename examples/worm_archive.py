#!/usr/bin/env python3
"""Archival storage on the WORM jukebox (paper §7 and §9.3).

Demonstrates the storage-manager switch: the same f-chunk large-object
code runs unchanged on write-once optical media, with a magnetic-disk
cache staging writes and absorbing read seeks.  Also registers a
user-defined storage manager at runtime — the paper's §7 extensibility
claim ("any user can define a new storage manager by writing and
registering a small set of interface routines").

Run:  python examples/worm_archive.py
"""

from repro.db import Database
from repro.errors import WriteOnceViolation
from repro.sim.devices import DeviceModel
from repro.smgr.memory import MemoryStorageManager


def main() -> None:
    db = Database(worm_cache_blocks=128)

    # -- archive a document set onto the jukebox ---------------------------
    documents = {
        f"doc-{i}": (f"Archive record {i}. ".encode() * 200 + bytes(2000))
        for i in range(8)
    }
    designators = {}
    txn = db.begin()
    for name, body in documents.items():
        designator = db.lo.create(txn, "fchunk", smgr="worm",
                                  compression="zero-rle")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(body)
        designators[name] = designator
    txn.commit()
    print(f"archived {len(documents)} documents "
          f"({sum(map(len, documents.values())):,} bytes) to the jukebox")

    # -- force the data onto the write-once media --------------------------
    worm = db.storage_manager("worm")
    db.checkpoint()
    worm.sync_all()
    stats = worm.stats()
    print(f"migrated {stats['migrations']} blocks to optical media")

    # -- write-once is enforced at the device -------------------------------
    try:
        worm.base.write_block(
            next(iter(worm.base._nblocks)), 0, bytes(8192))
    except WriteOnceViolation as exc:
        print(f"overwrite refused, as WORM media must: {exc}")

    # -- a cold read pays the jukebox; the disk cache absorbs the re-read --
    db.bufmgr.invalidate_all()
    for fileid in list(worm._nblocks):
        worm.invalidate(fileid)  # drop clean cached blocks: truly cold
    snap = db.clock.snapshot()
    with db.lo.open(designators["doc-3"]) as obj:
        body = obj.read()
    assert body == documents["doc-3"]
    first = snap.since(db.clock).elapsed
    db.bufmgr.invalidate_all()  # bypass the buffer pool, not the cache
    snap = db.clock.snapshot()
    with db.lo.open(designators["doc-3"]) as obj:
        obj.read()
    second = snap.since(db.clock).elapsed
    print(f"doc-3 read: cold {first * 1000:.1f} ms (simulated jukebox), "
          f"re-read {second * 1000:.2f} ms (disk cache) — "
          f"{first / second:.0f}x faster")

    # -- §7: register a brand-new storage manager at runtime ----------------
    tape_model = DeviceModel(name="tape", avg_seek_s=2.0,
                             rotational_s=0.0,
                             transfer_bytes_per_s=0.25e6)

    class TapeManager(MemoryStorageManager):
        name = "tape"

    db.switch.register("tape",
                       lambda: TapeManager(db.clock, model=tape_model))
    db.execute('create TAPE_LOG (entry = text) '
               'with storage manager "tape"')
    db.execute('append TAPE_LOG (entry = "stored via a user-defined '
               'storage manager")')
    print("user-defined 'tape' manager:",
          db.execute('retrieve (TAPE_LOG.entry)').scalar())

    # -- and Inversion files automatically work on it (§10) -----------------
    from repro.inversion.filesystem import InversionFileSystem
    tape_fs = InversionFileSystem(db, smgr="tape")
    with db.begin() as txn:
        tape_fs.write_file(txn, "/backup.img", b"bytes on tape")
    print("Inversion file on tape:",
          tape_fs.read_file("/backup.img"))

    db.close()


if __name__ == "__main__":
    main()
