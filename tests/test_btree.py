"""Unit and property tests for the paged B-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access import BTree
from repro.errors import RelationError


@pytest.fixture
def tree(stack):
    t = BTree("idx", stack.smgr, stack.bufmgr, key_arity=1)
    t.create_storage()
    return t


class TestBasics:
    def test_empty_search(self, tree):
        assert tree.search((1,)) == []

    def test_insert_and_search(self, tree):
        tree.insert((5,), (1, 2))
        assert tree.search((5,)) == [(1, 2)]

    def test_duplicates_preserved(self, tree):
        tree.insert((5,), (1, 0))
        tree.insert((5,), (2, 0))
        tree.insert((5,), (3, 0))
        assert sorted(tree.search((5,))) == [(1, 0), (2, 0), (3, 0)]

    def test_arity_checked(self, tree):
        with pytest.raises(RelationError):
            tree.insert((1, 2), (0, 0))
        with pytest.raises(RelationError):
            tree.search((1, 2))

    def test_bad_arity_construction(self, stack):
        with pytest.raises(RelationError):
            BTree("bad", stack.smgr, stack.bufmgr, key_arity=0)

    def test_create_storage_idempotent(self, stack, tree):
        tree.insert((1,), (0, 0))
        tree.create_storage()
        assert tree.search((1,)) == [(0, 0)]

    def test_negative_keys(self, tree):
        tree.insert((-100,), (1, 0))
        tree.insert((100,), (2, 0))
        assert tree.search((-100,)) == [(1, 0)]
        assert [k for k, _ in tree.range_scan()] == [(-100,), (100,)]


class TestSplits:
    def test_many_inserts_ordered(self, tree):
        n = 2000
        for i in range(n):
            tree.insert((i,), (i, i % 7))
        assert tree.height() >= 1
        assert tree.entry_count() == n
        tree.check_invariants()
        for probe in (0, 1, 999, 1998, 1999):
            assert tree.search((probe,)) == [(probe, probe % 7)]

    def test_many_inserts_reverse(self, tree):
        n = 1500
        for i in reversed(range(n)):
            tree.insert((i,), (i, 0))
        assert tree.entry_count() == n
        tree.check_invariants()

    def test_many_inserts_interleaved(self, tree):
        n = 1500
        order = [(i * 769) % n for i in range(n)]  # 769 coprime with n
        for i in order:
            tree.insert((i,), (i, 0))
        assert tree.entry_count() == n
        tree.check_invariants()
        assert tree.search((737,)) == [(737, 0)]

    def test_grows_beyond_one_leaf(self, tree):
        for i in range(8000):
            tree.insert((i,), (i, 0))
        assert tree.height() >= 1
        assert tree.nblocks() > 20  # ~330 entries per leaf
        assert tree.search((7999,)) == [(7999, 0)]

    def test_all_duplicates_split_correctly(self, tree):
        for i in range(1200):
            tree.insert((42,), (i, 0))
        assert len(tree.search((42,))) == 1200


class TestRangeScan:
    def test_closed_range(self, tree):
        for i in range(100):
            tree.insert((i,), (i, 0))
        got = [k[0] for k, _ in tree.range_scan((10,), (20,))]
        assert got == list(range(10, 21))

    def test_open_lower(self, tree):
        for i in range(50):
            tree.insert((i,), (i, 0))
        got = [k[0] for k, _ in tree.range_scan(None, (5,))]
        assert got == list(range(6))

    def test_open_upper(self, tree):
        for i in range(50):
            tree.insert((i,), (i, 0))
        got = [k[0] for k, _ in tree.range_scan((45,), None)]
        assert got == list(range(45, 50))

    def test_full_scan_sorted(self, tree):
        import random
        rng = random.Random(7)
        keys = list(range(600))
        rng.shuffle(keys)
        for k in keys:
            tree.insert((k,), (k, 0))
        got = [k[0] for k, _ in tree.range_scan()]
        assert got == sorted(keys)

    def test_empty_range(self, tree):
        tree.insert((1,), (0, 0))
        assert list(tree.range_scan((5,), (9,))) == []

    def test_range_across_leaf_boundaries(self, tree):
        for i in range(3000):
            tree.insert((i,), (i, 0))
        got = [k[0] for k, _ in tree.range_scan((100,), (2900,))]
        assert got == list(range(100, 2901))


class TestDelete:
    def test_delete_single(self, tree):
        tree.insert((1,), (0, 0))
        assert tree.delete((1,)) == 1
        assert tree.search((1,)) == []

    def test_delete_specific_value(self, tree):
        tree.insert((1,), (10, 0))
        tree.insert((1,), (20, 0))
        assert tree.delete((1,), (10, 0)) == 1
        assert tree.search((1,)) == [(20, 0)]

    def test_delete_missing(self, tree):
        assert tree.delete((9,)) == 0

    def test_delete_duplicates_across_leaves(self, tree):
        for i in range(500):
            tree.insert((7,), (i, 0))
        for i in range(500):
            tree.insert((9,), (i, 0))
        assert tree.delete((7,)) == 500
        assert tree.search((7,)) == []
        assert len(tree.search((9,))) == 500

    def test_reinsert_after_delete(self, tree):
        for i in range(800):
            tree.insert((i,), (i, 0))
        tree.delete((400,))
        tree.insert((400,), (999, 0))
        assert tree.search((400,)) == [(999, 0)]
        tree.check_invariants()


class TestCompositeKeys:
    def test_pair_keys(self, stack):
        tree = BTree("pair", stack.smgr, stack.bufmgr, key_arity=2)
        tree.create_storage()
        tree.insert((1, 5), (0, 0))
        tree.insert((1, 2), (1, 0))
        tree.insert((2, 0), (2, 0))
        got = [k for k, _ in tree.range_scan()]
        assert got == [(1, 2), (1, 5), (2, 0)]

    def test_pair_range(self, stack):
        tree = BTree("pair", stack.smgr, stack.bufmgr, key_arity=2)
        tree.create_storage()
        for a in range(10):
            for b in range(10):
                tree.insert((a, b), (a, b))
        got = [k for k, _ in tree.range_scan((3, 0), (3, 9))]
        assert got == [(3, b) for b in range(10)]


class TestDecodedNodeCache:
    def test_repeat_search_hits_cache(self, stack, tree):
        for i in range(100):
            tree.insert((i,), (i, 0))
        before = stack.bufmgr.stats.node_cache_hits
        tree.search((50,))
        tree.search((50,))
        assert stack.bufmgr.stats.node_cache_hits > before

    def test_write_through_keeps_cache_coherent(self, tree):
        for i in range(100):
            tree.insert((i,), (i, 0))
        tree.search((50,))  # warm the cache
        tree.insert((1000,), (9, 9))
        tree.delete((50,))
        assert tree.search((1000,)) == [(9, 9)]
        assert tree.search((50,)) == []

    def test_cache_shared_across_handles(self, stack, tree):
        other = BTree("idx", stack.smgr, stack.bufmgr, key_arity=1)
        tree.insert((1,), (1, 0))
        assert other.search((1,)) == [(1, 0)]
        other.insert((2,), (2, 0))
        assert tree.search((2,)) == [(2, 0)]

    def test_mutable_read_does_not_corrupt_cache(self, tree):
        """Mutation paths get copies; an aborted-style edit can't leak in."""
        for i in range(10):
            tree.insert((i,), (i, 0))
        root, _ = tree._read_meta()
        cached_keys = list(tree._read_node(root).keys)
        mutable = tree._read_node(root, mutable=True)
        mutable.keys.append((999,))
        assert tree._read_node(root).keys == cached_keys

    def test_range_scan_node_reads_scale_with_leaves(self, stack, tree):
        n = 3000
        for i in range(n):
            tree.insert((i,), (i, 0))
        stack.bufmgr.invalidate_all()
        before = stack.bufmgr.stats.node_cache_misses
        assert sum(1 for _ in tree.range_scan()) == n
        node_reads = stack.bufmgr.stats.node_cache_misses - before
        # One descent plus a walk of the leaf chain: far fewer decodes
        # than one full descent per entry.
        assert node_reads < n / 10


class TestPersistence:
    def test_tree_survives_buffer_eviction(self, stack):
        from repro.storage import BufferManager
        small = BufferManager(pool_size=6)
        tree = BTree("idx", stack.smgr, small, key_arity=1)
        tree.create_storage()
        for i in range(4000):
            tree.insert((i,), (i, 0))
        small.flush_all()
        assert tree.search((3777,)) == [(3777, 0)]
        tree.check_invariants()

    def test_index_has_real_size(self, tree):
        for i in range(5000):
            tree.insert((i,), (i, 0))
        assert tree.byte_size() > 5000 * 24  # entries actually stored


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=300))
def test_property_matches_sorted_reference(keys):
    """The tree agrees with a sorted-list reference model."""
    from tests.conftest import Stack
    stack = Stack()
    tree = BTree("prop", stack.smgr, stack.bufmgr, key_arity=1)
    tree.create_storage()
    for i, k in enumerate(keys):
        tree.insert((k,), (i, 0))
    got = [k[0] for k, _ in tree.range_scan()]
    assert got == sorted(keys)
    tree.check_invariants()


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(0, 200), min_size=1, max_size=200),
    st.lists(st.integers(0, 200), max_size=60),
)
def test_property_delete_matches_reference(inserts, deletes):
    """Random insert/delete mix agrees with a multiset reference model."""
    from collections import Counter

    from tests.conftest import Stack
    stack = Stack()
    tree = BTree("prop", stack.smgr, stack.bufmgr, key_arity=1)
    tree.create_storage()
    reference = Counter()
    for i, k in enumerate(inserts):
        tree.insert((k,), (i, 0))
        reference[k] += 1
    for k in deletes:
        removed = tree.delete((k,))
        assert removed == reference.pop(k, 0)
    got = Counter(k[0] for k, _ in tree.range_scan())
    assert got == reference
