"""Shared fixtures: a wired-up storage/transaction stack without the DB façade."""

import itertools
import os
import threading

import pytest

# Arm the engine-latch tripwire for the whole suite: every Database the
# tests construct asserts that raw page reads (relation.fetch, B-tree
# search/range_scan) happen under the engine latch — i.e. through the
# scan layer in repro.access.scan.  setdefault, so a caller can still
# run with REPRO_DEBUG_LATCH=0 to measure without the checks.
os.environ.setdefault("REPRO_DEBUG_LATCH", "1")

# Arm the lockdep runtime validator the same way: every instrumented
# acquisition (heavy locks, engine latch, the LockdepMutex classes) is
# checked against the declared hierarchy in repro/txn/lockdep.py and
# recorded into the observed-edge graph surfaced by
# db.statistics()["lockdep"].  REPRO_LOCKDEP=0 disables it.
os.environ.setdefault("REPRO_LOCKDEP", "1")

from repro.sim import SimClock
from repro.smgr import MemoryStorageManager
from repro.storage import BufferManager
from repro.txn import CommitLog, LockManager, TransactionManager


def pytest_collection_modifyitems(config, items):
    """Keep ``monkey``/``shard``-marked rounds out of the default run.

    Unlike the other markers, which select *extra* CI jobs, these tiers
    are strictly larger versions of smoke tests that already run
    unmarked — so under a plain ``pytest`` they are skipped unless the
    ``-m`` expression mentions the marker explicitly.
    """
    markexpr = config.getoption("-m", default="") or ""
    for marker in ("monkey", "shard"):
        if marker in markexpr:
            continue
        skip = pytest.mark.skip(reason=f"needs -m {marker}")
        for item in items:
            if marker in item.keywords:
                item.add_marker(skip)


@pytest.fixture(autouse=True)
def fail_on_leaked_threads():
    """Fail fast when a test leaves a non-daemon thread running.

    A leaked worker usually means a lock wait that never woke up; without
    this guard it surfaces as the whole pytest process hanging at exit,
    far from the culprit.  (Daemon threads are tolerated: the threaded
    tests use them precisely so a stuck waiter fails an assertion instead
    of wedging the interpreter.)
    """
    before = set(threading.enumerate())
    yield
    leaked = [t for t in threading.enumerate()
              if t not in before and t.is_alive() and not t.daemon]
    if leaked:
        names = ", ".join(t.name for t in leaked)
        pytest.fail(f"test leaked non-daemon thread(s): {names}")


class Stack:
    """A minimal wired stack for access-layer tests."""

    def __init__(self, pool_size=64):
        self.clock = SimClock()
        self.smgr = MemoryStorageManager(self.clock)
        self.bufmgr = BufferManager(pool_size=pool_size)
        self.clog = CommitLog()
        self.locks = LockManager()
        self.tm = TransactionManager(self.clog, self.bufmgr,
                                     self.locks, self.clock)
        self._oids = itertools.count(1)

    def next_oid(self):
        return next(self._oids)


@pytest.fixture
def stack():
    return Stack()
