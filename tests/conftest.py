"""Shared fixtures: a wired-up storage/transaction stack without the DB façade."""

import itertools

import pytest

from repro.sim import SimClock
from repro.smgr import MemoryStorageManager
from repro.storage import BufferManager
from repro.txn import CommitLog, LockManager, TransactionManager


class Stack:
    """A minimal wired stack for access-layer tests."""

    def __init__(self, pool_size=64):
        self.clock = SimClock()
        self.smgr = MemoryStorageManager(self.clock)
        self.bufmgr = BufferManager(pool_size=pool_size)
        self.clog = CommitLog()
        self.locks = LockManager()
        self.tm = TransactionManager(self.clog, self.bufmgr,
                                     self.locks, self.clock)
        self._oids = itertools.count(1)

    def next_oid(self):
        return next(self._oids)


@pytest.fixture
def stack():
    return Stack()
