"""The sharded/replicated storage manager (ROADMAP item 3).

Covers the node-addressed layer end to end: deterministic banded
placement, R-of-N quorum writes with stale tracking, read-one with
read-repair, scrub-by-LSN, node add/remove with incremental rebalancing,
the ``on node …`` fault-DSL hooks, durable reopen of a sharded
directory, and the stable buffer-frame identity the refactor introduced.
The shard-marked stress at the bottom is the CI job's node-loss +
rebalancing churn.
"""

import pytest

from repro.db import Database
from repro.errors import NodeDownError, StorageManagerError
from repro.sim.clock import SimClock
from repro.sim.devices import magnetic_disk_device
from repro.sim.faults import parse_plan
from repro.smgr.base import (DiskBlockStore, MemoryBlockStore,
                             StorageNode)
from repro.smgr.memory import MemoryStorageManager
from repro.smgr.sharded import (sharded_disk_manager,
                                sharded_memory_manager)
from repro.storage.buffer import BufferManager
from repro.storage.page import SlottedPage


def page(tag: int, lsn: int = 0) -> bytes:
    """A valid slotted page carrying a recognizable payload byte."""
    p = SlottedPage()
    p.add_item(bytes([tag % 251 + 1]) * 64)
    p.lsn = lsn
    return bytes(p.buf)


def fill(smgr, fileid: str, nblocks: int) -> None:
    smgr.create(fileid)
    for blockno in range(nblocks):
        smgr.write_block(fileid, blockno, page(blockno))


class TestPlacement:
    def test_replica_sets_are_deterministic_across_instances(self):
        a = sharded_memory_manager(SimClock(), n_nodes=5, replication=3)
        b = sharded_memory_manager(SimClock(), n_nodes=5, replication=3)
        for blockno in (0, 1, 17, 64, 500):
            assert a.node_replicas("heap_T", blockno) == \
                b.node_replicas("heap_T", blockno)

    def test_replicas_are_distinct_nodes(self):
        smgr = sharded_memory_manager(SimClock(), n_nodes=4,
                                      replication=3)
        for blockno in range(0, 200, 7):
            replicas = smgr.node_replicas("f", blockno)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_replication_clamps_to_node_count(self):
        smgr = sharded_memory_manager(SimClock(), n_nodes=2,
                                      replication=3, write_quorum=2)
        assert len(smgr.node_replicas("f", 0)) == 2

    def test_bands_keep_consecutive_blocks_on_one_primary(self):
        smgr = sharded_memory_manager(SimClock(), n_nodes=4,
                                      replication=1, band_blocks=16)
        primaries = {smgr.node_replicas("f", b)[0] for b in range(16)}
        assert len(primaries) == 1  # one seek-friendly run per band

    @pytest.mark.parametrize("placement", ["range", "hash"])
    def test_bands_spread_across_nodes(self, placement):
        smgr = sharded_memory_manager(SimClock(), n_nodes=4,
                                      replication=1, placement=placement)
        primaries = {smgr.node_replicas("f", band * 16)[0]
                     for band in range(16)}
        assert len(primaries) == 4

    def test_placement_groups_split_by_primary_in_block_order(self):
        smgr = sharded_memory_manager(SimClock(), n_nodes=4,
                                      replication=1)
        blocks = list(range(64))
        groups = smgr.placement_groups("f", blocks)
        assert sorted(sum(groups, [])) == blocks
        for group in groups:
            assert group == sorted(group)
            assert len({smgr.node_replicas("f", b)[0]
                        for b in group}) == 1

    def test_single_node_managers_use_one_trivial_group(self):
        smgr = MemoryStorageManager(SimClock())
        assert smgr.placement_groups("f", [3, 1, 2]) == [[1, 2, 3]]


class TestQuorumWrites:
    def make(self, **kw):
        kw.setdefault("n_nodes", 3)
        kw.setdefault("replication", 3)
        kw.setdefault("write_quorum", 2)
        return sharded_memory_manager(SimClock(), **kw)

    def test_write_survives_one_down_replica(self):
        smgr = self.make()
        smgr.create("f")
        smgr.nodes[1].set_state("down")
        smgr.write_block("f", 0, page(7))
        assert smgr.stats()["replica_lag"] == 1
        assert bytes(smgr.read_block("f", 0)) == page(7)

    def test_write_fails_below_quorum(self):
        smgr = self.make()
        smgr.create("f")
        smgr.nodes[0].set_state("down")
        smgr.nodes[1].set_state("down")
        smgr.nodes[2].set_state("down")
        with pytest.raises(StorageManagerError, match="quorum"):
            smgr.write_block("f", 0, page(1))
        assert smgr.stats()["quorum_failures"] == 1

    def test_read_never_serves_a_stale_replica(self):
        smgr = self.make()
        smgr.create("f")
        smgr.write_block("f", 0, page(1))
        smgr.nodes[0].set_state("down")
        smgr.write_block("f", 0, page(2))  # node0 misses this write
        smgr.nodes[0].set_state("up")
        # Every read returns the new bytes, never node0's old copy.
        for _ in range(4):
            assert bytes(smgr.read_block("f", 0)) == page(2)

    def test_read_repair_drains_the_lag(self):
        smgr = self.make()
        smgr.create("f")
        smgr.nodes[2].set_state("down")
        for blockno in range(8):
            smgr.write_block("f", blockno, page(blockno))
        assert smgr.stats()["replica_lag"] == 8
        smgr.nodes[2].set_state("up")
        for blockno in range(8):
            smgr.read_block("f", blockno)
        stats = smgr.stats()
        assert stats["replica_lag"] == 0
        assert stats["repairs"] == 8
        # The repaired copies really are the fresh bytes.
        for blockno in range(8):
            assert bytes(smgr.nodes[2].read("f", blockno)) == \
                page(blockno)

    def test_read_fails_loudly_when_no_fresh_replica_is_reachable(self):
        smgr = sharded_memory_manager(SimClock(), n_nodes=2,
                                      replication=1, write_quorum=1)
        smgr.create("f")
        smgr.write_block("f", 0, page(3))
        (idx,) = smgr.node_replicas("f", 0)
        smgr.nodes[idx].set_state("down")
        with pytest.raises(StorageManagerError, match="no fresh replica"):
            smgr.read_block("f", 0)

    def test_flaky_replicas_are_absorbed_by_the_quorum(self):
        smgr = self.make()
        smgr.create("f")
        for node in smgr.nodes:
            node.flaky_every = 3
        smgr.nodes[0].set_state("flaky")
        for blockno in range(12):
            smgr.write_block("f", blockno, page(blockno))
        for blockno in range(12):
            assert bytes(smgr.read_block("f", blockno)) == page(blockno)

    def test_down_node_gate_raises_node_down(self):
        node = StorageNode("n", MemoryBlockStore(),
                           magnetic_disk_device(), SimClock())
        node.store.create("f")
        node.set_state("down")
        with pytest.raises(NodeDownError):
            node.read("f", 0)


class TestNodeFaultDSL:
    def test_node_rules_parse_and_validate(self):
        plan = parse_plan("on node node1 after 40: down")
        (rule,) = plan.rules
        assert (rule.op, rule.pattern, rule.after, rule.action) == \
            ("node", "node1", 40, "down")
        assert plan.has_node_rules()
        with pytest.raises(ValueError):
            parse_plan("on node node1: torn 5")  # not a health state

    def test_after_budget_kills_a_node_mid_workload(self):
        smgr = sharded_memory_manager(SimClock(), n_nodes=3,
                                      replication=3, write_quorum=2)
        smgr.create("f")
        smgr.set_node_plan(parse_plan("on node node1 after 5: down"))
        for blockno in range(10):
            smgr.write_block("f", blockno, page(blockno))
        assert smgr.nodes[1].state == "down"
        plan_notes = smgr._node_plan.fired
        assert "node node1: down" in plan_notes
        assert smgr.stats()["replica_lag"] > 0
        # Every committed block still reads back exactly.
        for blockno in range(10):
            assert bytes(smgr.read_block("f", blockno)) == page(blockno)

    def test_up_rule_restores_a_downed_node(self):
        smgr = sharded_memory_manager(SimClock(), n_nodes=3,
                                      replication=3, write_quorum=2)
        smgr.create("f")
        smgr.set_node_plan(parse_plan(
            "on node node0: down\non node node0 after 6: up"))
        for blockno in range(8):
            smgr.write_block("f", blockno, page(blockno))
        assert smgr.nodes[0].state == "up"

    def test_clear_node_plan_heals_every_node(self):
        smgr = sharded_memory_manager(SimClock(), n_nodes=3,
                                      replication=3)
        smgr.set_node_plan(parse_plan("on node *: down"))
        smgr.create("f")
        with pytest.raises(StorageManagerError, match="quorum"):
            smgr.write_block("f", 0, page(0))  # every replica is down
        smgr.clear_node_plan()
        assert all(node.state == "up" for node in smgr.nodes)
        smgr.write_block("f", 0, page(0))
        assert bytes(smgr.read_block("f", 0)) == page(0)

    def test_slow_node_charges_extra_service_time(self):
        clock = SimClock()
        smgr = sharded_memory_manager(clock, n_nodes=2, replication=1,
                                      write_quorum=1)
        smgr.create("f")
        smgr.write_block("f", 0, page(0))
        (idx,) = smgr.node_replicas("f", 0)
        busy_before = smgr.nodes[idx].port.busy_s
        smgr.read_block("f", 0)
        healthy_cost = smgr.nodes[idx].port.busy_s - busy_before
        smgr.nodes[idx].set_state("slow")
        busy_before = smgr.nodes[idx].port.busy_s
        smgr.read_block("f", 0)
        slow_cost = smgr.nodes[idx].port.busy_s - busy_before
        assert slow_cost > healthy_cost * 2

    def test_database_routes_node_rules_to_the_sharded_manager(self):
        db = Database()
        plan = db.inject_faults("on node node0: down")
        sharded = db.storage_manager("sharded")
        assert sharded._node_plan is plan
        db.clear_faults()
        assert sharded._node_plan is None
        db.close()


class TestRebalancing:
    def seeded(self, n_nodes=3, replication=2, nblocks=48):
        clock = SimClock()
        smgr = sharded_memory_manager(clock, n_nodes=n_nodes,
                                      replication=replication,
                                      write_quorum=1)
        fill(smgr, "f", nblocks)
        return clock, smgr

    def everything_reads_back(self, smgr, nblocks=48):
        for blockno in range(nblocks):
            assert bytes(smgr.read_block("f", blockno)) == page(blockno)

    def test_add_node_pins_blocks_until_rebalanced(self):
        clock, smgr = self.seeded()
        pending = smgr.add_node(StorageNode(
            "node3", MemoryBlockStore(), magnetic_disk_device(), clock))
        assert pending > 0
        assert smgr.stats()["pending_moves"] == pending
        self.everything_reads_back(smgr)  # old locations still serve

    def test_rebalance_moves_in_bounded_steps(self):
        clock, smgr = self.seeded()
        smgr.add_node(StorageNode("node3", MemoryBlockStore(),
                                  magnetic_disk_device(), clock))
        first = smgr.rebalance(max_moves=2)
        assert first <= 2
        self.everything_reads_back(smgr)  # mid-rebalance reads work
        while smgr.rebalance(max_moves=8):
            self.everything_reads_back(smgr)
        stats = smgr.stats()
        assert stats["pending_moves"] == 0
        assert stats["rebalanced"] >= first
        # The new node now holds part of the file.
        assert smgr.nodes[3].store.exists("f")
        assert smgr.nodes[3].store.nblocks("f") > 0
        self.everything_reads_back(smgr)

    def test_rebalanced_blocks_land_where_placement_says(self):
        clock, smgr = self.seeded()
        smgr.add_node(StorageNode("node3", MemoryBlockStore(),
                                  magnetic_disk_device(), clock))
        while smgr.rebalance(max_moves=16):
            pass
        for blockno in range(48):
            assert smgr.node_replicas("f", blockno) == \
                smgr._placement_replicas("f", blockno)

    def test_remove_node_drains_it(self):
        clock, smgr = self.seeded()
        pending = smgr.remove_node("node1")
        assert pending > 0
        self.everything_reads_back(smgr)  # the retiree still serves reads
        while smgr.rebalance(max_moves=16):
            pass
        # No block's replica set mentions the retired node any more.
        for blockno in range(48):
            assert 1 not in smgr.node_replicas("f", blockno)
        self.everything_reads_back(smgr)

    def test_cannot_remove_the_last_active_node(self):
        clock, smgr = self.seeded()
        smgr.remove_node("node1")
        smgr.remove_node("node2")
        with pytest.raises(StorageManagerError, match="last active"):
            smgr.remove_node("node0")

    def test_writes_during_rebalance_stay_consistent(self):
        clock, smgr = self.seeded()
        smgr.add_node(StorageNode("node3", MemoryBlockStore(),
                                  magnetic_disk_device(), clock))
        smgr.rebalance(max_moves=4)
        for blockno in range(0, 48, 5):
            smgr.write_block("f", blockno, page(100 + blockno))
        while smgr.rebalance(max_moves=16):
            pass
        for blockno in range(48):
            want = page(100 + blockno) if blockno % 5 == 0 \
                else page(blockno)
            assert bytes(smgr.read_block("f", blockno)) == want


class TestScrub:
    def test_scrub_repairs_divergence_toward_highest_lsn(self):
        smgr = sharded_memory_manager(SimClock(), n_nodes=3,
                                      replication=3, write_quorum=3)
        smgr.create("f")
        smgr.write_block("f", 0, page(1, lsn=10))
        # A replica silently rots (crash left an old copy; the stale set
        # died with the process, so only scrub can find it).
        replicas = smgr.node_replicas("f", 0)
        rotten = smgr.nodes[replicas[1]]
        rotten.store.write("f", 0, page(9, lsn=3))
        report = smgr.scrub(["f"])
        assert report["mismatches"] == 1
        assert report["repaired"] == 1
        assert bytes(rotten.store.read("f", 0)) == page(1, lsn=10)
        assert smgr.scrub(["f"])["mismatches"] == 0

    def test_clean_scrub_reports_zero(self):
        smgr = sharded_memory_manager(SimClock(), n_nodes=3,
                                      replication=2, write_quorum=2)
        fill(smgr, "f", 10)
        report = smgr.scrub()
        assert report["checked"] == 10
        assert report["mismatches"] == report["repaired"] == 0


class TestDurableReopen:
    def test_reopen_finds_every_block(self, tmp_path):
        directory = str(tmp_path / "shard")
        clock = SimClock()
        smgr = sharded_disk_manager(directory, clock, n_nodes=3,
                                    replication=2)
        fill(smgr, "f", 40)
        smgr.sync("f")
        smgr.close()

        reopened = sharded_disk_manager(directory, SimClock(), n_nodes=3,
                                        replication=2)
        assert reopened.nblocks("f") == 40
        for blockno in range(40):
            assert bytes(reopened.read_block("f", blockno)) == \
                page(blockno)
        reopened.close()

    def test_reopened_database_serves_sharded_los(self, tmp_path):
        path = str(tmp_path / "db")
        payload = bytes(range(256)) * 300
        db = Database(path)
        txn = db.begin()
        designator = db.lo.create(txn, smgr="sharded")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(payload)
        txn.commit()
        db.close()

        reopened = Database(path)
        with reopened.lo.open(designator) as obj:
            assert obj.read() == payload
        assert reopened.check_integrity() == []
        reopened.close()


class TestStatsAndIdentity:
    def test_stats_surface_topology_and_health_counters(self):
        smgr = sharded_memory_manager(SimClock(), n_nodes=4,
                                      replication=3, write_quorum=2)
        fill(smgr, "f", 20)
        stats = smgr.stats()
        assert stats["active_nodes"] == 4
        assert stats["replication"] == 3
        assert stats["write_quorum"] == 2
        assert set(stats["nodes"]) == {"node0", "node1", "node2",
                                       "node3"}
        assert stats["writes"] == sum(
            n["writes"] for n in stats["nodes"].values())
        assert stats["replica_lag"] == 0
        assert stats["pending_moves"] == 0
        for counter in ("rebalanced", "repairs", "quorum_failures"):
            assert stats[counter] == 0
        assert smgr.max_busy_s() > 0

    def test_database_reports_sharded_storage_stats(self):
        db = Database()
        txn = db.begin()
        designator = db.lo.create(txn, smgr="sharded")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"spread me" * 4000)
        txn.commit()
        storage = db.statistics()["storage"]
        assert "sharded" in storage
        assert storage["sharded"]["replica_lag"] == 0
        assert sum(n["writes"] for n
                   in storage["sharded"]["nodes"].values()) > 0
        db.close()

    def test_smgr_ids_are_unique_per_instance(self):
        clock = SimClock()
        a = MemoryStorageManager(clock)
        b = MemoryStorageManager(clock)
        assert a.smgr_id != b.smgr_id
        assert a.smgr_id.startswith("memory#")

    def test_buffer_frames_key_on_stable_identity_not_id(self):
        """Two managers must never alias frames, even if CPython hands
        the second the first's recycled ``id()`` (the seed keyed frames
        by ``id(smgr)``)."""
        clock = SimClock()
        bm = BufferManager(pool_size=8, clock=clock)
        a = MemoryStorageManager(clock)
        a.create("f")
        buf_a = bm.allocate(a, "f")
        assert buf_a.key == (a.smgr_id, "f", 0)
        bm.unpin(buf_a, dirty=True)
        b = MemoryStorageManager(clock)
        b.create("f")
        buf_b = bm.allocate(b, "f")
        assert buf_b.key == (b.smgr_id, "f", 0)
        assert buf_a.key != buf_b.key
        bm.unpin(buf_b, dirty=True)

    def test_switch_stamps_registration_names(self):
        db = Database()
        assert db.storage_manager("sharded").smgr_id.startswith(
            "sharded#")
        assert db.storage_manager("faulty").smgr_id.startswith("faulty#")
        db.close()


class TestZeroByteLoss:
    """The PR's acceptance bar: with 2-of-3 replication, killing any
    single node mid-workload loses zero committed bytes."""

    @pytest.mark.parametrize("victim", ["node0", "node1", "node2"])
    def test_single_node_death_loses_nothing(self, tmp_path, victim):
        path = str(tmp_path / "db")
        db = Database(path, shard_nodes=3, shard_replication=3,
                      shard_quorum=2)
        payloads = []
        designators = []
        # Each commit forces ~3 blocks to every replica, so the plan
        # fires mid-workload: after the third of the six commits.
        db.inject_faults(f"on node {victim} after 8: down")
        for i in range(6):
            payload = bytes([i + 1]) * (6000 + 600 * i)
            txn = db.begin()
            designator = db.lo.create(txn, smgr="sharded")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(payload)
            txn.commit()
            payloads.append(payload)
            designators.append(designator)
        sharded = db.storage_manager("sharded")
        assert any(node.state == "down" for node in sharded.nodes), \
            "the fault plan never killed the victim"
        # Zero committed bytes lost, integrity clean, while down.
        for designator, payload in zip(designators, payloads):
            with db.lo.open(designator) as obj:
                assert obj.read() == payload
        assert db.check_integrity() == []
        # Recovery: node back up, read-repair + scrub drain the lag.
        db.clear_faults()
        for designator, payload in zip(designators, payloads):
            with db.lo.open(designator) as obj:
                assert obj.read() == payload
        sharded.scrub()
        assert sharded.stats()["replica_lag"] == 0
        db.close()


@pytest.mark.shard
class TestShardStress:
    """CI's ``-m shard`` job: node loss + topology churn under load."""

    def test_node_loss_and_rebalancing_churn(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, shard_nodes=3, shard_replication=3,
                      shard_quorum=2)
        sharded = db.storage_manager("sharded")
        rng_payload = [bytes([(i * 37 + 11) % 251 + 1]) * (4000 + 977 * i)
                       for i in range(20)]
        designators = []
        db.inject_faults("on node node1 after 200: down")
        for i, payload in enumerate(rng_payload[:10]):
            txn = db.begin()
            designator = db.lo.create(txn, smgr="sharded")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(payload)
            txn.commit()
            designators.append(designator)
        db.clear_faults()

        # Grow the ring mid-life and migrate incrementally while new
        # writes keep landing.
        sharded.add_node(StorageNode(
            "node3",
            DiskBlockStore(str(tmp_path / "db" / "shard" / "node3")),
            magnetic_disk_device(), db.clock))
        for i, payload in enumerate(rng_payload[10:]):
            txn = db.begin()
            designator = db.lo.create(txn, smgr="sharded")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(payload)
            txn.commit()
            designators.append(designator)
            sharded.rebalance(max_moves=8)
        while sharded.rebalance(max_moves=64):
            pass

        # Retire a node, drain it, and verify every committed byte.
        sharded.remove_node("node0")
        while sharded.rebalance(max_moves=64):
            pass
        sharded.scrub()
        for designator, payload in zip(designators, rng_payload):
            with db.lo.open(designator) as obj:
                assert obj.read() == payload
        stats = sharded.stats()
        assert stats["pending_moves"] == 0
        assert stats["replica_lag"] == 0
        assert db.check_integrity() == []
        db.close()

    def test_filemonkey_on_sharded_los(self):
        from repro.inversion.monkey import FileMonkey
        monkey = FileMonkey(lambda: Database(shard_nodes=3,
                                             shard_replication=2,
                                             shard_quorum=1),
                            seed=11, workers=2, ops=220,
                            lo_smgr="sharded")
        report = monkey.run()
        assert report.ok, report.problems
        committed_lo = [e for e in report.oplog
                        if e["op"].startswith("lo_")
                        and e["outcome"] == "ok"]
        assert committed_lo, "the mix never exercised raw LO ops"
