"""Interleaved-transaction stress tests.

Transactions run cooperatively in one process, but the machinery under
test — snapshots, xmax stamping, no-wait 2PL, commit ordering — is the
real thing.  These tests interleave many logical transactions and check
that every isolation promise survives.
"""

import random

import pytest

from repro.db import Database
from repro.errors import LockError, TransactionError


@pytest.fixture
def db():
    database = Database(charge_cpu=False)
    yield database
    database.close()


class TestInterleavedWriters:
    def test_many_writers_one_class(self, db):
        db.create_class("T", [("writer", "int4"), ("n", "int4")])
        txns = [db.begin() for _ in range(10)]
        rng = random.Random(42)
        work = [(w, n) for w in range(10) for n in range(20)]
        rng.shuffle(work)
        for writer, n in work:
            db.insert(txns[writer], "T", (writer, n))
        # Commit even writers, abort odd ones.
        for i, txn in enumerate(txns):
            if i % 2 == 0:
                txn.commit()
            else:
                txn.abort()
        rows = [t.values for t in db.scan("T")]
        assert len(rows) == 5 * 20
        assert all(writer % 2 == 0 for writer, _ in rows)

    def test_snapshot_stability_under_churn(self, db):
        """A snapshot taken mid-churn sees a frozen world."""
        db.create_class("T", [("n", "int4")])
        with db.begin() as txn:
            for n in range(10):
                db.insert(txn, "T", (n,))
        reader = db.begin()
        frozen = db.snapshot(reader)
        relation = db.get_class("T")

        for round_no in range(5):
            with db.begin() as txn:
                db.insert(txn, "T", (100 + round_no,))
            before = sorted(t.values for t in relation.scan(frozen))
            assert before == [(n,) for n in range(10)]
        reader.commit()

    def test_write_write_conflicts_serialize(self, db):
        db.create_class("T", [("n", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "T", (0,))
        winners = 0
        for _ in range(5):
            a, b = db.begin(), db.begin()
            db.replace(a, "T", tid, (1,))
            with pytest.raises(TransactionError):
                db.replace(b, "T", tid, (2,))
            a.abort()  # stamp removed logically: b may retry
            db.replace(b, "T", tid, (3,))
            b.commit()
            tid = next(db.scan("T")).tid
            winners += 1
        assert winners == 5
        assert next(db.scan("T")).values == (3,)

    def test_lock_conflicts_are_no_wait(self, db):
        db.create_class("T", [("n", "int4")])
        from repro.txn.locks import LockMode
        a = db.begin()
        db.locks.acquire(a.xid, ("relation", "T"), LockMode.EXCLUSIVE)
        b = db.begin()
        with pytest.raises(LockError):
            db.insert(b, "T", (1,))  # writers take SHARED: conflicts
        a.commit()
        db.insert(b, "T", (1,))  # free after commit
        b.commit()


class TestInterleavedLargeObjects:
    def test_two_writers_different_objects(self, db):
        a, b = db.begin(), db.begin()
        lo_a = db.lo.create(a, "fchunk")
        lo_b = db.lo.create(b, "fchunk")
        with db.lo.open(lo_a, a, "rw") as obj:
            obj.write(b"A" * 10_000)
        with db.lo.open(lo_b, b, "rw") as obj:
            obj.write(b"B" * 10_000)
        a.commit()
        b.abort()
        with db.lo.open(lo_a) as obj:
            assert obj.read(3) == b"AAA"
        assert not db.lo.exists(lo_b)

    def test_reader_isolated_from_concurrent_writer(self, db):
        with db.begin() as txn:
            designator = db.lo.create(txn, "fchunk")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"stable")
        writer = db.begin()
        writer_obj = db.lo.open(designator, writer, "rw")
        writer_obj.seek(0)
        writer_obj.write(b"CHAOS!")
        writer_obj.flush()
        # A detached reader opened mid-write sees the committed state.
        with db.lo.open(designator) as reader_obj:
            assert reader_obj.read() == b"stable"
        writer_obj.close()
        writer.commit()
        with db.lo.open(designator) as reader_obj:
            assert reader_obj.read() == b"CHAOS!"

    def test_interleaved_inversion_transactions(self, db):
        fs = db.inversion
        a, b = db.begin(), db.begin()
        fs.write_file(a, "/from_a", b"a")
        fs.write_file(b, "/from_b", b"b")
        # Neither sees the other's uncommitted file.
        assert fs.listdir("/", txn=a) == ["from_a"]
        assert fs.listdir("/", txn=b) == ["from_b"]
        a.commit()
        b.abort()
        assert fs.listdir("/") == ["from_a"]


class TestCommitOrderingAndTime:
    def test_commit_times_strictly_ordered(self, db):
        stamps = []
        for _ in range(20):
            txn = db.begin()
            txn.commit()
            stamps.append(db.clog.commit_time(txn.xid))
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 20

    def test_history_linearizes_by_commit_not_begin(self, db):
        """A txn that began first but committed second is the newer state."""
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "T", (0,))

        early = db.begin()  # begins first
        db.replace(early, "T", tid, (1,))
        early.commit()
        after_early = db.clock.now()

        late = db.begin()
        new_tid = next(db.scan("T")).tid
        db.replace(late, "T", new_tid, (2,))
        late.commit()

        assert [t.values for t in db.scan("T", as_of=after_early)] == [(1,)]
        assert [t.values for t in db.scan("T")] == [(2,)]
