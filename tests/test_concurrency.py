"""Interleaved-transaction stress tests.

Transactions run cooperatively in one process, but the machinery under
test — snapshots, xmax stamping, 2PL, commit ordering — is the real
thing.  These tests interleave many logical transactions and check that
every isolation promise survives.  The deadlock matrix at the bottom
uses real threads: blocked lock requests park, and the wait-for-graph
detector must pick exactly one victim per cycle.
"""

import random
import threading
import time

import pytest

from repro.db import Database
from repro.errors import (DeadlockError, LargeObjectError, LockError,
                          TransactionError)
from repro.txn.locks import LockMode


@pytest.fixture
def db():
    database = Database(charge_cpu=False)
    yield database
    database.close()


class TestInterleavedWriters:
    def test_many_writers_one_class(self, db):
        db.create_class("T", [("writer", "int4"), ("n", "int4")])
        txns = [db.begin() for _ in range(10)]
        rng = random.Random(42)
        work = [(w, n) for w in range(10) for n in range(20)]
        rng.shuffle(work)
        for writer, n in work:
            db.insert(txns[writer], "T", (writer, n))
        # Commit even writers, abort odd ones.
        for i, txn in enumerate(txns):
            if i % 2 == 0:
                txn.commit()
            else:
                txn.abort()
        rows = [t.values for t in db.scan("T")]
        assert len(rows) == 5 * 20
        assert all(writer % 2 == 0 for writer, _ in rows)

    def test_snapshot_stability_under_churn(self, db):
        """A snapshot taken mid-churn sees a frozen world."""
        db.create_class("T", [("n", "int4")])
        with db.begin() as txn:
            for n in range(10):
                db.insert(txn, "T", (n,))
        reader = db.begin()
        frozen = db.snapshot(reader)
        relation = db.get_class("T")

        for round_no in range(5):
            with db.begin() as txn:
                db.insert(txn, "T", (100 + round_no,))
            before = sorted(t.values for t in relation.scan(frozen))
            assert before == [(n,) for n in range(10)]
        reader.commit()

    def test_write_write_conflicts_serialize(self, db):
        db.create_class("T", [("n", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "T", (0,))
        winners = 0
        for _ in range(5):
            a, b = db.begin(), db.begin()
            db.replace(a, "T", tid, (1,))
            with pytest.raises(TransactionError):
                db.replace(b, "T", tid, (2,))
            a.abort()  # stamp removed logically: b may retry
            db.replace(b, "T", tid, (3,))
            b.commit()
            tid = next(db.scan("T")).tid
            winners += 1
        assert winners == 5
        assert next(db.scan("T")).values == (3,)

    def test_lock_conflicts_are_no_wait(self):
        """``no_wait=True`` restores the paper-faithful rejection policy."""
        db = Database(charge_cpu=False, no_wait=True)
        db.create_class("T", [("n", "int4")])
        from repro.txn.locks import LockMode
        a = db.begin()
        db.locks.acquire(a.xid, ("relation", "T"), LockMode.EXCLUSIVE)
        b = db.begin()
        with pytest.raises(LockError):
            db.insert(b, "T", (1,))  # writers take SHARED: conflicts
        a.commit()
        db.insert(b, "T", (1,))  # free after commit
        b.commit()
        db.close()


class TestInterleavedLargeObjects:
    def test_two_writers_different_objects(self, db):
        a, b = db.begin(), db.begin()
        lo_a = db.lo.create(a, "fchunk")
        lo_b = db.lo.create(b, "fchunk")
        with db.lo.open(lo_a, a, "rw") as obj:
            obj.write(b"A" * 10_000)
        with db.lo.open(lo_b, b, "rw") as obj:
            obj.write(b"B" * 10_000)
        a.commit()
        b.abort()
        with db.lo.open(lo_a) as obj:
            assert obj.read(3) == b"AAA"
        assert not db.lo.exists(lo_b)

    def test_reader_isolated_from_concurrent_writer(self, db):
        with db.begin() as txn:
            designator = db.lo.create(txn, "fchunk")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"stable")
        writer = db.begin()
        writer_obj = db.lo.open(designator, writer, "rw")
        writer_obj.seek(0)
        writer_obj.write(b"CHAOS!")
        writer_obj.flush()
        # A detached reader opened mid-write sees the committed state.
        with db.lo.open(designator) as reader_obj:
            assert reader_obj.read() == b"stable"
        writer_obj.close()
        writer.commit()
        with db.lo.open(designator) as reader_obj:
            assert reader_obj.read() == b"CHAOS!"

    def test_interleaved_inversion_transactions(self, db):
        fs = db.inversion
        a, b = db.begin(), db.begin()
        fs.write_file(a, "/from_a", b"a")
        fs.write_file(b, "/from_b", b"b")
        # Neither sees the other's uncommitted file.
        assert fs.listdir("/", txn=a) == ["from_a"]
        assert fs.listdir("/", txn=b) == ["from_b"]
        a.commit()
        b.abort()
        assert fs.listdir("/") == ["from_a"]


class TestUnlinkVsOpenDescriptors:
    """Unlink must not pull relations/files out from under live handles."""

    def test_unlink_chunked_refused_while_reader_open(self, db):
        """The chunk-relation drop is non-transactional DDL; a lock-free
        reader in another session must not lose its relations mid-scan."""
        with db.begin() as txn:
            designator = db.lo.create(txn, "fchunk")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"still being read")
        reader_session = db.session()
        reader_session.begin()
        reader = reader_session.lo_open(designator)
        assert reader.read(5) == b"still"

        unlinker = db.session()
        unlinker.begin()
        with pytest.raises(LargeObjectError,
                           match="open descriptor"):
            unlinker.lo_unlink(designator)
        unlinker.rollback()

        # The reader is unharmed and, once it closes, unlink succeeds.
        assert reader.read() == b" being read"
        reader_session.close()
        unlinker.begin()
        unlinker.lo_unlink(designator)
        unlinker.commit()
        assert not db.lo.exists(designator)

    def test_unlink_native_refused_while_writer_open(self, db):
        """A p-file writer flushes straight to the filesystem: unlinking
        under it would resurrect the file on flush or lose the bytes."""
        with db.begin() as txn:
            designator = db.lo.create(txn, "pfile")
        session = db.session()
        session.begin()
        writer = session.lo_open(designator, "rw")
        writer.write(b"half-written")

        other = db.session()
        other.begin()
        with pytest.raises(LargeObjectError, match="open writer"):
            other.lo_unlink(designator)

        writer.close()
        other.lo_unlink(designator)
        other.commit()
        session.close()
        assert not db.lo.exists(designator)

    def test_user_closed_handle_deregisters_from_session(self, db):
        """A handle the user closes early leaves ``Session._objects``:
        commit does not re-close it, and unlink no longer counts it."""
        session = db.session()
        session.begin()
        designator = session.lo_create("fchunk")
        handle = session.lo_open(designator, "rw")
        handle.write(b"brief")
        handle.close()
        handle.close()  # double close stays idempotent
        assert session._objects == []
        # With the handle deregistered, unlink sees no open descriptor.
        session.lo_unlink(designator)
        session.commit()
        assert not db.lo.exists(designator)

    def test_unlink_own_open_handle_refused(self, db):
        """Even the owning session cannot unlink under its own handle."""
        session = db.session()
        session.begin()
        designator = session.lo_create("fchunk")
        handle = session.lo_open(designator, "rw")
        with pytest.raises(LargeObjectError, match="open descriptor"):
            session.lo_unlink(designator)
        handle.close()
        session.lo_unlink(designator)
        session.commit()


class TestCommitOrderingAndTime:
    def test_commit_times_strictly_ordered(self, db):
        stamps = []
        for _ in range(20):
            txn = db.begin()
            txn.commit()
            stamps.append(db.clog.commit_time(txn.xid))
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 20

    def test_history_linearizes_by_commit_not_begin(self, db):
        """A txn that began first but committed second is the newer state."""
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "T", (0,))

        early = db.begin()  # begins first
        db.replace(early, "T", tid, (1,))
        early.commit()
        after_early = db.clock.now()

        late = db.begin()
        new_tid = next(db.scan("T")).tid
        db.replace(late, "T", new_tid, (2,))
        late.commit()

        assert [t.values for t in db.scan("T", as_of=after_early)] == [(1,)]
        assert [t.values for t in db.scan("T")] == [(2,)]


class TestDeadlockMatrix:
    """Wait-for cycles of every flavour: one victim, survivors finish.

    Detection is synchronous (the parking waiter walks the wait-for
    graph), so no test here relies on a timeout to break a cycle — the
    generous ``join`` bounds only guard against a hung regression.
    """

    def _race(self, workers, timeout=15.0):
        """Run the worker callables in threads; fail instead of hanging."""
        threads = [threading.Thread(target=fn, daemon=True)
                   for fn in workers]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout)
        assert not any(t.is_alive() for t in threads), \
            "deadlock was not detected within the bound"

    def _contender(self, db, txn, acquires, outcome, start):
        """Acquire each (resource, mode) in turn; commit, or abort as victim."""
        def run():
            start.wait(10)
            try:
                for resource, mode in acquires:
                    db.locks.acquire(txn.xid, resource, mode)
                txn.commit()
                outcome[txn.xid] = "committed"
            except DeadlockError:
                txn.abort()  # the victim must abort to break the cycle
                outcome[txn.xid] = "aborted"
        return run

    def test_two_cycle_one_victim(self, db):
        a, b = db.begin(), db.begin()
        db.locks.acquire(a.xid, "X", LockMode.EXCLUSIVE)
        db.locks.acquire(b.xid, "Y", LockMode.EXCLUSIVE)
        outcome = {}
        start = threading.Barrier(2)
        self._race([
            self._contender(db, a, [("Y", LockMode.EXCLUSIVE)],
                            outcome, start),
            self._contender(db, b, [("X", LockMode.EXCLUSIVE)],
                            outcome, start),
        ])
        assert sorted(outcome.values()) == ["aborted", "committed"]
        # The victim is the youngest transaction in the cycle.
        assert outcome[max(a.xid, b.xid)] == "aborted"
        assert db.locks.grant_table_empty()
        stats = db.statistics()["locks"]
        assert stats["deadlocks_detected"] == 1
        assert stats["victims"] == 1

    def test_three_cycle_one_victim(self, db):
        txns = [db.begin() for _ in range(3)]
        held = ["X", "Y", "Z"]
        for txn, resource in zip(txns, held):
            db.locks.acquire(txn.xid, resource, LockMode.EXCLUSIVE)
        outcome = {}
        start = threading.Barrier(3)
        self._race([
            self._contender(db, txn, [(held[(i + 1) % 3],
                                       LockMode.EXCLUSIVE)],
                            outcome, start)
            for i, txn in enumerate(txns)
        ])
        assert sorted(outcome.values()) == ["aborted", "committed",
                                            "committed"]
        assert outcome[max(t.xid for t in txns)] == "aborted"
        assert db.locks.grant_table_empty()
        assert db.statistics()["locks"]["victims"] == 1

    def test_upgrade_deadlock(self, db):
        """Two sharers both upgrading is a cycle; one survives upgraded."""
        a, b = db.begin(), db.begin()
        db.locks.acquire(a.xid, "R", LockMode.SHARED)
        db.locks.acquire(b.xid, "R", LockMode.SHARED)
        outcome = {}
        start = threading.Barrier(2)
        self._race([
            self._contender(db, a, [("R", LockMode.EXCLUSIVE)],
                            outcome, start),
            self._contender(db, b, [("R", LockMode.EXCLUSIVE)],
                            outcome, start),
        ])
        assert sorted(outcome.values()) == ["aborted", "committed"]
        assert outcome[max(a.xid, b.xid)] == "aborted"
        assert db.locks.grant_table_empty()
        assert db.statistics()["locks"]["deadlocks_detected"] == 1

    def test_one_edge_closes_two_cycles_every_cycle_victimized(self, db):
        """One wait edge can close several cycles; each needs a victim.

        A 3-way star: two sharers of R each wait on the hub, then the
        hub requests EXCLUSIVE on R, closing *two* cycles at once.  The
        hub is the oldest transaction, so the per-cycle youngest-victim
        rule never picks the common node — without re-detection after
        the first victim, the second cycle would hang forever.
        """
        hub = db.begin()  # lowest xid: never chosen as victim
        spokes = [db.begin(), db.begin()]
        db.locks.acquire(hub.xid, "X0", LockMode.EXCLUSIVE)
        db.locks.acquire(hub.xid, "X1", LockMode.EXCLUSIVE)
        for txn in spokes:
            db.locks.acquire(txn.xid, "R", LockMode.SHARED)
        outcome = {}
        start = threading.Barrier(2)
        threads = [threading.Thread(
            target=self._contender(db, txn, [(f"X{i}", LockMode.EXCLUSIVE)],
                                   outcome, start),
            daemon=True) for i, txn in enumerate(spokes)]
        for t in threads:
            t.start()
        # Both spokes must be parked before the hub's request can close
        # both cycles with a single edge.
        deadline = time.monotonic() + 10
        while len(db.locks.waiting()) < 2:
            assert time.monotonic() < deadline, "spokes never parked"
            time.sleep(0.001)
        db.locks.acquire(hub.xid, "R", LockMode.EXCLUSIVE)
        hub.commit()
        for t in threads:
            t.join(15)
        assert not any(t.is_alive() for t in threads), "residual cycle hung"
        assert sorted(outcome.values()) == ["aborted", "aborted"]
        assert db.locks.grant_table_empty()
        stats = db.statistics()["locks"]
        assert stats["deadlocks_detected"] == 2
        assert stats["victims"] == 2

    def test_large_object_writer_deadlock_end_to_end(self, db):
        """The real write path deadlocks and recovers: two sessions open
        the same two objects write-mode in opposite orders."""
        with db.begin() as txn:
            lo_x = db.lo.create(txn, "fchunk")
            lo_y = db.lo.create(txn, "fchunk")
        outcome = {}
        start = threading.Barrier(2)

        def writer(name, first, second):
            def run():
                session = db.session()
                session.begin()
                try:
                    with session.lo_open(first, "rw") as obj:
                        obj.write(name.encode())
                    start.wait(10)
                    with session.lo_open(second, "rw") as obj:
                        obj.write(name.encode())
                    session.commit()
                    outcome[name] = "committed"
                except DeadlockError:
                    session.rollback()
                    outcome[name] = "aborted"
            return run

        self._race([writer("a", lo_x, lo_y), writer("b", lo_y, lo_x)])
        assert sorted(outcome.values()) == ["aborted", "committed"]
        assert db.locks.grant_table_empty()
        # The survivor's bytes are committed in both objects.
        survivor = next(k for k, v in outcome.items() if v == "committed")
        for designator in (lo_x, lo_y):
            with db.lo.open(designator) as obj:
                assert obj.read().decode() == survivor


class TestSameThreadSelfWait:
    """One thread running two conflicting transactions must not hang.

    The blocker *holds* but never waits, so no wait-for cycle exists for
    the detector; the doomed request has to be refused up front with
    ``LockError`` — the same outcome the old no-wait policy gave this
    pattern.
    """

    def test_direct_conflict_raises_immediately(self, db):
        a, b = db.begin(), db.begin()
        db.locks.acquire(a.xid, "Q", LockMode.EXCLUSIVE)
        with pytest.raises(LockError):
            db.locks.acquire(b.xid, "Q", LockMode.EXCLUSIVE)
        a.commit()
        db.locks.acquire(b.xid, "Q", LockMode.EXCLUSIVE)  # free now
        b.commit()
        assert db.locks.grant_table_empty()

    def test_transitive_conflict_through_a_parked_waiter(self, db):
        """The self-wait may be indirect: b waits on a parked worker that
        in turn waits on a lock this thread holds."""
        a, b = db.begin(), db.begin()
        db.locks.acquire(a.xid, "Q", LockMode.EXCLUSIVE)
        finished = []

        def worker():
            c = db.begin()
            db.locks.acquire(c.xid, "R", LockMode.EXCLUSIVE)
            db.locks.acquire(c.xid, "Q", LockMode.EXCLUSIVE)  # parks
            c.commit()
            finished.append(True)

        t = threading.Thread(target=worker, daemon=True)
        t.start()
        deadline = time.monotonic() + 10
        while not db.locks.waiting("Q"):
            assert time.monotonic() < deadline, "worker never parked"
            time.sleep(0.001)
        with pytest.raises(LockError):
            db.locks.acquire(b.xid, "R", LockMode.EXCLUSIVE)
        b.abort()
        a.commit()  # releases Q; the worker proceeds and finishes
        t.join(10)
        assert not t.is_alive() and finished
        assert db.locks.grant_table_empty()
