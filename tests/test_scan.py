"""The unified access-path layer: scan descriptors, per-scan statistics,
the ``unique`` visible-version invariant, and the latch tripwire."""

import threading

import pytest

from repro.access.scan import (
    EngineLatch,
    IndexProbe,
    IndexRangeScan,
    SeqScan,
)
from repro.db import Database
from repro.errors import LargeObjectError, ReproError
from repro.lo import metadata
from repro.lo.fchunk import chunk_class_name
from repro.lo.vsegment import segment_class_name


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


def _fill(db, rows=10):
    db.create_class("T", [("k", "int4"), ("v", "int4")])
    db.create_index("t_k", "T", "k")
    with db.begin() as txn:
        for i in range(rows):
            db.insert(txn, "T", (i, i * 100))


class TestEngineLatch:
    def test_held_tracks_owner_reentrantly(self):
        latch = EngineLatch()
        assert not latch.held()
        with latch:
            assert latch.held()
            with latch:
                assert latch.held()
            assert latch.held()  # still owned after inner exit
        assert not latch.held()

    def test_held_is_per_thread(self):
        latch = EngineLatch()
        seen = []
        with latch:
            worker = threading.Thread(
                target=lambda: seen.append(latch.held()), daemon=True)
            worker.start()
            worker.join(5)
        assert seen == [False]


class TestIndexProbe:
    def test_probe_returns_visible_versions(self, db):
        _fill(db)
        probe = IndexProbe(db, db.get_index("t_k"), db.get_class("T"),
                           (4,))
        [tup] = probe.tuples(db.snapshot())
        assert tup.values == (4, 400)

    def test_first_stops_at_first_visible(self, db):
        _fill(db)
        probe = IndexProbe(db, db.get_index("t_k"), db.get_class("T"),
                           (4,))
        assert probe.first(db.snapshot()).values == (4, 400)
        assert probe.first(db.snapshot(as_of=0.0)) is None

    def test_unique_mode_raises_on_duplicates(self, db):
        _fill(db)
        with db.begin() as txn:
            db.insert(txn, "T", (4, 999))  # second visible row, same key
        index, relation = db.get_index("t_k"), db.get_class("T")
        # Non-unique: both versions surface.
        assert len(IndexProbe(db, index, relation,
                              (4,)).tuples(db.snapshot())) == 2
        with pytest.raises(ReproError, match="snapshot anomaly"):
            IndexProbe(db, index, relation, (4,),
                       unique=True).tuples(db.snapshot())

    def test_unique_mode_uses_caller_anomaly(self, db):
        _fill(db)
        with db.begin() as txn:
            db.insert(txn, "T", (4, 999))
        probe = IndexProbe(
            db, db.get_index("t_k"), db.get_class("T"), (4,),
            unique=True,
            anomaly=lambda key, count: LargeObjectError(
                f"dup {key[0]} x{count}"))
        with pytest.raises(LargeObjectError, match="dup 4 x2"):
            probe.tuples(db.snapshot())

    def test_recheck_rejects_stale_entries(self, db):
        """A freed slot reused by an unrelated tuple must not satisfy a
        stale index probe when a recheck position is given."""
        db.create_class("T", [("k", "int4")])
        db.create_index("t_k", "T", "k")
        with db.begin() as txn:
            tid = db.insert(txn, "T", (111,))
        with db.begin() as txn:
            db.delete(txn, "T", tid)
        db.get_class("T").vacuum()  # frees the slot, keeps the entry
        with db.begin() as txn:
            db.insert(txn, "T", (222,))  # reuses the freed slot
        probe = IndexProbe(db, db.get_index("t_k"), db.get_class("T"),
                           (111,), recheck_position=0)
        assert probe.tuples(db.snapshot()) == []


class TestIndexRangeScan:
    def test_bounds_and_order(self, db):
        _fill(db)
        scan = IndexRangeScan(db, db.get_index("t_k"), db.get_class("T"),
                              (3,), (7,))
        assert [t.values[0] for t in scan.tuples(db.snapshot())] == [
            3, 4, 5, 6, 7]

    def test_open_bounds(self, db):
        _fill(db)
        scan = IndexRangeScan(db, db.get_index("t_k"), db.get_class("T"),
                              None, None)
        assert len(scan.tuples(db.snapshot())) == 10

    def test_wanted_filters_keys(self, db):
        _fill(db)
        scan = IndexRangeScan(db, db.get_index("t_k"), db.get_class("T"),
                              (0,), (9,))
        pairs = scan.visible(db.snapshot(), wanted={(2,), (5,)})
        assert [key for key, _tup in pairs] == [(2,), (5,)]

    def test_entries_returns_raw_index_entries(self, db):
        _fill(db)
        scan = IndexRangeScan(db, db.get_index("t_k"), db.get_class("T"),
                              (8,), (9,))
        assert [key for key, _tid in scan.entries()] == [(8,), (9,)]

    def test_unique_mode_raises_on_duplicates(self, db):
        _fill(db)
        with db.begin() as txn:
            db.insert(txn, "T", (6, 999))
        scan = IndexRangeScan(db, db.get_index("t_k"), db.get_class("T"),
                              (0,), (9,), unique=True)
        with pytest.raises(ReproError, match="snapshot anomaly"):
            scan.visible(db.snapshot())


class TestSeqScan:
    def test_matches_relation_scan(self, db):
        _fill(db)
        with db.begin() as txn:
            uncommitted = db.begin()
            db.insert(uncommitted, "T", (50, 0))  # never committed
            tuples = SeqScan(db, db.get_class("T")).tuples(
                db.snapshot(txn))
            assert [t.values[0] for t in tuples] == list(range(10))
            uncommitted.abort()


class TestAccessStatistics:
    def test_probe_and_seq_counters(self, db):
        _fill(db)
        before = db.statistics()["access"]
        [hit] = db.index_lookup("t_k", 5)
        assert hit.values == (5, 500)
        after = db.statistics()["access"]
        assert after["probes"] == before["probes"] + 1
        assert after["tuples_visible"] == before["tuples_visible"] + 1
        db.execute("retrieve (T.v)")
        assert db.statistics()["access"]["seq_scans"] \
            == after["seq_scans"] + 1

    def test_executor_range_scan_counted(self, db):
        _fill(db)
        before = db.statistics()["access"]["range_scans"]
        result = db.execute(
            "retrieve (T.v) where T.k >= 3 and T.k <= 7")
        assert result.count == 5
        assert db.statistics()["access"]["range_scans"] == before + 1

    def test_lo_read_counts_scan_and_prefetch(self, db):
        txn = db.begin()
        designator = db.lo.create(txn, "fchunk")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(bytes(8000 * 12))  # 12 chunks -> 12 heap blocks
        txn.commit()
        db.bufmgr.invalidate_all()  # cold pool, so readahead really reads
        before = db.statistics()["access"]
        with db.lo.open(designator) as obj:
            assert len(obj.read()) == 8000 * 12
        after = db.statistics()["access"]
        assert after["range_scans"] > before["range_scans"]
        assert after["tuples_visible"] >= before["tuples_visible"] + 12
        # 12 contiguous chunk blocks form at least one readahead run.
        assert after["prefetch_batches"] > before["prefetch_batches"]


class TestLargeObjectCacheStatistics:
    def test_zeros_before_any_large_object(self, db):
        # Must not construct the LO manager as a side effect.
        assert db.statistics()["largeobjects"] == {
            "read_cache_hits": 0, "read_cache_misses": 0,
            "segment_cache_hits": 0, "segment_cache_misses": 0}
        assert db._lo_manager is None

    def test_fchunk_read_cache_counted(self, db):
        txn = db.begin()
        designator = db.lo.create(txn, "fchunk")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"a" * 100)
        txn.commit()
        with db.lo.open(designator) as obj:
            obj.read()
            obj.seek(0)
            obj.read()  # same chunk again: must hit the read cache
        caches = db.statistics()["largeobjects"]
        assert caches["read_cache_misses"] >= 1
        assert caches["read_cache_hits"] >= 1

    def test_vsegment_segment_cache_counted(self, db):
        txn = db.begin()
        designator = db.lo.create(txn, "vsegment")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"b" * 100)
        txn.commit()
        with db.lo.open(designator) as obj:
            obj.read()
            obj.seek(0)
            obj.read()
        caches = db.statistics()["largeobjects"]
        assert caches["segment_cache_misses"] >= 1
        assert caches["segment_cache_hits"] >= 1


class TestVisibleVersionInvariant:
    """The snapshot-anomaly diagnostics both chunked implementations now
    get from the scan layer's ``unique`` mode."""

    def test_fchunk_duplicate_chunk_version_raises(self, db):
        txn = db.begin()
        designator = db.lo.create(txn, "fchunk")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"x" * 100)
        txn.commit()
        oid = int(designator[3:])
        [chunk] = list(db.scan(chunk_class_name(oid)))
        with db.begin() as txn:
            db.insert(txn, chunk_class_name(oid), chunk.values)
        with db.lo.open(designator) as obj:
            with pytest.raises(LargeObjectError,
                               match="2 visible versions of chunk 0 "
                                     r"\(snapshot anomaly\)"):
                obj.read(10)

    def test_vsegment_duplicate_segment_version_raises(self, db):
        """Regression: duplicate visible versions of one ``locn`` used to
        be accepted silently, the later one overwriting the earlier one's
        bytes in ``_read_at``."""
        txn = db.begin()
        designator = db.lo.create(txn, "vsegment")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"y" * 100)
        txn.commit()
        oid = int(designator[3:])
        [segment] = list(db.scan(segment_class_name(oid)))
        with db.begin() as txn:
            db.insert(txn, segment_class_name(oid), segment.values)
        with db.lo.open(designator) as obj:
            with pytest.raises(LargeObjectError,
                               match="2 visible versions of segment 0 "
                                     r"\(snapshot anomaly\)"):
                obj.read(10)

    def test_size_row_missing_diagnostic(self, db):
        with pytest.raises(LargeObjectError, match="no size record"):
            metadata.size_row(db, 424242, db.snapshot())


class TestLatchTripwire:
    def test_armed_by_default_under_pytest(self, db):
        # conftest.py sets REPRO_DEBUG_LATCH=1, so the whole tier-1
        # suite (this fixture included) runs with the tripwire armed.
        assert db.debug_latch

    def test_raw_heap_fetch_trips(self, db):
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "T", (1,))
        relation = db.get_class("T")
        snapshot = db.snapshot()
        with pytest.raises(AssertionError, match="engine latch"):
            relation.fetch(tid, snapshot)
        with pytest.raises(AssertionError, match="engine latch"):
            relation.fetch_many([tid], snapshot)
        with db.latch:  # latched raw access stays legal
            assert relation.fetch(tid, snapshot).values == (1,)

    def test_raw_index_reads_trip(self, db):
        _fill(db)
        index = db.get_index("t_k")
        with pytest.raises(AssertionError, match="engine latch"):
            index.search((1,))
        # range_scan must trip at call time, not at first next(): the
        # generator body would otherwise run after the caller's latch
        # block already exited.
        with pytest.raises(AssertionError, match="engine latch"):
            index.range_scan()
        with db.latch:
            assert len(index.search((1,))) == 1

    def test_diagnostics_bypass_the_tripwire(self, db):
        _fill(db)
        index = db.get_index("t_k")
        assert index.entry_count() == 10
        index.check_invariants()

    def test_disarmed_database_allows_raw_reads(self):
        with Database(debug_latch=False) as db:
            db.create_class("T", [("v", "int4")])
            with db.begin() as txn:
                tid = db.insert(txn, "T", (1,))
            assert db.get_class("T").fetch(
                tid, db.snapshot()).values == (1,)

    def test_scan_layer_satisfies_the_tripwire(self, db):
        _fill(db)
        probe = IndexProbe(db, db.get_index("t_k"), db.get_class("T"),
                           (3,))
        assert len(probe.tuples(db.snapshot())) == 1

    def test_integrity_sweep_runs_clean_with_tripwire(self, db):
        _fill(db)
        txn = db.begin()
        designator = db.lo.create(txn, "vsegment")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"z" * 100)
        txn.commit()
        assert db.check_integrity() == []