"""CommitLog edge cases: torn tails, unknown xids, and xid reservation.

``pg_log`` is the only thing standing between a crash and an incorrect
visibility decision, so its corner cases get their own tests: a record cut
short by a crash mid-append must be dropped on replay, xids with no record
must read as aborted, and the high-water-mark batching must make xid reuse
impossible no matter how the process dies.
"""

import os

import pytest

from repro.errors import SimulatedCrash, TransactionError
from repro.sim.faults import FaultPlan, FaultRule
from repro.storage.constants import FIRST_XID, INVALID_XID
from repro.txn.xlog import _RECORD, _XID_BATCH, CommitLog, TxnStatus


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "pg_log")


class TestTornTailReplay:
    @pytest.mark.parametrize("cut", [1, 8, 12, _RECORD.size - 1])
    def test_torn_last_record_is_dropped(self, log_path, cut):
        log = CommitLog(log_path)
        x1 = log.allocate_xid()
        x2 = log.allocate_xid()
        log.set_committed(x1, 1.5)
        log.set_committed(x2, 2.5)
        log.close()
        # Tear the tail: the crash persisted only part of x2's record.
        os.truncate(log_path, os.path.getsize(log_path) - cut)

        reopened = CommitLog(log_path)
        assert reopened.status(x1) == TxnStatus.COMMITTED
        assert reopened.commit_time(x1) == 1.5
        # The torn record never counts: x2 is aborted, not half-committed.
        assert reopened.status(x2) == TxnStatus.ABORTED
        reopened.close()

    def test_torn_append_via_fault_plan(self, log_path):
        """The fault hook persists a prefix, crashes, and replay drops it."""
        log = CommitLog(log_path)
        xid = log.allocate_xid()
        plan = FaultPlan([FaultRule(op="append", pattern="pg_log",
                                    action="torn", keep_bytes=12)])
        log.set_fault_plan(plan)
        with pytest.raises(SimulatedCrash):
            log.set_committed(xid, 9.0)
        log.close()

        # The file really holds a partial record.
        assert os.path.getsize(log_path) % _RECORD.size == 12
        reopened = CommitLog(log_path)
        assert reopened.status(xid) == TxnStatus.ABORTED
        with pytest.raises(TransactionError):
            reopened.commit_time(xid)
        # The log still works: replay ignored the tail, appends continue.
        retry = reopened.allocate_xid()
        reopened.set_committed(retry, 10.0)
        reopened.close()
        final = CommitLog(log_path)
        assert final.status(retry) == TxnStatus.COMMITTED
        final.close()

    def test_crash_before_append_leaves_no_record(self, log_path):
        log = CommitLog(log_path)
        xid = log.allocate_xid()
        plan = FaultPlan([FaultRule(op="append", pattern="pg_log",
                                    action="crash")])
        log.set_fault_plan(plan)
        size_before = os.path.getsize(log_path)
        with pytest.raises(SimulatedCrash):
            log.set_committed(xid, 9.0)
        log.close()
        assert os.path.getsize(log_path) == size_before
        reopened = CommitLog(log_path)
        assert reopened.status(xid) == TxnStatus.ABORTED
        reopened.close()


class TestUnknownXids:
    def test_unknown_xid_is_aborted(self, log_path):
        log = CommitLog(log_path)
        assert log.status(999_999) == TxnStatus.ABORTED
        assert not log.is_committed(999_999)
        log.close()

    def test_invalid_xid_has_no_status(self):
        log = CommitLog()
        with pytest.raises(TransactionError):
            log.status(INVALID_XID)

    def test_commit_time_of_uncommitted_xid_raises(self):
        log = CommitLog()
        xid = log.allocate_xid()
        with pytest.raises(TransactionError):
            log.commit_time(xid)

    def test_status_transitions_are_final(self):
        log = CommitLog()
        xid = log.allocate_xid()
        log.set_committed(xid, 1.0)
        with pytest.raises(TransactionError):
            log.set_aborted(xid)
        with pytest.raises(TransactionError):
            log.set_committed(xid, 2.0)


class TestXidReservation:
    def test_hwm_batch_advances_next_xid_on_reopen(self, log_path):
        log = CommitLog(log_path)
        first = log.allocate_xid()
        assert first == FIRST_XID
        log.close()
        # The batch reservation hit the disk before the xid was used, so a
        # reopen skips the whole batch instead of re-handing-out FIRST_XID.
        reopened = CommitLog(log_path)
        assert reopened.next_xid == FIRST_XID + _XID_BATCH
        reopened.close()

    def test_xids_disjoint_across_crashy_incarnations(self, log_path):
        """Three incarnations, none shutting down cleanly, no xid reused."""
        seen = set()
        for _ in range(3):
            log = CommitLog(log_path)
            for _ in range(_XID_BATCH + 5):  # cross a reservation boundary
                xid = log.allocate_xid()
                assert xid not in seen
                seen.add(xid)
            log.close()  # no fates recorded: every xid dies in progress

    def test_hwm_records_are_not_transaction_statuses(self, log_path):
        log = CommitLog(log_path)
        log.allocate_xid()
        log.close()
        reopened = CommitLog(log_path)
        # The reserved-but-unused xids read as aborted, not as some bogus
        # decoded status from the HWM record.
        for xid in range(FIRST_XID, FIRST_XID + _XID_BATCH):
            assert reopened.status(xid) == TxnStatus.ABORTED
        assert reopened.in_progress_xids() == set()
        reopened.close()

    def test_in_memory_log_allocates_without_reservation(self):
        log = CommitLog()
        xids = [log.allocate_xid() for _ in range(5)]
        assert xids == list(range(FIRST_XID, FIRST_XID + 5))
        assert log.in_progress_xids() == set(xids)
