"""Failure injection: device errors at the worst possible moments.

A wrapper storage manager fails writes on command; the tests verify that
a device failure during commit or eviction never produces a state that
*looks* committed, and that the database remains usable (or honestly
broken) afterward.
"""

import pytest

from repro.db import Database
from repro.errors import StorageManagerError
from repro.sim import SimClock
from repro.smgr.memory import MemoryStorageManager


class FailingStorageManager(MemoryStorageManager):
    """Memory manager whose writes can be made to fail on demand."""

    name = "flaky"

    def __init__(self, clock: SimClock):
        super().__init__(clock)
        self.fail_after: int | None = None
        self.writes_seen = 0

    def write_block(self, fileid: str, blockno: int, data: bytes) -> None:
        self.writes_seen += 1
        if self.fail_after is not None \
                and self.writes_seen > self.fail_after:
            raise StorageManagerError(
                f"injected device failure on write #{self.writes_seen}")
        super().write_block(fileid, blockno, data)


@pytest.fixture
def db():
    database = Database()
    database.switch.register(
        "flaky", lambda: FailingStorageManager(database.clock))
    yield database
    database.close()


class TestWriteFailures:
    def test_failure_during_commit_aborts_loudly(self, db):
        db.create_class("T", [("v", "int4")], smgr="flaky")
        flaky = db.storage_manager("flaky")
        txn = db.begin()
        db.insert(txn, "T", (1,))
        flaky.fail_after = 0  # every further write fails
        with pytest.raises(StorageManagerError):
            txn.commit()
        # The failed commit resolved the transaction: aborted, locks
        # released, no commit record — the session is not left wedged.
        from repro.txn.xlog import TxnStatus
        assert db.clog.status(txn.xid) == TxnStatus.ABORTED
        assert not txn.is_active
        assert db.tm.active_count() == 0
        # A detached reader sees nothing from it.
        flaky.fail_after = None
        assert list(db.scan("T")) == []

    def test_recovery_after_device_heals(self, db):
        db.create_class("T", [("v", "int4")], smgr="flaky")
        flaky = db.storage_manager("flaky")
        txn = db.begin()
        db.insert(txn, "T", (1,))
        flaky.fail_after = 0
        with pytest.raises(StorageManagerError):
            txn.commit()  # aborts the transaction as it fails
        flaky.fail_after = None
        with db.begin() as retry:
            db.insert(retry, "T", (2,))
        assert [t.values for t in db.scan("T")] == [(2,)]

    def test_failure_during_lo_commit(self, db):
        flaky = db.storage_manager("flaky")
        txn = db.begin()
        designator = db.lo.create(txn, "fchunk", smgr="flaky")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(bytes(50_000))
        flaky.fail_after = flaky.writes_seen + 2  # die mid-force
        with pytest.raises(StorageManagerError):
            txn.commit()
        from repro.txn.xlog import TxnStatus
        assert db.clog.status(txn.xid) == TxnStatus.ABORTED
        assert not txn.is_active
        flaky.fail_after = None  # heal the device for teardown

    def test_failure_during_eviction_surfaces(self, db):
        """A mid-transaction eviction writeback that fails raises at the
        operation that triggered it — not silently."""
        small = Database(pool_size=8)
        small.switch.register(
            "flaky", lambda: FailingStorageManager(small.clock))
        try:
            small.create_class("T", [("pad", "text")], smgr="flaky")
            flaky = small.storage_manager("flaky")
            flaky.fail_after = 0
            txn = small.begin()
            with pytest.raises(StorageManagerError):
                for i in range(200):  # overflow the 8-page pool
                    small.insert(txn, "T", ("x" * 2000,))
        finally:
            flaky.fail_after = None
            small.close()

    def test_reads_unaffected_by_write_failures(self, db):
        db.create_class("T", [("v", "int4")], smgr="flaky")
        with db.begin() as txn:
            db.insert(txn, "T", (7,))
        flaky = db.storage_manager("flaky")
        flaky.fail_after = 0
        assert [t.values for t in db.scan("T")] == [(7,)]
        flaky.fail_after = None
