"""Unit tests for the simulated clock and device cost models."""

import pytest

from repro.sim import (
    CpuModel,
    SimClock,
    jukebox_device,
    magnetic_disk_device,
    nvram_device,
)
from repro.sim.devices import DevicePort


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().elapsed == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5, "io.read")
        clock.advance(0.5, "io.read")
        clock.advance(2.0, "cpu")
        assert clock.elapsed == pytest.approx(4.0)
        assert clock.elapsed_in("io.read") == pytest.approx(2.0)
        assert clock.elapsed_in("cpu") == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_now_is_strictly_monotone(self):
        clock = SimClock()
        stamps = [clock.now() for _ in range(100)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 100

    def test_now_reflects_advances(self):
        clock = SimClock()
        t1 = clock.now()
        clock.advance(10.0)
        assert clock.now() > t1 + 9.9

    def test_snapshot_delta(self):
        clock = SimClock()
        clock.advance(1.0, "io.read")
        snap = clock.snapshot()
        clock.advance(2.0, "io.read")
        clock.advance(3.0, "cpu")
        delta = snap.since(clock)
        assert delta.elapsed == pytest.approx(5.0)
        assert delta.by_category["io.read"] == pytest.approx(2.0)
        assert delta.by_category["cpu"] == pytest.approx(3.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.reset()
        assert clock.elapsed == 0.0
        assert clock.breakdown() == {}

    def test_elapsed_in_unknown_category_is_zero(self):
        assert SimClock().elapsed_in("nope") == 0.0


class TestDeviceModels:
    def test_disk_sequential_is_transfer_only(self):
        model = magnetic_disk_device()
        positioning, transfer = model.access_time(True, 8192, False)
        assert positioning == 0.0
        assert transfer == pytest.approx(8192 / model.transfer_bytes_per_s)

    def test_disk_random_pays_seek(self):
        model = magnetic_disk_device()
        positioning, _ = model.access_time(False, 8192, False)
        assert positioning == pytest.approx(
            model.avg_seek_s + model.rotational_s)

    def test_nvram_has_no_positioning_cost(self):
        model = nvram_device()
        positioning, _ = model.access_time(False, 8192, False)
        assert positioning == 0.0

    def test_jukebox_write_penalty(self):
        model = jukebox_device()
        _, read_t = model.access_time(True, 8192, False)
        _, write_t = model.access_time(True, 8192, True)
        assert write_t == pytest.approx(read_t * model.write_penalty)

    def test_jukebox_platter_switch(self):
        model = jukebox_device()
        positioning, _ = model.access_time(True, 8192, False,
                                           crossed_platter=True)
        assert positioning >= model.platter_switch_s


class TestDevicePort:
    def test_sequential_reads_skip_seeks(self):
        clock = SimClock()
        port = DevicePort(magnetic_disk_device(), clock)
        port.charge_read("f", 0, 8192)
        first = clock.elapsed
        port.charge_read("f", 8192, 8192)
        second = clock.elapsed - first
        assert second < first  # no second seek

    def test_random_reads_pay_seeks(self):
        clock = SimClock()
        port = DevicePort(magnetic_disk_device(), clock)
        port.charge_read("f", 0, 8192)
        port.charge_read("f", 10 * 8192, 8192)
        assert port.seeks == 2

    def test_file_switch_breaks_sequentiality(self):
        clock = SimClock()
        port = DevicePort(magnetic_disk_device(), clock)
        port.charge_read("a", 0, 8192)
        port.charge_read("b", 8192, 8192)
        assert port.seeks == 2

    def test_platter_switch_counted(self):
        clock = SimClock()
        model = jukebox_device()
        port = DevicePort(model, clock)
        port.charge_read("m", 0, 8192)
        port.charge_read("m", model.platter_bytes + 8192, 8192)
        assert port.platter_switches == 1
        assert clock.elapsed > model.platter_switch_s

    def test_stats_counters(self):
        clock = SimClock()
        port = DevicePort(magnetic_disk_device(), clock)
        port.charge_read("f", 0, 8192)
        port.charge_write("f", 8192, 8192)
        stats = port.stats()
        assert stats["reads"] == 1
        assert stats["writes"] == 1


class TestCpuModel:
    def test_seconds_for(self):
        cpu = CpuModel(mips=10.0)
        assert cpu.seconds_for(10e6) == pytest.approx(1.0)

    def test_charge(self):
        clock = SimClock()
        CpuModel(mips=1.0).charge(clock, 2e6)
        assert clock.elapsed_in("cpu") == pytest.approx(2.0)
