"""Unit tests for the buffer manager."""

import pytest

from repro.errors import BufferError_, ChecksumError
from repro.sim import SimClock
from repro.smgr import MemoryStorageManager
from repro.storage import BufferManager


@pytest.fixture
def smgr():
    return MemoryStorageManager(SimClock())


@pytest.fixture
def pool(smgr):
    return BufferManager(pool_size=4)


def new_file(smgr, name="t"):
    smgr.create(name)
    return name


class TestAllocate:
    def test_allocate_extends_logically(self, pool, smgr):
        fid = new_file(smgr)
        buf = pool.allocate(smgr, fid)
        assert buf.blockno == 0
        assert pool.nblocks(smgr, fid) == 1
        assert smgr.nblocks(fid) == 0  # not yet on the device
        pool.unpin(buf, dirty=True)

    def test_flush_materializes_file(self, pool, smgr):
        fid = new_file(smgr)
        buf = pool.allocate(smgr, fid)
        buf.page.add_item(b"hello")
        pool.unpin(buf, dirty=True)
        written = pool.flush_file(smgr, fid)
        assert written == 1
        assert smgr.nblocks(fid) == 1

    def test_allocation_counter(self, pool, smgr):
        fid = new_file(smgr)
        pool.unpin(pool.allocate(smgr, fid), dirty=True)
        assert pool.stats.allocations == 1


class TestPinUnpin:
    def test_roundtrip_through_device(self, pool, smgr):
        fid = new_file(smgr)
        buf = pool.allocate(smgr, fid)
        slot = buf.page.add_item(b"persisted")
        pool.unpin(buf, dirty=True)
        pool.flush_file(smgr, fid)
        pool.drop_file(smgr, fid)  # force a device read
        with pool.page(smgr, fid, 0) as page:
            assert page.get_item(slot) == b"persisted"

    def test_hit_counted(self, pool, smgr):
        fid = new_file(smgr)
        pool.unpin(pool.allocate(smgr, fid), dirty=True)
        buf = pool.pin(smgr, fid, 0)
        pool.unpin(buf)
        assert pool.stats.hits == 1

    def test_unpin_unpinned_rejected(self, pool, smgr):
        fid = new_file(smgr)
        buf = pool.allocate(smgr, fid)
        pool.unpin(buf, dirty=True)
        with pytest.raises(BufferError_):
            pool.unpin(buf)

    def test_page_context_manager_marks_dirty(self, pool, smgr):
        fid = new_file(smgr)
        buf = pool.allocate(smgr, fid)
        pool.unpin(buf, dirty=True)
        pool.flush_file(smgr, fid)
        with pool.page(smgr, fid, 0, write=True) as page:
            page.add_item(b"mutation")
        assert pool.flush_file(smgr, fid) == 1


class TestEviction:
    def test_eviction_writes_back_dirty(self, smgr):
        pool = BufferManager(pool_size=2)
        fid = new_file(smgr)
        for i in range(4):
            buf = pool.allocate(smgr, fid)
            buf.page.add_item(bytes([i + 1]) * 10)
            pool.unpin(buf, dirty=True)
        # Two of the four pages must have been evicted and written.
        assert pool.stats.evictions >= 2
        assert smgr.nblocks(fid) >= 2

    def test_pool_exhaustion_with_pins(self, smgr):
        pool = BufferManager(pool_size=2)
        fid = new_file(smgr)
        held = [pool.allocate(smgr, fid) for _ in range(2)]
        with pytest.raises(BufferError_):
            pool.allocate(smgr, fid)
        for buf in held:
            pool.unpin(buf, dirty=True)

    def test_evicted_page_readable_again(self, smgr):
        pool = BufferManager(pool_size=2)
        fid = new_file(smgr)
        contents = {}
        for i in range(6):
            buf = pool.allocate(smgr, fid)
            slot = buf.page.add_item(bytes([i + 1]) * 20)
            contents[i] = (slot, bytes([i + 1]) * 20)
            pool.unpin(buf, dirty=True)
        pool.flush_all()
        for blockno, (slot, data) in contents.items():
            with pool.page(smgr, fid, blockno) as page:
                assert page.get_item(slot) == data

    def test_out_of_order_eviction_fills_holes(self, smgr):
        """Flushing block 3 before 0-2 must zero-fill, not corrupt."""
        pool = BufferManager(pool_size=8)
        fid = new_file(smgr)
        bufs = [pool.allocate(smgr, fid) for _ in range(4)]
        for i, buf in enumerate(bufs):
            buf.page.add_item(bytes([i + 1]) * 8)
            pool.unpin(buf, dirty=True)
        # Directly force writeback of the last block only.
        pool._writeback(pool.pin(smgr, fid, 3))
        assert smgr.nblocks(fid) == 4


class TestFlush:
    def test_flush_all(self, pool, smgr):
        a, b = new_file(smgr, "a"), new_file(smgr, "b")
        pool.unpin(pool.allocate(smgr, a), dirty=True)
        pool.unpin(pool.allocate(smgr, b), dirty=True)
        assert pool.flush_all() == 2

    def test_flush_clean_pages_is_noop(self, pool, smgr):
        fid = new_file(smgr)
        pool.unpin(pool.allocate(smgr, fid), dirty=True)
        pool.flush_file(smgr, fid)
        assert pool.flush_file(smgr, fid) == 0

    def test_drop_file_discards_dirty(self, pool, smgr):
        fid = new_file(smgr)
        buf = pool.allocate(smgr, fid)
        buf.page.add_item(b"gone")
        pool.unpin(buf, dirty=True)
        pool.drop_file(smgr, fid)
        assert smgr.nblocks(fid) == 0


def materialized_file(pool, smgr, nblocks, name="pf"):
    """A file with *nblocks* real device blocks and a cold pool."""
    fid = new_file(smgr, name)
    for i in range(nblocks):
        buf = pool.allocate(smgr, fid)
        buf.page.add_item(bytes([i + 1]) * 16)
        pool.unpin(buf, dirty=True)
    pool.flush_file(smgr, fid)
    pool.drop_file(smgr, fid)
    return fid


class TestPrefetch:
    def test_prefetch_reads_blocks_unpinned(self, smgr):
        pool = BufferManager(pool_size=8)
        fid = materialized_file(pool, smgr, 4)
        assert pool.prefetch(smgr, fid, 0, 4) == 4
        assert pool.stats.prefetched == 4
        assert pool.pinned_count() == 0

    def test_demand_pin_counts_prefetch_hit_once(self, smgr):
        pool = BufferManager(pool_size=8)
        fid = materialized_file(pool, smgr, 2)
        pool.prefetch(smgr, fid, 0, 2)
        buf = pool.pin(smgr, fid, 0)
        pool.unpin(buf)
        assert pool.stats.prefetch_hits == 1
        # The flag is consumed: a re-pin is a plain hit, not a second
        # prefetch hit.
        buf = pool.pin(smgr, fid, 0)
        pool.unpin(buf)
        assert pool.stats.prefetch_hits == 1
        assert pool.stats.hits == 2

    def test_prefetch_clamped_to_file_length(self, smgr):
        pool = BufferManager(pool_size=8)
        fid = materialized_file(pool, smgr, 2)
        assert pool.prefetch(smgr, fid, 0, 10) == 2
        assert pool.prefetch(smgr, fid, 5, 10) == 0

    def test_prefetch_skips_resident_blocks(self, smgr):
        pool = BufferManager(pool_size=8)
        fid = materialized_file(pool, smgr, 3)
        pool.unpin(pool.pin(smgr, fid, 1))
        assert pool.prefetch(smgr, fid, 0, 3) == 2
        # The demand-read block keeps its non-prefetched identity.
        pool.unpin(pool.pin(smgr, fid, 1))
        assert pool.stats.prefetch_hits == 0

    def test_prefetched_blocks_are_evictable(self, smgr):
        pool = BufferManager(pool_size=2)
        fid = materialized_file(pool, smgr, 4)
        assert pool.prefetch(smgr, fid, 0, 4) == 4
        # Low usage means the sweep can turn them over within one pool.
        pool.unpin(pool.pin(smgr, fid, 3))


class TestDecodedCache:
    def test_put_get_roundtrip(self, pool, smgr):
        fid = new_file(smgr)
        pool.put_decoded(smgr, fid, 0, "node-zero")
        assert pool.get_decoded(smgr, fid, 0) == "node-zero"
        assert pool.stats.node_cache_hits == 1

    def test_miss_counted(self, pool, smgr):
        fid = new_file(smgr)
        assert pool.get_decoded(smgr, fid, 7) is None
        assert pool.stats.node_cache_misses == 1

    def test_lru_bounded(self, smgr):
        pool = BufferManager(pool_size=4)
        fid = new_file(smgr)
        for blockno in range(pool._decoded_limit + 5):
            pool.put_decoded(smgr, fid, blockno, blockno)
        assert len(pool._decoded) == pool._decoded_limit
        assert pool.get_decoded(smgr, fid, 0) is None  # oldest evicted

    def test_drop_single_block(self, pool, smgr):
        fid = new_file(smgr)
        pool.put_decoded(smgr, fid, 0, "a")
        pool.put_decoded(smgr, fid, 1, "b")
        pool.drop_decoded(smgr, fid, 0)
        assert pool.get_decoded(smgr, fid, 0) is None
        assert pool.get_decoded(smgr, fid, 1) == "b"

    def test_drop_file_clears_decoded(self, pool, smgr):
        keep, gone = new_file(smgr, "keep"), new_file(smgr, "gone")
        pool.put_decoded(smgr, keep, 0, "k")
        pool.put_decoded(smgr, gone, 0, "g")
        pool.drop_file(smgr, gone)
        assert pool.get_decoded(smgr, gone, 0) is None
        assert pool.get_decoded(smgr, keep, 0) == "k"

    def test_invalidate_all_clears_decoded(self, pool, smgr):
        fid = new_file(smgr)
        pool.put_decoded(smgr, fid, 0, "x")
        pool.invalidate_all()
        assert pool.get_decoded(smgr, fid, 0) is None


class TestChecksums:
    def test_corrupt_block_detected(self, pool, smgr):
        fid = new_file(smgr)
        buf = pool.allocate(smgr, fid)
        buf.page.lsn = 1  # nonzero lsn enables verification
        buf.page.add_item(b"data")
        pool.unpin(buf, dirty=True)
        pool.flush_file(smgr, fid)
        pool.drop_file(smgr, fid)
        # Corrupt the stored block behind the pool's back.
        raw = smgr.read_block(fid, 0)
        raw[4000] ^= 0xFF
        smgr._files[fid][0] = bytearray(raw)
        with pytest.raises(ChecksumError):
            pool.pin(smgr, fid, 0)

    def test_pinned_count_is_zero_at_rest(self, pool, smgr):
        fid = new_file(smgr)
        pool.unpin(pool.allocate(smgr, fid), dirty=True)
        assert pool.pinned_count() == 0
