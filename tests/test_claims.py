"""End-to-end check of the paper's §9 prose claims.

Runs the full figure pipeline once at 1/10 scale (a few seconds of wall
clock) and asserts that every encoded claim holds.  The full-scale run is
recorded in EXPERIMENTS.md.
"""

import pytest

from repro.bench.claims import evaluate_claims, render_claims
from repro.bench.figures import BenchConfig


@pytest.fixture(scope="module")
def claims():
    return evaluate_claims(BenchConfig(scale=0.1))


def test_every_claim_holds(claims):
    failing = [claim for claim in claims if not claim.holds]
    assert not failing, "\n" + render_claims(failing)


def test_claim_ids_are_unique(claims):
    ids = [claim.claim_id for claim in claims]
    assert len(set(ids)) == len(ids)


def test_claims_cover_all_three_figures(claims):
    text = render_claims(claims)
    assert "fchunk30-saves-nothing" in text      # Figure 1
    assert "fchunk-random" in text               # Figure 2
    assert "worm-" in text                       # Figure 3
