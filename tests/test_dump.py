"""Tests for logical dump/restore and the `.all` projection."""

import pytest

from repro.db import Database
from repro.tools import dump_database, restore_database


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


def build_source(db):
    db.execute('create large type image '
               '(storage = v-segment, compression = "zero-rle")')
    db.execute('create EMP (name = text, empno = int4, picture = image)')
    db.execute('define index emp_no on EMP (empno)')
    db.execute('create PLAIN (label = text, weight = float8, '
               'blob = bytea)')
    txn = db.begin()
    for i, name in enumerate(("Joe", "Mike")):
        designator = db.lo.create_for_type(txn, "image")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(name.encode() * 1000 + bytes(4000))
        db.execute(f'append EMP (name = "{name}", empno = {i}, '
                   f'picture = "{designator}")', txn)
    db.insert(txn, "PLAIN", ("thing", 2.5, b"\x00\x01\x02"))
    txn.commit()


class TestDumpRestore:
    def test_roundtrip(self, db, tmp_path):
        build_source(db)
        summary = dump_database(db, str(tmp_path / "dump"))
        assert summary == {"classes": 2, "tuples": 3, "objects": 2}

        fresh = Database()
        try:
            restored = restore_database(fresh, str(tmp_path / "dump"))
            assert restored["tuples"] == 3
            rows = sorted(
                (n, e) for n, e, _p in
                (t.values for t in fresh.scan("EMP")))
            assert rows == [("Joe", 0), ("Mike", 1)]
            # Large objects were re-created with fresh designators and
            # identical contents.
            for tup in fresh.scan("EMP"):
                name, _empno, designator = tup.values
                with fresh.lo.open(designator) as obj:
                    assert obj.read(4) == name.encode()[:4] \
                        or obj.read(0) == b""
                    obj.seek(0)
                    data = obj.read()
                assert data == name.encode() * 1000 + bytes(4000)
                assert fresh.lo.implementation(designator) == "vsegment"
            # Bytea survived the JSON encoding.
            plain = next(fresh.scan("PLAIN"))
            assert plain.values == ("thing", 2.5, b"\x00\x01\x02")
            # Indexes were rebuilt.
            assert len(fresh.index_lookup("emp_no", 1)) == 1
            assert fresh.check_integrity() == []
        finally:
            fresh.close()

    def test_point_in_time_dump(self, db, tmp_path):
        db.execute('create T (v = int4)')
        db.execute('append T (v = 1)')
        stamp = db.clock.now()
        db.execute('replace T (v = 2)')
        dump_database(db, str(tmp_path / "old"), as_of=stamp)
        fresh = Database()
        try:
            restore_database(fresh, str(tmp_path / "old"))
            assert [t.values for t in fresh.scan("T")] == [(1,)]
        finally:
            fresh.close()

    def test_internal_classes_excluded(self, db, tmp_path):
        build_source(db)
        import json
        dump_database(db, str(tmp_path / "dump"))
        with open(tmp_path / "dump" / "schema.json") as fh:
            schema = json.load(fh)
        names = {c["name"] for c in schema["classes"]}
        assert names == {"EMP", "PLAIN"}  # no lo_* / pg_* classes


class TestAllProjection:
    def test_dot_all_expands(self, db):
        db.execute('create EMP (name = text, age = int4)')
        db.execute('append EMP (name = "Joe", age = 30)')
        result = db.execute('retrieve (EMP.all)')
        assert result.columns == ["name", "age"]
        assert result.rows == [("Joe", 30)]

    def test_all_mixes_with_other_targets(self, db):
        db.execute('create EMP (name = text, age = int4)')
        db.execute('append EMP (name = "Joe", age = 30)')
        result = db.execute(
            'retrieve (doubled = EMP.age * 2, EMP.all)')
        assert result.columns == ["doubled", "name", "age"]
        assert result.rows == [(60, "Joe", 30)]

    def test_all_with_qualification(self, db):
        db.execute('create EMP (name = text, age = int4)')
        db.execute('append EMP (name = "Joe", age = 30)')
        db.execute('append EMP (name = "Sam", age = 50)')
        result = db.execute('retrieve (EMP.all) where EMP.age > 40')
        assert result.rows == [("Sam", 50)]

    def test_class_with_attribute_named_all(self, db):
        """A real attribute called 'all' wins over the expansion."""
        db.execute('create W (v = int4)')
        # 'all' expansion only fires for the magic attribute name when it
        # is not a real column; with a real column it must project it.
        db.execute('destroy W')
        db.execute('create W (all = int4)')
        db.execute('append W (all = 7)')
        result = db.execute('retrieve (W.all)')
        # Expansion still fires (POSTQUEL semantics); the single column
        # is the 'all' attribute itself.
        assert result.rows == [(7,)]
