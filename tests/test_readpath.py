"""The streaming read path: batched range scans, caches, prefetch.

Covers the read-side machinery end to end: f-chunk reads that span chunk
boundaries and sparse holes, historical (``as_of``) opens through the
batched visibility fetch, decoded-node-cache coherence across replace and
vacuum, and the headline property — a sequential large-object read costs
O(chunks / leaf-fanout) B-tree node decodes, not one descent per chunk.
"""

import pytest

from repro.db import Database
from repro.storage.constants import CHUNK_PAYLOAD


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


def make_fchunk(db, data=b""):
    with db.begin() as txn:
        designator = db.lo.create(txn, "fchunk")
        if data:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(data)
    return designator


class TestBoundarySpanningReads:
    def test_read_across_one_chunk_boundary(self, db):
        data = bytes(range(256)) * 70  # > 2 chunks
        designator = make_fchunk(db, data)
        with db.lo.open(designator) as obj:
            obj.seek(CHUNK_PAYLOAD - 100)
            assert obj.read(200) == data[CHUNK_PAYLOAD - 100:
                                         CHUNK_PAYLOAD + 100]

    def test_read_spanning_many_chunks(self, db):
        data = b"\xab" * (CHUNK_PAYLOAD * 5 + 123)
        designator = make_fchunk(db, data)
        with db.lo.open(designator) as obj:
            obj.seek(37)
            assert obj.read(CHUNK_PAYLOAD * 4) == data[37:37 + CHUNK_PAYLOAD * 4]

    def test_unaligned_stream_reassembles_exactly(self, db):
        data = bytes(i % 251 for i in range(CHUNK_PAYLOAD * 3 + 17))
        designator = make_fchunk(db, data)
        with db.lo.open(designator) as obj:
            got = b""
            while True:
                piece = obj.read(977)  # prime-sized, never chunk-aligned
                if not piece:
                    break
                got += piece
        assert got == data

    def test_batched_read_mixes_buffered_and_stored_chunks(self, db):
        """A read window partly in the write buffer, partly on disk."""
        designator = make_fchunk(db, b"x" * (CHUNK_PAYLOAD * 2))
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.seek(CHUNK_PAYLOAD)
                obj.write(b"y" * 10)
                obj.seek(0)
                got = obj.read(CHUNK_PAYLOAD + 20)
        assert got == b"x" * CHUNK_PAYLOAD + b"y" * 10 + b"x" * 10


class TestSparseHoles:
    def test_hole_reads_as_zeros(self, db):
        designator = make_fchunk(db)
        hole_end = CHUNK_PAYLOAD * 4
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"head")
                obj.seek(hole_end)
                obj.write(b"tail")
        with db.lo.open(designator) as obj:
            data = obj.read()
        assert data[:4] == b"head"
        assert data[4:hole_end] == bytes(hole_end - 4)
        assert data[hole_end:] == b"tail"

    def test_read_entirely_inside_hole(self, db):
        designator = make_fchunk(db)
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.seek(CHUNK_PAYLOAD * 6)
                obj.write(b"end")
        with db.lo.open(designator) as obj:
            obj.seek(CHUNK_PAYLOAD * 2 + 5)
            assert obj.read(CHUNK_PAYLOAD) == bytes(CHUNK_PAYLOAD)


class TestHistoricalReads:
    def test_as_of_sees_old_chunks_via_batched_fetch(self, db):
        data_v1 = b"a" * (CHUNK_PAYLOAD * 3)
        designator = make_fchunk(db, data_v1)
        t1 = db.clock.now()
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.seek(CHUNK_PAYLOAD)  # rewrite the middle chunk only
                obj.write(b"b" * CHUNK_PAYLOAD)
        with db.lo.open(designator, as_of=t1) as obj:
            assert obj.read() == data_v1
        with db.lo.open(designator) as obj:
            current = obj.read()
        assert current[CHUNK_PAYLOAD:CHUNK_PAYLOAD * 2] == b"b" * CHUNK_PAYLOAD

    def test_as_of_streaming_read_is_consistent(self, db):
        designator = make_fchunk(db, bytes(3) * CHUNK_PAYLOAD)
        stamps = []
        for generation in range(1, 4):
            with db.begin() as txn:
                with db.lo.open(designator, txn, "rw") as obj:
                    obj.write(bytes([generation]) * (CHUNK_PAYLOAD * 3))
            stamps.append((generation, db.clock.now()))
        for generation, stamp in stamps:
            with db.lo.open(designator, as_of=stamp) as obj:
                got = b""
                while True:
                    piece = obj.read(4096)
                    if not piece:
                        break
                    got += piece
            assert got == bytes([generation]) * (CHUNK_PAYLOAD * 3)


class TestNodeCacheCoherence:
    """The decoded-node cache must track every index write path."""

    def _indexed_class(self, db, rows=400):
        db.execute("create NUM (n = int4)")
        db.execute("define index NUMIDX on NUM (n)")
        with db.begin() as txn:
            for i in range(rows):
                db.insert(txn, "NUM", (i,))
        return rows

    def test_cache_coherent_after_replace(self, db):
        self._indexed_class(db)
        # Warm the decoded cache with a range scan.
        assert db.execute(
            "retrieve (NUM.n) where NUM.n >= 0").count == 400
        with db.begin() as txn:
            tup = next(t for t in db.scan("NUM", txn)
                       if t.values[0] == 100)
            db.replace(txn, "NUM", tup.tid, (100_000,))
        result = db.execute("retrieve (NUM.n) where NUM.n >= 99999")
        assert result.rows == [(100_000,)]

    def test_cache_coherent_after_vacuum(self, db):
        self._indexed_class(db)
        with db.begin() as txn:
            for tup in list(db.scan("NUM", txn)):
                if tup.values[0] < 200:
                    db.delete(txn, "NUM", tup.tid)
        assert db.execute("retrieve (NUM.n) where NUM.n >= 0").count == 200
        db.vacuum()  # prunes index entries → B-tree deletes → node writes
        result = db.execute("retrieve (NUM.n) where NUM.n <= 250")
        assert sorted(r[0] for r in result.rows) == list(range(200, 251))

    def test_lo_read_correct_after_vacuum(self, db):
        designator = make_fchunk(db, b"v1" * CHUNK_PAYLOAD)
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"v2" * CHUNK_PAYLOAD)
        db.vacuum(horizon=db.clock.now())
        with db.lo.open(designator) as obj:
            assert obj.read(8) == b"v2v2v2v2"


class TestSequentialScaling:
    """Acceptance: an 8 MB sequential read does O(chunks/fanout) node reads."""

    def test_8mb_sequential_read_node_cost(self, db):
        size = 8 * 1024 * 1024
        payload = b"\x5a" * size
        designator = make_fchunk(db, payload)
        nchunks = size // CHUNK_PAYLOAD + 1

        db.bufmgr.invalidate_all()  # cold pool and cold node cache
        before = db.bufmgr.stats.node_cache_misses
        with db.lo.open(designator) as obj:
            total = 0
            while True:
                data = obj.read(65536)
                if not data:
                    break
                total += len(data)
        node_reads = db.bufmgr.stats.node_cache_misses - before

        assert total == size
        # Leaf fanout is ~300 entries/node; a streaming pass should touch
        # each leaf about once (plus one descent per read call), far below
        # one full descent per chunk (which would be >= nchunks * height).
        assert node_reads < nchunks / 4, (
            f"{node_reads} node reads for {nchunks} chunks")

    def test_sequential_read_uses_prefetch(self, db):
        designator = make_fchunk(db, b"\x11" * (512 * 1024))
        db.checkpoint()
        db.bufmgr.invalidate_all()
        before_hits = db.bufmgr.stats.prefetch_hits
        with db.lo.open(designator) as obj:
            while obj.read(65536):
                pass
        assert db.bufmgr.stats.prefetch_hits > before_hits
