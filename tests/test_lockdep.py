"""The lockdep runtime validator (repro.txn.lockdep).

The suite runs with ``REPRO_LOCKDEP=1`` (tests/conftest.py), so every
instrumented acquisition in every other test already flows through the
validator; these tests exercise the validator *itself* — the declared
hierarchy, deliberate inversions raising with both stacks, and the
observed-edge graph surfaced through ``db.statistics()["lockdep"]``.

Deliberate violations record their (bad) edge before raising, so each
such test resets the global graph afterwards — otherwise a later test
asserting ``check_edges(...) == []`` would trip over the seeded edge.
"""

import threading

import pytest

from repro.db import Database
from repro.errors import LockOrderError
from repro.txn.lockdep import (
    HIERARCHY,
    INV_FAMILY,
    VALIDATOR,
    LockdepMutex,
    check_edges,
    classify_resource,
    declared_allows,
)
from repro.txn.locks import LockManager, LockMode
from repro.txn.rangelock import RangeResource


@pytest.fixture
def clean_graph():
    """Reset the observed-edge graph before and after the test."""
    VALIDATOR.reset()
    yield
    VALIDATOR.reset()


class TestHierarchyTable:
    def test_suite_runs_armed(self):
        # conftest.py arms the validator for the whole suite; the
        # acceptance criterion is that everything passes this way.
        assert VALIDATOR.armed

    def test_every_class_has_unique_rank_within_domain(self):
        scoped = [c.rank for c in HIERARCHY.values()
                  if c.domain == "scoped"]
        heavy = [c.rank for c in HIERARCHY.values() if c.domain == "heavy"]
        assert len(scoped) == len(set(scoped))
        assert len(heavy) == len(set(heavy))

    def test_inv_family_is_rank_ordered(self):
        ranks = [HIERARCHY[name].rank for name in INV_FAMILY]
        assert ranks == sorted(ranks)

    def test_classify_resource(self):
        assert classify_resource(("relation", "T")) == "lock:relation"
        assert classify_resource(("inv_tree", 7)) == "lock:inv_tree"
        assert classify_resource(("losize", 3)) == "lock:losize"
        assert classify_resource(("mystery", 1)) == "lock:other"
        assert classify_resource(42) == "lock:other"
        rng = RangeResource("largeobject", 5, 0, 100)
        assert classify_resource(rng) == "lock:largeobject"

    def test_declared_allows(self):
        assert declared_allows("latch", "mutex:buffer")      # 40 -> 65
        assert not declared_allows("mutex:buffer", "latch")  # 65 -> 40
        assert declared_allows("mutex:txn", "mutex:txn")          # re-entrant
        assert not declared_allows("mutex:txn", "lock:relation")  # heavy under
        assert declared_allows("lock:relation", "mutex:txn")      # heavy first
        assert declared_allows("lock:inv_stat", "lock:inv_tree")  # heavy edges
        assert not declared_allows("nonsense", "mutex:txn")

    def test_check_edges_flags_offenders(self):
        edges = {
            "latch -> mutex:buffer": 10,
            "mutex:clock -> mutex:buffer": 1,   # 90 -> 65: inverted
            "mutex:txn -> lock:relation": 2,    # heavy under mutex
        }
        assert check_edges(edges) == [
            "mutex:clock -> mutex:buffer",
            "mutex:txn -> lock:relation",
        ]
        assert check_edges({"latch -> mutex:buffer": 1}) == []

    def test_unknown_class_rejected_at_construction(self):
        with pytest.raises(ValueError):
            LockdepMutex("mutex:not_in_table")
        with pytest.raises(ValueError):
            LockdepMutex("lock:relation")  # heavy classes aren't mutexes


class TestScopedInversion:
    def test_inversion_raises_with_both_stacks(self, clean_graph):
        outer = LockdepMutex("mutex:buffer")   # rank 65
        inner = LockdepMutex("mutex:txn")      # rank 45: must come first
        with outer:
            with pytest.raises(LockOrderError) as exc:
                inner.acquire()
        message = str(exc.value)
        assert "mutex:txn" in message and "mutex:buffer" in message
        assert "was acquired at" in message       # holder's stack
        assert "is being acquired at" in message  # acquirer's stack
        # The raise happened *before* blocking: inner is untouched and
        # still acquirable in the correct order.
        with inner:
            with outer:
                pass

    def test_inversion_raises_in_worker_thread(self, clean_graph):
        first = LockdepMutex("mutex:clock")    # rank 90 (innermost)
        second = LockdepMutex("mutex:smgr", reentrant=True)  # rank 70
        caught = []

        def worker():
            with first:
                try:
                    with second:
                        pass
                except LockOrderError as exc:
                    caught.append(exc)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert len(caught) == 1
        assert "mutex:clock" in str(caught[0])

    def test_reentrant_same_instance_allowed(self, clean_graph):
        mutex = LockdepMutex("mutex:smgr", reentrant=True)
        with mutex:
            with mutex:
                assert "mutex:smgr" in VALIDATOR.scoped_held()
        assert "mutex:smgr" not in VALIDATOR.scoped_held()

    def test_correct_order_records_edges(self, clean_graph):
        outer = LockdepMutex("mutex:txn")
        inner = LockdepMutex("mutex:buffer")
        with outer:
            with inner:
                pass
        assert VALIDATOR.edges().get("mutex:txn -> mutex:buffer", 0) >= 1
        assert check_edges(VALIDATOR.edges()) == []


class TestBlockingUnderMutex:
    def test_heavy_acquire_under_mutex_raises(self, clean_graph):
        locks = LockManager()
        mutex = LockdepMutex("mutex:txn")
        with mutex:
            with pytest.raises(LockOrderError) as exc:
                locks.acquire(1, ("relation", "T"), LockMode.SHARED)
        message = str(exc.value)
        assert "blocking-under-mutex" in message
        assert "lock:relation" in message and "mutex:txn" in message
        assert "was acquired at" in message
        # Nothing was granted: the same request succeeds outside.
        locks.acquire(1, ("relation", "T"), LockMode.SHARED)
        locks.release_all(1)

    def test_latched_heavy_wait_raises(self, clean_graph):
        """The end-to-end shape the validator exists for: a thread
        holding the engine latch must not park on a heavy lock."""
        db = Database(charge_cpu=False)
        try:
            db.create_class("T", [("n", "int4")])
            with db.begin() as txn:
                db.insert(txn, "T", (1,))
            txn = db.begin()
            with pytest.raises(LockOrderError):
                with db.latch:
                    db.locks.acquire(txn.xid, ("relation", "T"),
                                     LockMode.EXCLUSIVE)
            txn.abort()
        finally:
            db.close()


class TestOperationScopes:
    def test_protocol_order_enforced_within_scope(self, clean_graph):
        locks = LockManager()
        with VALIDATOR.operation("seeded-attempt"):
            locks.acquire(7, ("inv_tree", 1), LockMode.EXCLUSIVE)
            with pytest.raises(LockOrderError) as exc:
                locks.acquire(7, ("inv_entry", 2), LockMode.EXCLUSIVE)
        message = str(exc.value)
        assert "seeded-attempt" in message
        assert "lock:inv_entry" in message and "lock:inv_tree" in message
        locks.release_all(7)

    def test_order_free_across_scopes(self, clean_graph):
        # Strict 2PL: separate attempts may touch the family in any
        # order (the retry loop in _locked_parent relies on this).
        locks = LockManager()
        with VALIDATOR.operation("first"):
            locks.acquire(8, ("inv_stat", 1), LockMode.SHARED)
        with VALIDATOR.operation("second"):
            locks.acquire(8, ("inv_entry", 2), LockMode.EXCLUSIVE)
        locks.release_all(8)

    def test_no_scope_no_protocol_check(self, clean_graph):
        locks = LockManager()
        locks.acquire(9, ("inv_stat", 1), LockMode.SHARED)
        locks.acquire(9, ("inv_entry", 2), LockMode.EXCLUSIVE)
        locks.release_all(9)


class TestObservedGraph:
    def test_statistics_payload_shape(self, clean_graph):
        db = Database()
        try:
            stats = db.statistics()["lockdep"]
            assert set(stats) == {"armed", "edges", "violations"}
            assert stats["armed"] is True
            assert stats["violations"] == 0
        finally:
            db.close()

    def test_threaded_workload_graph_matches_declared_order(
            self, clean_graph):
        """The acceptance gate: hammer a real Database from several
        threads and assert every observed edge is in the declared
        hierarchy (the runtime graph is a subgraph of the docs)."""
        db = Database(charge_cpu=False)
        errors = []

        def writer(n):
            try:
                for i in range(20):
                    with db.begin() as txn:
                        db.insert(txn, "T", (n * 100 + i,))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        def filer(n):
            try:
                fs = db.inversion
                with db.begin() as txn:
                    fs.mkdir(txn, f"/w{n}")
                for i in range(5):
                    with db.begin() as txn:
                        fs.create(txn, f"/w{n}/f{i}")
                        fs.write_file(txn, f"/w{n}/f{i}", b"x" * 64)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        try:
            db.create_class("T", [("n", "int4")])
            threads = ([threading.Thread(target=writer, args=(n,),
                                         daemon=True) for n in range(3)]
                       + [threading.Thread(target=filer, args=(n,),
                                           daemon=True) for n in range(2)])
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not any(t.is_alive() for t in threads)
            assert errors == []

            stats = db.statistics()["lockdep"]
            assert stats["violations"] == 0
            assert check_edges(stats["edges"]) == []
            # The workload must actually have exercised the stack:
            # latch-then-mutex is the engine's bread and butter.
            observed = stats["edges"]
            assert any(key.startswith("latch -> ")
                       for key in observed), observed
        finally:
            db.close()
