"""Wall-clock fast paths must be invisible to semantics.

A ``Database(charge_cpu=False)`` engages the model-fidelity-gated
optimizations (f-chunk known-TID map, epoch-keyed size caches, the
v-segment segment-map memo, read-only entry memos — see
docs/performance.md).  These tests drive the large-object surface in
exactly that mode and check the answers stay byte-for-byte what the
charged (figure) configuration produces: stale memos would show up here
as wrong bytes, not as slow runs.
"""

import pytest

from repro.db import Database


@pytest.fixture
def db():
    database = Database(pool_size=64, charge_cpu=False)
    yield database
    database.close()


IMPLS = ["fchunk", "vsegment"]


def make_object(db, impl, payload=b""):
    with db.begin() as txn:
        designator = db.lo.create(txn, impl, compression="none")
        if payload:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(payload)
    return designator


@pytest.mark.parametrize("impl", IMPLS)
class TestFastModeSemantics:
    def test_fast_gate_is_on(self, db, impl):
        assert db.bufmgr.cpu is None
        designator = make_object(db, impl, b"x" * 100)
        with db.lo.open(designator) as obj:
            assert obj._fast is True

    def test_sequential_write_read(self, db, impl):
        frames = [bytes([i % 251]) * 4096 for i in range(40)]
        designator = make_object(db, impl, b"".join(frames))
        with db.lo.open(designator) as obj:
            for frame in frames:
                assert obj.read(4096) == frame
            assert obj.read(4096) == b""

    def test_open_descriptor_sees_commits(self, db, impl):
        """Epoch-keyed memos must be invalidated by a commit that lands
        while a read-only descriptor stays open.

        (The reader deliberately never re-reads the bytes it read before
        the commit: the descriptor-level decompressed-chunk LRU has
        always been commit-oblivious by design — close and reopen to
        drop it.  The size memo and TID/segment maps added for fast mode
        are what must pick up the new state here.)"""
        designator = make_object(db, impl, b"A" * 20_000)
        reader = db.lo.open(designator)
        assert reader.read(100) == b"A" * 100  # memos now warm
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as writer:
                writer.seek(16_000)
                writer.write(b"C" * 9_000)
        assert reader.size() == 25_000
        reader.seek(16_000)
        assert reader.read(9_000) == b"C" * 9_000
        reader.close()
        with db.lo.open(designator) as fresh:
            assert fresh.read(25_000) == b"A" * 16_000 + b"C" * 9_000

    def test_truncate_then_reextend(self, db, impl):
        designator = make_object(db, impl, b"D" * 30_000)
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.truncate(7_000)
                obj.seek(7_000)
                obj.write(b"E" * 9_000)
        with db.lo.open(designator) as obj:
            assert obj.read(7_000) == b"D" * 7_000
            assert obj.read(9_000) == b"E" * 9_000
            assert obj.read(1) == b""

    def test_sparse_extension_zero_fills(self, db, impl):
        designator = make_object(db, impl)
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.seek(50_000)
                obj.write(b"tail")
        with db.lo.open(designator) as obj:
            obj.seek(40_000)
            assert obj.read(10_000) == bytes(10_000)
            assert obj.read(4) == b"tail"

    def test_overwrite_mid_object(self, db, impl):
        designator = make_object(db, impl, b"F" * 40_000)
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.seek(9_999)
                obj.write(b"G" * 12_345)
        with db.lo.open(designator) as obj:
            expected = (b"F" * 9_999) + (b"G" * 12_345) + (
                b"F" * (40_000 - 9_999 - 12_345))
            assert obj.read(40_000) == expected

    def test_read_after_vacuum(self, db, impl):
        """Vacuum prunes dead versions and their index entries; memoized
        TIDs from before the sweep must not be chased afterwards."""
        designator = make_object(db, impl, b"H" * 25_000)
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"I" * 25_000)
        reader = db.lo.open(designator)
        assert reader.read(10) == b"I" * 10  # memos warm, pre-vacuum
        db.vacuum()
        reader.seek(0)
        assert reader.read(25_000) == b"I" * 25_000
        reader.close()

    def test_writer_reads_own_buffered_writes(self, db, impl):
        designator = make_object(db, impl, b"J" * 10_000)
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.seek(5_000)
                obj.write(b"K" * 2_000)
                obj.seek(4_000)
                assert obj.read(4_000) == (b"J" * 1_000 + b"K" * 2_000
                                           + b"J" * 1_000)

    def test_abort_discards_and_invalidates(self, db, impl):
        designator = make_object(db, impl, b"L" * 15_000)
        reader = db.lo.open(designator)
        assert reader.read(10) == b"L" * 10
        txn = db.begin()
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"M" * 15_000)
        txn.abort()
        reader.seek(0)
        assert reader.read(15_000) == b"L" * 15_000
        reader.close()


class TestChargedModeUnaffected:
    @pytest.mark.parametrize("impl", IMPLS)
    def test_fast_gate_off_when_charging(self, impl):
        db = Database(pool_size=64, charge_cpu=True)
        try:
            designator = make_object(db, impl, b"N" * 5_000)
            with db.lo.open(designator) as obj:
                assert obj._fast is False
                assert obj.read(5_000) == b"N" * 5_000
        finally:
            db.close()
