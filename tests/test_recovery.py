"""Crash-recovery and durability tests.

The POSTGRES recovery story is the absence of one: no WAL, no redo.  A
transaction either wrote its commit record (and its pages were already
forced) or it never happened.  These tests simulate crashes by abandoning
a Database object at various points and reopening the directory.
"""


from repro.db import Database


def crash(db: Database) -> None:
    """Abandon the database without any graceful shutdown work.

    Closes the underlying OS handles (so the files can be reopened) but
    performs no flushing — whatever reached the device is whatever the
    force-at-commit discipline already put there.
    """
    for smgr in db.switch.instances():
        close = getattr(smgr, "close", None)
        if close:
            close()
    db.clog.close()
    db.catalog.journal.close()


class TestCommitDurability:
    def test_committed_rows_survive_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            db.insert(txn, "T", (1,))
            db.insert(txn, "T", (2,))
        crash(db)
        reopened = Database(path)
        assert sorted(t.values for t in reopened.scan("T")) == [(1,), (2,)]
        reopened.close()

    def test_uncommitted_rows_vanish(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            db.insert(txn, "T", (1,))
        limbo = db.begin()
        db.insert(limbo, "T", (99,))
        db.checkpoint()  # even if the dirty pages reached the device...
        crash(db)        # ...no commit record was ever written
        reopened = Database(path)
        assert [t.values for t in reopened.scan("T")] == [(1,)]
        reopened.close()

    def test_uncommitted_delete_undone_by_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "T", (7,))
        limbo = db.begin()
        db.delete(limbo, "T", tid)
        db.checkpoint()
        crash(db)
        reopened = Database(path)
        assert [t.values for t in reopened.scan("T")] == [(7,)]
        reopened.close()

    def test_commit_time_survives_for_time_travel(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "T", (1,))
        stamp = db.clock.now()
        with db.begin() as txn:
            db.replace(txn, "T", tid, (2,))
        crash(db)
        reopened = Database(path)
        # Historical timestamps recorded in pg_log still resolve.
        assert [t.values for t in reopened.scan("T", as_of=stamp)] == [(1,)]
        assert [t.values for t in reopened.scan("T")] == [(2,)]
        reopened.close()


class TestLargeObjectDurability:
    def test_committed_lo_survives_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        txn = db.begin()
        designator = db.lo.create(txn, "fchunk")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"durable bytes" * 1000)
        txn.commit()
        crash(db)
        reopened = Database(path)
        with reopened.lo.open(designator) as obj:
            assert obj.read() == b"durable bytes" * 1000
        reopened.close()

    def test_uncommitted_lo_writes_vanish(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        txn = db.begin()
        designator = db.lo.create(txn, "fchunk")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"v1")
        txn.commit()
        limbo = db.begin()
        with db.lo.open(designator, limbo, "rw") as obj:
            obj.seek(0)
            obj.write(b"XX")
        db.checkpoint()
        crash(db)
        reopened = Database(path)
        with reopened.lo.open(designator) as obj:
            assert obj.read() == b"v1"
        reopened.close()

    def test_inversion_tree_survives_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        fs = db.inversion
        with db.begin() as txn:
            fs.mkdir(txn, "/etc")
            fs.write_file(txn, "/etc/motd", b"welcome back")
        crash(db)
        reopened = Database(path)
        assert reopened.inversion.read_file("/etc/motd") == b"welcome back"
        reopened.close()

    def test_pfile_contents_survive_in_durable_db(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        with db.begin() as txn:
            designator = db.lo.newfilename(txn)
        with db.lo.open(designator, None, "rw") as obj:
            obj.write(b"native bytes")
        crash(db)
        reopened = Database(path)
        with reopened.lo.open(designator) as obj:
            assert obj.read() == b"native bytes"
        reopened.close()


class TestRepeatedCrashes:
    def test_crash_loop_is_stable(self, tmp_path):
        """Crash after every transaction; nothing decays."""
        path = str(tmp_path / "db")
        db = Database(path)
        db.create_class("LOG", [("n", "int4")])
        crash(db)
        for n in range(5):
            db = Database(path)
            with db.begin() as txn:
                db.insert(txn, "LOG", (n,))
            limbo = db.begin()
            db.insert(limbo, "LOG", (1000 + n,))  # never commits
            crash(db)
        final = Database(path)
        assert sorted(t.values for t in final.scan("LOG")) == \
            [(n,) for n in range(5)]
        final.close()

    def test_xids_never_reused_across_crashes(self, tmp_path):
        path = str(tmp_path / "db")
        seen = set()
        for _ in range(3):
            db = Database(path)
            for _ in range(10):
                txn = db.begin()
                assert txn.xid not in seen
                seen.add(txn.xid)
                txn.abort()
            crash(db)
