"""Unit tests for the commit log, locks, snapshots, and transactions."""

import types

import pytest

from repro.errors import LockError, TransactionError
from repro.sim import SimClock
from repro.storage import BufferManager
from repro.storage.constants import INVALID_XID
from repro.txn import (
    CommitLog,
    LockManager,
    LockMode,
    Snapshot,
    TransactionManager,
    TxnStatus,
)


@pytest.fixture
def clog():
    return CommitLog()


@pytest.fixture
def tm(clog):
    return TransactionManager(clog, BufferManager(pool_size=8),
                              LockManager(), SimClock())


class TestCommitLog:
    def test_xids_are_unique_and_increasing(self, clog):
        xids = [clog.allocate_xid() for _ in range(10)]
        assert xids == sorted(set(xids))

    def test_fresh_xid_in_progress(self, clog):
        xid = clog.allocate_xid()
        assert clog.status(xid) == TxnStatus.IN_PROGRESS

    def test_commit(self, clog):
        xid = clog.allocate_xid()
        clog.set_committed(xid, 42.0)
        assert clog.is_committed(xid)
        assert clog.commit_time(xid) == 42.0

    def test_abort(self, clog):
        xid = clog.allocate_xid()
        clog.set_aborted(xid)
        assert clog.status(xid) == TxnStatus.ABORTED

    def test_double_commit_rejected(self, clog):
        xid = clog.allocate_xid()
        clog.set_committed(xid, 1.0)
        with pytest.raises(TransactionError):
            clog.set_committed(xid, 2.0)
        with pytest.raises(TransactionError):
            clog.set_aborted(xid)

    def test_unknown_xid_is_aborted(self, clog):
        assert clog.status(99999) == TxnStatus.ABORTED

    def test_invalid_xid_rejected(self, clog):
        with pytest.raises(TransactionError):
            clog.status(INVALID_XID)

    def test_commit_time_of_uncommitted_rejected(self, clog):
        xid = clog.allocate_xid()
        with pytest.raises(TransactionError):
            clog.commit_time(xid)

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "pg_log")
        log = CommitLog(path)
        a = log.allocate_xid()
        b = log.allocate_xid()
        c = log.allocate_xid()
        log.set_committed(a, 10.5)
        log.set_aborted(b)
        log.close()  # c never decided: crash
        reopened = CommitLog(path)
        assert reopened.is_committed(a)
        assert reopened.commit_time(a) == 10.5
        assert reopened.status(b) == TxnStatus.ABORTED
        assert reopened.status(c) == TxnStatus.ABORTED  # crash semantics
        assert reopened.allocate_xid() > c
        reopened.close()

    def test_torn_tail_ignored(self, tmp_path):
        path = str(tmp_path / "pg_log")
        log = CommitLog(path)
        a = log.allocate_xid()
        log.set_committed(a, 1.0)
        log.close()
        with open(path, "ab") as fh:
            fh.write(b"\x01\x02\x03")  # torn partial record
        reopened = CommitLog(path)
        assert reopened.is_committed(a)
        reopened.close()


class TestLockManager:
    def test_shared_locks_coexist(self):
        locks = LockManager()
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(2, "r", LockMode.SHARED)
        assert locks.holds(1, "r") and locks.holds(2, "r")

    def test_exclusive_conflicts_with_shared(self):
        locks = LockManager(no_wait=True)
        locks.acquire(1, "r", LockMode.SHARED)
        with pytest.raises(LockError):
            locks.acquire(2, "r", LockMode.EXCLUSIVE)

    def test_shared_conflicts_with_exclusive(self):
        locks = LockManager(no_wait=True)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        with pytest.raises(LockError):
            locks.acquire(2, "r", LockMode.SHARED)

    def test_reacquire_is_noop(self):
        locks = LockManager()
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(1, "r", LockMode.SHARED)

    def test_upgrade_when_alone(self):
        locks = LockManager()
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.holds(1, "r", LockMode.EXCLUSIVE)

    def test_upgrade_blocked_by_other_sharer(self):
        locks = LockManager(no_wait=True)
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(2, "r", LockMode.SHARED)
        with pytest.raises(LockError):
            locks.acquire(1, "r", LockMode.EXCLUSIVE)

    def test_exclusive_implies_shared(self):
        locks = LockManager()
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.holds(1, "r", LockMode.SHARED)
        locks.acquire(1, "r", LockMode.SHARED)  # no downgrade, no error
        assert locks.holds(1, "r", LockMode.EXCLUSIVE)

    def test_release_all(self):
        locks = LockManager()
        locks.acquire(1, "a", LockMode.SHARED)
        locks.acquire(1, "b", LockMode.EXCLUSIVE)
        assert locks.release_all(1) == 2
        locks.acquire(2, "b", LockMode.EXCLUSIVE)  # now free

    def test_release_returns_zero_when_nothing_held(self):
        assert LockManager().release_all(7) == 0


class TestSnapshotVisibility:
    def test_own_insert_visible(self, clog):
        xid = clog.allocate_xid()
        snap = Snapshot(xid=xid)
        assert snap.is_visible(xid, INVALID_XID, clog)

    def test_committed_insert_visible(self, clog):
        writer = clog.allocate_xid()
        clog.set_committed(writer, 1.0)
        snap = Snapshot(xid=clog.allocate_xid())
        assert snap.is_visible(writer, INVALID_XID, clog)

    def test_aborted_insert_invisible(self, clog):
        writer = clog.allocate_xid()
        clog.set_aborted(writer)
        snap = Snapshot(xid=clog.allocate_xid())
        assert not snap.is_visible(writer, INVALID_XID, clog)

    def test_concurrent_insert_invisible_even_after_commit(self, clog):
        writer = clog.allocate_xid()
        snap = Snapshot(xid=clog.allocate_xid(),
                        active_xids=frozenset({writer}))
        clog.set_committed(writer, 1.0)
        assert not snap.is_visible(writer, INVALID_XID, clog)

    def test_committed_delete_invisible(self, clog):
        writer = clog.allocate_xid()
        deleter = clog.allocate_xid()
        clog.set_committed(writer, 1.0)
        clog.set_committed(deleter, 2.0)
        snap = Snapshot(xid=clog.allocate_xid())
        assert not snap.is_visible(writer, deleter, clog)

    def test_own_delete_invisible(self, clog):
        writer = clog.allocate_xid()
        clog.set_committed(writer, 1.0)
        xid = clog.allocate_xid()
        snap = Snapshot(xid=xid)
        assert not snap.is_visible(writer, xid, clog)

    def test_aborted_delete_still_visible(self, clog):
        writer = clog.allocate_xid()
        deleter = clog.allocate_xid()
        clog.set_committed(writer, 1.0)
        clog.set_aborted(deleter)
        snap = Snapshot(xid=clog.allocate_xid())
        assert snap.is_visible(writer, deleter, clog)


class TestTimeTravel:
    def test_version_selected_by_timestamp(self, clog):
        v1 = clog.allocate_xid()
        v2 = clog.allocate_xid()
        clog.set_committed(v1, 10.0)
        clog.set_committed(v2, 20.0)
        # Version 1 lives [10, 20); version 2 lives [20, inf).
        at_15 = Snapshot(xid=0, as_of=15.0)
        at_25 = Snapshot(xid=0, as_of=25.0)
        assert at_15.is_visible(v1, v2, clog)
        assert not at_15.is_visible(v2, INVALID_XID, clog)
        assert not at_25.is_visible(v1, v2, clog)
        assert at_25.is_visible(v2, INVALID_XID, clog)

    def test_before_creation_nothing_visible(self, clog):
        v1 = clog.allocate_xid()
        clog.set_committed(v1, 10.0)
        snap = Snapshot(xid=0, as_of=5.0)
        assert not snap.is_visible(v1, INVALID_XID, clog)

    def test_uncommitted_delete_keeps_version_alive(self, clog):
        v1 = clog.allocate_xid()
        deleter = clog.allocate_xid()
        clog.set_committed(v1, 10.0)
        snap = Snapshot(xid=0, as_of=15.0)
        assert snap.is_visible(v1, deleter, clog)

    def test_travel_ignores_own_uncommitted_work(self, clog):
        mine = clog.allocate_xid()
        snap = Snapshot(xid=mine, as_of=100.0)
        assert not snap.is_visible(mine, INVALID_XID, clog)


class TestTransactionManager:
    def test_commit_records_status_and_time(self, tm, clog):
        txn = tm.begin()
        txn.commit()
        assert clog.is_committed(txn.xid)
        assert clog.commit_time(txn.xid) > 0

    def test_abort(self, tm, clog):
        txn = tm.begin()
        txn.abort()
        assert clog.status(txn.xid) == TxnStatus.ABORTED

    def test_commit_twice_rejected(self, tm):
        txn = tm.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_context_manager_commits(self, tm, clog):
        with tm.begin() as txn:
            pass
        assert clog.is_committed(txn.xid)

    def test_context_manager_aborts_on_error(self, tm, clog):
        with pytest.raises(RuntimeError):
            with tm.begin() as txn:
                raise RuntimeError("boom")
        assert clog.status(txn.xid) == TxnStatus.ABORTED

    def test_commit_releases_locks(self, tm):
        txn = tm.begin()
        tm.locks.acquire(txn.xid, "r", LockMode.EXCLUSIVE)
        txn.commit()
        other = tm.begin()
        tm.locks.acquire(other.xid, "r", LockMode.EXCLUSIVE)
        other.commit()

    def test_snapshot_excludes_concurrent(self, tm):
        a = tm.begin()
        b = tm.begin()
        snap = tm.snapshot(a)
        assert b.xid in snap.active_xids
        assert a.xid not in snap.active_xids
        a.commit()
        b.commit()

    def test_commit_hooks_run(self, tm):
        ran = []
        txn = tm.begin()
        txn.on_commit.append(lambda: ran.append("commit"))
        txn.on_abort.append(lambda: ran.append("abort"))
        txn.commit()
        assert ran == ["commit"]

    def test_abort_hooks_run(self, tm):
        ran = []
        txn = tm.begin()
        txn.on_abort.append(lambda: ran.append("abort"))
        txn.abort()
        assert ran == ["abort"]

    def test_hook_failure_reported(self, tm):
        txn = tm.begin()
        txn.on_commit.append(lambda: 1 / 0)
        with pytest.raises(TransactionError):
            txn.commit()

    def test_active_count(self, tm):
        a = tm.begin()
        b = tm.begin()
        assert tm.active_count() == 2
        a.commit()
        b.abort()
        assert tm.active_count() == 0

    def test_require_transaction(self, tm):
        from repro.errors import NoActiveTransaction
        with pytest.raises(NoActiveTransaction):
            tm.require_transaction(None)
        txn = tm.begin()
        assert tm.require_transaction(txn) is txn
        txn.commit()

    def test_touch_deduplicates(self, tm):
        txn = tm.begin()
        smgr = types.SimpleNamespace(smgr_id="fake#1")
        txn.touch(smgr, "f")
        txn.touch(smgr, "f")
        assert len(txn.touched) == 1
        txn.abort()

    def test_touch_keys_by_smgr_id_not_object_identity(self, tm):
        """Two handles with the same stable identity dedupe; two managers
        with distinct identities do not (the frame-key contract)."""
        txn = tm.begin()
        txn.touch(types.SimpleNamespace(smgr_id="disk#1"), "f")
        txn.touch(types.SimpleNamespace(smgr_id="disk#1"), "f")
        txn.touch(types.SimpleNamespace(smgr_id="disk#2"), "f")
        assert len(txn.touched) == 2
        txn.abort()


class TestSnapshotCeiling:
    """Transactions that begin after a snapshot must stay invisible."""

    def test_later_xid_invisible_even_after_commit(self, clog):
        snap_ceiling = clog.next_xid
        snap = Snapshot(xid=0, xid_ceiling=snap_ceiling)
        late = clog.allocate_xid()
        clog.set_committed(late, 1.0)
        assert not snap.is_visible(late, INVALID_XID, clog)

    def test_manager_snapshots_carry_ceiling(self, tm, clog):
        snap = tm.snapshot()
        late = tm.begin()
        late.commit()
        assert not snap.is_visible(late.xid, INVALID_XID, clog)

    def test_time_travel_ignores_ceiling(self, clog):
        """Historical visibility is governed by commit times alone."""
        writer = clog.allocate_xid()
        clog.set_committed(writer, 5.0)
        snap = Snapshot(xid=0, as_of=10.0, xid_ceiling=writer)  # below!
        assert snap.is_visible(writer, INVALID_XID, clog)
