"""Unit tests for the native file system (the u-file/p-file substrate)."""

import pytest

from repro.errors import FileNotFound, StorageManagerError
from repro.lo.nativefs import NativeFileSystem
from repro.sim import SimClock


@pytest.fixture(params=["memory", "real"])
def fs(request, tmp_path):
    root = str(tmp_path / "files") if request.param == "real" else None
    return NativeFileSystem(SimClock(), root=root)


class TestNamespace:
    def test_create_exists_unlink(self, fs):
        assert not fs.exists("a")
        fs.create("a")
        assert fs.exists("a")
        assert fs.size("a") == 0
        fs.unlink("a")
        assert not fs.exists("a")

    def test_create_idempotent(self, fs):
        fs.create("a")
        fs.write_at("a", 0, b"data")
        fs.create("a")
        assert fs.size("a") == 4

    def test_unlink_missing_is_noop(self, fs):
        fs.unlink("never-existed")

    def test_missing_file_rejected(self, fs):
        with pytest.raises(FileNotFound):
            fs.size("ghost")
        with pytest.raises(FileNotFound):
            fs.read_at("ghost", 0, 10)
        with pytest.raises(FileNotFound):
            fs.write_at("ghost", 0, b"x")

    def test_slash_names_are_namespaced(self, fs):
        fs.create("pg_pfiles/1")
        fs.create("pg_pfiles/2")
        assert fs.exists("pg_pfiles/1")
        fs.unlink("pg_pfiles/1")
        assert fs.exists("pg_pfiles/2")


class TestByteIO:
    def test_roundtrip(self, fs):
        fs.create("f")
        fs.write_at("f", 0, b"hello world")
        assert fs.read_at("f", 0, 11) == b"hello world"
        assert fs.read_at("f", 6, 5) == b"world"

    def test_short_read_at_eof(self, fs):
        fs.create("f")
        fs.write_at("f", 0, b"abc")
        assert fs.read_at("f", 2, 100) == b"c"
        assert fs.read_at("f", 50, 10) == b""

    def test_gap_write_zero_fills(self, fs):
        fs.create("f")
        fs.write_at("f", 10, b"xy")
        assert fs.size("f") == 12
        assert fs.read_at("f", 0, 12) == bytes(10) + b"xy"

    def test_overwrite_middle(self, fs):
        fs.create("f")
        fs.write_at("f", 0, b"aaaaaaaa")
        fs.write_at("f", 3, b"BB")
        assert fs.read_at("f", 0, 8) == b"aaaBBaaa"

    def test_negative_offset_rejected(self, fs):
        fs.create("f")
        with pytest.raises(StorageManagerError):
            fs.read_at("f", -1, 4)
        with pytest.raises(StorageManagerError):
            fs.write_at("f", -1, b"x")

    def test_io_charges_clock(self, fs):
        fs.create("f")
        fs.write_at("f", 0, b"x" * 100_000)
        assert fs.clock.elapsed > 0
        assert fs.stats()["writes"] == 1

    def test_sequential_cheaper_than_scattered(self, fs):
        fs.create("f")
        fs.write_at("f", 0, bytes(200_000))
        snap = fs.clock.snapshot()
        for i in range(10):
            fs.read_at("f", i * 4096, 4096)
        sequential = snap.since(fs.clock).elapsed
        snap = fs.clock.snapshot()
        for i in (40, 3, 27, 11, 35, 8, 19, 45, 1, 30):
            fs.read_at("f", i * 4096, 4096)
        scattered = snap.since(fs.clock).elapsed
        assert scattered > sequential * 2


class TestRealBacking:
    def test_survives_new_instance(self, tmp_path):
        root = str(tmp_path / "files")
        first = NativeFileSystem(SimClock(), root=root)
        first.create("persist")
        first.write_at("persist", 0, b"still here")
        second = NativeFileSystem(SimClock(), root=root)
        assert second.read_at("persist", 0, 10) == b"still here"

    def test_path_traversal_neutralized(self, tmp_path):
        root = str(tmp_path / "files")
        fs = NativeFileSystem(SimClock(), root=root)
        fs.create("../../etc/passwd")
        import os
        assert not os.path.exists(str(tmp_path / "etc"))
        listed = os.listdir(root)
        assert len(listed) == 1
