"""Every example script must run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "quickstart complete" in out
    assert "rolled back" in out


def test_media_library():
    out = run_example("media_library.py")
    assert "clips brighter than 50: ['noon']" in out
    assert "excerpt lo:" in out


def test_inversion_shell():
    out = run_example("inversion_shell.py")
    assert "after aborted edit, still intact:" in out
    assert "as of checkpoint:" in out
    assert "todo.txt" in out


def test_worm_archive():
    out = run_example("worm_archive.py")
    assert "overwrite refused" in out
    assert "user-defined 'tape' manager" in out
    assert "Inversion file on tape" in out


@pytest.mark.parametrize("name", [
    "quickstart.py", "media_library.py", "inversion_shell.py",
    "worm_archive.py", "server_demo.py",
])
def test_examples_exist_and_are_documented(name):
    path = os.path.join(EXAMPLES_DIR, name)
    assert os.path.exists(path)
    with open(path) as fh:
        source = fh.read()
    assert source.startswith("#!/usr/bin/env python3")
    assert '"""' in source  # a docstring explaining the scenario


def test_archival_history():
    out = run_example("archival_history.py")
    assert "archived 9 dead versions" in out
    assert "integrity check: clean" in out


def test_server_demo():
    out = run_example("server_demo.py")
    assert "range-lock waits: 0" in out
    assert "final image byte-exact: True" in out
    assert "'<client 0>', '<client 1>', '<client 2>', '<client 3>'" in out
    assert "server demo complete" in out
