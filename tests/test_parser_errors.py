"""Negative-path coverage for the mini-POSTQUEL lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.ql.lexer import tokenize
from repro.ql.parser import parse


class TestLexer:
    def test_token_kinds(self):
        kinds = [t.kind for t in tokenize('retrieve (EMP.age) where 1.5')]
        assert kinds == ["keyword", "op", "name", "op", "name", "op",
                         "keyword", "float", "eof"]

    def test_string_escapes(self):
        tokens = tokenize(r'"a\"b"')
        assert tokens[0].value == 'a"b'

    def test_scientific_notation(self):
        assert tokenize("1e5")[0].kind == "float"
        assert tokenize("2.5e-3")[0].kind == "float"

    def test_keywords_case_insensitive(self):
        assert tokenize("RETRIEVE")[0].is_keyword("retrieve")
        assert tokenize("Where")[0].is_keyword("where")

    def test_names_keep_case(self):
        assert tokenize("EMP")[0].value == "EMP"

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("retrieve @")

    def test_line_and_column_tracking(self):
        tokens = tokenize("retrieve\n  (EMP.name)")
        paren = tokens[1]
        assert paren.line == 2
        assert paren.column == 2


@pytest.mark.parametrize("bad", [
    "create EMP",                           # missing column list
    "create EMP ()",                        # empty column list
    "create EMP (name text)",               # missing '='
    "create large type T",                  # missing clause list
    "create type T (input = f)",            # small ADTs not via QL
    "append EMP",                           # missing assignments
    "append EMP (name)",                    # assignment without value
    "retrieve EMP.name",                    # targets need parentheses
    "retrieve ()",                          # empty target list
    "retrieve (EMP.name) from",             # dangling from
    "retrieve (EMP.name) where",            # dangling where
    "retrieve (EMP.name) sort",             # sort without by
    'retrieve (EMP.name) from EMP["a"]',    # unparseable stamp
    'retrieve (EMP.name) from EMP["1","2","3"]',  # too many stamps
    "retrieve (EMP.name))",                 # trailing paren
    "replace EMP where EMP.a = 1",          # replace without assignments
    "delete",                               # missing class
    "destroy",                              # missing class
    "define index x on EMP",                # missing attribute parens
    "define x on EMP (a)",                  # 'define' needs 'index'
    "retrieve (1 +)",                       # dangling operator
    "retrieve (EMP.)",                      # dangling attribute
    "retrieve (foo(1,))",                   # dangling comma in args
    "retrieve (EMP.name",                   # unclosed paren
    "retrieve (\"x\"::)",                   # dangling cast
    ";",                                    # empty statement
])
def test_rejected_syntax(bad):
    with pytest.raises(ParseError):
        parse(bad)


class TestParserAccepts:
    """Round-trip sanity for constructs with tricky grammar."""

    @pytest.mark.parametrize("good", [
        'retrieve (EMP.name)',
        'retrieve (x = 1 + 2 * 3 - -4)',
        'retrieve (f(g(1), "s"::rect))',
        'retrieve (EMP.a) where not (EMP.b = 1 or EMP.c = 2) and EMP.d = 3',
        'retrieve (EMP.a) from EMP["epoch", "now"] where EMP.b = 1 '
        'sort by EMP.a >, EMP.b',
        'retrieve into X (EMP.all)',
        'create large type t (storage = v-segment, '
        'compression = "zero-rle", input = f, output = g)',
        'append EMP (a = 1, b = "two", c = 3.0)',
        'define index i on C (attr)',
        'destroy EMP;',
    ])
    def test_parses(self, good):
        assert parse(good) is not None

    def test_script_parses_multiple(self):
        from repro.ql.parser import Parser
        statements = Parser(
            'create T (a = int4); append T (a = 1); retrieve (T.a)'
        ).parse_script()
        assert len(statements) == 3
