"""Unit tests for byte-range lock resources (``txn/rangelock.py``).

The lock manager's range extension is what lets two writers update
disjoint parts of one large object in parallel while overlapping
writers still serialize.  These tests hit the primitives directly:
interval semantics, conflict detection, holder extension, whole-object
locks, deadlock detection through range waits, and the new
``range_locks``/``range_waits`` statistics.
"""

import threading

import pytest

from repro.errors import DeadlockError, LockError
from repro.txn.locks import LockManager, LockMode
from repro.txn.rangelock import IntervalSet, RangeResource, lo_range, lo_whole


class TestRangeResource:
    def test_overlap_half_open(self):
        a = lo_range(1, 0, 100)
        b = lo_range(1, 100, 200)
        assert not a.overlaps(b)  # [0,100) and [100,200) touch, no overlap
        assert a.overlaps(lo_range(1, 99, 100))
        assert a.overlaps(lo_range(1, 0, 1))

    def test_infinite_stop(self):
        whole = lo_whole(7)
        assert whole.stop is None
        assert whole.overlaps(lo_range(7, 10 ** 12, None))
        assert whole.overlaps(lo_range(7, 0, 1))
        assert whole.contains(lo_range(7, 5, 500))
        assert not lo_range(7, 5, 500).contains(whole)

    def test_different_objects_never_overlap(self):
        assert not lo_range(1, 0, 100).overlaps(lo_range(2, 0, 100))
        assert lo_range(1, 0, 100).group != lo_range(2, 0, 100).group

    def test_degenerate_ranges_rejected(self):
        with pytest.raises(ValueError):
            RangeResource("largeobject", 1, 10, 10)  # empty
        with pytest.raises(ValueError):
            RangeResource("largeobject", 1, -1, 10)  # negative start
        with pytest.raises(ValueError):
            RangeResource("largeobject", 1, 10, 5)  # inverted


class TestIntervalSet:
    def test_add_and_covers(self):
        spans = IntervalSet()
        assert not spans
        spans.add(0, 100)
        assert spans.covers(0, 100)
        assert spans.covers(10, 50)
        assert not spans.covers(0, 101)

    def test_merge_adjacent(self):
        spans = IntervalSet()
        spans.add(0, 100)
        spans.add(100, 200)  # adjacent: must merge
        assert spans.covers(50, 150)

    def test_disjoint_members_do_not_cover_gap(self):
        spans = IntervalSet()
        spans.add(0, 100)
        spans.add(200, 300)
        assert not spans.covers(50, 250)
        spans.add(100, 200)  # fill the gap
        assert spans.covers(0, 300)

    def test_infinite_span(self):
        spans = IntervalSet()
        spans.add(100, None)
        assert spans.covers(100, None)
        assert spans.covers(10 ** 15, 10 ** 15 + 1)
        assert not spans.covers(99, 100)


class TestRangeLocking:
    def test_disjoint_exclusive_ranges_coexist(self):
        lm = LockManager()
        lm.acquire(1, lo_range(9, 0, 100), LockMode.EXCLUSIVE)
        lm.acquire(2, lo_range(9, 100, 200), LockMode.EXCLUSIVE)
        assert lm.stats.range_locks == 2
        assert lm.stats.range_waits == 0
        lm.release_all(1)
        lm.release_all(2)
        assert lm.grant_table_empty()

    def test_overlapping_exclusive_ranges_conflict(self):
        lm = LockManager(no_wait=True)
        lm.acquire(1, lo_range(9, 0, 100), LockMode.EXCLUSIVE)
        with pytest.raises(LockError):
            lm.acquire(2, lo_range(9, 50, 150), LockMode.EXCLUSIVE)
        lm.release_all(1)
        lm.acquire(2, lo_range(9, 50, 150), LockMode.EXCLUSIVE)
        lm.release_all(2)

    def test_whole_object_conflicts_with_any_range(self):
        lm = LockManager(no_wait=True)
        lm.acquire(1, lo_whole(9), LockMode.EXCLUSIVE)
        with pytest.raises(LockError):
            lm.acquire(2, lo_range(9, 10 ** 9, 10 ** 9 + 1),
                       LockMode.EXCLUSIVE)
        lm.release_all(1)

    def test_range_conflicts_with_later_whole_object(self):
        lm = LockManager(no_wait=True)
        lm.acquire(1, lo_range(9, 500, 600), LockMode.EXCLUSIVE)
        with pytest.raises(LockError):
            lm.acquire(2, lo_whole(9), LockMode.EXCLUSIVE)
        lm.release_all(1)

    def test_holder_extends_own_range(self):
        # Re-requesting an overlap of your own grant must not self-block.
        lm = LockManager(no_wait=True)
        lm.acquire(1, lo_range(9, 0, 100), LockMode.EXCLUSIVE)
        lm.acquire(1, lo_range(9, 50, 200), LockMode.EXCLUSIVE)
        lm.acquire(1, lo_range(9, 0, 100), LockMode.EXCLUSIVE)  # covered
        assert lm.holds_overlapping(1, lo_range(9, 150, 160))
        lm.release_all(1)
        assert lm.grant_table_empty()

    def test_shared_ranges_overlap_freely(self):
        lm = LockManager(no_wait=True)
        lm.acquire(1, lo_range(9, 0, 100), LockMode.SHARED)
        lm.acquire(2, lo_range(9, 50, 150), LockMode.SHARED)
        with pytest.raises(LockError):
            lm.acquire(3, lo_range(9, 60, 70), LockMode.EXCLUSIVE)
        lm.release_all(1)
        lm.release_all(2)

    def test_plain_and_range_keys_do_not_interfere(self):
        # A plain ("largeobject", oid) key is not a range; the tuple key
        # and the range group live in different tables.
        lm = LockManager(no_wait=True)
        lm.acquire(1, ("other", 9), LockMode.EXCLUSIVE)
        lm.acquire(2, lo_range(9, 0, 100), LockMode.EXCLUSIVE)
        lm.release_all(1)
        lm.release_all(2)
        assert lm.grant_table_empty()

    def test_waiter_granted_after_release(self):
        lm = LockManager()
        lm.acquire(1, lo_range(9, 0, 100), LockMode.EXCLUSIVE)
        got = threading.Event()

        def blocked():
            lm.acquire(2, lo_range(9, 50, 150), LockMode.EXCLUSIVE)
            got.set()

        t = threading.Thread(target=blocked, daemon=True)
        t.start()
        # The waiter must actually park (range_waits counts it).
        deadline = 100
        while lm.stats.range_waits == 0 and deadline:
            deadline -= 1
            threading.Event().wait(0.01)
        assert lm.stats.range_waits == 1
        assert not got.is_set()
        lm.release_all(1)
        t.join(10.0)
        assert got.is_set()
        lm.release_all(2)
        assert lm.grant_table_empty()

    def test_deadlock_detected_across_ranges(self):
        lm = LockManager()
        lm.acquire(1, lo_range(9, 0, 100), LockMode.EXCLUSIVE)
        lm.acquire(2, lo_range(9, 200, 300), LockMode.EXCLUSIVE)
        crossed = threading.Event()
        errors = []

        def xid1():
            try:
                lm.acquire(1, lo_range(9, 250, 260), LockMode.EXCLUSIVE)
            except DeadlockError:
                errors.append(1)
                lm.release_all(1)
            crossed.set()

        t = threading.Thread(target=xid1, daemon=True)
        t.start()
        while not lm.waiting(lo_range(9, 250, 260)):
            threading.Event().wait(0.01)
        # xid 2 now closes the cycle: one of the two must be victimized.
        try:
            lm.acquire(2, lo_range(9, 50, 60), LockMode.EXCLUSIVE)
        except DeadlockError:
            errors.append(2)
            lm.release_all(2)
        crossed.wait(10.0)
        t.join(10.0)
        assert errors, "deadlock never detected"
        assert lm.stats.deadlocks_detected >= 1
        lm.release_all(1)
        lm.release_all(2)
        assert lm.grant_table_empty()

    def test_stats_dict_exposes_range_counters(self):
        lm = LockManager()
        lm.acquire(1, lo_range(9, 0, 100), LockMode.EXCLUSIVE)
        stats = lm.stats.as_dict()
        assert stats["range_locks"] == 1
        assert stats["range_waits"] == 0
        lm.release_all(1)
