"""Real-thread stress tests for the concurrent engine.

Where ``test_concurrency.py`` interleaves transactions cooperatively,
these tests run genuinely parallel sessions against one shared
:class:`~repro.db.Database`, hammering the two write paths the lock
manager serializes:

* counter increments — read-modify-write races that lose updates the
  instant an EXCLUSIVE lock is skipped or released early;
* appends to one shared large object — interleaved chunk writes that
  corrupt the byte stream unless writers serialize per object.

Workers retry on :class:`~repro.errors.DeadlockError` (the victim aborts
and goes again), so every planned increment/append eventually lands —
the final state is exact, not probabilistic.

The full-size run (8 threads × 100 transactions) carries the ``stress``
marker: ``pytest -m stress``.  The unmarked smoke variant keeps the same
machinery in every tier-1 run.
"""

import threading

import pytest

from repro.db import Database
from repro.errors import DeadlockError, TransactionError
from repro.txn.locks import LockMode

#: Fixed-width append record: thread id, then per-thread sequence number.
RECORD = "T{:02d}S{:04d};"
RECORD_LEN = len(RECORD.format(0, 0))


def _run_workers(workers, timeout):
    threads = [threading.Thread(target=fn, daemon=True) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    assert not any(t.is_alive() for t in threads), "worker hung"


def _increment_counter(db, session, tid_box):
    """One read-modify-write transaction under an EXCLUSIVE counter lock."""
    session.begin()
    try:
        # The lock serializes the read with the write; a SHARED relation
        # lock alone would let two sessions read the same version and
        # lose one increment.
        db.locks.acquire(session.txn.xid, ("counter", 0),
                         LockMode.EXCLUSIVE)
        row = db.fetch("counters", tid_box[0], txn=session.txn)
        if row is None:  # another session just replaced it
            row = next(iter(session.scan("counters")))
        tid_box[0] = session.replace("counters", row.tid,
                                     (row.values[0] + 1,))
        session.commit()
        return True
    except (DeadlockError, TransactionError):
        if session.in_transaction:
            session.rollback()
        return False


def _append_record(db, session, designator, record):
    """Append one tagged record to the shared large object."""
    session.begin()
    try:
        with session.lo_open(designator, "rw") as obj:
            # append() re-resolves EOF under the write range lock, so
            # concurrent appenders land exactly once.
            obj.append(record)
        session.commit()
        return True
    except (DeadlockError, TransactionError):
        if session.in_transaction:
            session.rollback()
        return False


def _mixed_workload(db, designator, tid_box, n_threads, txns_per_thread,
                    timeout=120.0):
    """Run the counter/append workload; verify exact final state."""
    failures = []

    def worker(thread_no):
        def run():
            try:
                session = db.session()
                for seq in range(txns_per_thread):
                    if seq % 2 == 0:
                        while not _increment_counter(db, session, tid_box):
                            pass
                    else:
                        record = RECORD.format(thread_no, seq).encode()
                        while not _append_record(db, session, designator,
                                                 record):
                            pass
            except BaseException as exc:  # pragma: no cover - diagnostics
                failures.append((thread_no, exc))
        return run

    _run_workers([worker(i) for i in range(n_threads)], timeout)
    assert not failures, f"workers crashed: {failures}"

    increments_each = (txns_per_thread + 1) // 2
    appends_each = txns_per_thread // 2

    # No lost updates: the counter saw every increment.
    final = [t.values for t in db.scan("counters")]
    assert final == [(n_threads * increments_each,)]

    # Byte-exact appends: every record present exactly once, per-thread
    # order preserved, nothing interleaved mid-record.
    with db.lo.open(designator) as obj:
        data = obj.read()
    assert len(data) == n_threads * appends_each * RECORD_LEN
    per_thread = {i: [] for i in range(n_threads)}
    for at in range(0, len(data), RECORD_LEN):
        record = data[at:at + RECORD_LEN].decode()
        assert record[0] == "T" and record[-1] == ";", record
        per_thread[int(record[1:3])].append(int(record[4:8]))
    for thread_no, seqs in per_thread.items():
        assert seqs == sorted(seqs), f"thread {thread_no} out of order"
        assert seqs == [s for s in range(txns_per_thread) if s % 2 == 1]

    # The lock statistics add up and nothing is left granted or parked.
    stats = db.statistics()
    locks = stats["locks"]
    assert locks["victims"] == locks["deadlocks_detected"]
    assert locks["timeouts"] == 0
    assert locks["wait_time"] >= 0.0
    assert locks["deadlocks_detected"] >= 0
    assert stats["transactions"]["active"] == 0
    assert db.locks.grant_table_empty()
    assert db.locks.waiting() == []


@pytest.fixture
def arena():
    db = Database(charge_cpu=False)
    db.create_class("counters", [("value", "int4")])
    with db.begin() as txn:
        tid = db.insert(txn, "counters", (0,))
        designator = db.lo.create(txn, "fchunk")
    yield db, designator, [tid]
    db.close()


def test_threaded_mixed_workload_smoke(arena):
    """Tier-1 sized: 4 threads × 10 transactions."""
    db, designator, tid_box = arena
    _mixed_workload(db, designator, tid_box, n_threads=4,
                    txns_per_thread=10)


@pytest.mark.stress
def test_threaded_mixed_workload_stress(arena):
    """The acceptance-criteria run: 8 threads × 100 transactions."""
    db, designator, tid_box = arena
    _mixed_workload(db, designator, tid_box, n_threads=8,
                    txns_per_thread=100, timeout=600.0)


def _disjoint_range_workload(db, designator, n_threads, span, timeout=120.0):
    """Writers on disjoint grains of ONE object: parallel, byte-exact."""
    from repro.lo.fchunk import LOCK_GRAIN_CHUNKS
    from repro.storage.constants import CHUNK_PAYLOAD
    grain = CHUNK_PAYLOAD * LOCK_GRAIN_CHUNKS
    waits_before = db.locks.stats.range_waits
    failures = []

    def worker(thread_no):
        def run():
            try:
                session = db.session()
                session.begin()
                with session.lo_open(designator, "rw") as obj:
                    obj.seek(thread_no * grain)
                    obj.write(bytes([thread_no + 1]) * span)
                session.commit()
            except BaseException as exc:  # pragma: no cover - diagnostics
                failures.append((thread_no, exc))
                if session.in_transaction:
                    session.rollback()
        return run

    _run_workers([worker(i) for i in range(n_threads)], timeout)
    assert not failures, f"workers crashed: {failures}"

    # The tentpole claim: disjoint-range writers never queue on the
    # object's range lock — the per-object serialization of the old
    # whole-object EXCLUSIVE lock is gone.
    assert db.locks.stats.range_waits == waits_before

    with db.lo.open(designator) as obj:
        for i in range(n_threads):
            obj.seek(i * grain)
            assert obj.read(span) == bytes([i + 1]) * span
    assert db.locks.grant_table_empty()


def test_disjoint_range_writers_do_not_wait(arena):
    """Tier-1: 4 writers, one object, disjoint grains, zero lock waits."""
    db, designator, _ = arena
    _disjoint_range_workload(db, designator, n_threads=4, span=3000)


@pytest.mark.stress
def test_disjoint_range_writers_stress(arena):
    """Full-size disjoint-range run: 8 writers, grain-sized spans."""
    db, designator, _ = arena
    _disjoint_range_workload(db, designator, n_threads=8, span=40000,
                             timeout=300.0)


def test_overlapping_writers_conflict(arena):
    """Writers on the SAME range serialize: the second one must wait."""
    db, designator, _ = arena
    waits_before = db.locks.stats.range_waits
    first_locked = threading.Event()
    release_first = threading.Event()
    failures = []

    def holder():
        session = db.session()
        session.begin()
        try:
            with session.lo_open(designator, "rw") as obj:
                obj.write(b"A" * 100)
                first_locked.set()
                assert release_first.wait(60.0), "never released"
            session.commit()
        except BaseException as exc:  # pragma: no cover - diagnostics
            failures.append(("holder", exc))
            if session.in_transaction:
                session.rollback()

    def contender():
        session = db.session()
        assert first_locked.wait(60.0), "holder never locked"
        session.begin()
        try:
            with session.lo_open(designator, "rw") as obj:
                obj.seek(50)  # overlaps the holder's [0, grain) lock
                obj.write(b"B" * 100)
            session.commit()
        except BaseException as exc:  # pragma: no cover - diagnostics
            failures.append(("contender", exc))
            if session.in_transaction:
                session.rollback()

    t_holder = threading.Thread(target=holder, daemon=True)
    t_contender = threading.Thread(target=contender, daemon=True)
    t_holder.start()
    t_contender.start()
    # Wait until the contender actually parks on the range lock, then
    # let the holder commit.
    deadline = 500
    while db.locks.stats.range_waits == waits_before and deadline:
        deadline -= 1
        threading.Event().wait(0.01)
    assert db.locks.stats.range_waits == waits_before + 1
    release_first.set()
    t_holder.join(60.0)
    t_contender.join(60.0)
    assert not (t_holder.is_alive() or t_contender.is_alive())
    assert not failures, f"workers crashed: {failures}"

    # Strict 2PL ordering: the contender's bytes overwrote the holder's
    # on the overlap, and both writes are present elsewhere.
    with db.lo.open(designator) as obj:
        data = obj.read()
    assert data == b"A" * 50 + b"B" * 100


@pytest.mark.stress
def test_threaded_writers_distinct_objects_stress(arena):
    """Writers on distinct objects never wait on each other."""
    db, _, _ = arena
    with db.begin() as txn:
        designators = [db.lo.create(txn, "fchunk") for _ in range(8)]
    failures = []

    def worker(thread_no):
        def run():
            try:
                session = db.session()
                for seq in range(50):
                    record = RECORD.format(thread_no, seq).encode()
                    assert _append_record(db, session, designators[thread_no],
                                          record)
            except BaseException as exc:  # pragma: no cover - diagnostics
                failures.append((thread_no, exc))
        return run

    baseline = db.locks.stats.deadlocks_detected
    _run_workers([worker(i) for i in range(8)], timeout=300.0)
    assert not failures, f"workers crashed: {failures}"
    assert db.locks.stats.deadlocks_detected == baseline
    for thread_no, designator in enumerate(designators):
        with db.lo.open(designator) as obj:
            data = obj.read()
        expected = b"".join(RECORD.format(thread_no, s).encode()
                            for s in range(50))
        assert data == expected
