"""Tests for the figure-harness plumbing (small scale, fast)."""

import pytest

from repro.bench.figures import (
    BenchConfig,
    _fresh_db,
    cool_down,
    load_object,
    run_operation,
)
from repro.bench.workload import Workload

SMALL = BenchConfig(scale=0.01)


@pytest.fixture
def workload():
    return Workload(0.01)


class TestLoadObject:
    @pytest.mark.parametrize("impl", ["ufile", "pfile", "fchunk",
                                      "vsegment"])
    def test_loads_full_object(self, workload, impl):
        db = _fresh_db(SMALL)
        try:
            designator = load_object(db, impl, workload, 0.0, "none")
            with db.lo.open(designator) as obj:
                assert obj.size() == workload.object_size
        finally:
            db.close()

    def test_contents_are_the_workload_frames(self, workload):
        from repro.bench.datasets import frame_bytes
        db = _fresh_db(SMALL)
        try:
            designator = load_object(db, "fchunk", workload, 0.3,
                                     "paper-8ipb")
            with db.lo.open(designator) as obj:
                obj.seek(7 * workload.frame_size)
                expected = frame_bytes(7, 0.3, workload.frame_size,
                                       seed=workload.seed)
                assert obj.read(workload.frame_size) == expected
        finally:
            db.close()

    def test_deterministic_across_runs(self, workload):
        sizes = []
        for _ in range(2):
            db = _fresh_db(SMALL)
            try:
                designator = load_object(db, "fchunk", workload, 0.5,
                                         "paper-20ipb")
                sizes.append(db.lo.storage_breakdown(designator)["data"])
            finally:
                db.close()
        assert sizes[0] == sizes[1]


class TestRunOperation:
    def test_read_op_reads_every_frame(self, workload):
        db = _fresh_db(SMALL)
        try:
            designator = load_object(db, "fchunk", workload, 0.0, "none")
            cool_down(db)
            op = workload.operations()[0]
            seconds = run_operation(db, designator, op, workload, 0.0, 0)
            assert seconds > 0
        finally:
            db.close()

    def test_write_op_changes_contents(self, workload):
        from repro.bench.datasets import frame_bytes
        db = _fresh_db(SMALL)
        try:
            designator = load_object(db, "fchunk", workload, 0.0, "none")
            op = workload.operations()[1]  # sequential write
            run_operation(db, designator, op, workload, 0.0, generation=3)
            with db.lo.open(designator) as obj:
                frame_no = op.frames[0]
                obj.seek(frame_no * workload.frame_size)
                assert obj.read(workload.frame_size) == frame_bytes(
                    frame_no, 0.0, workload.frame_size, generation=3,
                    seed=workload.seed)
        finally:
            db.close()

    def test_write_op_is_transactional(self, workload):
        db = _fresh_db(SMALL)
        try:
            designator = load_object(db, "fchunk", workload, 0.0, "none")
            # Writes happen inside a committed transaction.
            op = workload.operations()[3]
            run_operation(db, designator, op, workload, 0.0, 1)
            assert db.tm.active_count() == 0
        finally:
            db.close()


class TestCoolDown:
    def test_empties_the_pool(self, workload):
        db = _fresh_db(SMALL)
        try:
            designator = load_object(db, "fchunk", workload, 0.0, "none")
            cool_down(db)
            assert len(db.bufmgr._frames) == 0
            # Everything is still readable afterwards.
            with db.lo.open(designator) as obj:
                assert obj.size() == workload.object_size
        finally:
            db.close()

    def test_archives_worm_data(self, workload):
        db = _fresh_db(SMALL)
        try:
            load_object(db, "fchunk", workload, 0.0, "none", smgr="worm")
            cool_down(db)
            worm = db.storage_manager("worm")
            assert worm.base.media_blocks_used() > 0
            assert worm.stats()["staged_blocks"] == 0
        finally:
            db.close()


class TestConfigScaling:
    def test_pool_scales_with_floor(self):
        assert BenchConfig(scale=1.0).scaled_pool() == 256
        assert BenchConfig(scale=0.5).scaled_pool() == 128
        assert BenchConfig(scale=0.01).scaled_pool() == 64  # the floor

    def test_worm_cache_scales(self):
        assert BenchConfig(scale=1.0).scaled_worm_cache() == 3200
        assert BenchConfig(scale=0.1).scaled_worm_cache() == 320
