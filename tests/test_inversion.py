"""Tests for the Inversion file system (§8)."""

import pytest

from repro.db import Database
from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InversionError,
    NotADirectory,
)


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


@pytest.fixture
def fs(db):
    return db.inversion


class TestBasics:
    def test_root_exists(self, fs):
        assert fs.exists("/")
        assert fs.is_dir("/")
        assert fs.listdir("/") == []

    def test_create_and_read_file(self, db, fs):
        with db.begin() as txn:
            with fs.create(txn, "/hello.txt") as handle:
                handle.write(b"hello inversion")
        assert fs.read_file("/hello.txt") == b"hello inversion"
        assert fs.listdir("/") == ["hello.txt"]

    def test_nested_directories(self, db, fs):
        with db.begin() as txn:
            fs.mkdir(txn, "/usr")
            fs.mkdir(txn, "/usr/joe")
            with fs.create(txn, "/usr/joe/photo") as handle:
                handle.write(b"\x89PNG")
        assert fs.read_file("/usr/joe/photo") == b"\x89PNG"
        assert fs.listdir("/usr") == ["joe"]

    def test_duplicate_path_rejected(self, db, fs):
        with db.begin() as txn:
            fs.create(txn, "/f").close()
            with pytest.raises(FileExists):
                fs.create(txn, "/f")
            with pytest.raises(FileExists):
                fs.mkdir(txn, "/f")

    def test_missing_parent_rejected(self, db, fs):
        with db.begin() as txn:
            with pytest.raises(FileNotFound):
                fs.create(txn, "/no/such/dir/file")

    def test_file_as_directory_rejected(self, db, fs):
        with db.begin() as txn:
            fs.create(txn, "/plain").close()
            with pytest.raises(NotADirectory):
                fs.create(txn, "/plain/child")

    def test_relative_path_rejected(self, fs):
        with pytest.raises(InversionError):
            fs.exists("relative/path")

    def test_open_missing(self, fs):
        with pytest.raises(FileNotFound):
            fs.open("/ghost")

    def test_open_directory_rejected(self, db, fs):
        with db.begin() as txn:
            fs.mkdir(txn, "/d")
        with pytest.raises(InversionError):
            fs.open("/d")

    def test_write_file_convenience(self, db, fs):
        with db.begin() as txn:
            fs.write_file(txn, "/conv", b"first")
        with db.begin() as txn:
            fs.write_file(txn, "/conv", b"SECOND")
        assert fs.read_file("/conv") == b"SECOND"


class TestFileIO:
    def test_seek_read_write(self, db, fs):
        with db.begin() as txn:
            with fs.create(txn, "/data") as handle:
                handle.write(b"0123456789" * 1000)
        with db.begin() as txn:
            with fs.open("/data", txn, "rw") as handle:
                handle.seek(5000)
                handle.write(b"XXXX")
        with fs.open("/data") as handle:
            handle.seek(4998)
            assert handle.read(8) == b"89XXXX45"

    def test_big_file_spans_chunks(self, db, fs):
        payload = bytes(range(256)) * 256  # 64 KB
        with db.begin() as txn:
            with fs.create(txn, "/big") as handle:
                handle.write(payload)
        assert fs.read_file("/big") == payload


class TestMetadata:
    def test_stat_file(self, db, fs):
        with db.begin() as txn:
            with fs.create(txn, "/f") as handle:
                handle.write(b"12345")
        info = fs.stat("/f")
        assert info["size"] == 5
        assert info["kind"] == "f"
        assert info["owner"] == "postgres"
        assert info["ctime"] <= info["mtime"]

    def test_stat_directory(self, db, fs):
        with db.begin() as txn:
            fs.mkdir(txn, "/d")
        info = fs.stat("/d")
        assert info["kind"] == "d"
        assert info["size"] == 0

    def test_mtime_updated_on_write(self, db, fs):
        with db.begin() as txn:
            fs.create(txn, "/f").close()
        before = fs.stat("/f")["mtime"]
        with db.begin() as txn:
            with fs.open("/f", txn, "rw") as handle:
                handle.write(b"new data")
        assert fs.stat("/f")["mtime"] > before

    def test_queryable_directory_class(self, db, fs):
        """§8: 'a user can use the query language to perform searches on
        the DIRECTORY class' — here via the scan API."""
        with db.begin() as txn:
            fs.mkdir(txn, "/docs")
            fs.create(txn, "/docs/a.txt").close()
            fs.create(txn, "/docs/b.txt").close()
        names = {t.values[0] for t in db.scan("DIRECTORY")}
        assert {"docs", "a.txt", "b.txt"} <= names


class TestRemoveRename:
    def test_unlink(self, db, fs):
        with db.begin() as txn:
            fs.create(txn, "/doomed").close()
        with db.begin() as txn:
            fs.unlink(txn, "/doomed")
        assert not fs.exists("/doomed")

    def test_unlink_directory_rejected(self, db, fs):
        with db.begin() as txn:
            fs.mkdir(txn, "/d")
            with pytest.raises(InversionError):
                fs.unlink(txn, "/d")

    def test_rmdir(self, db, fs):
        with db.begin() as txn:
            fs.mkdir(txn, "/d")
        with db.begin() as txn:
            fs.rmdir(txn, "/d")
        assert not fs.exists("/d")

    def test_rmdir_nonempty_rejected(self, db, fs):
        with db.begin() as txn:
            fs.mkdir(txn, "/d")
            fs.create(txn, "/d/f").close()
            with pytest.raises(DirectoryNotEmpty):
                fs.rmdir(txn, "/d")

    def test_rename_file(self, db, fs):
        with db.begin() as txn:
            fs.write_file(txn, "/old", b"contents")
        with db.begin() as txn:
            fs.rename(txn, "/old", "/new")
        assert not fs.exists("/old")
        assert fs.read_file("/new") == b"contents"

    def test_rename_into_subdir(self, db, fs):
        with db.begin() as txn:
            fs.mkdir(txn, "/d")
            fs.write_file(txn, "/f", b"x")
        with db.begin() as txn:
            fs.rename(txn, "/f", "/d/f2")
        assert fs.read_file("/d/f2") == b"x"

    def test_rename_onto_existing_rejected(self, db, fs):
        with db.begin() as txn:
            fs.write_file(txn, "/a", b"1")
            fs.write_file(txn, "/b", b"2")
            with pytest.raises(FileExists):
                fs.rename(txn, "/a", "/b")


class TestTransactions:
    """§8: 'transaction-protected access to conventional file data'."""

    def test_abort_rolls_back_creation(self, db, fs):
        txn = db.begin()
        fs.create(txn, "/ghost").close()
        txn.abort()
        assert not fs.exists("/ghost")

    def test_abort_rolls_back_contents(self, db, fs):
        with db.begin() as txn:
            fs.write_file(txn, "/f", b"stable")
        txn = db.begin()
        with fs.open("/f", txn, "rw") as handle:
            handle.write(b"DOOMED")
        txn.abort()
        assert fs.read_file("/f") == b"stable"

    def test_abort_rolls_back_rename(self, db, fs):
        with db.begin() as txn:
            fs.write_file(txn, "/a", b"x")
        txn = db.begin()
        fs.rename(txn, "/a", "/b")
        txn.abort()
        assert fs.exists("/a")
        assert not fs.exists("/b")

    def test_abort_rolls_back_unlink(self, db, fs):
        with db.begin() as txn:
            fs.write_file(txn, "/a", b"x")
        txn = db.begin()
        fs.unlink(txn, "/a")
        txn.abort()
        assert fs.read_file("/a") == b"x"


class TestTimeTravel:
    """§8: time travel over whole file-system states."""

    def test_historical_file_contents(self, db, fs):
        with db.begin() as txn:
            fs.write_file(txn, "/f", b"version 1")
        t1 = db.clock.now()
        with db.begin() as txn:
            with fs.open("/f", txn, "rw") as handle:
                handle.write(b"version 2")
        assert fs.read_file("/f", as_of=t1) == b"version 1"
        assert fs.read_file("/f") == b"version 2"

    def test_historical_directory_listing(self, db, fs):
        with db.begin() as txn:
            fs.write_file(txn, "/early", b"")
        t1 = db.clock.now()
        with db.begin() as txn:
            fs.write_file(txn, "/late", b"")
        assert fs.listdir("/", as_of=t1) == ["early"]
        assert fs.listdir("/") == ["early", "late"]

    def test_unlinked_file_readable_in_the_past(self, db, fs):
        with db.begin() as txn:
            fs.write_file(txn, "/f", b"was here")
        t1 = db.clock.now()
        with db.begin() as txn:
            fs.unlink(txn, "/f")
        assert not fs.exists("/f")
        assert fs.read_file("/f", as_of=t1) == b"was here"

    def test_rename_history(self, db, fs):
        with db.begin() as txn:
            fs.write_file(txn, "/before", b"x")
        t1 = db.clock.now()
        with db.begin() as txn:
            fs.rename(txn, "/before", "/after")
        assert fs.exists("/before", as_of=t1)
        assert not fs.exists("/after", as_of=t1)
        assert fs.exists("/after")


class TestConfigurations:
    def test_vsegment_backed_files(self, db):
        from repro.inversion.filesystem import InversionFileSystem
        fs = InversionFileSystem(db, impl="vsegment",
                                 compression="zero-rle")
        with db.begin() as txn:
            fs.write_file(txn, "/compressed", b"abc" + bytes(10_000))
        assert fs.read_file("/compressed") == b"abc" + bytes(10_000)

    def test_ufile_backing_rejected(self, db):
        from repro.inversion.filesystem import InversionFileSystem
        with pytest.raises(InversionError):
            InversionFileSystem(db, impl="ufile")

    def test_worm_backed_files(self, db):
        """§10: any storage manager automatically supports Inversion."""
        from repro.inversion.filesystem import InversionFileSystem
        fs = InversionFileSystem(db, smgr="worm")
        with db.begin() as txn:
            fs.write_file(txn, "/archive", b"permanent record")
        assert fs.read_file("/archive") == b"permanent record"

    def test_walk(self, db, fs):
        with db.begin() as txn:
            fs.mkdir(txn, "/a")
            fs.mkdir(txn, "/a/b")
            fs.write_file(txn, "/a/f1", b"")
            fs.write_file(txn, "/a/b/f2", b"")
            fs.write_file(txn, "/top", b"")
        tree = {path: (dirs, files) for path, dirs, files in fs.walk()}
        assert tree["/"] == (["a"], ["top"])
        assert tree["/a"] == (["b"], ["f1"])
        assert tree["/a/b"] == ([], ["f2"])


class TestImportExport:
    def test_roundtrip_through_real_directories(self, db, fs, tmp_path):
        source = tmp_path / "src"
        (source / "sub").mkdir(parents=True)
        (source / "top.txt").write_bytes(b"top contents")
        (source / "sub" / "inner.bin").write_bytes(b"\x00\x01\x02")
        with db.begin() as txn:
            fs.mkdir(txn, "/imported")
            copied = fs.import_tree(txn, str(source), "/imported")
        assert copied == 2
        assert fs.read_file("/imported/top.txt") == b"top contents"
        assert fs.read_file("/imported/sub/inner.bin") == b"\x00\x01\x02"

        target = tmp_path / "out"
        exported = fs.export_tree("/imported", str(target))
        assert exported == 2
        assert (target / "top.txt").read_bytes() == b"top contents"
        assert (target / "sub" / "inner.bin").read_bytes() == b"\x00\x01\x02"

    def test_point_in_time_export(self, db, fs, tmp_path):
        with db.begin() as txn:
            fs.write_file(txn, "/report", b"draft")
        stamp = db.clock.now()
        with db.begin() as txn:
            fs.write_file(txn, "/report", b"final")
        target = tmp_path / "backup"
        fs.export_tree("/", str(target), as_of=stamp)
        assert (target / "report").read_bytes() == b"draft"

    def test_import_is_transactional(self, db, fs, tmp_path):
        source = tmp_path / "src"
        source.mkdir()
        (source / "a").write_bytes(b"a")
        txn = db.begin()
        fs.import_tree(txn, str(source), "/")
        txn.abort()
        assert not fs.exists("/a")


class TestTimeTravelChains:
    """Satellite coverage: as_of across rename chains and name reuse."""

    def test_rename_chain_every_epoch_readable(self, db, fs):
        """A file renamed through several names: at every recorded
        instant exactly one name resolves, always to the same bytes."""
        with db.begin() as txn:
            fs.write_file(txn, "/a", b"chained")
        chain = ["/a", "/b", "/c", "/d"]
        stamps = [db.clock.now()]
        for src, dst in zip(chain, chain[1:]):
            db.clock.advance(1.0, "think")
            with db.begin() as txn:
                fs.rename(txn, src, dst)
            stamps.append(db.clock.now())
        for stamp, expected in zip(stamps, chain):
            for name in chain:
                if name == expected:
                    assert fs.read_file(name, as_of=stamp) == b"chained"
                else:
                    assert not fs.exists(name, as_of=stamp)

    def test_rename_chain_of_directory_with_contents(self, db, fs):
        with db.begin() as txn:
            fs.mkdir(txn, "/d1")
            fs.write_file(txn, "/d1/f", b"inside")
        t1 = db.clock.now()
        with db.begin() as txn:
            fs.rename(txn, "/d1", "/d2")
        t2 = db.clock.now()
        with db.begin() as txn:
            fs.rename(txn, "/d2", "/d3")
        assert fs.read_file("/d1/f", as_of=t1) == b"inside"
        assert fs.read_file("/d2/f", as_of=t2) == b"inside"
        assert fs.read_file("/d3/f") == b"inside"
        assert not fs.exists("/d1") and not fs.exists("/d2")

    def test_unlink_recreate_epochs_keep_distinct_files(self, db, fs):
        """One path, two generations of file: each as_of instant sees
        the generation (contents, mode, file id) alive at that time."""
        with db.begin() as txn:
            fs.create(txn, "/p", mode=0o600).close()
            fs.write_file(txn, "/p", b"gen one")
        t1 = db.clock.now()
        db.clock.advance(1.0, "think")
        with db.begin() as txn:
            fs.unlink(txn, "/p")
        t_gone = db.clock.now()
        db.clock.advance(1.0, "think")
        with db.begin() as txn:
            fs.create(txn, "/p", mode=0o640).close()
            fs.write_file(txn, "/p", b"gen two")
        st1 = fs.stat("/p", as_of=t1)
        st2 = fs.stat("/p")
        assert fs.read_file("/p", as_of=t1) == b"gen one"
        assert not fs.exists("/p", as_of=t_gone)
        assert fs.read_file("/p") == b"gen two"
        assert st1["file_id"] != st2["file_id"]
        assert (st1["mode"], st2["mode"]) == (0o600, 0o640)

    def test_unlink_recreate_as_directory(self, db, fs):
        with db.begin() as txn:
            fs.write_file(txn, "/p", b"was a file")
        t1 = db.clock.now()
        with db.begin() as txn:
            fs.unlink(txn, "/p")
            fs.mkdir(txn, "/p")
            fs.write_file(txn, "/p/child", b"now a dir")
        assert not fs.is_dir("/p", as_of=t1)
        assert fs.read_file("/p", as_of=t1) == b"was a file"
        assert fs.is_dir("/p")
        assert fs.read_file("/p/child") == b"now a dir"


class TestImportExportFidelity:
    """Satellite coverage: round-trips preserve empty dirs + mode bits."""

    def test_roundtrip_empty_dirs_and_modes(self, db, fs, tmp_path):
        source = tmp_path / "src"
        (source / "empty").mkdir(parents=True)
        (source / "locked").mkdir()
        (source / "locked" / "secret").write_bytes(b"s3cr3t")
        (source / "script").write_bytes(b"#!/bin/sh\n")
        (source / "script").chmod(0o755)
        (source / "locked" / "secret").chmod(0o600)
        (source / "locked").chmod(0o700)

        with db.begin() as txn:
            fs.mkdir(txn, "/in")
            copied = fs.import_tree(txn, str(source), "/in")
        assert copied == 2
        assert fs.is_dir("/in/empty")
        assert fs.stat("/in/script")["mode"] == 0o755
        assert fs.stat("/in/locked")["mode"] == 0o700
        assert fs.stat("/in/locked/secret")["mode"] == 0o600

        target = tmp_path / "out"
        exported = fs.export_tree("/in", str(target))
        assert exported == 2
        assert (target / "empty").is_dir()
        assert not any((target / "empty").iterdir())
        assert (target / "script").stat().st_mode & 0o7777 == 0o755
        assert (target / "locked").stat().st_mode & 0o7777 == 0o700
        assert (target / "locked" / "secret").read_bytes() == b"s3cr3t"
        assert (target / "locked" / "secret").stat().st_mode & 0o7777 \
            == 0o600

    def test_export_restrictive_dir_mode_applied_last(self, db, fs,
                                                      tmp_path):
        """A directory exported as r-x must still receive its children:
        the chmod happens after the subtree is written."""
        with db.begin() as txn:
            fs.mkdir(txn, "/ro", mode=0o555)
            fs.write_file(txn, "/ro/f", b"x")
        target = tmp_path / "out"
        fs.export_tree("/", str(target))
        assert (target / "ro" / "f").read_bytes() == b"x"
        assert (target / "ro").stat().st_mode & 0o7777 == 0o555
        (target / "ro").chmod(0o755)  # let pytest clean tmp_path up
