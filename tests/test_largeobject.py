"""Tests for the four large-object implementations (§6 of the paper).

The parametrized suite verifies the shared file-oriented interface on all
four; the per-implementation classes verify the paper's differentiated
claims — transaction semantics, time travel, compression behaviour.
"""

import pytest

from repro.db import Database
from repro.errors import (
    InvalidSeek,
    LargeObjectError,
    LargeObjectNotFound,
    NoActiveTransaction,
    ObjectClosedError,
    ReadOnlyObject,
)


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


def make_object(db, txn, impl):
    if impl == "ufile":
        return db.lo.create(txn, "ufile", path="/usr/joe")
    return db.lo.create(txn, impl)


ALL_IMPLS = ["ufile", "pfile", "fchunk", "vsegment"]
CHUNKED = ["fchunk", "vsegment"]


@pytest.mark.parametrize("impl", ALL_IMPLS)
class TestFileInterface:
    """§4: the interface all implementations share."""

    def test_write_then_read(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"hello large world")
                obj.seek(0)
                assert obj.read() == b"hello large world"

    def test_seek_and_partial_read(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"0123456789")
                obj.seek(3)
                assert obj.read(4) == b"3456"
                assert obj.tell() == 7

    def test_seek_whence(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"abcdef")
                assert obj.seek(-2, 2) == 4  # SEEK_END
                assert obj.read() == b"ef"
                obj.seek(1)
                assert obj.seek(2, 1) == 3  # SEEK_CUR
                assert obj.read(1) == b"d"

    def test_negative_seek_rejected(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                with pytest.raises(InvalidSeek):
                    obj.seek(-1)

    def test_read_past_eof_is_short(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"tiny")
                obj.seek(2)
                assert obj.read(100) == b"ny"
                assert obj.read(10) == b""

    def test_overwrite_middle(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"aaaaaaaaaa")
                obj.seek(4)
                obj.write(b"BB")
                obj.seek(0)
                assert obj.read() == b"aaaaBBaaaa"

    def test_write_past_eof_zero_fills(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"ab")
                obj.seek(6)
                obj.write(b"cd")
                obj.seek(0)
                assert obj.read() == b"ab\x00\x00\x00\x00cd"
                assert obj.size() == 8

    def test_size_tracks_writes(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                assert obj.size() == 0
                obj.write(b"x" * 100)
                assert obj.size() == 100
                obj.seek(50)
                obj.write(b"y" * 10)
                assert obj.size() == 100  # overwrite does not grow

    def test_read_only_mode_enforced(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"data")
            with db.lo.open(designator, txn, "r") as obj:
                with pytest.raises(ReadOnlyObject):
                    obj.write(b"nope")

    def test_closed_descriptor_rejected(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            obj = db.lo.open(designator, txn, "rw")
            obj.close()
            with pytest.raises(ObjectClosedError):
                obj.read()
            obj.close()  # idempotent

    def test_large_multichunk_payload(self, db, impl):
        payload = bytes(range(256)) * 150  # 38400 bytes, > 4 chunks
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(payload)
                obj.seek(0)
                assert obj.read() == payload
                obj.seek(8000 - 3)  # straddle a chunk boundary
                assert obj.read(6) == payload[7997:8003]

    def test_unlink(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            assert db.lo.exists(designator)
            db.lo.unlink(txn, designator)
            assert not db.lo.exists(designator)

    def test_implementation_reported(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            assert db.lo.implementation(designator) == impl

    def test_copy_between_objects(self, db, impl):
        with db.begin() as txn:
            src = make_object(db, txn, impl)
            dst = db.lo.create(txn, "fchunk")
            with db.lo.open(src, txn, "rw") as obj:
                obj.write(b"payload to copy" * 100)
            with db.lo.open(src, txn) as source, \
                    db.lo.open(dst, txn, "rw") as sink:
                copied = sink.copy_from(source)
            assert copied == 1500
            with db.lo.open(dst, txn) as sink:
                assert sink.read() == b"payload to copy" * 100


@pytest.mark.parametrize("impl", CHUNKED)
class TestChunkedTransactions:
    """§6.3/§6.4: transactions come for free from no-overwrite storage."""

    def test_abort_rolls_back_creation(self, db, impl):
        txn = db.begin()
        designator = make_object(db, txn, impl)
        txn.abort()
        assert not db.lo.exists(designator)

    def test_abort_rolls_back_writes(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"committed state")
        txn = db.begin()
        with db.lo.open(designator, txn, "rw") as obj:
            obj.seek(0)
            obj.write(b"SCRIBBLED OVER!")
        txn.abort()
        with db.lo.open(designator) as obj:
            assert obj.read() == b"committed state"

    def test_abort_rolls_back_size(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"12345")
        txn = db.begin()
        with db.lo.open(designator, txn, "rw") as obj:
            obj.seek(0, 2)
            obj.write(b"extension")
        txn.abort()
        with db.lo.open(designator) as obj:
            assert obj.size() == 5

    def test_uncommitted_writes_invisible_to_others(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"public")
        writer = db.begin()
        with db.lo.open(designator, writer, "rw") as obj:
            obj.seek(0)
            obj.write(b"hidden")
        # A detached reader sees the committed state only.
        with db.lo.open(designator) as obj:
            assert obj.read() == b"public"
        writer.commit()
        with db.lo.open(designator) as obj:
            assert obj.read() == b"hidden"

    def test_write_requires_transaction(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
        with pytest.raises(NoActiveTransaction):
            db.lo.open(designator, None, "rw")

    def test_read_without_transaction_ok(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"readable")
        with db.lo.open(designator) as obj:
            assert obj.read() == b"readable"


@pytest.mark.parametrize("impl", CHUNKED)
class TestChunkedTimeTravel:
    """§6.3/§6.4: 'time travel is automatically available'."""

    def test_read_historical_contents(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"version one")
        t1 = db.clock.now()
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.seek(0)
                obj.write(b"version TWO")
        t2 = db.clock.now()
        with db.lo.open(designator, as_of=t1) as obj:
            assert obj.read() == b"version one"
        with db.lo.open(designator, as_of=t2) as obj:
            assert obj.read() == b"version TWO"

    def test_historical_size(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"short")
        t1 = db.clock.now()
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.seek(0, 2)
                obj.write(b" plus a long extension")
        with db.lo.open(designator, as_of=t1) as obj:
            assert obj.size() == 5

    def test_historical_open_is_read_only(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
        txn = db.begin()
        with pytest.raises(LargeObjectError):
            db.lo.open(designator, txn, "rw", as_of=1.0)
        txn.abort()

    def test_fine_grained_frame_history(self, db, impl):
        """Replace one 'frame' repeatedly; every version stays readable."""
        frame = 2048
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(bytes(frame * 4))
        stamps = []
        for generation in range(1, 4):
            with db.begin() as txn:
                with db.lo.open(designator, txn, "rw") as obj:
                    obj.seek(frame)
                    obj.write(bytes([generation]) * frame)
            stamps.append((generation, db.clock.now()))
        for generation, stamp in stamps:
            with db.lo.open(designator, as_of=stamp) as obj:
                obj.seek(frame)
                assert obj.read(frame) == bytes([generation]) * frame


class TestUFileDrawbacks:
    """§6.1: the documented drawbacks are real behaviour."""

    def test_writes_survive_abort(self, db):
        txn = db.begin()
        designator = db.lo.create(txn, "ufile", path="/usr/joe")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"not rolled back")
        txn.abort()
        with db.lo.open(designator) as obj:
            assert obj.read() == b"not rolled back"

    def test_no_time_travel(self, db):
        with db.begin() as txn:
            designator = db.lo.create(txn, "ufile", path="/usr/joe")
        with pytest.raises(LargeObjectError):
            db.lo.open(designator, as_of=1.0)

    def test_ufile_needs_path(self, db):
        with db.begin() as txn:
            with pytest.raises(LargeObjectError):
                db.lo.create(txn, "ufile")

    def test_reserved_namespaces_rejected(self, db):
        with pytest.raises(LargeObjectError):
            db.lo.create_ufile("pg_pfiles/7")
        with pytest.raises(LargeObjectError):
            db.lo.create_ufile("lo:7")


class TestPFile:
    """§6.2: DBMS-owned file, single writer."""

    def test_newfilename_allocates_unique_names(self, db):
        with db.begin() as txn:
            a = db.lo.newfilename(txn)
            b = db.lo.newfilename(txn)
        assert a != b
        assert a.startswith("pg_pfiles/")

    def test_single_writer_enforced(self, db):
        with db.begin() as txn:
            designator = db.lo.newfilename(txn)
        first = db.lo.open(designator, None, "rw")
        with pytest.raises(LargeObjectError):
            db.lo.open(designator, None, "rw")
        first.close()
        second = db.lo.open(designator, None, "rw")  # freed on close
        second.close()

    def test_concurrent_readers_allowed(self, db):
        with db.begin() as txn:
            designator = db.lo.newfilename(txn)
        readers = [db.lo.open(designator) for _ in range(3)]
        for reader in readers:
            reader.close()

    def test_allocation_undone_on_abort(self, db):
        txn = db.begin()
        designator = db.lo.newfilename(txn)
        txn.abort()
        assert not db.lo.exists(designator)

    def test_contents_not_transactional(self, db):
        with db.begin() as txn:
            designator = db.lo.newfilename(txn)
        txn = db.begin()
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"sticky")
        txn.abort()
        with db.lo.open(designator) as obj:
            assert obj.read() == b"sticky"


class TestCompression:
    """§6.3/§6.4: per-chunk vs per-segment compression."""

    @pytest.mark.parametrize("impl", CHUNKED)
    @pytest.mark.parametrize("compression", ["zero-rle", "zlib", "byte-rle"])
    def test_roundtrip_compressed(self, db, impl, compression):
        payload = (b"A" * 3000 + bytes(5000)) * 3
        with db.begin() as txn:
            designator = db.lo.create(txn, impl, compression=compression)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(payload)
                obj.seek(0)
                assert obj.read() == payload

    def test_vsegment_saves_space_at_30pct(self, db):
        """§6.4: any reduction is reflected in object size (unlike f-chunk)."""
        # 30%-compressible frames: 70% random-ish bytes + 30% zeros.
        frame = (b"\xa5" * 2868) + bytes(1228)
        payload = frame * 400  # ~1.6 MB
        sizes = {}
        for impl in ("fchunk", "vsegment"):
            with db.begin() as txn:
                designator = db.lo.create(txn, impl,
                                          compression="zero-rle")
                with db.lo.open(designator, txn, "rw") as obj:
                    for i in range(0, len(payload), 4096):
                        obj.write(payload[i:i + 4096])
                sizes[impl] = db.lo.storage_breakdown(designator)["data"]
        # f-chunk at ~30% compression wastes the savings (one chunk/page);
        # v-segment actually shrinks.
        assert sizes["vsegment"] < 0.8 * sizes["fchunk"]

    def test_fchunk_saves_space_at_50pct(self, db):
        """§6.3: two half-size chunks fit one page."""
        frame = (b"\x5a" * 2048) + bytes(2048)  # 50% compressible
        payload = frame * 400
        sizes = {}
        for compression in ("none", "zero-rle"):
            with db.begin() as txn:
                designator = db.lo.create(txn, "fchunk",
                                          compression=compression)
                with db.lo.open(designator, txn, "rw") as obj:
                    for i in range(0, len(payload), 4096):
                        obj.write(payload[i:i + 4096])
                sizes[compression] = \
                    db.lo.storage_breakdown(designator)["data"]
        assert sizes["zero-rle"] <= 0.55 * sizes["none"]

    def test_fchunk_wastes_space_at_30pct(self, db):
        """§6.3/Fig 1: 30% compression saves nothing for f-chunk."""
        frame = (b"\xa5" * 2868) + bytes(1228)
        payload = frame * 250  # 1,024,000 bytes = exactly 128 chunks
        sizes = {}
        for compression in ("none", "zero-rle"):
            with db.begin() as txn:
                designator = db.lo.create(txn, "fchunk",
                                          compression=compression)
                with db.lo.open(designator, txn, "rw") as obj:
                    obj.write(payload)
                sizes[compression] = \
                    db.lo.storage_breakdown(designator)["data"]
        assert sizes["zero-rle"] == sizes["none"]


class TestWormLargeObjects:
    """§7/§9.3: chunked objects on the write-once jukebox."""

    def test_fchunk_on_worm_roundtrip(self, db):
        payload = bytes(range(256)) * 64
        with db.begin() as txn:
            designator = db.lo.create(txn, "fchunk", smgr="worm")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(payload)
        with db.lo.open(designator) as obj:
            assert obj.read() == payload

    def test_worm_cache_serves_rereads(self, db):
        with db.begin() as txn:
            designator = db.lo.create(txn, "fchunk", smgr="worm")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(bytes(100_000))
        worm = db.storage_manager("worm")
        # Push the pages out of the buffer pool so reads hit the smgr.
        from repro.lo.fchunk import chunk_class_name, chunk_index_name
        from repro.lo.manager import designator_oid
        oid = designator_oid(designator)
        db.checkpoint()
        db.bufmgr.drop_file(worm, db.get_class(chunk_class_name(oid)).fileid)
        db.bufmgr.drop_file(worm, db.get_index(chunk_index_name(oid)).fileid)
        with db.lo.open(designator) as obj:
            obj.read()
        assert worm.hit_rate() > 0.5  # data still staged/cached on disk


class TestStorageBreakdown:
    def test_fchunk_breakdown_reports_index(self, db):
        with db.begin() as txn:
            designator = db.lo.create(txn, "fchunk")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(bytes(100_000))
        breakdown = db.lo.storage_breakdown(designator)
        assert breakdown["data"] >= 100_000
        assert breakdown["btree"] > 0

    def test_vsegment_breakdown_reports_map(self, db):
        with db.begin() as txn:
            designator = db.lo.create(txn, "vsegment")
            with db.lo.open(designator, txn, "rw") as obj:
                for i in range(25):
                    obj.write(bytes(4096))
        breakdown = db.lo.storage_breakdown(designator)
        assert set(breakdown) == {"data", "segment_map", "btree",
                                  "store_btree"}
        assert breakdown["data"] >= 25 * 4096

    def test_native_breakdown(self, db):
        with db.begin() as txn:
            designator = db.lo.create(txn, "pfile")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(bytes(12345))
        assert db.lo.storage_breakdown(designator) == {"data": 12345}


class TestManagerEdgeCases:
    def test_open_unknown_designator(self, db):
        with pytest.raises(LargeObjectNotFound):
            db.lo.open("no/such/file")
        from repro.errors import LargeObjectNotFound as LONF
        with pytest.raises(LONF):
            db.lo.open("lo:999999")

    def test_malformed_designator(self, db):
        with pytest.raises(LargeObjectError):
            db.lo.open("lo:xyz")

    def test_bad_mode(self, db):
        with pytest.raises(LargeObjectError):
            db.lo.open("anything", mode="a+")

    def test_unknown_compression_rejected_at_create(self, db):
        from repro.errors import CompressionError
        txn = db.begin()
        with pytest.raises(CompressionError):
            db.lo.create(txn, "fchunk", compression="snappy")
        txn.abort()

    def test_create_for_type(self, db):
        db.create_large_type("image", storage="v-segment",
                             compression="zero-rle")
        with db.begin() as txn:
            designator = db.lo.create_for_type(txn, "image")
            assert db.lo.implementation(designator) == "vsegment"

    def test_create_for_small_type_rejected(self, db):
        with db.begin() as txn:
            with pytest.raises(LargeObjectError):
                db.lo.create_for_type(txn, "int4")


class TestTemporaryObjects:
    def test_unkept_temporaries_collected(self, db):
        from repro.lo.temporary import TemporaryObjects
        txn = db.begin()
        temps = TemporaryObjects(db, txn)
        designator = temps.register(db.lo.create(txn, "fchunk"))
        assert temps.collect() == 1
        assert not db.lo.exists(designator)
        txn.commit()

    def test_kept_temporaries_survive(self, db):
        from repro.lo.temporary import TemporaryObjects
        txn = db.begin()
        temps = TemporaryObjects(db, txn)
        designator = temps.register(db.lo.create(txn, "fchunk"))
        temps.keep(designator)
        assert temps.collect() == 0
        assert db.lo.exists(designator)
        txn.commit()

    def test_scope_collects_on_exit(self, db):
        from repro.lo.temporary import TemporaryObjects
        txn = db.begin()
        with TemporaryObjects(db, txn) as temps:
            designator = temps.register(db.lo.create(txn, "fchunk"))
        assert not db.lo.exists(designator)
        txn.commit()


class TestStat:
    def test_stat_chunked(self, db):
        with db.begin() as txn:
            designator = db.lo.create(txn, "vsegment",
                                      compression="zero-rle")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(bytes(5000))
        info = db.lo.stat(designator)
        assert info["impl"] == "vsegment"
        assert info["compression"] == "zero-rle"
        assert info["size"] == 5000

    def test_stat_native(self, db):
        with db.begin() as txn:
            designator = db.lo.newfilename(txn)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"abc")
        info = db.lo.stat(designator)
        assert info["impl"] == "pfile"
        assert info["smgr"] == "native"
        assert info["size"] == 3


@pytest.mark.parametrize("impl", ALL_IMPLS)
class TestTruncate:
    def test_shrink(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"0123456789")
                assert obj.truncate(4) == 4
                assert obj.size() == 4
                obj.seek(0)
                assert obj.read() == b"0123"

    def test_shrink_to_zero(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"contents")
                obj.truncate(0)
                assert obj.size() == 0
                obj.seek(0)
                assert obj.read() == b""

    def test_grow_pads_with_zeros(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"ab")
                obj.truncate(6)
                obj.seek(0)
                assert obj.read() == b"ab\x00\x00\x00\x00"

    def test_default_truncates_at_position(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"0123456789")
                obj.seek(3)
                assert obj.truncate() == 3
                assert obj.size() == 3

    def test_no_stale_bytes_after_regrow(self, db, impl):
        """The truncated tail must never resurface on extension."""
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"\xff" * 20_000)  # spans multiple chunks
                obj.truncate(5_000)
                obj.seek(19_999)
                obj.write(b"z")  # regrow to 20,000
                obj.seek(4_000)
                data = obj.read(4_000)
                assert data == b"\xff" * 1_000 + bytes(3_000)

    def test_read_only_truncate_rejected(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"x")
            with db.lo.open(designator, txn, "r") as obj:
                with pytest.raises(ReadOnlyObject):
                    obj.truncate(0)

    def test_negative_truncate_rejected(self, db, impl):
        with db.begin() as txn:
            designator = make_object(db, txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                with pytest.raises(InvalidSeek):
                    obj.truncate(-1)


class TestTruncateHistory:
    @pytest.mark.parametrize("impl", CHUNKED)
    def test_truncated_tail_readable_in_the_past(self, db, impl):
        with db.begin() as txn:
            designator = db.lo.create(txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"A" * 12_000)
        stamp = db.clock.now()
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                obj.truncate(100)
        with db.lo.open(designator) as obj:
            assert obj.size() == 100
        with db.lo.open(designator, as_of=stamp) as obj:
            assert obj.size() == 12_000
            obj.seek(11_000)
            assert obj.read(10) == b"A" * 10

    @pytest.mark.parametrize("impl", CHUNKED)
    def test_truncate_rolls_back_on_abort(self, db, impl):
        with db.begin() as txn:
            designator = db.lo.create(txn, impl)
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"B" * 9_000)
        txn = db.begin()
        with db.lo.open(designator, txn, "rw") as obj:
            obj.truncate(5)
        txn.abort()
        with db.lo.open(designator) as obj:
            assert obj.size() == 9_000
            assert obj.read(3) == b"BBB"
