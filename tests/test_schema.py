"""Unit and property tests for schemas and the record codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.access.schema import Attribute, Schema, scalar_codec
from repro.errors import SchemaError


def emp_schema():
    return Schema([
        Attribute("name", "text"),
        Attribute("salary", "float8"),
        Attribute("age", "int4"),
        Attribute("photo", "bytea"),
    ])


class TestSchemaBasics:
    def test_names_and_positions(self):
        schema = emp_schema()
        assert schema.names() == ["name", "salary", "age", "photo"]
        assert schema.position("age") == 2

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            emp_schema().position("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("a", "int4"), Attribute("a", "text")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_unknown_type_rejected(self):
        schema = Schema([Attribute("x", "imaginary")])
        with pytest.raises(SchemaError):
            schema.encode(("v",))

    def test_storage_type_override(self):
        attr = Attribute("picture", "image", storage_type="oid")
        assert attr.codec().name == "oid"


class TestRecordCodec:
    def test_roundtrip(self):
        schema = emp_schema()
        record = ("Joe", 50_000.0, 42, b"\x89PNG...")
        assert schema.decode(schema.encode(record)) == record

    def test_nulls(self):
        schema = emp_schema()
        record = ("Joe", None, None, b"")
        assert schema.decode(schema.encode(record)) == record

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError):
            emp_schema().encode(("Joe", 1.0))

    def test_type_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            emp_schema().encode((42, 1.0, 1, b""))

    def test_int4_range_checked(self):
        schema = Schema([Attribute("x", "int4")])
        with pytest.raises(SchemaError):
            schema.encode((2**40,))

    def test_int8_roundtrip_large(self):
        schema = Schema([Attribute("x", "int8")])
        assert schema.decode(schema.encode((2**62,))) == (2**62,)

    def test_bool(self):
        schema = Schema([Attribute("x", "bool")])
        assert schema.decode(schema.encode((True,))) == (True,)
        assert schema.decode(schema.encode((False,))) == (False,)

    def test_unicode_text(self):
        schema = Schema([Attribute("x", "text")])
        value = ("naïve — ünïcodé ✓",)
        assert schema.decode(schema.encode(value)) == value

    def test_truncated_record_rejected(self):
        schema = emp_schema()
        data = schema.encode(("Joe", 1.0, 2, b"abc"))
        with pytest.raises(SchemaError):
            schema.decode(data[:-2])

    def test_arity_mismatch_on_decode(self):
        one = Schema([Attribute("x", "int4")])
        two = Schema([Attribute("x", "int4"), Attribute("y", "int4")])
        with pytest.raises(SchemaError):
            two.decode(one.encode((1,)))

    def test_catalog_roundtrip(self):
        schema = emp_schema()
        assert Schema.from_dict(schema.to_dict()) == schema


class TestScalarCodecs:
    @pytest.mark.parametrize("name,value", [
        ("int4", -2**31), ("int4", 2**31 - 1),
        ("int8", -2**63), ("int8", 2**63 - 1),
        ("oid", 123456789), ("float8", 3.14159),
        ("text", ""), ("text", "hello"),
        ("name", "EMP"), ("bytea", b"\x00\xff" * 10),
    ])
    def test_roundtrip(self, name, value):
        codec = scalar_codec(name)
        assert codec.decode(codec.encode(value)) == value

    def test_unknown_codec(self):
        with pytest.raises(SchemaError):
            scalar_codec("varchar2")


record_strategy = st.tuples(
    st.one_of(st.none(), st.text(max_size=50)),
    st.one_of(st.none(), st.floats(allow_nan=False)),
    st.one_of(st.none(), st.integers(-2**31, 2**31 - 1)),
    st.one_of(st.none(), st.binary(max_size=200)),
)


@given(record_strategy)
def test_property_record_roundtrip(record):
    schema = emp_schema()
    assert schema.decode(schema.encode(record)) == record


@given(st.lists(record_strategy, min_size=1, max_size=5))
def test_property_concatenation_safe(records):
    """Encoded records are self-delimiting enough to never cross-decode."""
    schema = emp_schema()
    for record in records:
        encoded = schema.encode(record)
        assert schema.decode(encoded) == record


# -- batch codecs (encode_many/decode_many) ------------------------------------------

def wide_schema():
    return Schema([
        Attribute("a", "int4"),
        Attribute("b", "int8"),
        Attribute("c", "oid"),
        Attribute("d", "float8"),
        Attribute("e", "bool"),
        Attribute("f", "text"),
        Attribute("g", "name"),
        Attribute("h", "bytea"),
    ])


wide_record_strategy = st.tuples(
    st.one_of(st.none(), st.integers(-2**31, 2**31 - 1)),
    st.one_of(st.none(), st.integers(-2**63, 2**63 - 1)),
    st.one_of(st.none(), st.integers(0, 2**31 - 1)),
    st.one_of(st.none(), st.floats(allow_nan=False)),
    st.one_of(st.none(), st.booleans()),
    st.one_of(st.none(), st.text(max_size=60)),
    st.one_of(st.none(), st.text(max_size=16)),
    st.one_of(st.none(), st.binary(max_size=300)),
)


class TestBatchCodecs:
    @given(st.lists(wide_record_strategy, max_size=8))
    def test_encode_many_matches_single(self, records):
        schema = wide_schema()
        assert schema.encode_many(records) == [
            schema.encode(record) for record in records]

    @given(st.lists(wide_record_strategy, max_size=8))
    def test_decode_many_matches_single(self, records):
        schema = wide_schema()
        images = schema.encode_many(records)
        assert schema.decode_many(images) == [
            schema.decode(image) for image in images]
        assert schema.decode_many(images) == records

    @given(st.lists(wide_record_strategy, min_size=1, max_size=6))
    def test_batch_agrees_with_tuple_serialization(self, records):
        """The batch codecs and serialize/deserialize_tuple round-trip
        through the same wire format, including via memoryviews."""
        from repro.access.tuples import (TID, deserialize_tuple,
                                         serialize_tuple)
        schema = wide_schema()
        for i, record in enumerate(records):
            image = serialize_tuple(schema, xmin=7, oid=100 + i,
                                    values=record)
            tup = deserialize_tuple(schema, memoryview(image), TID(0, i))
            assert tup.values == record
            assert [tup.values] == schema.decode_many(
                [image[32:]])  # past the fixed tuple header

    @given(st.lists(wide_record_strategy, max_size=6))
    def test_decode_many_accepts_memoryviews(self, records):
        schema = wide_schema()
        images = schema.encode_many(records)
        views = [memoryview(image) for image in images]
        assert schema.decode_many(views) == records
