"""Integration tests for the Database façade."""

import pytest

from repro.db import Database
from repro.errors import (
    DuplicateRelation,
    LockError,
    RelationNotFound,
    SchemaError,
)


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


class TestDDL:
    def test_create_and_scan(self, db):
        db.create_class("EMP", [("name", "text"), ("age", "int4")])
        with db.begin() as txn:
            db.insert(txn, "EMP", ("Joe", 30))
            db.insert(txn, "EMP", ("Sam", 40))
        rows = sorted(t.values for t in db.scan("EMP"))
        assert rows == [("Joe", 30), ("Sam", 40)]

    def test_duplicate_class_rejected(self, db):
        db.create_class("EMP", [("name", "text")])
        with pytest.raises(DuplicateRelation):
            db.create_class("EMP", [("name", "text")])

    def test_unknown_type_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_class("T", [("x", "nonsense")])

    def test_drop_class(self, db):
        db.create_class("EMP", [("name", "text")])
        db.drop_class("EMP")
        with pytest.raises(RelationNotFound):
            db.get_class("EMP")

    def test_class_on_named_storage_manager(self, db):
        db.create_class("ARCHIVE", [("x", "int4")], smgr="memory")
        with db.begin() as txn:
            db.insert(txn, "ARCHIVE", (1,))
        assert [t.values for t in db.scan("ARCHIVE")] == [(1,)]

    def test_adt_column_stores_designator(self, db):
        db.create_large_type("image", storage="fchunk")
        db.create_class("EMP", [("name", "text"), ("picture", "image")])
        with db.begin() as txn:
            db.insert(txn, "EMP", ("Joe", "lo:123"))
        assert next(db.scan("EMP")).values == ("Joe", "lo:123")


class TestIndexes:
    def test_index_lookup(self, db):
        db.create_class("EMP", [("name", "text"), ("empno", "int4")])
        db.create_index("emp_no", "EMP", "empno")
        with db.begin() as txn:
            for i in range(50):
                db.insert(txn, "EMP", (f"e{i}", i))
        hits = db.index_lookup("emp_no", 17)
        assert [t.values for t in hits] == [("e17", 17)]

    def test_index_built_over_existing_rows(self, db):
        db.create_class("EMP", [("name", "text"), ("empno", "int4")])
        with db.begin() as txn:
            db.insert(txn, "EMP", ("pre", 9))
        db.create_index("emp_no", "EMP", "empno")
        assert [t.values for t in db.index_lookup("emp_no", 9)] == [("pre", 9)]

    def test_index_sees_replace(self, db):
        db.create_class("EMP", [("name", "text"), ("empno", "int4")])
        db.create_index("emp_no", "EMP", "empno")
        with db.begin() as txn:
            tid = db.insert(txn, "EMP", ("old", 5))
        with db.begin() as txn:
            db.replace(txn, "EMP", tid, ("new", 5))
        assert [t.values for t in db.index_lookup("emp_no", 5)] == [("new", 5)]

    def test_index_respects_visibility(self, db):
        db.create_class("EMP", [("name", "text"), ("empno", "int4")])
        db.create_index("emp_no", "EMP", "empno")
        txn = db.begin()
        db.insert(txn, "EMP", ("ghost", 1))
        assert db.index_lookup("emp_no", 1) == []
        txn.abort()
        assert db.index_lookup("emp_no", 1) == []

    def test_non_integer_index_rejected(self, db):
        db.create_class("EMP", [("name", "text")])
        with pytest.raises(SchemaError):
            db.create_index("bad", "EMP", "name")


class TestTransactions:
    def test_abort_rolls_back(self, db):
        db.create_class("EMP", [("name", "text")])
        txn = db.begin()
        db.insert(txn, "EMP", ("ghost",))
        txn.abort()
        assert list(db.scan("EMP")) == []

    def test_snapshot_isolation(self, db):
        db.create_class("EMP", [("name", "text")])
        writer = db.begin()
        db.insert(writer, "EMP", ("unseen",))
        reader = db.begin()
        # Reader's snapshot was taken while writer was active.
        snapshot = db.snapshot(reader)
        writer.commit()
        rel = db.get_class("EMP")
        assert list(rel.scan(snapshot)) == []
        reader.commit()
        assert [t.values for t in db.scan("EMP")] == [("unseen",)]

    def test_ddl_locks_conflict_with_writers(self, db):
        db.create_class("EMP", [("name", "text")])
        a = db.begin()
        db.insert(a, "EMP", ("joe",))
        b = db.begin()
        from repro.txn.locks import LockMode
        with pytest.raises(LockError):
            db.locks.acquire(b.xid, ("relation", "EMP"),
                             LockMode.EXCLUSIVE, no_wait=True)
        a.commit()
        b.abort()


class TestTimeTravelViaDatabase:
    def test_scan_as_of(self, db):
        db.create_class("EMP", [("name", "text"), ("age", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "EMP", ("Joe", 30))
        t_young = db.clock.now()
        with db.begin() as txn:
            db.replace(txn, "EMP", tid, ("Joe", 31))
        assert [t.values for t in db.scan("EMP", as_of=t_young)] \
            == [("Joe", 30)]
        assert [t.values for t in db.scan("EMP")] == [("Joe", 31)]


class TestDurability:
    def test_reopen_preserves_data(self, tmp_path):
        path = str(tmp_path / "db")
        first = Database(path)
        first.create_class("EMP", [("name", "text"), ("age", "int4")])
        with first.begin() as txn:
            first.insert(txn, "EMP", ("Joe", 30))
        first.close()

        second = Database(path)
        assert [t.values for t in second.scan("EMP")] == [("Joe", 30)]
        second.close()

    def test_reopen_preserves_indexes(self, tmp_path):
        path = str(tmp_path / "db")
        first = Database(path)
        first.create_class("EMP", [("name", "text"), ("empno", "int4")])
        first.create_index("emp_no", "EMP", "empno")
        with first.begin() as txn:
            first.insert(txn, "EMP", ("Joe", 7))
        first.close()

        second = Database(path)
        assert [t.values for t in second.index_lookup("emp_no", 7)] \
            == [("Joe", 7)]
        second.close()

    def test_uncommitted_work_lost_on_crash(self, tmp_path):
        path = str(tmp_path / "db")
        first = Database(path)
        first.create_class("EMP", [("name", "text")])
        with first.begin() as txn:
            first.insert(txn, "EMP", ("committed",))
        crashed = first.begin()
        first.insert(crashed, "EMP", ("lost",))
        # Simulate a crash: pages may or may not be flushed, but no commit
        # record was ever written.
        first.checkpoint()
        first.clog.close()
        first.catalog.journal.close()

        second = Database(path)
        assert [t.values for t in second.scan("EMP")] == [("committed",)]
        second.close()

    def test_vacuum_via_database(self, db):
        db.create_class("EMP", [("name", "text")])
        with db.begin() as txn:
            tid = db.insert(txn, "EMP", ("v1",))
        with db.begin() as txn:
            db.replace(txn, "EMP", tid, ("v2",))
        removed = db.vacuum()
        assert removed["EMP"] == 1


class TestStatistics:
    def test_statistics_shape(self, db):
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            db.insert(txn, "T", (1,))
        stats = db.statistics()
        assert stats["buffer"]["hits"] >= 0
        assert 0.0 <= stats["buffer"]["hit_rate"] <= 1.0
        assert stats["catalog"]["classes"] >= 2  # T + pg_largeobject
        assert stats["transactions"]["active"] == 0
        assert "disk" in stats["storage"]

    def test_clock_advances_with_io(self, db):
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            db.insert(txn, "T", (1,))
        assert db.statistics()["clock"]["elapsed"] > 0


class TestVacuumIndexMaintenance:
    def test_vacuum_prunes_index_entries(self, db):
        db.create_class("T", [("v", "int4")])
        db.create_index("t_v", "T", "v")
        with db.begin() as txn:
            tid = db.insert(txn, "T", (1,))
        with db.begin() as txn:
            db.replace(txn, "T", tid, (2,))
        index = db.get_index("t_v")
        with db.latch:  # raw index reads outside the scan layer
            assert len(index.search((1,))) == 1  # dead version indexed
        db.vacuum()
        with db.latch:
            assert index.search((1,)) == []      # pruned with the version
            assert len(index.search((2,))) == 1  # live version kept

    def test_stale_entry_never_surfaces_after_slot_reuse(self, db):
        """The hazard the recheck guards: a freed slot reused by an
        unrelated tuple must not satisfy a stale probe."""
        db.create_class("T", [("v", "int4")])
        db.create_index("t_v", "T", "v")
        with db.begin() as txn:
            tid = db.insert(txn, "T", (111,))
        with db.begin() as txn:
            db.delete(txn, "T", tid)
        # Simulate a vacuum that (buggily) skipped index maintenance.
        db.get_class("T").vacuum()
        with db.begin() as txn:
            db.insert(txn, "T", (222,))  # likely reuses the freed slot
        hits = db.index_lookup("t_v", 111)
        assert hits == []  # recheck rejects the stale entry

    def test_archive_prunes_index_entries(self, db):
        db.create_class("T", [("v", "int4")])
        db.create_index("t_v", "T", "v")
        with db.begin() as txn:
            tid = db.insert(txn, "T", (1,))
        with db.begin() as txn:
            db.replace(txn, "T", tid, (2,))
        db.archive_class("T")
        with db.latch:  # raw index read outside the scan layer
            assert db.get_index("t_v").search((1,)) == []


class TestHistoryApi:
    def test_version_chain(self, db):
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "T", (1,))
        oid = db.get_class("T").fetch_any_version(tid).oid
        with db.begin() as txn:
            tid = db.replace(txn, "T", tid, (2,))
        with db.begin() as txn:
            db.replace(txn, "T", tid, (3,))
        chain = db.history("T", oid)
        assert [v["values"] for v in chain] == [(1,), (2,), (3,)]
        # Intervals tile: each version ends where the next begins.
        assert chain[0]["valid_to"] == chain[1]["valid_from"]
        assert chain[1]["valid_to"] == chain[2]["valid_from"]
        assert chain[2]["valid_to"] is None

    def test_history_skips_aborted(self, db):
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "T", (1,))
        oid = db.get_class("T").fetch_any_version(tid).oid
        doomed = db.begin()
        db.replace(doomed, "T", tid, (99,))
        doomed.abort()
        chain = db.history("T", oid)
        assert [v["values"] for v in chain] == [(1,)]
        assert chain[0]["valid_to"] is None  # the delete aborted too

    def test_history_spans_archive(self, db):
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "T", (1,))
        oid = db.get_class("T").fetch_any_version(tid).oid
        with db.begin() as txn:
            db.replace(txn, "T", tid, (2,))
        db.archive_class("T")
        chain = db.history("T", oid)
        assert [v["values"] for v in chain] == [(1,), (2,)]
