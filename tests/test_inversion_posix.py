"""Table-driven POSIX conformance suite for the Inversion file system.

Every case is one data row ``(ident, given, do, raises, then)``:

* ``given`` — setup steps, committed in one transaction;
* ``do``    — the operation under test, run in its own transaction
  (committed on success, rolled back when ``raises`` fired);
* ``raises`` — expected exception class, or ``None`` for success;
* ``then``  — post-condition checks against the committed tree.

The rows cover the §8 file-system surface over the cross product the
issue calls for — operation × target kind × existence × nesting depth —
plus rename-over-existing, rename-into-own-subtree, permission bits,
timestamp propagation, and lexical path edge cases.  Deliberate POSIX
deviations asserted here are documented in DESIGN.md: rename over an
existing destination raises :class:`FileExists` (no implicit replace),
rename into the moved directory's own subtree raises
:class:`DirectoryLoop`, and ``atime``/``mtime`` maintenance happens only
for transaction-bound handles.

Every successful case additionally ends with a clean
:meth:`~repro.db.Database.check_integrity` run, so a row that corrupts
catalog/Inversion invariants fails even if its explicit checks pass.
"""

import pytest

from repro.db import Database
from repro.errors import (
    DirectoryLoop,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InversionError,
    NotADirectory,
)
from repro.inversion.filesystem import DEFAULT_DIR_MODE, DEFAULT_FILE_MODE

# ---------------------------------------------------------------------------
# the case table
# ---------------------------------------------------------------------------

CASES = []


def case(ident, *, given=(), do, raises=None, then=()):
    CASES.append(pytest.param(given, do, raises, then, id=ident))


# -- create / mkdir: existence x kind x nesting ------------------------------

for op in ("create", "mkdir"):
    kind_check = "isdir" if op == "mkdir" else "isfile"
    case(f"{op}-absent", do=(op, "/t"),
         then=(("exists", "/t"), (kind_check, "/t")))
    case(f"{op}-over-file", given=(("file", "/t", b"old"),),
         do=(op, "/t"), raises=FileExists)
    case(f"{op}-over-dir", given=(("mkdir", "/t"),),
         do=(op, "/t"), raises=FileExists)
    case(f"{op}-missing-parent", do=(op, "/no/t"), raises=FileNotFound)
    case(f"{op}-file-parent", given=(("file", "/f", b"x"),),
         do=(op, "/f/t"), raises=NotADirectory)
    case(f"{op}-in-dir", given=(("mkdir", "/d"),), do=(op, "/d/t"),
         then=(("exists", "/d/t"), (kind_check, "/d/t"),
               ("names", "/d", ["t"])))
    case(f"{op}-deep",
         given=(("mkdir", "/a"), ("mkdir", "/a/b"), ("mkdir", "/a/b/c")),
         do=(op, "/a/b/c/t"),
         then=(("exists", "/a/b/c/t"), (kind_check, "/a/b/c/t")))

case("create-empty-file-size-0", do=("create", "/t"),
     then=(("size", "/t", 0), ("data", "/t", b"")))
case("mkdir-sibling-name-reuse",
     given=(("mkdir", "/d"), ("file", "/d/n", b"x"), ("mkdir", "/e")),
     do=("mkdir", "/e/n"),
     then=(("isfile", "/d/n"), ("isdir", "/e/n")))

# -- unlink / rmdir: kind x existence x nesting ------------------------------

case("unlink-file", given=(("file", "/t", b"x"),), do=("unlink", "/t"),
     then=(("absent", "/t"), ("names", "/", [])))
case("unlink-dir", given=(("mkdir", "/t"),), do=("unlink", "/t"),
     raises=InversionError)
case("unlink-missing", do=("unlink", "/t"), raises=FileNotFound)
case("unlink-root", do=("unlink", "/"), raises=InversionError)
case("unlink-nested",
     given=(("mkdir", "/d"), ("file", "/d/t", b"x"), ("file", "/d/k", b"y")),
     do=("unlink", "/d/t"),
     then=(("absent", "/d/t"), ("names", "/d", ["k"])))
case("unlink-keeps-siblings",
     given=(("file", "/t", b"x"), ("file", "/u", b"y"), ("mkdir", "/v")),
     do=("unlink", "/t"),
     then=(("absent", "/t"), ("names", "/", ["u", "v"]),
           ("data", "/u", b"y")))

case("rmdir-empty", given=(("mkdir", "/t"),), do=("rmdir", "/t"),
     then=(("absent", "/t"),))
case("rmdir-nonempty-file", given=(("mkdir", "/t"), ("file", "/t/f", b"")),
     do=("rmdir", "/t"), raises=DirectoryNotEmpty)
case("rmdir-nonempty-dir", given=(("mkdir", "/t"), ("mkdir", "/t/d")),
     do=("rmdir", "/t"), raises=DirectoryNotEmpty)
case("rmdir-file", given=(("file", "/t", b"x"),), do=("rmdir", "/t"),
     raises=NotADirectory)
case("rmdir-missing", do=("rmdir", "/t"), raises=FileNotFound)
case("rmdir-root", do=("rmdir", "/"), raises=InversionError)
case("rmdir-nested", given=(("mkdir", "/d"), ("mkdir", "/d/t")),
     do=("rmdir", "/d/t"), then=(("absent", "/d/t"), ("isdir", "/d")))
case("rmdir-emptied", given=(("mkdir", "/t"), ("file", "/t/f", b"x"),
                             ("unlink", "/t/f")),
     do=("rmdir", "/t"), then=(("absent", "/t"),))

# -- rename: src kind x dst state x nesting ----------------------------------

case("rename-file-to-absent", given=(("file", "/s", b"payload"),),
     do=("rename", "/s", "/d"),
     then=(("absent", "/s"), ("data", "/d", b"payload")))
case("rename-file-across-dirs",
     given=(("mkdir", "/a"), ("mkdir", "/b"), ("file", "/a/s", b"p")),
     do=("rename", "/a/s", "/b/d"),
     then=(("absent", "/a/s"), ("data", "/b/d", b"p"),
           ("names", "/a", []), ("names", "/b", ["d"])))
case("rename-file-same-dir", given=(("file", "/s", b"p"),),
     do=("rename", "/s", "/s2"), then=(("data", "/s2", b"p"),))
# Deviation: POSIX rename(2) replaces an existing destination; Inversion
# refuses (DESIGN.md) so history never silently loses a file version chain.
case("rename-over-file", given=(("file", "/s", b"p"), ("file", "/d", b"q")),
     do=("rename", "/s", "/d"), raises=FileExists,
     then=(("data", "/s", b"p"), ("data", "/d", b"q")))
case("rename-over-dir", given=(("file", "/s", b"p"), ("mkdir", "/d")),
     do=("rename", "/s", "/d"), raises=FileExists)
case("rename-dir-over-file", given=(("mkdir", "/s"), ("file", "/d", b"q")),
     do=("rename", "/s", "/d"), raises=FileExists)
case("rename-dir-over-empty-dir", given=(("mkdir", "/s"), ("mkdir", "/d")),
     do=("rename", "/s", "/d"), raises=FileExists)
case("rename-dir-to-absent",
     given=(("mkdir", "/s"), ("file", "/s/f", b"inside"), ("mkdir", "/s/sub")),
     do=("rename", "/s", "/d"),
     then=(("absent", "/s"), ("isdir", "/d"), ("data", "/d/f", b"inside"),
           ("isdir", "/d/sub"), ("names", "/d", ["f", "sub"])))
case("rename-dir-into-dir",
     given=(("mkdir", "/s"), ("file", "/s/f", b"i"), ("mkdir", "/t")),
     do=("rename", "/s", "/t/s"),
     then=(("absent", "/s"), ("data", "/t/s/f", b"i")))
case("rename-missing-src", do=("rename", "/s", "/d"), raises=FileNotFound)
case("rename-missing-dst-parent", given=(("file", "/s", b"p"),),
     do=("rename", "/s", "/no/d"), raises=FileNotFound)
case("rename-dst-file-parent",
     given=(("file", "/s", b"p"), ("file", "/f", b"x")),
     do=("rename", "/s", "/f/d"), raises=NotADirectory)
case("rename-root", do=("rename", "/", "/d"), raises=InversionError)
case("rename-to-root", given=(("mkdir", "/s"),), do=("rename", "/s", "/"),
     raises=FileExists)
case("rename-same-path-noop", given=(("file", "/s", b"p"),),
     do=("rename", "/s", "/s"), then=(("data", "/s", b"p"),))
# Deviation: POSIX EINVAL; an ancestor moved under its own descendant
# would commit an unreachable cycle (the PR-8 regression).
case("rename-into-own-subtree",
     given=(("mkdir", "/s"), ("mkdir", "/s/sub")),
     do=("rename", "/s", "/s/sub/x"), raises=DirectoryLoop,
     then=(("isdir", "/s"), ("isdir", "/s/sub")))
case("rename-into-own-subtree-deep",
     given=(("mkdir", "/s"), ("mkdir", "/s/a"), ("mkdir", "/s/a/b")),
     do=("rename", "/s", "/s/a/b/x"), raises=DirectoryLoop)
case("rename-into-self", given=(("mkdir", "/s"),),
     do=("rename", "/s", "/s/x"), raises=DirectoryLoop)
case("rename-sibling-subtree-ok",
     given=(("mkdir", "/s"), ("mkdir", "/s2"), ("mkdir", "/s2/sub")),
     do=("rename", "/s", "/s2/sub/x"),
     then=(("absent", "/s"), ("isdir", "/s2/sub/x")))
case("rename-file-needs-no-loop-check",
     given=(("file", "/s", b"p"), ("mkdir", "/d")),
     do=("rename", "/s", "/d/s"), then=(("data", "/d/s", b"p"),))
case("rename-preserves-mode",
     given=(("create", "/s", 0o700),),
     do=("rename", "/s", "/d"), then=(("mode", "/d", 0o700),))
case("rename-unlinked-recreated",
     given=(("file", "/s", b"one"), ("unlink", "/s"), ("file", "/s", b"two")),
     do=("rename", "/s", "/d"), then=(("data", "/d", b"two"),))

# -- lexical path edge cases -------------------------------------------------

case("path-double-slash", given=(("mkdir", "/a"),), do=("mkdir", "/a//b"),
     then=(("isdir", "/a/b"),))
case("path-trailing-slash", do=("mkdir", "/d/"), then=(("isdir", "/d"),))
case("path-dot-component", given=(("mkdir", "/a"),),
     do=("create", "/a/./c"), then=(("isfile", "/a/c"),))
case("path-dotdot-component", given=(("mkdir", "/a"), ("mkdir", "/b")),
     do=("create", "/a/../b/c"), then=(("isfile", "/b/c"), ("names", "/a", [])))
case("path-dotdot-above-root", do=("create", "/../x"),
     then=(("isfile", "/x"),))
# Lexical resolution (documented in split_path): ".." pops without
# requiring the popped component to exist — Inversion has no symlinks,
# so the POSIX physical/lexical distinction collapses.
case("path-dotdot-pops-unchecked", given=(("mkdir", "/a"),),
     do=("create", "/a/b/../c"), then=(("isfile", "/a/c"),))
case("path-unlink-messy", given=(("mkdir", "/a"), ("file", "/a/f", b"x")),
     do=("unlink", "//a/./f"), then=(("absent", "/a/f"),))
case("path-relative-rejected", do=("create", "rel"), raises=InversionError)
case("path-dot-is-root-listdir", given=(("file", "/f", b"x"),),
     do=("listdir", "/."), then=(("names", "/", ["f"]),))

# -- permission bits ---------------------------------------------------------

case("mode-file-default", do=("create", "/t"),
     then=(("mode", "/t", DEFAULT_FILE_MODE),))
case("mode-dir-default", do=("mkdir", "/t"),
     then=(("mode", "/t", DEFAULT_DIR_MODE),))
case("mode-create-explicit", do=("create", "/t", 0o640),
     then=(("mode", "/t", 0o640),))
case("mode-mkdir-explicit", do=("mkdir", "/t", 0o700),
     then=(("mode", "/t", 0o700),))
case("mode-create-masks-to-7777", do=("create", "/t", 0o777644),
     then=(("mode", "/t", 0o7644),))
case("chmod-file", given=(("file", "/t", b"x"),), do=("chmod", "/t", 0o600),
     then=(("mode", "/t", 0o600),))
case("chmod-dir", given=(("mkdir", "/t"),), do=("chmod", "/t", 0o555),
     then=(("mode", "/t", 0o555),))
case("chmod-setuid-bits", given=(("file", "/t", b"x"),),
     do=("chmod", "/t", 0o4755), then=(("mode", "/t", 0o4755),))
case("chmod-missing", do=("chmod", "/t", 0o600), raises=FileNotFound)
case("chmod-keeps-data", given=(("file", "/t", b"same"),),
     do=("chmod", "/t", 0o444), then=(("data", "/t", b"same"),))
case("chown-file", given=(("file", "/t", b"x"),),
     do=("chown", "/t", "alice"), then=(("owner", "/t", "alice"),))
case("chown-missing", do=("chown", "/t", "alice"), raises=FileNotFound)

# -- IO: write / append / truncate / read ------------------------------------

case("write-file-creates", do=("write", "/t", b"fresh"),
     then=(("data", "/t", b"fresh"),))
case("write-file-replaces", given=(("file", "/t", b"longer-old-content"),),
     do=("write", "/t", b"new"),
     then=(("data", "/t", b"new"), ("size", "/t", 3)))
case("append-grows", given=(("file", "/t", b"abc"),),
     do=("append", "/t", b"def"), then=(("data", "/t", b"abcdef"),))
case("append-to-empty", given=(("create", "/t"),), do=("append", "/t", b"x"),
     then=(("data", "/t", b"x"),))
case("truncate-shrink", given=(("file", "/t", b"abcdef"),),
     do=("truncate", "/t", 2), then=(("data", "/t", b"ab"),))
case("truncate-to-zero", given=(("file", "/t", b"abcdef"),),
     do=("truncate", "/t", 0), then=(("data", "/t", b""), ("size", "/t", 0)))
# POSIX ftruncate extension zero-fills.
case("truncate-extend-zero-fills", given=(("file", "/t", b"ab"),),
     do=("truncate", "/t", 5), then=(("data", "/t", b"ab\0\0\0"),))
case("truncate-multichunk", given=(("file", "/t", b"z" * 9000),),
     do=("truncate", "/t", 8192),
     then=(("data", "/t", b"z" * 8192), ("size", "/t", 8192)))
case("open-dir", given=(("mkdir", "/t"),), do=("open", "/t", "r"),
     raises=InversionError)
case("write-under-file-parent", given=(("file", "/f", b"x"),),
     do=("write", "/f/t", b"y"), raises=NotADirectory)

# -- timestamps --------------------------------------------------------------

case("utime-explicit", given=(("file", "/t", b"x"),),
     do=("utime", "/t", 123.0, 456.0),
     then=(("atime", "/t", 123.0), ("mtime", "/t", 456.0)))
case("utime-dir", given=(("mkdir", "/t"),), do=("utime", "/t", 9.0, 9.5),
     then=(("atime", "/t", 9.0), ("mtime", "/t", 9.5)))
case("utime-missing", do=("utime", "/t", 1.0, 2.0), raises=FileNotFound)

# -- generated: read-side ops against the three bad path shapes --------------

_READ_OPS = {
    "read": lambda p: ("read", p),
    "open": lambda p: ("open", p, "r"),
    "stat": lambda p: ("stat", p),
    "listdir": lambda p: ("listdir", p),
}
_WRITE_OPS = {
    "unlink": lambda p: ("unlink", p),
    "rmdir": lambda p: ("rmdir", p),
    "rename-src": lambda p: ("rename", p, "/dst"),
    "chmod": lambda p: ("chmod", p, 0o600),
    "chown": lambda p: ("chown", p, "alice"),
    "utime": lambda p: ("utime", p, 1.0, 2.0),
    "append": lambda p: ("append", p, b"x"),
    "truncate": lambda p: ("truncate", p, 1),
}
_SHAPES = (
    # (suffix, extra setup, target path, expected error)
    ("missing", (), "/nope", FileNotFound),
    ("missing-parent", (), "/nope/t", FileNotFound),
    ("file-parent", (("file", "/fp", b"x"),), "/fp/t", NotADirectory),
)
for name, make in {**_READ_OPS, **_WRITE_OPS}.items():
    for suffix, extra, target, error in _SHAPES:
        case(f"{name}-{suffix}", given=extra, do=make(target), raises=error)
case("rename-dst-under-missing-parent", given=(("file", "/s", b"p"),),
     do=("rename", "/s", "/nope/t/d"), raises=FileNotFound)

# -- generated: core success ops at depths 1-3 -------------------------------

_DEPTH_GIVEN = {1: (), 2: (("mkdir", "/d1"),),
                3: (("mkdir", "/d1"), ("mkdir", "/d1/d2"))}
_DEPTH_PREFIX = {1: "", 2: "/d1", 3: "/d1/d2"}
for depth in (1, 2, 3):
    pre, base = _DEPTH_GIVEN[depth], _DEPTH_PREFIX[depth]
    case(f"depth{depth}-write-read", given=pre,
         do=("write", f"{base}/t", b"deep"),
         then=(("data", f"{base}/t", b"deep"),))
    case(f"depth{depth}-unlink", given=pre + ((("file", f"{base}/t", b"x")),),
         do=("unlink", f"{base}/t"), then=(("absent", f"{base}/t"),))
    case(f"depth{depth}-mkdir-rmdir", given=pre + (("mkdir", f"{base}/t"),),
         do=("rmdir", f"{base}/t"), then=(("absent", f"{base}/t"),))
    case(f"depth{depth}-rename-out", given=pre + (("file", f"{base}/t", b"m"),),
         do=("rename", f"{base}/t", "/moved"),
         then=(("absent", f"{base}/t"), ("data", "/moved", b"m")))
    case(f"depth{depth}-chmod", given=pre + (("file", f"{base}/t", b"x"),),
         do=("chmod", f"{base}/t", 0o611),
         then=(("mode", f"{base}/t", 0o611),))


def test_table_is_big_enough():
    assert len(CASES) >= 120, f"only {len(CASES)} conformance cases"


# ---------------------------------------------------------------------------
# the interpreter
# ---------------------------------------------------------------------------


def _step(fs, txn, step):
    op, args = step[0], step[1:]
    if op == "mkdir":
        fs.mkdir(txn, *args)
    elif op == "create":
        if len(args) == 2:
            fs.create(txn, args[0], mode=args[1]).close()
        else:
            fs.create(txn, args[0]).close()
    elif op == "file":
        path, data = args
        with fs.create(txn, path) as handle:
            handle.write(data)
    elif op == "write":
        fs.write_file(txn, *args)
    elif op == "append":
        path, data = args
        with fs.open(path, txn, "rw") as handle:
            handle.append(data)
    elif op == "truncate":
        path, size = args
        with fs.open(path, txn, "rw") as handle:
            handle.truncate(size)
    elif op == "unlink":
        fs.unlink(txn, *args)
    elif op == "rmdir":
        fs.rmdir(txn, *args)
    elif op == "rename":
        fs.rename(txn, *args)
    elif op == "chmod":
        fs.chmod(txn, *args)
    elif op == "chown":
        fs.chown(txn, *args)
    elif op == "utime":
        fs.utime(txn, *args)
    elif op == "read":
        fs.read_file(args[0], txn)
    elif op == "open":
        fs.open(args[0], txn, args[1]).close()
    elif op == "stat":
        fs.stat(args[0], txn)
    elif op == "listdir":
        fs.listdir(args[0], txn)
    else:  # pragma: no cover - table typo guard
        raise AssertionError(f"unknown step {step!r}")


def _check(fs, check):
    kind, path, expected = (check + (None,))[:3]
    if kind == "exists":
        assert fs.exists(path), f"{path} should exist"
    elif kind == "absent":
        assert not fs.exists(path), f"{path} should be gone"
    elif kind == "isdir":
        assert fs.is_dir(path), f"{path} should be a directory"
    elif kind == "isfile":
        assert fs.exists(path) and not fs.is_dir(path), \
            f"{path} should be a plain file"
    elif kind == "data":
        assert fs.read_file(path) == expected
    elif kind == "names":
        assert fs.listdir(path) == expected
    elif kind == "mode":
        assert fs.stat(path)["mode"] == expected, \
            f"{path} mode {fs.stat(path)['mode']:o} != {expected:o}"
    elif kind == "owner":
        assert fs.stat(path)["owner"] == expected
    elif kind == "size":
        assert fs.stat(path)["size"] == expected
    elif kind == "atime":
        assert fs.stat(path)["atime"] == expected
    elif kind == "mtime":
        assert fs.stat(path)["mtime"] == expected
    else:  # pragma: no cover - table typo guard
        raise AssertionError(f"unknown check {check!r}")


@pytest.mark.parametrize("given,do,raises,then", CASES)
def test_posix_conformance(given, do, raises, then):
    db = Database()
    fs = db.inversion
    try:
        if given:
            with db.begin() as txn:
                for step in given:
                    _step(fs, txn, step)
        session = db.session()
        session.begin()
        if raises is None:
            _step(fs, session.txn, do)
            session.commit()
        else:
            with pytest.raises(raises):
                _step(fs, session.txn, do)
            if session.in_transaction:
                session.rollback()
        for check in then:
            _check(fs, check)
        assert db.check_integrity() == []
    finally:
        db.close()


# ---------------------------------------------------------------------------
# timestamp propagation (needs the clock between steps — not table-friendly)
# ---------------------------------------------------------------------------


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


@pytest.fixture
def fs(db):
    return db.inversion


class TestTimestamps:
    def test_create_sets_all_three(self, db, fs):
        with db.begin() as txn:
            fs.create(txn, "/t").close()
        st = fs.stat("/t")
        assert st["atime"] == st["mtime"] == st["ctime"] > 0

    def test_write_updates_mtime_not_atime(self, db, fs):
        with db.begin() as txn:
            fs.create(txn, "/t").close()
        before = fs.stat("/t")
        db.clock.advance(10.0, "think")
        with db.begin() as txn:
            with fs.open("/t", txn, "rw") as handle:
                handle.write(b"x")
        after = fs.stat("/t")
        assert after["mtime"] > before["mtime"]
        assert after["atime"] == before["atime"]

    def test_read_updates_atime_in_txn(self, db, fs):
        with db.begin() as txn:
            with fs.create(txn, "/t") as handle:
                handle.write(b"x")
        before = fs.stat("/t")
        db.clock.advance(10.0, "think")
        with db.begin() as txn:
            fs.read_file("/t", txn)
        after = fs.stat("/t")
        assert after["atime"] > before["atime"]
        assert after["mtime"] == before["mtime"]

    def test_detached_read_leaves_atime_alone(self, db, fs):
        """Deviation (deliberate): snapshot reads outside a transaction
        are pure observers — they cannot write an atime."""
        with db.begin() as txn:
            with fs.create(txn, "/t") as handle:
                handle.write(b"x")
        before = fs.stat("/t")
        db.clock.advance(10.0, "think")
        fs.read_file("/t")
        assert fs.stat("/t")["atime"] == before["atime"]

    def test_as_of_read_leaves_atime_alone(self, db, fs):
        with db.begin() as txn:
            with fs.create(txn, "/t") as handle:
                handle.write(b"x")
        point = db.clock.now()
        before = fs.stat("/t")
        db.clock.advance(10.0, "think")
        with db.begin() as txn:
            fs.read_file("/t", as_of=point)
        assert fs.stat("/t")["atime"] == before["atime"]

    def test_chmod_bumps_ctime_only(self, db, fs):
        with db.begin() as txn:
            fs.create(txn, "/t").close()
        before = fs.stat("/t")
        db.clock.advance(10.0, "think")
        with db.begin() as txn:
            fs.chmod(txn, "/t", 0o600)
        after = fs.stat("/t")
        assert after["ctime"] > before["ctime"]
        assert after["atime"] == before["atime"]
        assert after["mtime"] == before["mtime"]

    def test_rename_bumps_ctime(self, db, fs):
        with db.begin() as txn:
            fs.create(txn, "/t").close()
        before = fs.stat("/t")
        db.clock.advance(10.0, "think")
        with db.begin() as txn:
            fs.rename(txn, "/t", "/u")
        assert fs.stat("/u")["ctime"] > before["ctime"]


# ---------------------------------------------------------------------------
# two-session semantics the table cannot express
# ---------------------------------------------------------------------------


class TestConcurrentSemantics:
    def test_truncate_vs_concurrent_read(self, db, fs):
        """Data reads through an open handle are read-committed: a
        truncate committed by another session becomes visible to handles
        opened before it (DESIGN.md documents this deviation from
        snapshot-stable reads; ``as_of`` reads stay stable)."""
        with db.begin() as txn:
            with fs.create(txn, "/f") as handle:
                handle.write(b"x" * 500)
        point = db.clock.now()
        reader = db.session()
        reader.begin()
        handle = fs.open("/f", reader.txn, "r")
        assert len(handle.read(10)) == 10
        writer = db.session()
        writer.begin()
        with fs.open("/f", writer.txn, "rw") as wh:
            wh.truncate(3)
        writer.commit()
        handle.seek(0)
        assert handle.read() == b"xxx"
        handle.close()
        reader.commit()
        assert fs.stat("/f")["size"] == 3
        # ... but time travel still sees the pre-truncate bytes.
        assert fs.read_file("/f", as_of=point) == b"x" * 500

    def test_open_unlinked_handle_still_reads(self, db, fs):
        """POSIX: an open descriptor survives unlink of its last name."""
        with db.begin() as txn:
            with fs.create(txn, "/f") as handle:
                handle.write(b"survivor")
        reader = db.session()
        reader.begin()
        handle = fs.open("/f", reader.txn, "r")
        other = db.session()
        other.begin()
        fs.unlink(other.txn, "/f")
        other.commit()
        assert not fs.exists("/f")
        assert handle.read() == b"survivor"
        handle.close()           # atime update finds the row gone: no error
        reader.commit()
        assert db.check_integrity() == []

    def test_rename_over_open_handle(self, db, fs):
        """Writes through a handle land in the file wherever it moved."""
        with db.begin() as txn:
            with fs.create(txn, "/f") as handle:
                handle.write(b"orig")
        writer = db.session()
        writer.begin()
        handle = fs.open("/f", writer.txn, "rw")
        other = db.session()
        other.begin()
        fs.rename(other.txn, "/f", "/g")
        other.commit()
        handle.seek(0)
        handle.write(b"NEWDATA")
        handle.close()
        writer.commit()
        assert not fs.exists("/f")
        assert fs.read_file("/g") == b"NEWDATA"

    def test_create_conflict_two_sessions(self, db, fs):
        """The second creator of one path loses cleanly (FileExists),
        never with two entries in the slot."""
        a = db.session()
        a.begin()
        fs.create(a.txn, "/t").close()
        a.commit()
        b = db.session()
        b.begin()
        with pytest.raises(FileExists):
            fs.create(b.txn, "/t")
        b.rollback()
        assert fs.listdir("/") == ["t"]
        assert db.check_integrity() == []
