"""Crash-safe commit path: the fault-injection matrix and its plumbing.

The POSTGRES commit discipline — force dirty pages, then append one record
to ``pg_log`` — is only as good as its behaviour when the process dies
between (or inside) those steps.  These tests drive a committing
transaction into scripted faults at every interesting point:

* **pre-flush** — die before any page reaches the device;
* **mid-flush** — die with some of the transaction's pages forced;
* **torn-page** — a page write persists only a 512-byte prefix;
* **pre-log** — every page forced, die before the ``pg_log`` append;
* **torn-log** — the commit record itself persists only a prefix.

After each crash the database directory is reopened cold and the same
invariants must hold: committed large-object bytes intact byte for byte,
the crashed transaction invisible, time travel unaffected, and the
crashed xid never reissued.

The smaller classes below cover the plan DSL, the injector wrapper, and
the durability bugs this PR fixes (each written to fail on the seed code).
"""

import re

import pytest

from repro.db import Database
from repro.errors import (
    ChecksumError,
    LockError,
    SimulatedCrash,
    StorageManagerError,
)
from repro.lo.manager import designator_oid
from repro.sim.clock import SimClock
from repro.sim.devices import CpuModel
from repro.sim.faults import parse_plan
from repro.smgr.faulty import FaultInjector
from repro.smgr.memory import MemoryStorageManager
from repro.storage.buffer import _MISS_INSTRUCTIONS, BufferManager
from repro.storage.constants import CHUNK_PAYLOAD, PAGE_SIZE
from repro.txn.locks import LockMode
from repro.txn.xlog import TxnStatus


def crash(db: Database) -> None:
    """Abandon the database as a dead process would: no flushing."""
    for smgr in db.switch.instances():
        close = getattr(smgr, "close", None)
        if close:
            close()
    db.clog.close()
    db.catalog.journal.close()


def pattern_bytes(n: int, seed: int) -> bytes:
    """Deterministic non-repeating filler so torn reads cannot pass."""
    unit = bytes((i * seed + seed) % 251 + 1 for i in range(997))
    return (unit * (n // len(unit) + 1))[:n]


#: Two committed batches (exact chunk multiples, so a later append starts
#: on a fresh page) and one batch that is never allowed to commit.
B0 = pattern_bytes(3 * CHUNK_PAYLOAD, 3)
B1 = pattern_bytes(2 * CHUNK_PAYLOAD, 5)
JUNK = pattern_bytes(3 * CHUNK_PAYLOAD + 123, 7)


def seeded_db(path: str, impl: str, base: str = "disk"):
    """A durable database with one LO holding B0 + B1 over two commits.

    ``base`` picks the storage manager the fault injector wraps: the
    plain local ``disk`` manager or the replicated ``sharded`` one — the
    whole crash matrix must hold no matter where the blocks live.
    """
    db = Database(path, faulty_base=base)
    txn = db.begin()
    designator = db.lo.create(txn, impl, smgr="faulty")
    with db.lo.open(designator, txn, "rw") as obj:
        obj.write(B0)
    txn.commit()
    stamp0 = db.clock.now()  # between the commits: sees B0 only
    txn = db.begin()
    with db.lo.open(designator, txn, "rw") as obj:
        obj.seek(0, 2)
        obj.write(B1)
    txn.commit()
    return db, designator, stamp0


def chunk_fileid(db: Database, designator: str) -> str:
    """The heap file holding the object's bytes (the store for v-segment)."""
    oid = designator_oid(designator)
    entry = db.catalog.get_large_object(oid)
    if entry.impl == "vsegment":
        return f"heap_lo_{entry.detail['store_oid']}"
    return f"heap_lo_{oid}"


#: Injection point -> plan text (given the object's chunk heap file).
INJECTION_POINTS = {
    "pre-flush": lambda cf: "on write *: crash",
    "mid-flush": lambda cf: f"on write {cf} after 1: crash",
    "torn-page": lambda cf: f"on write {cf} after 1: torn 512",
    "pre-log": lambda cf: "on append pg_log: crash",
    "torn-log": lambda cf: "on append pg_log: torn 12",
}


@pytest.mark.faults
@pytest.mark.parametrize("base", ["disk", "sharded"])
@pytest.mark.parametrize("impl", ["fchunk", "vsegment"])
@pytest.mark.parametrize("point", sorted(INJECTION_POINTS))
class TestCrashMatrix:
    def test_crashed_commit_never_happened(self, tmp_path, impl, point,
                                           base):
        path = str(tmp_path / "db")
        db, designator, stamp0 = seeded_db(path, impl, base)
        cf = chunk_fileid(db, designator)

        txn = db.begin()
        crashed_xid = txn.xid
        with db.lo.open(designator, txn, "rw") as obj:
            obj.seek(0, 2)
            obj.write(JUNK)
        plan = db.inject_faults(INJECTION_POINTS[point](cf))
        with pytest.raises(SimulatedCrash):
            txn.commit()
        assert plan.fired, "the scripted fault never fired"
        crash(db)

        reopened = Database(path, faulty_base=base)
        # Committed bytes intact, byte for byte; the junk is invisible.
        with reopened.lo.open(designator) as obj:
            assert obj.read() == B0 + B1
        assert reopened.lo.stat(designator)["size"] == len(B0) + len(B1)
        # Time travel is unaffected by the crash.
        with reopened.lo.open(designator, as_of=stamp0) as obj:
            assert obj.read() == B0
        # The crashed transaction never committed...
        assert reopened.clog.status(crashed_xid) != TxnStatus.COMMITTED
        # ...and its xid is never handed out again.
        retry = reopened.begin()
        assert retry.xid > crashed_xid

        if point == "torn-page":
            # Without a WAL a torn page is permanent damage; the invariant
            # is honest detection: the checksum refuses the page rather
            # than serving half-written bytes.  (Committed reads above
            # never touch it — the crashed index entries were never
            # forced, so nothing durable points there.)
            torn_block = int(
                re.search(r"block (\d+)", plan.fired[0]).group(1))
            faulty = reopened.storage_manager("faulty")
            with pytest.raises(ChecksumError):
                reopened.bufmgr.pin(faulty, cf, torn_block)
            retry.abort()
        else:
            # The database stays fully usable: redo the append.
            with reopened.lo.open(designator, retry, "rw") as obj:
                obj.seek(0, 2)
                obj.write(JUNK)
            retry.commit()
            with reopened.lo.open(designator) as obj:
                assert obj.read() == B0 + B1 + JUNK
        reopened.close()


class TestFaultPlanDSL:
    def test_parse_full_plan(self):
        plan = parse_plan("""
            # commit-path faults
            on write heap_lo_17* after 1: torn 512
            on sync *: error
            on append pg_log: crash
        """)
        torn, err, crash_rule = plan.rules
        assert (torn.op, torn.pattern, torn.after) == \
            ("write", "heap_lo_17*", 1)
        assert (torn.action, torn.keep_bytes) == ("torn", 512)
        assert (err.op, err.pattern, err.action) == ("sync", "*", "error")
        assert (crash_rule.op, crash_rule.pattern, crash_rule.action) == \
            ("append", "pg_log", "crash")

    def test_plan_text_round_trips(self):
        text = "on write heap_T after 2: torn 100\non read *: crash"
        assert str(parse_plan(str(parse_plan(text)))) == text

    @pytest.mark.parametrize("bad", [
        "write heap_T: error",          # missing 'on'
        "on write heap_T error",        # missing colon
        "on write heap_T: torn",        # torn wants a byte count
        "on write heap_T: torn x",      # ...an integer one
        "on frobnicate heap_T: error",  # unknown op
        "on write heap_T: explode",     # unknown action
        "on write heap_T after x: error",
        "on write heap_T sometimes: error",
        "on write heap_T: error loudly",
        "on sync heap_T: torn 10",      # torn only tears writes/appends
    ])
    def test_bad_plan_lines_raise(self, bad):
        with pytest.raises(ValueError):
            parse_plan(bad)

    def test_after_budget_counts_only_matches(self):
        plan = parse_plan("on write heap_T after 2: error")
        assert plan.check("write", "heap_other") is None
        assert plan.check("sync", "heap_T") is None
        assert plan.check("write", "heap_T") is None   # 1st match
        assert plan.check("write", "heap_T") is None   # 2nd match
        rule = plan.check("write", "heap_T")           # 3rd: fires
        assert rule is plan.rules[0]

    def test_halted_plan_fails_all_guarded_io(self):
        plan = parse_plan("on write *: crash")
        with pytest.raises(SimulatedCrash):
            plan.fire(plan.check("write", "f"), "write 'f' block 0")
        assert plan.halted
        for op in ("read", "write", "sync", "append"):
            with pytest.raises(SimulatedCrash):
                plan.check(op, "anything")


class TestFaultInjector:
    def make(self, plan=None):
        clock = SimClock()
        base = MemoryStorageManager(clock)
        inj = FaultInjector(base, plan)
        inj.create("f")
        return base, inj

    def test_transparent_without_a_plan(self):
        base, inj = self.make()
        inj.write_block("f", 0, bytes([7]) * PAGE_SIZE)
        assert inj.read_block("f", 0) == bytes([7]) * PAGE_SIZE
        inj.sync("f")
        assert inj.op_count("write", "f") == 1
        assert inj.op_count("read", "f") == 1
        assert inj.op_count("sync", "f") == 1

    def test_error_rule_lets_budget_through_then_fails(self):
        base, inj = self.make(parse_plan("on write f after 2: error"))
        page = bytes(PAGE_SIZE)
        inj.write_block("f", 0, page)
        inj.write_block("f", 1, page)
        with pytest.raises(StorageManagerError):
            inj.write_block("f", 2, page)
        # The failed write never reached the base device.
        assert base.nblocks("f") == 2
        assert inj.stats()["injected_faults"] == 1

    def test_torn_write_persists_prefix_of_fresh_block(self):
        base, inj = self.make(parse_plan("on write f: torn 100"))
        data = pattern_bytes(PAGE_SIZE, 11)
        with pytest.raises(SimulatedCrash):
            inj.write_block("f", 0, data)
        stored = bytes(base.read_block("f", 0))
        assert stored[:100] == data[:100]
        assert stored[100:] == bytes(PAGE_SIZE - 100)  # fresh block: zeros

    def test_torn_overwrite_keeps_the_old_tail(self):
        base, inj = self.make()
        old = pattern_bytes(PAGE_SIZE, 5)
        inj.write_block("f", 0, old)
        inj.arm(parse_plan("on write f: torn 256"))
        new = pattern_bytes(PAGE_SIZE, 9)
        with pytest.raises(SimulatedCrash):
            inj.write_block("f", 0, new)
        stored = bytes(base.read_block("f", 0))
        assert stored == new[:256] + old[256:]

    def test_crash_halts_every_later_operation(self):
        base, inj = self.make(parse_plan("on sync f: crash"))
        inj.write_block("f", 0, bytes(PAGE_SIZE))
        with pytest.raises(SimulatedCrash):
            inj.sync("f")
        with pytest.raises(SimulatedCrash):
            inj.read_block("f", 0)
        inj.disarm()
        assert inj.read_block("f", 0) == bytes(PAGE_SIZE)

    def test_registered_in_the_switch(self):
        db = Database()
        assert "faulty" in db.switch.names()
        inj = db.storage_manager("faulty")
        assert isinstance(inj, FaultInjector)
        assert inj.base is db.storage_manager("disk")
        db.close()

    def test_inject_faults_arms_smgr_and_clog(self):
        db = Database()
        plan = db.inject_faults("on write *: error")
        assert db.storage_manager("faulty").plan is plan
        assert db.clog._fault_plan is plan
        db.clear_faults()
        assert db.storage_manager("faulty").plan is None
        assert db.clog._fault_plan is None
        db.close()


class TestDurabilityBugfixes:
    """Each test here fails on the seed code this PR fixed."""

    def test_flush_file_syncs_even_with_no_dirty_pages(self):
        """Eviction write-backs leave device writes that only a later
        flush_file can sync; skipping the sync on an empty dirty list
        left committed pages unforced."""
        clock = SimClock()
        inj = FaultInjector(MemoryStorageManager(clock))
        bm = BufferManager(pool_size=1, clock=clock)
        inj.create("f")
        inj.create("g")
        buf = bm.allocate(inj, "f")
        bm.unpin(buf, dirty=True)
        other = bm.allocate(inj, "g")  # evicts f's page: write, no sync
        bm.unpin(other, dirty=True)
        assert inj.op_count("write", "f") == 1
        assert inj.op_count("sync", "f") == 0
        flushed = bm.flush_file(inj, "f")  # force-at-commit for file f
        assert flushed == 0  # nothing dirty in the pool...
        assert inj.op_count("sync", "f") == 1  # ...but the sync must happen

    def test_commit_syncs_files_checkpoint_already_cleaned(self):
        db = Database()
        db.create_class("T", [("v", "int4")], smgr="faulty")
        inj = db.storage_manager("faulty")
        txn = db.begin()
        db.insert(txn, "T", (1,))
        db.checkpoint()  # a checkpoint mid-transaction cleans the pool
        mark = len(inj.trace)
        txn.commit()
        assert ("sync", "heap_T") in inj.trace[mark:], \
            "commit skipped the force for a checkpoint-cleaned file"
        db.close()

    def test_failing_before_commit_hook_aborts_the_transaction(self):
        db = Database()
        db.create_class("T", [("v", "int4")])
        txn = db.begin()
        db.insert(txn, "T", (1,))

        def explode():
            raise RuntimeError("buffered flush failed")

        txn.before_commit.append(explode)
        with pytest.raises(RuntimeError):
            txn.commit()
        # Not wedged: aborted, deregistered, and its locks are released.
        assert not txn.is_active
        assert db.clog.status(txn.xid) == TxnStatus.ABORTED
        assert db.tm.active_count() == 0
        retry = db.begin()
        db.locks.acquire(retry.xid, ("relation", "T"), LockMode.EXCLUSIVE)
        db.insert(retry, "T", (2,))
        retry.commit()
        assert [t.values for t in db.scan("T")] == [(2,)]
        db.close()

    def test_failing_flush_aborts_the_transaction(self):
        db = Database()
        db.create_class("T", [("v", "int4")], smgr="faulty")
        txn = db.begin()
        db.insert(txn, "T", (3,))
        db.inject_faults("on sync heap_T: error")
        with pytest.raises(StorageManagerError):
            txn.commit()
        assert not txn.is_active
        assert db.clog.status(txn.xid) == TxnStatus.ABORTED
        db.clear_faults()
        with db.begin() as retry:
            db.insert(retry, "T", (4,))
        assert [t.values for t in db.scan("T")] == [(4,)]
        db.close()

    def test_seed_lock_leak_would_block_this_acquire(self):
        """Companion check: a wedged transaction's shared lock must not
        outlive the failed commit (no-wait 2PL turns leaks into errors)."""
        db = Database()
        db.create_class("T", [("v", "int4")])
        txn = db.begin()
        db.insert(txn, "T", (1,))
        txn.before_commit.append(lambda: (_ for _ in ()).throw(
            RuntimeError("boom")))
        with pytest.raises(RuntimeError):
            txn.commit()
        bystander = db.begin()
        try:
            db.locks.acquire(bystander.xid, ("relation", "T"),
                             LockMode.EXCLUSIVE, no_wait=True)
        except LockError:
            pytest.fail("failed commit leaked its relation lock")
        bystander.abort()
        db.close()


class TestDescriptorHookDeregistration:
    """Closed LO descriptors must not stay pinned by before_commit."""

    def test_fchunk_close_deregisters_flush_hook(self):
        db = Database()
        txn = db.begin()
        designator = db.lo.create(txn, "fchunk")
        baseline = len(txn.before_commit)
        for i in range(25):
            with db.lo.open(designator, txn, "rw") as obj:
                obj.seek(0)
                obj.write(bytes([i + 1]) * 16)
        assert len(txn.before_commit) == baseline
        txn.commit()
        with db.lo.open(designator) as obj:
            assert obj.read() == bytes([25]) * 16
        db.close()

    def test_vsegment_close_deregisters_both_hooks(self):
        db = Database()
        txn = db.begin()
        designator = db.lo.create(txn, "vsegment")
        baseline = len(txn.before_commit)
        for i in range(10):
            with db.lo.open(designator, txn, "rw") as obj:
                obj.seek(0)
                obj.write(bytes([i + 1]) * 16)
        # Each open registers two hooks (descriptor + its byte store);
        # each close must remove both.
        assert len(txn.before_commit) == baseline
        txn.commit()
        db.close()

    def test_open_descriptor_still_flushed_at_commit(self):
        db = Database()
        txn = db.begin()
        designator = db.lo.create(txn, "fchunk")
        obj = db.lo.open(designator, txn, "rw")
        obj.write(b"buffered, never explicitly flushed")
        txn.commit()  # the still-registered hook materializes the buffer
        with db.lo.open(designator) as check:
            assert check.read() == b"buffered, never explicitly flushed"
        db.close()

    def test_read_only_descriptors_never_register_hooks(self):
        db = Database()
        txn = db.begin()
        designator = db.lo.create(txn, "fchunk")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"x")
        baseline = len(txn.before_commit)
        with db.lo.open(designator, txn, "r") as obj:
            obj.read()
        assert len(txn.before_commit) == baseline
        txn.commit()
        db.close()


class TestPrefetchCharging:
    def test_prefetch_charges_miss_instructions_per_block(self):
        clock = SimClock()
        cpu = CpuModel(mips=15.0)
        smgr = MemoryStorageManager(clock)
        smgr.create("f")
        loader = BufferManager(pool_size=16, clock=clock, cpu=cpu)
        for _ in range(4):
            buf = loader.allocate(smgr, "f")
            loader.unpin(buf, dirty=True)
        loader.flush_all()

        cold = BufferManager(pool_size=16, clock=clock, cpu=cpu)
        before = clock.elapsed_in("cpu")
        fetched = cold.prefetch(smgr, "f", 0, 4)
        assert fetched == 4
        spent = clock.elapsed_in("cpu") - before
        assert spent == pytest.approx(
            fetched * cpu.seconds_for(_MISS_INSTRUCTIONS))

    def test_prefetch_skips_resident_blocks_without_charge(self):
        clock = SimClock()
        cpu = CpuModel(mips=15.0)
        smgr = MemoryStorageManager(clock)
        smgr.create("f")
        bm = BufferManager(pool_size=16, clock=clock, cpu=cpu)
        buf = bm.allocate(smgr, "f")
        bm.unpin(buf, dirty=True)
        bm.flush_all()
        before = clock.elapsed_in("cpu")
        assert bm.prefetch(smgr, "f", 0, 1) == 0  # already in the pool
        assert clock.elapsed_in("cpu") == before
