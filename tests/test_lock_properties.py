"""Property-based tests of the lock manager.

The lock manager is the kernel of the concurrency upgrade, so its
invariants get hypothesis treatment: under *any* sequence of no-wait
acquires and releases, the grant table must respect the compatibility
matrix, upgrades must follow the only-sharer rule, and releasing
everything must leave the table empty.  A separate threaded property
checks the blocking path: ``release_all`` wakes each waiter exactly
once.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LockError
from repro.txn.locks import LockManager, LockMode

XIDS = st.integers(1, 4)
RESOURCES = st.sampled_from(["A", "B", "C"])
MODES = st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE])

#: (kind, xid, resource, mode) — kind True = acquire, False = release_all.
op_strategy = st.lists(
    st.tuples(st.booleans(), XIDS, RESOURCES, MODES),
    min_size=1, max_size=40,
)


def _table_is_consistent(locks: LockManager) -> None:
    """The grant table obeys the compatibility matrix at all times."""
    for resource in ["A", "B", "C"]:
        holders = locks.holders(resource)
        exclusives = [xid for xid, mode in holders.items()
                      if mode == LockMode.EXCLUSIVE]
        if exclusives:
            assert len(holders) == 1, (
                f"EXCLUSIVE on {resource!r} coexists with {holders}")


@settings(max_examples=200, deadline=None)
@given(ops=op_strategy)
def test_property_compatibility_matrix_holds(ops):
    """No interleaving of no-wait acquires breaks SHARED/EXCLUSIVE rules."""
    locks = LockManager(no_wait=True)
    for is_acquire, xid, resource, mode in ops:
        if is_acquire:
            try:
                locks.acquire(xid, resource, mode)
            except LockError:
                pass  # rejection is the no-wait contract, not a failure
        else:
            locks.release_all(xid)
        _table_is_consistent(locks)
    for xid in range(1, 5):
        locks.release_all(xid)
    assert locks.grant_table_empty()
    assert not locks.waiting()


@settings(max_examples=200, deadline=None)
@given(ops=op_strategy)
def test_property_upgrade_only_when_sole_holder(ops):
    """A granted SHARED→EXCLUSIVE upgrade implies no other holder existed."""
    locks = LockManager(no_wait=True)
    for is_acquire, xid, resource, mode in ops:
        if not is_acquire:
            locks.release_all(xid)
            continue
        held_shared = locks.holds(xid, resource, LockMode.SHARED)
        others = [x for x in locks.holders(resource) if x != xid]
        try:
            locks.acquire(xid, resource, mode)
        except LockError:
            continue
        if mode == LockMode.EXCLUSIVE and held_shared:
            assert not others, (
                f"xid {xid} upgraded {resource!r} past holders {others}")
        assert locks.holds(xid, resource, mode)


@settings(max_examples=100, deadline=None)
@given(ops=op_strategy, releases=st.permutations([1, 2, 3, 4]))
def test_property_release_order_irrelevant(ops, releases):
    """Whatever happened, releasing every xid empties the table."""
    locks = LockManager(no_wait=True)
    acquired = 0
    for is_acquire, xid, resource, mode in ops:
        if is_acquire:
            try:
                locks.acquire(xid, resource, mode)
                acquired += 1
            except LockError:
                pass
        else:
            locks.release_all(xid)
    for xid in releases:
        locks.release_all(xid)
    assert locks.grant_table_empty()
    stats = locks.stats
    assert stats.granted_immediately <= acquired


@settings(max_examples=20, deadline=None)
@given(n_waiters=st.integers(1, 4))
def test_property_release_all_wakes_waiters_exactly_once(n_waiters):
    """Every SHARED waiter behind one EXCLUSIVE holder is granted exactly
    once when the holder releases — no lost wakeups, no double grants."""
    locks = LockManager()
    locks.acquire(100, "R", LockMode.EXCLUSIVE)
    granted = []
    threads = []
    for i in range(n_waiters):
        def wait(xid=i + 1):
            locks.acquire(xid, "R", LockMode.SHARED)
            granted.append(xid)
        t = threading.Thread(target=wait, daemon=True)
        t.start()
        threads.append(t)
    # Wait until every thread has parked (stats.waits is cumulative per
    # manager, and this manager is fresh).
    deadline = 200  # x 25ms = 5s bound
    while locks.stats.waits < n_waiters and deadline > 0:
        threading.Event().wait(0.025)
        deadline -= 1
    assert locks.stats.waits == n_waiters, "waiters never parked"
    assert granted == []  # nobody granted while the holder lives
    locks.release_all(100)
    for t in threads:
        t.join(5)
    assert not any(t.is_alive() for t in threads)
    assert sorted(granted) == list(range(1, n_waiters + 1))
    waiter = locks.waiting()
    assert waiter == [], f"stale waiters remain: {waiter}"
    for xid in range(1, n_waiters + 1):
        assert locks.holds(xid, "R", LockMode.SHARED)
        locks.release_all(xid)
    assert locks.grant_table_empty()
