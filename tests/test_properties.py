"""Property-based tests of whole-system invariants.

The heavyweight invariant: every large-object implementation, under any
interleaving of seek/read/write, behaves exactly like a plain byte buffer
— and for chunked implementations, committed history is immutable.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db import Database

# Each op: (offset_fraction, data_length or read_length, is_write)
op_strategy = st.lists(
    st.tuples(
        st.integers(0, 40_000),
        st.integers(1, 9_000),
        st.booleans(),
    ),
    min_size=1, max_size=12,
)


class ReferenceBuffer:
    """The executable spec: a growable byte buffer with zero-fill."""

    def __init__(self):
        self.data = bytearray()

    def write(self, offset, payload):
        if offset > len(self.data):
            self.data.extend(bytes(offset - len(self.data)))
        self.data[offset:offset + len(payload)] = payload

    def read(self, offset, length):
        return bytes(self.data[offset:offset + length])

    @property
    def size(self):
        return len(self.data)


def pattern(i: int, length: int) -> bytes:
    unit = bytes([i % 251 + 1, (i * 7) % 251 + 1])
    return (unit * (length // 2 + 1))[:length]


@pytest.mark.parametrize("impl", ["fchunk", "vsegment", "pfile"])
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=op_strategy)
def test_property_lo_matches_reference(impl, ops):
    """Random mixed I/O agrees byte-for-byte with the reference buffer."""
    db = Database(charge_cpu=False)
    try:
        txn = db.begin()
        designator = (db.lo.create(txn, impl)
                      if impl != "pfile" else db.lo.newfilename(txn))
        reference = ReferenceBuffer()
        with db.lo.open(designator, txn, "rw") as obj:
            for i, (offset, length, is_write) in enumerate(ops):
                if is_write:
                    payload = pattern(i, length)
                    obj.seek(offset)
                    obj.write(payload)
                    reference.write(offset, payload)
                else:
                    obj.seek(offset)
                    got = obj.read(length)
                    assert got == reference.read(offset, length)
            assert obj.size() == reference.size
            obj.seek(0)
            assert obj.read() == bytes(reference.data)
        txn.commit()
        # Committed contents identical through a fresh descriptor.
        with db.lo.open(designator) as obj:
            assert obj.read() == bytes(reference.data)
    finally:
        db.close()


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    generations=st.lists(
        st.lists(st.tuples(st.integers(0, 30_000), st.integers(1, 6_000)),
                 min_size=1, max_size=3),
        min_size=1, max_size=4),
)
def test_property_history_is_immutable(generations):
    """After each committed generation of writes, that state stays
    readable forever at its timestamp (f-chunk time travel)."""
    db = Database(charge_cpu=False)
    try:
        with db.begin() as txn:
            designator = db.lo.create(txn, "fchunk")
        reference = ReferenceBuffer()
        snapshots = []
        for gen, writes in enumerate(generations):
            txn = db.begin()
            with db.lo.open(designator, txn, "rw") as obj:
                for i, (offset, length) in enumerate(writes):
                    payload = pattern(gen * 100 + i, length)
                    obj.seek(offset)
                    obj.write(payload)
                    reference.write(offset, payload)
            txn.commit()
            snapshots.append((db.clock.now(), bytes(reference.data)))
        for stamp, expected in snapshots:
            with db.lo.open(designator, as_of=stamp) as obj:
                assert obj.read() == expected
    finally:
        db.close()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=op_strategy)
def test_property_abort_never_leaks(ops):
    """Any aborted write mix leaves committed contents untouched."""
    db = Database(charge_cpu=False)
    try:
        with db.begin() as txn:
            designator = db.lo.create(txn, "vsegment")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(pattern(0, 20_000))
        baseline = pattern(0, 20_000)
        txn = db.begin()
        with db.lo.open(designator, txn, "rw") as obj:
            for i, (offset, length, _)in enumerate(ops):
                obj.seek(offset)
                obj.write(pattern(i + 1, length))
        txn.abort()
        with db.lo.open(designator) as obj:
            assert obj.read() == baseline
    finally:
        db.close()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=st.lists(st.tuples(st.text(min_size=1, max_size=10),
                            st.integers(-1000, 1000)),
                  min_size=1, max_size=30),
    doomed=st.sets(st.integers(0, 29)),
)
def test_property_heap_scan_equals_surviving_rows(rows, doomed):
    """Insert rows, delete a subset, scan: exactly the survivors appear."""
    db = Database(charge_cpu=False)
    try:
        db.create_class("T", [("name", "text"), ("v", "int4")])
        tids = []
        with db.begin() as txn:
            for row in rows:
                tids.append(db.insert(txn, "T", row))
        with db.begin() as txn:
            for index in doomed:
                if index < len(tids):
                    db.delete(txn, "T", tids[index])
        survivors = sorted(
            row for i, row in enumerate(rows) if i not in doomed)
        assert sorted(t.values for t in db.scan("T")) == survivors
    finally:
        db.close()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    paths=st.lists(
        st.text(alphabet="abcd", min_size=1, max_size=4),
        min_size=1, max_size=8, unique=True),
)
def test_property_inversion_listing_matches_model(paths):
    """Created files appear in listings; unlinked ones vanish."""
    db = Database(charge_cpu=False)
    try:
        fs = db.inversion
        with db.begin() as txn:
            for name in paths:
                fs.write_file(txn, f"/{name}", name.encode())
        assert fs.listdir("/") == sorted(paths)
        kept = paths[::2]
        with db.begin() as txn:
            for name in paths:
                if name not in kept:
                    fs.unlink(txn, f"/{name}")
        assert fs.listdir("/") == sorted(kept)
        for name in kept:
            assert fs.read_file(f"/{name}") == name.encode()
    finally:
        db.close()
