"""Edge-case coverage across subsystems that larger suites skim over."""

import pytest

from repro.db import Database
from repro.errors import (
    ExecutionError,
    LargeObjectError,
    SchemaError,
)


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


class TestDatabaseOptions:
    def test_charge_cpu_off(self):
        db = Database(charge_cpu=False)
        try:
            db.create_class("T", [("v", "int4")])
            with db.begin() as txn:
                db.insert(txn, "T", (1,))
            # I/O still charges the clock; CPU does not.
            assert db.clock.elapsed_in("cpu") == 0.0
            assert db.clock.elapsed > 0.0
        finally:
            db.close()

    def test_context_manager_closes(self, tmp_path):
        with Database(str(tmp_path / "db")) as db:
            db.create_class("T", [("v", "int4")])
        reopened = Database(str(tmp_path / "db"))
        assert reopened.class_exists("T")
        reopened.close()

    def test_default_smgr_is_disk(self, db):
        assert db.storage_manager() is db.storage_manager("disk")


class TestReplaceWithLargeFunctions:
    def test_replace_stores_function_result(self, db):
        """replace PHOTOS (picture = clip(...)) keeps the temporary."""
        db.execute('create large type image (storage = f-chunk)')
        db.execute('create PHOTOS (name = text, picture = image)')

        def shrink(ctx, picture):
            out = ctx.create_temporary_for_type("image")
            picture.seek(0)
            with ctx.open(out, "rw") as target:
                target.write(picture.read(4))
            return out

        db.register_function("shrink", ("image",), "image", shrink,
                             needs_context=True)
        txn = db.begin()
        designator = db.lo.create_for_type(txn, "image")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"0123456789")
        db.execute(f'append PHOTOS (name = "p", '
                   f'picture = "{designator}")', txn)
        txn.commit()

        db.execute('replace PHOTOS (picture = shrink(PHOTOS.picture)) '
                   'where PHOTOS.name = "p"')
        stored = db.execute(
            'retrieve (PHOTOS.picture) where PHOTOS.name = "p"').scalar()
        with db.lo.open(stored) as obj:
            assert obj.read() == b"0123"


class TestQueryResultHelpers:
    def test_scalar_requires_1x1(self, db):
        db.execute('create T (a = int4, b = int4)')
        db.execute('append T (a = 1, b = 2)')
        result = db.execute('retrieve (T.a, T.b)')
        with pytest.raises(ExecutionError):
            result.scalar()

    def test_first_on_empty(self, db):
        db.execute('create T (a = int4)')
        assert db.execute('retrieve (T.a)').first() is None


class TestIndexLookupAsOf:
    def test_index_lookup_honours_time(self, db):
        db.create_class("T", [("n", "int4")])
        db.create_index("t_n", "T", "n")
        t0 = db.clock.now()
        with db.begin() as txn:
            db.insert(txn, "T", (7,))
        assert db.index_lookup("t_n", 7, as_of=t0) == []
        assert len(db.index_lookup("t_n", 7)) == 1

    def test_null_keys_not_indexed(self, db):
        db.create_class("T", [("n", "int4")])
        db.create_index("t_n", "T", "n")
        with db.begin() as txn:
            db.insert(txn, "T", (None,))
        assert db.get_index("t_n").entry_count() == 0


class TestSchemaEdges:
    def test_index_on_missing_attribute(self, db):
        db.create_class("T", [("n", "int4")])
        with pytest.raises(SchemaError):
            db.create_index("bad", "T", "ghost")

    def test_column_count_mismatch_at_insert(self, db):
        db.create_class("T", [("a", "int4"), ("b", "int4")])
        txn = db.begin()
        with pytest.raises(SchemaError):
            db.insert(txn, "T", (1,))
        txn.abort()


class TestClientEdges:
    def test_rollback_without_begin(self, db):
        from repro.client import LargeObjectApi
        from repro.errors import NoActiveTransaction
        api = LargeObjectApi(db)
        with pytest.raises(NoActiveTransaction):
            api.rollback()

    def test_lo_creat_rejects_native_impls(self, db):
        from repro.client import LargeObjectApi
        api = LargeObjectApi(db)
        api.begin()
        with pytest.raises(LargeObjectError):
            api.lo_creat(impl="pfile")
        api.rollback()


class TestManagerEdges:
    def test_pfile_and_fchunk_reject_path(self, db):
        txn = db.begin()
        with pytest.raises(LargeObjectError):
            db.lo.create(txn, "fchunk", path="/nope")
        with pytest.raises(LargeObjectError):
            db.lo.create(txn, "pfile", path="/nope")
        txn.abort()

    def test_unlink_chunked_requires_txn(self, db):
        with db.begin() as txn:
            designator = db.lo.create(txn, "fchunk")
        with pytest.raises(LargeObjectError):
            db.lo.unlink(None, designator)

    def test_vsegment_unlink_removes_store(self, db):
        with db.begin() as txn:
            designator = db.lo.create(txn, "vsegment")
        count_before = len(db.catalog.large_objects)
        with db.begin() as txn:
            db.lo.unlink(txn, designator)
        # Both the object and its byte store are gone.
        assert len(db.catalog.large_objects) == count_before - 2


class TestWormStats:
    def test_platter_switch_accounting(self):
        from repro.sim import SimClock
        from repro.smgr import WormStorageManager
        from repro.sim.devices import DeviceModel
        tiny_platters = DeviceModel(
            name="tiny-jukebox", avg_seek_s=0.1, rotational_s=0.0,
            transfer_bytes_per_s=1e6, platter_bytes=3 * 8192,
            platter_switch_s=5.0)
        clock = SimClock()
        smgr = WormStorageManager(clock, tiny_platters)
        smgr.create("t")
        for i in range(7):  # crosses two platter boundaries
            smgr.extend("t", bytes([i]) * 8192)
        assert smgr.port.platter_switches >= 2
        assert clock.elapsed > 10.0  # two 5-second exchanges


class TestSwitchItems:
    def test_items_names_match_registration(self, db):
        db.storage_manager("disk")
        db.storage_manager("worm")
        names = {name for name, _ in db.switch.items()}
        assert {"disk", "worm"} <= names


class TestSmallApis:
    def test_read_exact(self, db):
        with db.begin() as txn:
            designator = db.lo.create(txn, "fchunk")
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(b"0123456789")
                obj.seek(2)
                assert obj.read_exact(4) == b"2345"
                obj.seek(8)
                with pytest.raises(EOFError):
                    obj.read_exact(10)

    def test_in_progress_xids(self, db):
        a = db.begin()
        b = db.begin()
        live = db.clog.in_progress_xids()
        assert {a.xid, b.xid} <= live
        a.commit()
        assert a.xid not in db.clog.in_progress_xids()
        b.abort()

    def test_snapshot_travelling_flag(self, db):
        assert not db.snapshot().travelling()
        assert db.snapshot(as_of=1.0).travelling()

    def test_page_can_fit_via_dead_slot(self):
        from repro.storage.page import SlottedPage
        page = SlottedPage()
        big = page.free_space() - 2000
        doomed = page.add_item(b"x" * big)
        page.add_item(b"y" * 1900)
        page.delete_item(doomed)
        assert page.can_fit(big)  # reachable through compaction

    def test_lock_holders_view(self, db):
        from repro.txn.locks import LockMode
        txn = db.begin()
        db.locks.acquire(txn.xid, "res", LockMode.SHARED)
        assert db.locks.holders("res") == {txn.xid: LockMode.SHARED}
        txn.commit()
        assert db.locks.holders("res") == {}

    def test_types_names_listing(self, db):
        db.create_large_type("film", storage="fchunk")
        assert "film" in db.types.names()
        assert db.types.large_names() == ["film"]

    def test_functions_names_listing(self, db):
        assert "length" in db.functions.names()

    def test_clock_breakdown_copies(self, db):
        db.clock.advance(1.0, "io.read")
        breakdown = db.clock.breakdown()
        breakdown["io.read"] = 999.0
        assert db.clock.elapsed_in("io.read") == 1.0

    def test_buffer_stats_hit_rate_empty(self):
        from repro.storage.buffer import BufferStats
        assert BufferStats().hit_rate() == 0.0
