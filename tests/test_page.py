"""Unit and property tests for the slotted page."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageError, PageFullError
from repro.storage.constants import (
    ITEM_ID_SIZE,
    PAGE_HEADER_SIZE,
    PAGE_SIZE,
)
from repro.storage.page import LP_DEAD, SlottedPage


class TestEmptyPage:
    def test_fresh_page_has_no_slots(self):
        page = SlottedPage()
        assert page.slot_count == 0
        assert page.lower == PAGE_HEADER_SIZE
        assert page.upper == PAGE_SIZE

    def test_free_space_accounts_for_pointer(self):
        page = SlottedPage()
        expected = PAGE_SIZE - PAGE_HEADER_SIZE - ITEM_ID_SIZE
        assert page.free_space() == expected

    def test_special_space(self):
        page = SlottedPage(special_size=16)
        assert len(page.special_space()) == 16
        assert page.upper == PAGE_SIZE - 16

    def test_wrong_size_buffer_rejected(self):
        with pytest.raises(PageError):
            SlottedPage(bytearray(100))


class TestAddGet:
    def test_roundtrip(self):
        page = SlottedPage()
        slot = page.add_item(b"hello world")
        assert page.get_item(slot) == b"hello world"

    def test_multiple_items_keep_identity(self):
        page = SlottedPage()
        slots = [page.add_item(bytes([i]) * (i + 1)) for i in range(20)]
        for i, slot in enumerate(slots):
            assert page.get_item(slot) == bytes([i]) * (i + 1)

    def test_zero_length_rejected(self):
        with pytest.raises(PageError):
            SlottedPage().add_item(b"")

    def test_page_full(self):
        page = SlottedPage()
        page.add_item(b"x" * 8000)
        with pytest.raises(PageFullError):
            page.add_item(b"y" * 8000)

    def test_fill_exactly(self):
        page = SlottedPage()
        size = page.free_space()
        slot = page.add_item(b"z" * size)
        assert page.get_item(slot) == b"z" * size
        assert page.free_space() == 0

    def test_bad_slot_rejected(self):
        page = SlottedPage()
        page.add_item(b"a")
        with pytest.raises(PageError):
            page.get_item(5)
        with pytest.raises(PageError):
            page.get_item(-1)


class TestDelete:
    def test_deleted_item_unreadable(self):
        page = SlottedPage()
        slot = page.add_item(b"doomed")
        page.delete_item(slot)
        with pytest.raises(PageError):
            page.get_item(slot)

    def test_double_delete_rejected(self):
        page = SlottedPage()
        slot = page.add_item(b"doomed")
        page.delete_item(slot)
        with pytest.raises(PageError):
            page.delete_item(slot)

    def test_slot_numbers_stable_across_delete(self):
        page = SlottedPage()
        a = page.add_item(b"aaa")
        b = page.add_item(b"bbb")
        c = page.add_item(b"ccc")
        page.delete_item(b)
        assert page.get_item(a) == b"aaa"
        assert page.get_item(c) == b"ccc"

    def test_dead_slot_reused_by_add(self):
        page = SlottedPage()
        a = page.add_item(b"aaa")
        page.delete_item(a)
        b = page.add_item(b"bbb")
        assert b == a
        assert page.get_item(b) == b"bbb"

    def test_live_slots(self):
        page = SlottedPage()
        a = page.add_item(b"a")
        b = page.add_item(b"b")
        page.delete_item(a)
        assert page.live_slots() == [b]
        assert page.item_id(a).state == LP_DEAD


class TestCompact:
    def test_compact_reclaims_space(self):
        page = SlottedPage()
        slots = [page.add_item(b"x" * 700) for _ in range(11)]
        for slot in slots[::2]:
            page.delete_item(slot)
        before = page.upper - page.lower
        after = page.compact()
        assert after > before

    def test_compact_preserves_live_items(self):
        page = SlottedPage()
        slots = [page.add_item(bytes([i]) * 100) for i in range(30)]
        for slot in slots[::3]:
            page.delete_item(slot)
        page.compact()
        for i, slot in enumerate(slots):
            if i % 3 == 0:
                continue
            assert page.get_item(slot) == bytes([i]) * 100

    def test_add_after_compact_fits(self):
        page = SlottedPage()
        big = page.free_space() // 2
        a = page.add_item(b"a" * big)
        page.add_item(b"b" * (page.free_space() - 10))
        page.delete_item(a)
        page.compact()
        assert page.can_fit(big)
        slot = page.add_item(b"c" * big)
        assert page.get_item(slot) == b"c" * big


class TestOverwrite:
    def test_same_length_in_place(self):
        page = SlottedPage()
        slot = page.add_item(b"abcd")
        page.overwrite_item(slot, b"wxyz")
        assert page.get_item(slot) == b"wxyz"

    def test_different_length(self):
        page = SlottedPage()
        slot = page.add_item(b"short")
        page.overwrite_item(slot, b"a much longer replacement value")
        assert page.get_item(slot) == b"a much longer replacement value"

    def test_overwrite_too_big_leaves_page_intact(self):
        page = SlottedPage()
        slot = page.add_item(b"keep me")
        page.add_item(b"x" * (page.free_space() - 50))
        with pytest.raises(PageFullError):
            page.overwrite_item(slot, b"y" * 5000)
        assert page.get_item(slot) == b"keep me"


class TestChecksum:
    def test_fresh_page_verifies_after_stamp(self):
        page = SlottedPage()
        page.add_item(b"data")
        page.stamp_checksum()
        assert page.verify_checksum()

    def test_corruption_detected(self):
        page = SlottedPage()
        page.add_item(b"data")
        page.stamp_checksum()
        page.buf[5000] ^= 0xFF
        assert not page.verify_checksum()

    def test_checksum_stable_under_reload(self):
        page = SlottedPage()
        page.add_item(b"data")
        page.stamp_checksum()
        reloaded = SlottedPage(bytearray(page.buf))
        assert reloaded.verify_checksum()

    def test_lsn_roundtrip(self):
        page = SlottedPage()
        page.lsn = 12345
        assert page.lsn == 12345


@settings(max_examples=60)
@given(st.lists(st.binary(min_size=1, max_size=400), max_size=18))
def test_property_items_roundtrip(items):
    """Any sequence of adds that fits preserves every item byte-for-byte."""
    page = SlottedPage()
    stored = []
    for data in items:
        if not page.can_fit(len(data)):
            break
        stored.append((page.add_item(data), data))
    for slot, data in stored:
        assert page.get_item(slot) == data


@settings(max_examples=60)
@given(
    st.lists(st.binary(min_size=1, max_size=300), min_size=1, max_size=15),
    st.data(),
)
def test_property_delete_compact_preserves_survivors(items, data):
    """Deleting a random subset then compacting keeps all survivors."""
    page = SlottedPage()
    slots = []
    for item in items:
        if not page.can_fit(len(item)):
            break
        slots.append((page.add_item(item), item))
    if not slots:
        return
    doomed = data.draw(st.sets(
        st.sampled_from([s for s, _ in slots]),
        max_size=len(slots)))
    for slot in doomed:
        page.delete_item(slot)
    page.compact()
    for slot, item in slots:
        if slot in doomed:
            continue
        assert page.get_item(slot) == item


class TestItemViewAliasing:
    """The zero-copy contract: ``item_view`` aliases the page buffer and
    does NOT survive mutation; ``get_item`` is the copying accessor."""

    def test_view_aliases_live_page(self):
        page = SlottedPage()
        slot = page.add_item(b"A" * 32)
        view = page.item_view(slot)
        assert isinstance(view, memoryview)
        assert bytes(view) == b"A" * 32
        # Patching through the page is visible through the view: proof
        # that no copy was taken.
        page.patch_item(slot, 0, b"ZZ")
        assert bytes(view[:2]) == b"ZZ"

    def test_get_item_is_a_copy(self):
        page = SlottedPage()
        slot = page.add_item(b"B" * 32)
        copied = page.get_item(slot)
        page.patch_item(slot, 0, b"ZZ")
        assert copied == b"B" * 32  # unchanged: it does not alias

    def test_view_goes_stale_across_compaction(self):
        page = SlottedPage()
        first = page.add_item(b"X" * 64)
        second = page.add_item(b"Y" * 64)
        page.add_item(b"Z" * 64)
        copied = page.get_item(second)
        view = page.item_view(second)
        page.delete_item(first)
        page.compact()
        # The copy still matches the logical item; the view still points
        # at the old offset, where compaction relocated a different item.
        assert page.get_item(second) == copied
        assert bytes(view) == b"Z" * 64
        assert bytes(view) != copied

    def test_view_of_dead_slot_rejected(self):
        page = SlottedPage()
        slot = page.add_item(b"C" * 16)
        page.delete_item(slot)
        with pytest.raises(PageError):
            page.item_view(slot)

    def test_patch_item_bounds_checked(self):
        page = SlottedPage()
        slot = page.add_item(b"D" * 16)
        with pytest.raises(PageError):
            page.patch_item(slot, 15, b"toolong")
