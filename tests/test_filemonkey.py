"""FileMonkey: randomized multi-session stress for the Inversion FS.

Tiers (pyproject.toml markers, gated by tests/conftest.py):

* unmarked       — seeded deterministic smoke rounds, tier-1 sized;
* ``monkey``                — the acceptance-criteria run (2000 ops x 4
  sessions), selected with ``-m monkey``;
* ``monkey and stress``     — the long haul, selected with
  ``-m "monkey and stress"``.

Every round ends with the harness's own global consistency sweep
(oracle-vs-tree diff, IntegrityChecker, ``as_of`` replay of every
recorded commit point); a failing round dumps its seed + full op log as
a JSON artifact so the exact schedule can be replayed.

These runs are the reason three real bugs are fixed in this PR — the
harness is kept as a reusable subsystem (`repro.inversion.monkey`)
precisely because it keeps earning its keep:

* ``InversionFile`` inherited the non-atomic base-class ``append``
  (stale EOF under concurrency) instead of delegating to the chunked
  implementations' locked append;
* a committed *shrinking* truncate was never folded into a concurrent
  writer's cached size (``_refresh_committed`` ratcheted up only);
* path operations held no lock against a concurrent rename of an
  *ancestor* directory, so a create could commit into a subtree that
  had already moved — commit order was not a valid serialization.
"""

import os
import pathlib

import pytest

from repro.db import Database
from repro.inversion.monkey import DEFAULT_MIX, FileMonkey, _Oracle


def _run_clean(monkey: FileMonkey, tmp_path, min_committed: int = 1):
    """Run a monkey and fail with a replayable artifact on problems.

    The artifact (seed + full op log, JSON) lands in ``tmp_path`` — and
    also in ``$MONKEY_ARTIFACT_DIR`` when set, which is how the CI job
    uploads failing schedules."""
    report = monkey.run()
    if not report.ok:
        artifact = tmp_path / f"monkey-seed{report.seed}.json"
        report.dump(str(artifact))
        ci_dir = os.environ.get("MONKEY_ARTIFACT_DIR")
        if ci_dir:
            pathlib.Path(ci_dir).mkdir(parents=True, exist_ok=True)
            report.dump(str(pathlib.Path(ci_dir) / artifact.name))
        pytest.fail(
            f"{report.summary()}\nfirst problems: {report.problems[:3]}\n"
            f"replay: FileMonkey(seed={report.seed}, "
            f"workers={report.workers}, ops={report.ops}); "
            f"full op log: {artifact}")
    assert report.committed >= min_committed, report.summary()
    return report


class TestSmoke:
    """Tier-1 sized rounds: seconds, fully deterministic per seed."""

    def test_seeded_round_four_sessions(self, tmp_path):
        monkey = FileMonkey(Database, seed=7, workers=4, ops=300)
        report = _run_clean(monkey, tmp_path, min_committed=100)
        assert report.commit_points == report.committed

    def test_seeded_round_single_session(self, tmp_path):
        """workers=1: reads are verified against the oracle inline, op
        by op, and no abort can be a lock-manager verdict — only
        precondition misses (rename onto an existing name, rmdir of a
        non-empty directory, ...) may fire."""
        monkey = FileMonkey(Database, seed=3, workers=1, ops=200)
        report = _run_clean(monkey, tmp_path, min_committed=120)
        assert not {"DeadlockError", "LockError", "LockTimeout"} \
            & set(report.raced)

    def test_crash_round(self, tmp_path):
        """Single-session round with scripted commit-path crashes: the
        database reopens after each, the oracle resolves the in-doubt
        op from the recovered tree, and the final sweep (integrity
        included — crashed creates must not leave orphaned large
        objects) still comes up clean."""
        path = str(tmp_path / "crashdb")
        monkey = FileMonkey(lambda: Database(path), seed=5, workers=1,
                            ops=300, crash_every=40)
        report = _run_clean(monkey, tmp_path, min_committed=100)
        assert report.crashes >= 3, report.summary()

    def test_crash_requires_single_worker(self):
        with pytest.raises(ValueError):
            FileMonkey(Database, workers=4, crash_every=10)

    def test_raw_lo_ops_interleave_with_the_fs_mix(self, tmp_path):
        """The mix drives db.lo directly (create/write/append/read/
        truncate by designator, no FS paths); the oracle tracks every
        object's bytes and the as_of replay digests only the objects
        alive at each commit point."""
        monkey = FileMonkey(Database, seed=13, workers=2, ops=300)
        report = _run_clean(monkey, tmp_path, min_committed=150)
        committed = [e["op"] for e in report.oplog
                     if e["outcome"] == "ok"]
        assert "lo_create" in committed
        assert {"lo_write", "lo_append", "lo_read", "lo_truncate"} \
            & set(committed)
        assert monkey.oracle.los  # objects survived into the sweep

    def test_lo_crash_round_resolves_in_doubt_lo_ops(self, tmp_path):
        """Crashes landing on raw LO commits resolve like FS ops: the
        recovered state matches the oracle with or without the op."""
        path = str(tmp_path / "lodb")
        lo_mix = tuple((op, w * (4 if op.startswith("lo_") else 1))
                       for op, w in DEFAULT_MIX)
        monkey = FileMonkey(lambda: Database(path), seed=21, workers=1,
                            ops=250, crash_every=30, mix=lo_mix)
        report = _run_clean(monkey, tmp_path, min_committed=100)
        assert report.crashes >= 3, report.summary()

    def test_determinism_same_seed_same_tree(self):
        digests = []
        for _ in range(2):
            monkey = FileMonkey(Database, seed=42, workers=1, ops=120)
            report = monkey.run()
            assert report.ok, report.summary()
            digests.append(monkey.oracle.digest())
        assert digests[0] == digests[1]


@pytest.mark.monkey
class TestAcceptance:
    def test_2000_ops_four_sessions(self, tmp_path):
        """The acceptance-criteria run: >=2000 ops across >=4 concurrent
        sessions, zero-diff oracle sweep, clean integrity, full as_of
        replay."""
        monkey = FileMonkey(Database, seed=2024, workers=4, ops=2000)
        report = _run_clean(monkey, tmp_path, min_committed=1000)
        # With 4 sessions hammering 8 names some aborts are expected —
        # but they must be lock-manager verdicts, never corruption.
        assert report.commit_points == report.committed

    def test_second_seed(self, tmp_path):
        monkey = FileMonkey(Database, seed=99, workers=4, ops=1000)
        _run_clean(monkey, tmp_path, min_committed=400)


@pytest.mark.monkey
@pytest.mark.stress
class TestLongHaul:
    def test_long_multi_seed(self, tmp_path):
        for seed in (11, 23, 31337):
            monkey = FileMonkey(Database, seed=seed, workers=6, ops=2500)
            _run_clean(monkey, tmp_path, min_committed=800)

    def test_long_crash_round(self, tmp_path):
        path = str(tmp_path / "crashdb")
        monkey = FileMonkey(lambda: Database(path), seed=8, workers=1,
                            ops=1500, crash_every=25)
        report = _run_clean(monkey, tmp_path, min_committed=800)
        assert report.crashes >= 20, report.summary()


class TestOracle:
    """The in-memory oracle itself: its preconditions are the spec."""

    def test_rename_moves_subtree(self):
        oracle = _Oracle()
        oracle.add_dir("/a", 1, 0o755)
        oracle.add_dir("/a/b", 2, 0o755)
        oracle.add_file("/a/b/f", 3, 0o644, b"x")
        oracle.rename("/a", "/z")
        assert sorted(p for p, k, _m, _h in oracle.items()) == \
            ["/z", "/z/b", "/z/b/f"]

    def test_truncate_zero_fills(self):
        oracle = _Oracle()
        oracle.add_file("/f", 1, 0o644, b"ab")
        oracle.truncate_data(1, 5)
        assert oracle.data[1] == b"ab\0\0\0"

    def test_content_ops_by_fid_survive_rename(self):
        """A writer captured the file id before a concurrent rename; its
        bytes must land in the file wherever it lives now."""
        oracle = _Oracle()
        oracle.add_file("/f", 1, 0o644, b"old")
        oracle.rename("/f", "/g")
        oracle.set_data(1, b"new")
        assert [r for r in oracle.items() if r[0] == "/g"][0][3] == \
            oracle._content_hash(1)

    def test_digest_tracks_mode(self):
        oracle = _Oracle()
        oracle.add_file("/f", 1, 0o644, b"x")
        before = oracle.digest()
        oracle.set_mode(1, 0o600)
        assert oracle.digest() != before

    def test_default_mix_is_complete(self):
        assert sum(w for _op, w in DEFAULT_MIX) > 0
        assert {"create", "rename", "unlink", "truncate"} <= \
            {op for op, _w in DEFAULT_MIX}
