"""Unit and property tests for the compression layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import (
    ByteRunCompressor,
    CostedCompressor,
    NullCompressor,
    ZeroRunCompressor,
    ZlibCompressor,
    available_compressors,
    get_compressor,
)
from repro.errors import CompressionError
from repro.sim import CpuModel, SimClock

ALL = [NullCompressor, ZeroRunCompressor, ByteRunCompressor, ZlibCompressor]


@pytest.mark.parametrize("cls", ALL)
class TestRoundtrip:
    def test_empty(self, cls):
        compressor = cls()
        assert compressor.decompress(compressor.compress(b"")) == b""

    def test_plain_text(self, cls):
        compressor = cls()
        data = b"the quick brown fox jumps over the lazy dog" * 10
        assert compressor.decompress(compressor.compress(data)) == data

    def test_all_zeros(self, cls):
        compressor = cls()
        data = bytes(10_000)
        assert compressor.decompress(compressor.compress(data)) == data

    def test_incompressible(self, cls):
        import random
        rng = random.Random(42)
        data = bytes(rng.randrange(256) for _ in range(4096))
        compressor = cls()
        image = compressor.compress(data)
        assert compressor.decompress(image) == data
        # Fallback bound: at most one header byte of expansion.
        assert len(image) <= len(data) + 1

    def test_verify_roundtrip_helper(self, cls):
        cls().verify_roundtrip(b"sanity" * 100)


class TestZeroRun:
    def test_zeros_compress_well(self):
        compressor = ZeroRunCompressor()
        data = b"header" + bytes(8000) + b"trailer"
        image = compressor.compress(data)
        assert len(image) < 100

    def test_ratio_tracks_zero_fraction(self):
        compressor = ZeroRunCompressor()
        for fraction in (0.3, 0.5, 0.7):
            n = 4096
            zeros = int(n * fraction)
            data = b"\xa7" * (n - zeros) + bytes(zeros)
            image = compressor.compress(data)
            achieved = 1 - len(image) / n
            assert abs(achieved - fraction) < 0.02

    def test_short_zero_runs_left_alone(self):
        compressor = ZeroRunCompressor()
        data = (b"ab\x00\x00cd" * 100)
        assert compressor.decompress(compressor.compress(data)) == data

    def test_corrupt_image_rejected(self):
        compressor = ZeroRunCompressor()
        with pytest.raises(CompressionError):
            compressor.decompress(b"")
        with pytest.raises(CompressionError):
            compressor.decompress(b"\x07junk")
        image = compressor.compress(bytes(1000))
        with pytest.raises(CompressionError):
            compressor.decompress(image[:1] + b"X" + image[2:])


class TestByteRun:
    def test_long_runs(self):
        compressor = ByteRunCompressor()
        data = b"\xff" * 1000 + b"\x01" * 300
        image = compressor.compress(data)
        assert len(image) < 30
        assert compressor.decompress(image) == data

    def test_odd_body_rejected(self):
        with pytest.raises(CompressionError):
            ByteRunCompressor().decompress(b"\x01\x02")


class TestZlib:
    def test_bad_level(self):
        with pytest.raises(CompressionError):
            ZlibCompressor(level=0)

    def test_corrupt_deflate_rejected(self):
        with pytest.raises(CompressionError):
            ZlibCompressor().decompress(b"\x02notdeflate")


class TestCosted:
    def test_charges_clock(self):
        clock = SimClock()
        compressor = CostedCompressor(ZeroRunCompressor(), 8.0,
                                      CpuModel(mips=1.0), clock)
        compressor.compress(bytes(1_000_000))
        assert clock.elapsed_in("cpu") == pytest.approx(8.0)

    def test_decompress_charges_by_output(self):
        clock = SimClock()
        compressor = CostedCompressor(ZeroRunCompressor(), 10.0,
                                      CpuModel(mips=1.0), clock)
        image = compressor.compress(bytes(500_000))
        clock.reset()
        compressor.decompress(image)
        assert clock.elapsed_in("cpu") == pytest.approx(5.0)

    def test_counters(self):
        clock = SimClock()
        compressor = CostedCompressor(NullCompressor(), 1.0,
                                      CpuModel(), clock)
        compressor.compress(b"x" * 100)
        compressor.decompress(b"y" * 40)
        assert compressor.bytes_compressed == 100
        assert compressor.bytes_decompressed == 40

    def test_still_lossless(self):
        clock = SimClock()
        compressor = CostedCompressor(ZlibCompressor(), 20.0,
                                      CpuModel(), clock)
        data = b"payload" * 500
        assert compressor.decompress(compressor.compress(data)) == data


class TestRegistry:
    def test_builtins_available(self):
        names = available_compressors()
        for expected in ("none", "zero-rle", "byte-rle", "zlib"):
            assert expected in names

    def test_get(self):
        assert get_compressor("zero-rle").name == "zero-rle"

    def test_unknown(self):
        with pytest.raises(CompressionError):
            get_compressor("zstd-nope")

    def test_custom_registration(self):
        from repro.compress import register_compressor

        class Rot13(NullCompressor):
            name = "rot13ish"

            def compress(self, data):
                return bytes((b + 13) % 256 for b in data)

            def decompress(self, data):
                return bytes((b - 13) % 256 for b in data)

        register_compressor("rot13ish", Rot13)
        compressor = get_compressor("rot13ish")
        assert compressor.decompress(compressor.compress(b"abc")) == b"abc"


@pytest.mark.parametrize("cls", ALL)
@settings(max_examples=40)
@given(data=st.binary(max_size=5000))
def test_property_roundtrip(cls, data):
    compressor = cls()
    assert compressor.decompress(compressor.compress(data)) == data


@settings(max_examples=30)
@given(st.lists(st.tuples(st.booleans(), st.integers(1, 300)),
                min_size=1, max_size=30))
def test_property_zero_run_structured(spans):
    """Alternating literal/zero spans of random lengths round-trip."""
    data = b"".join(bytes(n) if zero else b"\x5a" * n for zero, n in spans)
    compressor = ZeroRunCompressor()
    assert compressor.decompress(compressor.compress(data)) == data


class _FlakyCompressor(NullCompressor):
    """Fails the first call in each direction, succeeds on retry."""

    name = "flaky"

    def __init__(self):
        self.compress_calls = 0
        self.decompress_calls = 0

    def compress(self, data):
        self.compress_calls += 1
        if self.compress_calls == 1:
            raise CompressionError("transient failure")
        return super().compress(data)

    def decompress(self, data):
        self.decompress_calls += 1
        if self.decompress_calls == 1:
            raise CompressionError("transient failure")
        return super().decompress(data)


class TestCostedRetry:
    """A failing inner codec must not leave simulated cost behind —
    retrying after the failure would bill the same bytes twice."""

    def test_failed_compress_charges_nothing(self):
        clock = SimClock()
        costed = CostedCompressor(_FlakyCompressor(), 8.0,
                                  CpuModel(mips=1.0), clock)
        data = bytes(1_000_000)
        with pytest.raises(CompressionError):
            costed.compress(data)
        assert clock.elapsed_in("cpu") == 0.0
        assert costed.bytes_compressed == 0
        # The retry succeeds and is billed exactly once.
        costed.compress(data)
        assert clock.elapsed_in("cpu") == pytest.approx(8.0)
        assert costed.bytes_compressed == len(data)

    def test_failed_decompress_charges_nothing(self):
        clock = SimClock()
        costed = CostedCompressor(_FlakyCompressor(), 10.0,
                                  CpuModel(mips=1.0), clock)
        image = bytes(500_000)
        with pytest.raises(CompressionError):
            costed.decompress(image)
        assert clock.elapsed_in("cpu") == 0.0
        assert costed.bytes_decompressed == 0
        costed.decompress(image)
        assert clock.elapsed_in("cpu") == pytest.approx(5.0)
        assert costed.bytes_decompressed == len(image)


class TestFastCompressor:
    def make(self):
        from repro.compress import FastCompressor
        return FastCompressor()

    @pytest.mark.parametrize("data", [
        b"", b"a", bytes(10_000), b"ab" * 5_000,
        bytes(range(256)) * 64,  # incompressible-ish
    ])
    def test_roundtrip(self, data):
        compressor = self.make()
        assert compressor.decompress(compressor.compress(data)) == data

    @given(st.binary(max_size=5_000))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data):
        compressor = self.make()
        assert compressor.decompress(compressor.compress(data)) == data

    def test_never_expands_past_header(self):
        compressor = self.make()
        data = bytes(range(256))
        assert len(compressor.compress(data)) <= len(data) + 1

    def test_empty_image_rejected(self):
        with pytest.raises(CompressionError):
            self.make().decompress(b"")

    def test_bad_method_byte_rejected(self):
        with pytest.raises(CompressionError):
            self.make().decompress(b"\x7fjunk")

    def test_foreign_codec_image_rejected_without_lz4(self):
        from repro.compress import lz4_available
        if lz4_available():
            pytest.skip("real lz4 present: the method byte is decodable")
        with pytest.raises(CompressionError):
            self.make().decompress(b"\x03pretend-lz4-payload")

    def test_registered_with_level_variants(self):
        names = available_compressors()
        for expected in ("lz4", "zlib-fast", "zlib-best"):
            assert expected in names
        fast = get_compressor("zlib-fast")
        best = get_compressor("zlib-best")
        assert (fast.level, best.level) == (1, 9)

    def test_costed_wrapping(self):
        clock = SimClock()
        costed = CostedCompressor(self.make(), 8.0,
                                  CpuModel(mips=1.0), clock)
        data = bytes(100_000)
        assert costed.decompress(costed.compress(data)) == data
        assert clock.elapsed_in("cpu") == pytest.approx(1.6)
