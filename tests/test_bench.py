"""Unit tests for the benchmark harness components."""

import pytest

from repro.bench.datasets import build_object_bytes, frame_bytes, \
    measured_ratio
from repro.bench.report import FigureResult, render_table
from repro.bench.workload import Workload


class TestDatasets:
    def test_frame_is_right_size(self):
        assert len(frame_bytes(0, 0.3)) == 4096
        assert len(frame_bytes(5, 0.5, frame_size=1000)) == 1000

    def test_frames_differ_by_number(self):
        assert frame_bytes(1, 0.3) != frame_bytes(2, 0.3)

    def test_frames_differ_by_generation(self):
        assert frame_bytes(1, 0.3) != frame_bytes(1, 0.3, generation=1)

    def test_deterministic(self):
        assert frame_bytes(7, 0.5) == frame_bytes(7, 0.5)

    def test_zero_fraction_has_no_zero_tail(self):
        frame = frame_bytes(0, 0.0)
        assert frame[-16:] != bytes(16)

    def test_full_fraction_is_all_zeros(self):
        assert frame_bytes(0, 1.0) == bytes(4096)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            frame_bytes(0, 1.5)

    @pytest.mark.parametrize("target", [0.0, 0.3, 0.5, 0.7])
    def test_achieved_ratio_matches_target(self, target):
        """The §9.2 reproduction hinges on hitting the stated ratios."""
        assert abs(measured_ratio(target) - target) < 0.02

    def test_build_object(self):
        data = build_object_bytes(3, 0.5, frame_size=1024)
        assert len(data) == 3 * 1024
        assert data[:1024] == frame_bytes(0, 0.5, 1024)


class TestWorkload:
    def test_full_scale_matches_paper(self):
        w = Workload(1.0)
        assert w.total_frames == 12_500
        assert w.object_size == 51_200_000
        assert w.sequential_frames == 2_500  # 10 MB
        assert w.scattered_frames == 250  # 1 MB

    def test_scaled_proportions(self):
        w = Workload(0.1)
        assert w.total_frames == 1250
        assert w.sequential_frames == 250
        assert w.scattered_frames == 25

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            Workload(0)
        with pytest.raises(ValueError):
            Workload(1.5)

    def test_sequences_deterministic(self):
        a, b = Workload(0.1, seed=7), Workload(0.1, seed=7)
        assert a.random_frames(1) == b.random_frames(1)
        assert a.locality_frames(2) == b.locality_frames(2)

    def test_seed_changes_sequences(self):
        a, b = Workload(0.1, seed=7), Workload(0.1, seed=8)
        assert a.random_frames(1) != b.random_frames(1)

    def test_frames_in_range(self):
        w = Workload(0.1)
        for frame in w.random_frames(0) + w.locality_frames(0):
            assert 0 <= frame < w.total_frames

    def test_locality_is_mostly_sequential(self):
        w = Workload(0.5)
        frames = w.locality_frames(0)
        sequential = sum(
            1 for a, b in zip(frames, frames[1:])
            if b == (a + 1) % w.total_frames)
        assert sequential / len(frames) > 0.6

    def test_six_operations_in_paper_order(self):
        names = [op.name for op in Workload(0.1).operations()]
        assert names == [
            "10MB sequential read", "10MB sequential write",
            "1MB random read", "1MB random write",
            "1MB read, 80/20 locality", "1MB write, 80/20 locality"]

    def test_read_only_subset(self):
        ops = Workload(0.1).operations(include_writes=False)
        assert all(op.kind == "read" for op in ops)
        assert len(ops) == 3

    def test_bytes_touched(self):
        w = Workload(1.0)
        assert w.operations()[0].bytes_touched == 10_240_000


class TestReport:
    def make_figure(self):
        figure = FigureResult("Test figure", [], [], unit="seconds")
        figure.set("row a", "col 1", 1.5)
        figure.set("row a", "col 2", 250.0)
        figure.set("row b", "col 1", 0.07)
        return figure

    def test_set_get(self):
        figure = self.make_figure()
        assert figure.get("row a", "col 2") == 250.0
        assert figure.row_labels == ["row a", "row b"]

    def test_ratio(self):
        figure = self.make_figure()
        assert figure.ratio("row a", "col 2", "col 1") \
            == pytest.approx(250 / 1.5)

    def test_column(self):
        figure = self.make_figure()
        assert figure.column("col 1") == {"row a": 1.5, "row b": 0.07}

    def test_render_contains_everything(self):
        figure = self.make_figure()
        figure.notes.append("a note")
        text = render_table(figure)
        assert "Test figure" in text
        assert "row a" in text and "col 2" in text
        assert "250" in text and "0.07" in text
        assert "note: a note" in text
        assert "-" in text  # missing cell placeholder

    def test_render_bytes_unit(self):
        figure = FigureResult("F", [], [], unit="bytes")
        figure.set("r", "c", 51_200_000)
        assert "51,200,000" in render_table(figure)


class TestClaimsMachinery:
    def test_claim_holds_logic(self):
        from repro.bench.claims import Claim
        claim = Claim("x", "d", "p", 1.1, (1.0, 1.2))
        assert claim.holds
        assert not Claim("x", "d", "p", 1.3, (1.0, 1.2)).holds

    def test_render_claims(self):
        from repro.bench.claims import Claim, render_claims
        text = render_claims([
            Claim("good", "is good", "yes", 1.0, (0.5, 1.5)),
            Claim("bad", "is bad", "no", 9.0, (0.5, 1.5))])
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text
        assert "1/2 claims hold" in text


class TestCli:
    def test_cli_fig1_smoke(self, capsys):
        from repro.bench.cli import main
        assert main(["fig1", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "f-chunk 30%" in out

    def test_cli_rejects_unknown_figure(self):
        from repro.bench.cli import main
        with pytest.raises(SystemExit):
            main(["fig9"])


class TestPaperLayout:
    def test_figure1_paper_rows(self):
        from repro.bench.report import (
            FigureResult,
            render_figure1_paper_layout,
        )
        figure = FigureResult("F", [], [], unit="bytes")
        figure.set("user file", "data", 51_200_000)
        figure.set("f-chunk 0%", "data", 51_838_976)
        figure.set("f-chunk 0%", "btree", 270_336)
        text = render_figure1_paper_layout(figure)
        assert "User file" in text
        assert "51,200,000" in text
        assert "f-chunk B-tree index" in text
        assert "v-segment" not in text  # absent cells are skipped


class TestFormatter:
    def test_format_result_table(self):
        from repro.db import Database
        from repro.ql.formatter import format_result
        db = Database()
        try:
            db.execute('create T (name = text, age = int4, ok = bool)')
            db.execute('append T (name = "Joe", age = 30, ok = "true")')
            text = format_result(db.execute(
                'retrieve (T.name, T.age, T.ok)'))
            assert "name" in text and "age" in text
            assert "Joe" in text
            assert " t" in text  # bool rendered psql-style
            assert "(1 row)" in text
        finally:
            db.close()

    def test_format_dml_result(self):
        from repro.db import Database
        from repro.ql.formatter import format_result
        db = Database()
        try:
            db.execute('create T (v = int4)')
            result = db.execute('append T (v = 1)')
            assert format_result(result) == "(1 affected)"
        finally:
            db.close()

    def test_numeric_right_alignment(self):
        from repro.ql.executor import QueryResult
        from repro.ql.formatter import format_result
        result = QueryResult(["n"], [(5,), (12345,)], 2, set())
        lines = format_result(result).splitlines()
        assert lines[2].endswith("    5")
        assert lines[3].endswith("12345")

    def test_bytes_rendered_hex(self):
        from repro.ql.executor import QueryResult
        from repro.ql.formatter import format_result
        result = QueryResult(["b"], [(b"\x01\x02",)], 1, set())
        assert "\\x0102" in format_result(result)


class TestReportGenerator:
    def test_full_report(self, tmp_path):
        from repro.bench.figures import BenchConfig
        from repro.bench.reportgen import write_report
        path = str(tmp_path / "report.md")
        text = write_report(path, BenchConfig(scale=0.02))
        assert "Figure 1" in text
        assert "Figure 2" in text
        assert "Figure 3" in text
        assert "claims hold" in text
        assert "| user file |" in text
        with open(path) as fh:
            assert fh.read().strip() == text.strip()
