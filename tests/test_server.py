"""The socket front-end: protocol, server, client, multi-client runs.

The unmarked tests are tier-1 sized round trips over a real TCP socket
on the loopback interface.  The ``server``-marked stress runs drive
four-plus concurrent clients through one shared object — the
acceptance-criteria scenario for the server plus range-lock PR.
"""

import socket
import threading

import pytest

from repro.db import Database
from repro.errors import (DeadlockError, LargeObjectNotFound,
                          NoActiveTransaction, TransactionError)
from repro.server import ReproServer, ServerClient
from repro.server import protocol

RECORD = "T{:02d}S{:04d};"
RECORD_LEN = len(RECORD.format(0, 0))


@pytest.fixture
def served():
    db = Database(charge_cpu=False)
    server = ReproServer(db)
    server.start()
    yield db, server
    server.stop()
    db.close()


class TestProtocol:
    def test_frame_round_trip(self):
        a, b = socket.socketpair()
        try:
            protocol.send_message(a, {"cmd": "lo_write", "fd": 3},
                                  b"\x00\xffbinary")
            header, body = protocol.recv_message(b)
            assert header == {"cmd": "lo_write", "fd": 3}
            assert body == b"\x00\xffbinary"
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_is_connection_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\x10")  # half a prefix, then hang up
            a.close()
            with pytest.raises(ConnectionError):
                protocol.recv_message(b)
        finally:
            b.close()

    def test_oversized_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\xff\xff\xff\xff\x00\x00\x00\x00")
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_bytes_in_rows_round_trip(self):
        rows = [(1, b"\x00\x01\xfe", "text", None), (2, b"", [b"x"], 3.5)]
        assert protocol.decode_rows(protocol.encode_rows(rows)) == [
            (1, b"\x00\x01\xfe", "text", None), (2, b"", [b"x"], 3.5)]


class TestServerRoundTrip:
    def test_lo_lifecycle_over_socket(self, served):
        _db, server = served
        with ServerClient(*server.address) as client:
            assert client.ping()
            client.begin()
            designator = client.lo_create("fchunk")
            fd = client.lo_open(designator, "rw")
            assert client.lo_write(fd, b"hello, inversion") == 16
            assert client.lo_seek(fd, 0) == 0
            assert client.lo_read(fd, 5) == b"hello"
            assert client.lo_tell(fd) == 5
            assert client.lo_size(fd) == 16
            client.lo_close(fd)
            client.commit()

            client.begin()
            fd = client.lo_open(designator)
            assert client.lo_read(fd) == b"hello, inversion"
            client.rollback()

    def test_lo_create_routes_to_named_smgr(self, served):
        """The wire protocol carries the storage-manager name, so a
        remote client can land an object on the sharded backend."""
        db, server = served
        with ServerClient(*server.address) as client:
            client.begin()
            designator = client.lo_create("fchunk", smgr="sharded")
            fd = client.lo_open(designator, "rw")
            client.lo_write(fd, b"replicated over the wire")
            client.lo_close(fd)
            client.commit()
        with db.lo.open(designator) as obj:
            assert obj.read(100) == b"replicated over the wire"
        smgr = db.storage_manager("sharded")
        assert any(node.store.nblocks(f) > 0
                   for node in smgr.nodes for f in node.store.files())

    def test_append_and_truncate(self, served):
        _db, server = served
        with ServerClient(*server.address) as client:
            client.begin()
            designator = client.lo_create("vsegment")
            fd = client.lo_open(designator, "rw")
            client.lo_write(fd, b"abcdef")
            assert client.lo_append(fd, b"ghi") == 3
            assert client.lo_size(fd) == 9
            assert client.lo_truncate(fd, 4) == 4
            client.lo_close(fd)
            client.commit()
            client.begin()
            fd = client.lo_open(designator)
            assert client.lo_read(fd) == b"abcd"
            client.rollback()

    def test_execute_paper_flow_over_socket(self, served):
        """§4 end-to-end, but through the wire: retrieve a designator
        from a query result, then open/seek/read it on the same
        connection."""
        _db, server = served
        with ServerClient(*server.address) as client:
            client.begin()
            client.execute("create large type image (storage = f-chunk)")
            client.execute("create PHOTOS (name = text, picture = image)")
            designator = client.execute(
                "retrieve (result = newfilename())")["rows"][0][0]
            client.execute(
                f'append PHOTOS (name = "Joe", picture = "{designator}")')
            fd = client.lo_open(designator, "rw")
            client.lo_write(fd, b"JFIF....image bytes....")
            client.lo_close(fd)
            client.commit()

            result = client.execute(
                'retrieve (PHOTOS.picture) where PHOTOS.name = "Joe"')
            assert result["columns"] == ["picture"]
            assert result["count"] == 1
            client.begin()
            fd = client.lo_open(result["rows"][0][0])
            assert client.lo_seek(fd, 8) == 8
            assert client.lo_read(fd, 5) == b"image"
            client.rollback()

    def test_errors_map_back_to_repro_classes(self, served):
        _db, server = served
        with ServerClient(*server.address) as client:
            with pytest.raises(NoActiveTransaction):
                client.lo_create()
            client.begin()
            with pytest.raises(LargeObjectNotFound):
                client.lo_open("lo:424242")
            # The failed command did not poison the connection.
            designator = client.lo_create()
            assert designator.startswith("lo:")
            client.rollback()
            with pytest.raises(TransactionError):
                client.rollback()  # nothing in progress

    def test_disconnect_rolls_back_open_transaction(self, served):
        db, server = served
        client = ServerClient(*server.address)
        client.begin()
        designator = client.lo_create("fchunk")
        fd = client.lo_open(designator, "rw")
        client.lo_write(fd, b"doomed")
        client._sock.close()  # vanish without commit
        client._sock = None
        deadline = 200
        while db.statistics()["transactions"]["active"] and deadline:
            deadline -= 1
            threading.Event().wait(0.01)
        assert db.statistics()["transactions"]["active"] == 0
        assert db.locks.grant_table_empty()
        # The abort made the uncommitted write invisible: a fresh
        # transaction sees either no object or an empty one.
        with db.begin() as txn:
            if db.lo.exists(designator):
                with db.lo.open(designator, txn) as obj:
                    assert obj.read() == b""

    def test_stats_include_range_counters(self, served):
        _db, server = served
        with ServerClient(*server.address) as client:
            stats = client.stats()
            assert "range_locks" in stats["locks"]
            assert "range_waits" in stats["locks"]


def _append_loop(address, designator, thread_no, count, failures):
    try:
        with ServerClient(*address) as client:
            for seq in range(count):
                while True:
                    client.begin()
                    try:
                        fd = client.lo_open(designator, "rw")
                        client.lo_append(
                            fd, RECORD.format(thread_no, seq).encode())
                        client.lo_close(fd)
                        client.commit()
                        break
                    except (DeadlockError, TransactionError):
                        client.rollback()
    except BaseException as exc:  # pragma: no cover - diagnostics
        failures.append((thread_no, exc))


def _run_clients(address, designator, n_clients, count):
    failures = []
    threads = [threading.Thread(
        target=_append_loop,
        args=(address, designator, i, count, failures), daemon=True)
        for i in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120.0)
    assert not any(t.is_alive() for t in threads), "client hung"
    assert not failures, f"clients crashed: {failures}"


def _verify_appends(db, designator, n_clients, count):
    with db.begin() as txn:
        with db.lo.open(designator, txn) as obj:
            data = obj.read()
    assert len(data) == n_clients * count * RECORD_LEN
    per_client = {i: [] for i in range(n_clients)}
    for at in range(0, len(data), RECORD_LEN):
        record = data[at:at + RECORD_LEN].decode()
        assert record[0] == "T" and record[-1] == ";", record
        per_client[int(record[1:3])].append(int(record[4:8]))
    for client_no, seqs in per_client.items():
        assert seqs == list(range(count)), f"client {client_no}: {seqs}"


def test_four_concurrent_clients_smoke(served):
    """Tier-1 sized acceptance check: 4 socket clients, one object."""
    db, server = served
    with ServerClient(*server.address) as client:
        client.begin()
        designator = client.lo_create("fchunk")
        client.commit()
    _run_clients(server.address, designator, n_clients=4, count=5)
    _verify_appends(db, designator, n_clients=4, count=5)
    assert db.statistics()["transactions"]["active"] == 0
    assert db.locks.grant_table_empty()


@pytest.mark.server
def test_many_concurrent_clients_stress(served):
    """Full-size run: 8 clients × 40 appends over real sockets."""
    db, server = served
    with ServerClient(*server.address) as client:
        client.begin()
        designator = client.lo_create("fchunk")
        client.commit()
    _run_clients(server.address, designator, n_clients=8, count=40)
    _verify_appends(db, designator, n_clients=8, count=40)
    assert db.locks.grant_table_empty()
    assert db.locks.waiting() == []


@pytest.mark.server
def test_disjoint_range_clients_byte_exact(served):
    """Clients writing disjoint grains share the object without waits."""
    db, server = served
    from repro.lo.fchunk import LOCK_GRAIN_CHUNKS
    from repro.storage.constants import CHUNK_PAYLOAD
    grain = CHUNK_PAYLOAD * LOCK_GRAIN_CHUNKS
    n_clients, span = 4, 3000

    with ServerClient(*server.address) as client:
        client.begin()
        designator = client.lo_create("fchunk")
        client.commit()

    before = db.locks.stats.range_waits
    failures = []

    def writer(i):
        try:
            with ServerClient(*server.address) as client:
                client.begin()
                fd = client.lo_open(designator, "rw")
                client.lo_seek(fd, i * grain)
                client.lo_write(fd, bytes([i + 1]) * span)
                client.lo_close(fd)
                client.commit()
        except BaseException as exc:  # pragma: no cover - diagnostics
            failures.append((i, exc))

    threads = [threading.Thread(target=writer, args=(i,), daemon=True)
               for i in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60.0)
    assert not failures, f"writers crashed: {failures}"
    assert db.locks.stats.range_waits == before, \
        "disjoint-range writers should never queue on the range lock"

    with db.begin() as txn:
        with db.lo.open(designator, txn) as obj:
            for i in range(n_clients):
                obj.seek(i * grain)
                assert obj.read(span) == bytes([i + 1]) * span
