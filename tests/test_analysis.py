"""The invariant linter (repro.analysis): rules, suppressions, CLI.

Each rule gets three fixtures: a violating snippet (the rule fires), the
same snippet with a ``# repro: allow(...)`` suppression (it doesn't),
and clean code (nothing to suppress).  Location-scoped rules are
exercised by writing fixtures under a directory literally named
``repro`` so the module-relative path comes out right.

The meta-test at the bottom runs the real CLI over the shipped tree and
asserts it exits 0 — the tree must stay lint-clean.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    all_rules,
    analyze_file,
    analyze_paths,
    get_rule,
    render_json,
    render_text,
)
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_module(tmp_path: Path, rel: str, source: str) -> Path:
    """Place *source* at ``<tmp>/repro/<rel>`` so location rules apply."""
    path = tmp_path / "repro" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def lint(tmp_path: Path, rel: str, source: str, rule_id: str):
    path = write_module(tmp_path, rel, source)
    return analyze_file(path, [get_rule(rule_id)])


class TestRegistry:
    def test_all_rules_registered(self):
        ids = [rule.id for rule in all_rules()]
        for expected in ("R001", "R002", "R003", "R004", "R005", "R006",
                         "R007"):
            assert expected in ids

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            get_rule("R999")


class TestR001RawAccess:
    VIOLATION = """\
        def lookup(relation, tid, snapshot):
            return relation.fetch(tid, snapshot)
    """

    def test_fires_outside_scan_layer(self, tmp_path):
        report = lint(tmp_path, "lo/somefile.py", self.VIOLATION, "R001")
        assert [f.rule for f in report.findings] == ["R001"]
        assert "scan" in report.findings[0].message

    def test_suppressed(self, tmp_path):
        source = self.VIOLATION.replace(
            "relation.fetch(tid, snapshot)",
            "relation.fetch(tid, snapshot)  # repro: allow(R001)")
        report = lint(tmp_path, "lo/somefile.py", source, "R001")
        assert report.findings == []
        assert report.suppressed == 1

    def test_allowed_in_scan_layer(self, tmp_path):
        report = lint(tmp_path, "access/scan.py", self.VIOLATION, "R001")
        assert report.findings == []

    def test_database_facade_receiver_is_clean(self, tmp_path):
        source = """\
            def lookup(self, class_name, tid):
                return self.db.fetch(class_name, tid)
        """
        report = lint(tmp_path, "session.py", source, "R001")
        assert report.findings == []

    def test_regex_search_is_clean(self, tmp_path):
        source = """\
            import re
            def find(text):
                return re.search(r"x+", text)
        """
        report = lint(tmp_path, "ql/lexer.py", source, "R001")
        assert report.findings == []

    def test_range_scan_fires(self, tmp_path):
        source = """\
            def walk(index):
                return list(index.range_scan(None, None))
        """
        report = lint(tmp_path, "inversion/filesystem.py", source, "R001")
        assert [f.rule for f in report.findings] == ["R001"]


class TestR002LatchOrder:
    VIOLATION = """\
        def insert(db, txn, name):
            with db.latch:
                db.locks.acquire(txn.xid, ("relation", name), "shared")
    """

    def test_fires_inside_latch_block(self, tmp_path):
        report = lint(tmp_path, "db.py", self.VIOLATION, "R002")
        assert [f.rule for f in report.findings] == ["R002"]
        assert "before the engine latch" in report.findings[0].message

    def test_suppressed(self, tmp_path):
        source = self.VIOLATION.replace(
            '"shared")', '"shared")  # repro: allow(R002)')
        report = lint(tmp_path, "db.py", source, "R002")
        assert report.findings == []
        assert report.suppressed == 1

    def test_lock_before_latch_is_clean(self, tmp_path):
        source = """\
            def insert(db, txn, name):
                db.locks.acquire(txn.xid, ("relation", name), "shared")
                with db.latch:
                    db.get_class(name).insert(txn, ())
        """
        report = lint(tmp_path, "db.py", source, "R002")
        assert report.findings == []

    def test_private_latch_spelling_and_engine_latch_call(self, tmp_path):
        source = """\
            def bad(self, txn):
                with self._latch:
                    self.lock_manager.acquire(txn.xid, "r", "x")
            def also_bad(db, txn):
                with EngineLatch():
                    db.locks.acquire(txn.xid, "r", "x")
        """
        report = lint(tmp_path, "db.py", source, "R002")
        assert [f.rule for f in report.findings] == ["R002", "R002"]

    def test_unrelated_acquire_inside_latch_is_clean(self, tmp_path):
        source = """\
            def fine(self):
                with self._latch:
                    self._mutex.acquire()
        """
        report = lint(tmp_path, "storage/buffer.py", source, "R002")
        assert report.findings == []


class TestR003SmgrOnlyIO:
    VIOLATION = """\
        def slurp(path):
            with open(path, "rb") as fh:
                return fh.read()
    """

    def test_fires_outside_smgr(self, tmp_path):
        report = lint(tmp_path, "storage/page.py", self.VIOLATION, "R003")
        assert [f.rule for f in report.findings] == ["R003"]

    def test_suppressed_by_comment_above(self, tmp_path):
        source = """\
            def slurp(path):
                # repro: allow(R003): test fixture justification
                with open(path, "rb") as fh:
                    return fh.read()
        """
        report = lint(tmp_path, "storage/page.py", source, "R003")
        assert report.findings == []
        assert report.suppressed == 1

    def test_allowed_in_smgr_and_external_file_los(self, tmp_path):
        for rel in ("smgr/disk.py", "lo/ufile.py", "lo/nativefs.py",
                    "tools/dump.py", "bench/reportgen.py"):
            report = lint(tmp_path, rel, self.VIOLATION, "R003")
            assert report.findings == [], rel

    def test_os_open_and_path_open_fire(self, tmp_path):
        source = """\
            import os
            from pathlib import Path
            def bad(p):
                fd = os.open(p, 0)
                return Path(p).open("rb")
        """
        report = lint(tmp_path, "catalog/catalog.py", source, "R003")
        assert [f.rule for f in report.findings] == ["R003", "R003"]

    def test_method_named_open_is_clean(self, tmp_path):
        source = """\
            def reader(db, designator, txn):
                return db.lo.open(designator, txn, "r")
        """
        report = lint(tmp_path, "ql/executor.py", source, "R003")
        assert report.findings == []


class TestR004SimClock:
    VIOLATION = """\
        import time
        def stamp():
            return time.time()
    """

    def test_fires_outside_sim_clock(self, tmp_path):
        report = lint(tmp_path, "txn/manager.py", self.VIOLATION, "R004")
        assert [f.rule for f in report.findings] == ["R004"]

    def test_suppressed(self, tmp_path):
        source = self.VIOLATION.replace(
            "time.time()", "time.time()  # repro: allow(R004)")
        report = lint(tmp_path, "txn/manager.py", source, "R004")
        assert report.findings == []
        assert report.suppressed == 1

    def test_allowed_in_sim_clock(self, tmp_path):
        report = lint(tmp_path, "sim/clock.py", self.VIOLATION, "R004")
        assert report.findings == []

    def test_direct_import_and_datetime_fire(self, tmp_path):
        source = """\
            from time import monotonic
            import datetime
            def t1():
                return monotonic()
            def t2():
                return datetime.datetime.now()
        """
        report = lint(tmp_path, "bench/figures.py", source, "R004")
        assert [f.rule for f in report.findings] == ["R004", "R004"]

    def test_sim_clock_now_is_clean(self, tmp_path):
        source = """\
            def stamp(clock):
                return clock.now()
        """
        report = lint(tmp_path, "txn/manager.py", source, "R004")
        assert report.findings == []


class TestR005TxnScope:
    VIOLATION = """\
        def load(db):
            txn = db.begin()
            do_work(db, txn)
            txn.commit()
    """

    def test_fires_without_guard(self, tmp_path):
        report = lint(tmp_path, "tools/loader.py", self.VIOLATION, "R005")
        assert [f.rule for f in report.findings] == ["R005"]
        assert "leaks an ACTIVE transaction" in report.findings[0].message

    def test_suppressed(self, tmp_path):
        source = self.VIOLATION.replace(
            "txn = db.begin()",
            "txn = db.begin()  # repro: allow(R005)")
        report = lint(tmp_path, "tools/loader.py", source, "R005")
        assert report.findings == []
        assert report.suppressed == 1

    def test_with_block_is_clean(self, tmp_path):
        source = """\
            def load(db):
                with db.begin() as txn:
                    do_work(db, txn)
        """
        report = lint(tmp_path, "tools/loader.py", source, "R005")
        assert report.findings == []

    def test_except_abort_guard_is_clean(self, tmp_path):
        source = """\
            def load(db):
                txn = db.begin()
                try:
                    do_work(db, txn)
                    txn.commit()
                except BaseException:
                    txn.abort()
                    raise
        """
        report = lint(tmp_path, "ql/executor.py", source, "R005")
        assert report.findings == []

    def test_delegation_forms_are_clean(self, tmp_path):
        source = """\
            def begin(self):
                self.txn = self.db.begin()
                return self.txn
            def make(manager):
                return manager.begin()
        """
        report = lint(tmp_path, "session.py", source, "R005")
        assert report.findings == []


class TestR006BareExcept:
    VIOLATION = """\
        def unpin(bufmgr, buf):
            try:
                bufmgr.unpin(buf)
            except Exception:
                pass
    """

    def test_fires_in_core_packages(self, tmp_path):
        report = lint(tmp_path, "storage/buffer.py", self.VIOLATION, "R006")
        assert [f.rule for f in report.findings] == ["R006"]

    def test_suppressed(self, tmp_path):
        source = self.VIOLATION.replace(
            "except Exception:",
            "except Exception:  # repro: allow(R006)")
        report = lint(tmp_path, "storage/buffer.py", source, "R006")
        assert report.findings == []
        assert report.suppressed == 1

    def test_outside_core_packages_is_clean(self, tmp_path):
        report = lint(tmp_path, "bench/cli.py", self.VIOLATION, "R006")
        assert report.findings == []

    def test_bare_except_fires_even_with_body(self, tmp_path):
        source = """\
            def f(x):
                try:
                    return x()
                except:
                    return None
        """
        report = lint(tmp_path, "txn/manager.py", source, "R006")
        assert [f.rule for f in report.findings] == ["R006"]

    def test_narrow_swallow_is_clean(self, tmp_path):
        source = """\
            def f(x):
                try:
                    return x()
                except ValueError:
                    pass
        """
        report = lint(tmp_path, "access/heap.py", source, "R006")
        assert report.findings == []


class TestSuppressionMechanics:
    def test_multiple_rules_in_one_comment(self, tmp_path):
        source = """\
            import time
            def f(relation, tid, snap):
                # repro: allow(R001, R004): fixture
                return relation.fetch(tid, snap) or time.time()
        """
        path = write_module(tmp_path, "lo/x.py", source)
        report = analyze_file(path, [get_rule("R001"), get_rule("R004")])
        assert report.findings == []
        assert report.suppressed == 2

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        source = """\
            import time
            def f():
                return time.time()  # repro: allow(R001)
        """
        path = write_module(tmp_path, "lo/x.py", source)
        report = analyze_file(path, [get_rule("R004")])
        assert [f.rule for f in report.findings] == ["R004"]


class TestR007HotPathBytesCopy:
    VIOLATION = """\
        def read_item(self, start, end):
            return bytes(self.buf[start:end])
    """

    def test_fires_in_page(self, tmp_path):
        report = lint(tmp_path, "storage/page.py", self.VIOLATION, "R007")
        assert [f.rule for f in report.findings] == ["R007"]
        assert "memoryview" in report.findings[0].message

    def test_fires_in_access(self, tmp_path):
        report = lint(tmp_path, "access/heap.py", self.VIOLATION, "R007")
        assert [f.rule for f in report.findings] == ["R007"]

    def test_silent_outside_hot_modules(self, tmp_path):
        report = lint(tmp_path, "lo/fchunk.py", self.VIOLATION, "R007")
        assert report.findings == []

    def test_sanctioned_accessor_not_flagged(self, tmp_path):
        source = """\
            def get_item(self, start, end):
                return bytes(self.buf[start:end])
        """
        report = lint(tmp_path, "storage/page.py", source, "R007")
        assert report.findings == []

    def test_whole_object_copy_not_flagged(self, tmp_path):
        source = """\
            def snapshot(self):
                return bytes(self.buf)
        """
        report = lint(tmp_path, "storage/page.py", source, "R007")
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        source = """\
            def read_item(self, start, end):
                # repro: allow(R007): boundary copy, leaves the pin
                return bytes(self.buf[start:end])
        """
        report = lint(tmp_path, "storage/page.py", source, "R007")
        assert report.findings == []
        assert report.suppressed == 1


class TestDriverAndReporters:
    def test_syntax_error_becomes_finding(self, tmp_path):
        path = write_module(tmp_path, "broken.py", "def f(:\n")
        report = analyze_file(path)
        assert [f.rule for f in report.findings] == ["E999"]

    def test_analyze_paths_walks_directories(self, tmp_path):
        write_module(tmp_path, "txn/a.py", "import time\nt = time.time()\n")
        write_module(tmp_path, "txn/b.py", "x = 1\n")
        report = analyze_paths([tmp_path], [get_rule("R004")])
        assert report.files_checked == 2
        assert len(report.findings) == 1

    def test_text_reporter_format(self, tmp_path):
        path = write_module(tmp_path, "txn/a.py",
                            "import time\nt = time.time()\n")
        report = analyze_file(path, [get_rule("R004")])
        text = render_text(report)
        assert f"{path}:2:5: R004" in text
        assert "1 finding in 1 file(s) checked" in text

    def test_json_reporter_schema(self, tmp_path):
        path = write_module(tmp_path, "txn/a.py",
                            "import time\nt = time.time()\n")
        document = json.loads(render_json(analyze_file(path)))
        assert document["count"] == 1
        assert document["files_checked"] == 1
        finding = document["findings"][0]
        assert finding["rule"] == "R004"
        assert finding["line"] == 2
        assert set(finding) == {"rule", "path", "line", "col", "message"}

    def test_clean_report_says_ok(self, tmp_path):
        path = write_module(tmp_path, "txn/a.py", "x = 1\n")
        assert render_text(analyze_file(path)).startswith("OK")


class TestCLI:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        path = write_module(tmp_path, "txn/a.py",
                            "import time\nt = time.time()\n")
        assert main([str(path)]) == 1
        assert "R004" in capsys.readouterr().out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        path = write_module(tmp_path, "txn/a.py", "x = 1\n")
        assert main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_select_limits_rules(self, tmp_path, capsys):
        path = write_module(tmp_path, "txn/a.py",
                            "import time\nt = time.time()\n")
        assert main(["--select", "R001", str(path)]) == 0
        assert main(["--select", "R004", str(path)]) == 1
        capsys.readouterr()

    def test_select_unknown_rule_is_usage_error(self, tmp_path, capsys):
        path = write_module(tmp_path, "txn/a.py", "x = 1\n")
        assert main(["--select", "R999", str(path)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert rule_id in out

    def test_json_format(self, tmp_path, capsys):
        path = write_module(tmp_path, "txn/a.py", "x = 1\n")
        assert main(["--format", "json", str(path)]) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 0


class TestShippedTreeIsClean:
    """The acceptance gate: the linter passes over the real source tree."""

    def test_python_dash_m_exits_zero_on_src_repro(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis",
             str(REPO_ROOT / "src" / "repro")],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK" in result.stdout

    def test_every_rule_is_exercised_by_the_tree_or_suppressions(self):
        # The shipped tree must carry at least one suppression (proof the
        # checker actually found the intentional exceptions documented in
        # docs/invariants.md) and zero findings.
        report = analyze_paths([REPO_ROOT / "src" / "repro"])
        assert report.findings == []
        assert report.suppressed >= 10
        assert report.files_checked > 80


class TestR008LockOrderInversion:
    """Seeded-inversion fixtures: the analyzer must catch a deliberate
    A->B / B->A pattern, interprocedural chains, and inv_* protocol
    violations inside operation scopes."""

    def test_scoped_inversion_fires(self, tmp_path):
        source = """\
            from repro.txn.lockdep import LockdepMutex

            class Engine:
                def __init__(self):
                    self._pool = LockdepMutex("mutex:buffer")
                    self._clk = LockdepMutex("mutex:clock")

                def forward(self):            # buffer(65) -> clock(90): fine
                    with self._pool:
                        with self._clk:
                            return 1

                def backward(self):           # clock(90) -> buffer(65): inverted
                    with self._clk:
                        with self._pool:
                            return 2
        """
        report = lint(tmp_path, "storage/seeded.py", source, "R008")
        assert [f.rule for f in report.findings] == ["R008"]
        finding = report.findings[0]
        assert "mutex:buffer" in finding.message
        assert "mutex:clock" in finding.message

    def test_interprocedural_inversion_fires(self, tmp_path):
        source = """\
            from repro.txn.lockdep import LockdepMutex

            class Engine:
                def __init__(self):
                    self._pool = LockdepMutex("mutex:buffer")
                    self._tm = LockdepMutex("mutex:txn")

                def _begin(self):
                    with self._tm:            # txn(45) under buffer(65)
                        return 1

                def outer(self):
                    with self._pool:
                        return self._begin()
        """
        report = lint(tmp_path, "storage/seeded.py", source, "R008")
        assert [f.rule for f in report.findings] == ["R008"]
        assert "via" in report.findings[0].message

    def test_correct_order_is_clean(self, tmp_path):
        source = """\
            from repro.txn.lockdep import LockdepMutex

            class Engine:
                def __init__(self):
                    self._tm = LockdepMutex("mutex:txn")
                    self._pool = LockdepMutex("mutex:buffer")

                def ok(self):
                    with self._tm:
                        with self._pool:
                            return 1
        """
        report = lint(tmp_path, "storage/seeded.py", source, "R008")
        assert report.findings == []

    def test_inv_protocol_violation_in_operation_scope(self, tmp_path):
        source = """\
            from repro.txn.lockdep import VALIDATOR

            def bad_rename(locks, txn, a, b):
                with VALIDATOR.operation("seeded"):
                    locks.acquire(txn, ("inv_tree", a), "EXCLUSIVE")
                    locks.acquire(txn, ("inv_entry", b), "EXCLUSIVE")
        """
        report = lint(tmp_path, "inversion/seeded.py", source, "R008")
        assert [f.rule for f in report.findings] == ["R008"]
        assert "inv_entry" in report.findings[0].message
        assert "protocol order" in report.findings[0].message

    def test_inv_order_not_checked_across_operations(self, tmp_path):
        # Two separate operations (strict 2PL: nothing held across the
        # boundary) may touch the family in any order.
        source = """\
            from repro.txn.lockdep import VALIDATOR

            def two_operations(locks, txn, a, b):
                with VALIDATOR.operation("first"):
                    locks.acquire(txn, ("inv_tree", a), "SHARED")
                with VALIDATOR.operation("second"):
                    locks.acquire(txn, ("inv_entry", b), "EXCLUSIVE")
        """
        report = lint(tmp_path, "inversion/seeded.py", source, "R008")
        assert report.findings == []


class TestR009BlockingUnderMutex:
    def test_heavy_acquire_under_mutex_fires(self, tmp_path):
        source = """\
            from repro.txn.lockdep import LockdepMutex

            class Engine:
                def __init__(self):
                    self._mutex = LockdepMutex("mutex:txn")

                def bad(self, locks, txn, oid):
                    with self._mutex:
                        locks.acquire(txn, ("relation", oid), "SHARED")
        """
        report = lint(tmp_path, "txn/seeded.py", source, "R009")
        assert [f.rule for f in report.findings] == ["R009"]
        assert "mutex:txn" in report.findings[0].message

    def test_heavy_acquire_under_latch_via_call_fires(self, tmp_path):
        source = """\
            class Scan:
                def _lock_row(self, locks, txn, oid):
                    locks.acquire(txn, ("relation", oid), "SHARED")

                def read(self, db, locks, txn, oid):
                    with db.latch:
                        self._lock_row(locks, txn, oid)
        """
        report = lint(tmp_path, "access/seeded.py", source, "R009")
        assert [f.rule for f in report.findings] == ["R009"]
        assert "via" in report.findings[0].message

    def test_heavy_before_mutex_is_clean(self, tmp_path):
        source = """\
            from repro.txn.lockdep import LockdepMutex

            class Engine:
                def __init__(self):
                    self._mutex = LockdepMutex("mutex:txn")

                def good(self, locks, txn, oid):
                    locks.acquire(txn, ("relation", oid), "SHARED")
                    with self._mutex:
                        return 1
        """
        report = lint(tmp_path, "txn/seeded.py", source, "R009")
        assert report.findings == []


class TestUnusedSuppressions:
    def test_stale_suppression_reported(self, tmp_path):
        source = """\
            def f():
                return 1  # repro: allow(R004): nothing here uses time
        """
        path = write_module(tmp_path, "txn/a.py", source)
        report = analyze_file(path, [get_rule("R004")])
        assert report.findings == []
        assert [(u.line, u.rule) for u in report.unused_suppressions] \
            == [(2, "R004")]
        text = render_text(report)
        assert "warning: suppression for R004" in text
        assert "1 unused suppression(s)" in text

    def test_used_suppression_not_reported(self, tmp_path):
        source = """\
            import time
            def f():
                return time.time()  # repro: allow(R004): fixture
        """
        path = write_module(tmp_path, "txn/a.py", source)
        report = analyze_file(path, [get_rule("R004")])
        assert report.unused_suppressions == []

    def test_unselected_rule_suppression_not_judged(self, tmp_path):
        # Running --select R001 must not flag every R004 suppression in
        # the tree as stale.
        source = """\
            import time
            def f():
                return time.time()  # repro: allow(R004): fixture
        """
        path = write_module(tmp_path, "txn/a.py", source)
        report = analyze_file(path, [get_rule("R001")])
        assert report.unused_suppressions == []

    def test_docstring_example_is_not_a_suppression(self, tmp_path):
        source = '''\
            def f():
                """Annotate with  # repro: allow(R004): reason."""
                return 1
        '''
        path = write_module(tmp_path, "txn/a.py", source)
        report = analyze_file(path, [get_rule("R004")])
        assert report.unused_suppressions == []

    def test_strict_flag_fails_cli(self, tmp_path, capsys):
        source = """\
            def f():
                return 1  # repro: allow(R004): stale
        """
        path = write_module(tmp_path, "txn/a.py", source)
        assert main([str(path)]) == 0                       # default: warn only
        assert main(["--strict-suppressions", str(path)]) == 1
        assert "warning: suppression" in capsys.readouterr().out

    def test_shipped_tree_has_no_stale_suppressions(self):
        report = analyze_paths([REPO_ROOT / "src" / "repro"])
        assert report.unused_suppressions == []


class TestCLISelectValidation:
    def test_empty_selection_is_usage_error(self, tmp_path, capsys):
        path = write_module(tmp_path, "txn/a.py", "x = 1\n")
        assert main(["--select", ",", str(path)]) == 2
        err = capsys.readouterr().err
        assert "selected no rules" in err
        assert "R001" in err and "R008" in err              # known-rule list

    def test_all_unknown_ids_reported_together(self, tmp_path, capsys):
        path = write_module(tmp_path, "txn/a.py", "x = 1\n")
        assert main(["--select", "R008,RXXX,RYYY", str(path)]) == 2
        err = capsys.readouterr().err
        assert "RXXX" in err and "RYYY" in err
        assert "R009" in err                                # known-rule list


class TestJSONReporter:
    FIXTURE = "import time\nt = time.time()  # repro: allow(R001)\n"

    def _report(self, tmp_path):
        path = write_module(tmp_path, "txn/golden.py", self.FIXTURE)
        return analyze_file(path, [get_rule("R001"), get_rule("R004")],
                            display_path="repro/txn/golden.py")

    def test_golden_document(self, tmp_path):
        # The machine-readable schema is a contract (CI artifacts parse
        # it); byte-for-byte golden so field renames fail loudly.
        golden = textwrap.dedent("""\
            {
              "count": 1,
              "files_checked": 1,
              "findings": [
                {
                  "col": 4,
                  "line": 2,
                  "message": "`time.time` reads the wall clock \\u2014 simulated and logical time come from sim/clock.py (SimClock)",
                  "path": "repro/txn/golden.py",
                  "rule": "R004"
                }
              ],
              "suppressed": 0,
              "unused_suppressions": [
                {
                  "line": 2,
                  "path": "repro/txn/golden.py",
                  "rule": "R001"
                }
              ]
            }""")
        assert render_json(self._report(tmp_path)) == golden

    def test_round_trip_reconstructs_text_report(self, tmp_path):
        # Everything render_text needs must survive the JSON encoding.
        from repro.analysis.core import (Finding, Report,
                                         UnusedSuppression)
        report = self._report(tmp_path)
        document = json.loads(render_json(report))
        rebuilt = Report(
            findings=[Finding(rel="", **f) for f in document["findings"]],
            files_checked=document["files_checked"],
            suppressed=document["suppressed"],
            unused_suppressions=[UnusedSuppression(**u) for u in
                                 document["unused_suppressions"]])
        assert render_text(rebuilt) == render_text(report)
        assert len(rebuilt.findings) == document["count"]
