"""Tests for the integrity checker — and via it, failure injection."""

import pytest

from repro.db import Database


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


def populated(db):
    """A database exercising every subsystem."""
    db.execute('create large type image (storage = f-chunk)')
    db.execute('create EMP (name = text, empno = int4, picture = image)')
    db.execute('define index emp_no on EMP (empno)')
    txn = db.begin()
    fchunk = db.lo.create(txn, "fchunk", compression="zero-rle")
    vseg = db.lo.create(txn, "vsegment")
    with db.lo.open(fchunk, txn, "rw") as obj:
        obj.write(bytes(20_000))
    with db.lo.open(vseg, txn, "rw") as obj:
        obj.write(b"seg" * 5000)
    db.execute(f'append EMP (name = "Joe", empno = 1, '
               f'picture = "{fchunk}")', txn)
    txn.commit()
    fs = db.inversion
    with db.begin() as txn:
        fs.mkdir(txn, "/home")
        fs.write_file(txn, "/home/file", b"contents")
    return fchunk, vseg


class TestHealthyDatabase:
    def test_fresh_database_is_clean(self, db):
        assert db.check_integrity() == []

    def test_populated_database_is_clean(self, db):
        populated(db)
        assert db.check_integrity() == []

    def test_clean_after_churn(self, db):
        populated(db)
        db.execute('replace EMP (empno = EMP.empno + 100)')
        db.execute('delete EMP where EMP.empno > 500')
        db.vacuum()
        assert db.check_integrity() == []

    def test_clean_after_archive(self, db):
        populated(db)
        db.execute('replace EMP (empno = 9)')
        db.archive_class("EMP")
        assert db.check_integrity() == []

    def test_clean_after_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        first = Database(path)
        first.create_class("T", [("v", "int4")])
        with first.begin() as txn:
            first.insert(txn, "T", (1,))
        first.close()
        second = Database(path)
        assert second.check_integrity() == []
        second.close()


class TestInjectedCorruption:
    def test_missing_relation_file_detected(self, db):
        db.create_class("T", [("v", "int4")])
        db.storage_manager("disk").unlink("heap_T")
        db.bufmgr.drop_file(db.storage_manager("disk"), "heap_T")
        problems = db.check_integrity()
        assert any("backing file" in p and "'T'" in p for p in problems)

    def test_dangling_index_tid_detected(self, db):
        db.create_class("T", [("v", "int4")])
        db.create_index("t_v", "T", "v")
        index = db.get_index("t_v")
        index.insert((42,), (999, 7))  # no such heap block
        problems = db.check_integrity()
        assert any("dangling" in p for p in problems)

    def test_btree_disorder_detected(self, db):
        db.create_class("T", [("v", "int4")])
        db.create_index("t_v", "T", "v")
        index = db.get_index("t_v")
        # Corrupt the tree by writing an unordered node directly.
        from repro.access.btree import _Node
        node = _Node(is_leaf=True, keys=[(5,), (1,)],
                     values=[(0, 0), (0, 0)])
        root, _height = index._read_meta()
        index._store_node(root, node)
        problems = db.check_integrity()
        assert any("out of order" in p or "t_v" in p for p in problems)

    def test_missing_size_row_detected(self, db):
        fchunk, _vseg = populated(db)
        from repro.db import PG_LARGEOBJECT
        from repro.lo.manager import designator_oid
        oid = designator_oid(fchunk)
        with db.begin() as txn:
            for tup in db.scan(PG_LARGEOBJECT):
                if tup.values[0] == oid:
                    db.delete(txn, PG_LARGEOBJECT, tup.tid)
        problems = db.check_integrity()
        assert any(f"large object {oid}" in p and "size row" in p
                   for p in problems)

    def test_missing_chunk_class_detected(self, db):
        fchunk, _vseg = populated(db)
        from repro.lo.fchunk import chunk_class_name
        from repro.lo.manager import designator_oid
        oid = designator_oid(fchunk)
        db.drop_class(chunk_class_name(oid))
        problems = db.check_integrity()
        assert any(f"large object {oid}" in p and "missing" in p
                   for p in problems)

    def test_dangling_inversion_designator_detected(self, db):
        populated(db)
        # Destroy the storage behind /home/file behind Inversion's back.
        snapshot = db.snapshot()
        storage = db.get_class("STORAGE")
        designator = next(iter(storage.scan(snapshot))).values[1]
        with db.begin() as txn:
            db.lo.unlink(txn, designator)
        problems = db.check_integrity()
        assert any("dangles" in p for p in problems)

    def test_segment_past_store_detected(self, db):
        _fchunk, vseg = populated(db)
        from repro.lo.manager import designator_oid
        from repro.lo.vsegment import segment_class_name
        oid = designator_oid(vseg)
        seg_class = segment_class_name(oid)
        with db.begin() as txn:
            db.insert(txn, seg_class, (10**9, 100, 100, 10**9))
        problems = db.check_integrity()
        assert any("points past" in p for p in problems)


class TestInversionCorruption:
    """The PR-8 additions to ``_check_inversion``: each injected fault
    must be called out by name."""

    def test_orphan_filestat_detected(self, db):
        populated(db)
        with db.begin() as txn:
            db.insert(txn, "FILESTAT", (99999, "ghost", 0o644,
                                        0.0, 0.0, 0.0))
        problems = db.check_integrity()
        assert any("FILESTAT: orphan row for id 99999" in p
                   for p in problems)

    def test_orphan_storage_detected(self, db):
        fchunk, _vseg = populated(db)
        with db.begin() as txn:
            db.insert(txn, "STORAGE", (99999, fchunk))
        problems = db.check_integrity()
        assert any("STORAGE: orphan row for id 99999" in p
                   for p in problems)

    def test_duplicate_slot_detected(self, db):
        populated(db)
        fs = db.inversion
        snapshot = db.snapshot()
        entry = fs._resolve("/home/file", snapshot)
        with db.begin() as txn:
            db.insert(txn, "DIRECTORY",
                      ("file", 99999, entry.parent_id, "f"))
            db.insert(txn, "FILESTAT", (99999, "x", 0o644, 0.0, 0.0, 0.0))
        problems = db.check_integrity()
        assert any("duplicate entry 'file'" in p for p in problems)

    def test_duplicate_file_id_detected(self, db):
        populated(db)
        fs = db.inversion
        snapshot = db.snapshot()
        entry = fs._resolve("/home/file", snapshot)
        with db.begin() as txn:
            db.insert(txn, "DIRECTORY",
                      ("alias", entry.file_id, entry.parent_id, "f"))
        problems = db.check_integrity()
        assert any("more than one DIRECTORY row" in p for p in problems)

    def test_dead_parent_detected(self, db):
        populated(db)
        with db.begin() as txn:
            db.insert(txn, "DIRECTORY", ("lost", 99999, 88888, "f"))
            db.insert(txn, "FILESTAT", (99999, "x", 0o644, 0.0, 0.0, 0.0))
        problems = db.check_integrity()
        assert any("parent 88888 is not a live directory" in p
                   for p in problems)

    def test_unreachable_cycle_detected(self, db):
        """Two directories parenting each other, detached from the root
        — the corruption the rename cycle-check prevents."""
        populated(db)
        with db.begin() as txn:
            db.insert(txn, "DIRECTORY", ("ouro", 70001, 70002, "d"))
            db.insert(txn, "DIRECTORY", ("boros", 70002, 70001, "d"))
            for fid in (70001, 70002):
                db.insert(txn, "FILESTAT", (fid, "x", 0o755,
                                            0.0, 0.0, 0.0))
        problems = db.check_integrity()
        assert any("unreachable from the root" in p for p in problems)


class TestCrashOrphanRecovery:
    """A crash between the (non-transactional) catalog registration and
    the creating transaction's commit must not leave a phantom large
    object: reopen sweeps it (LargeObjectManager.recover_orphans)."""

    def _crash_mid_create(self, path, impl):
        from repro.errors import SimulatedCrash
        db = Database(path)
        session = db.session()
        session.begin()
        designator = db.lo.create(session.txn, impl)
        with db.lo.open(designator, session.txn, "rw") as obj:
            obj.write(b"doomed")
        db.inject_faults("on append pg_log: crash")
        with pytest.raises(SimulatedCrash):
            session.commit()
        return designator

    @pytest.mark.parametrize("impl", ["fchunk", "vsegment"])
    def test_reopen_sweeps_uncommitted_create(self, tmp_path, impl):
        from repro.lo.manager import designator_oid
        path = str(tmp_path / "db")
        designator = self._crash_mid_create(path, impl)
        oid = designator_oid(designator)
        db = Database(path)  # reopen: recovery sweep runs here
        assert oid not in db.catalog.large_objects
        assert db.check_integrity() == []
        db.close()

    def test_committed_objects_survive_the_sweep(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        with db.begin() as txn:
            keeper = db.lo.create(txn, "fchunk")
            with db.lo.open(keeper, txn, "rw") as obj:
                obj.write(b"keep me")
        db.close()
        self._crash_mid_create(path, "fchunk")
        db = Database(path)
        with db.lo.open(keeper) as obj:
            assert obj.read() == b"keep me"
        assert db.check_integrity() == []
        db.close()

    def test_crashed_inversion_create_is_swept(self, tmp_path):
        from repro.errors import SimulatedCrash
        path = str(tmp_path / "db")
        db = Database(path)
        fs = db.inversion
        with db.begin() as txn:
            fs.write_file(txn, "/keep", b"safe")
        session = db.session()
        session.begin()
        with fs.create(session.txn, "/doomed") as handle:
            handle.write(b"gone")
        db.inject_faults("on append pg_log: crash")
        with pytest.raises(SimulatedCrash):
            session.commit()
        db = Database(path)
        fs = db.inversion
        assert not fs.exists("/doomed")
        assert fs.read_file("/keep") == b"safe"
        assert db.check_integrity() == []
        db.close()


class TestPrefetchApi:
    def test_prefetch_populates_pool(self, db):
        db.create_class("T", [("pad", "text")])
        with db.begin() as txn:
            for i in range(200):
                db.insert(txn, "T", ("x" * 400,))
        db.bufmgr.invalidate_all()
        relation = db.get_class("T")
        fetched = db.bufmgr.prefetch(relation.smgr, relation.fileid, 0, 5)
        assert fetched == 5
        before = db.bufmgr.stats.misses
        with db.bufmgr.page(relation.smgr, relation.fileid, 3):
            pass
        assert db.bufmgr.stats.misses == before  # it was resident

    def test_prefetch_clamps_to_file_end(self, db):
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            db.insert(txn, "T", (1,))
        relation = db.get_class("T")
        db.bufmgr.invalidate_all()
        assert db.bufmgr.prefetch(relation.smgr, relation.fileid,
                                  0, 100) <= relation.nblocks()
