"""Unit tests for the storage managers and the storage-manager switch."""

import pytest

from repro.errors import (
    StorageManagerError,
    WriteOnceViolation,
)
from repro.sim import SimClock, jukebox_device
from repro.smgr import (
    CachedStorageManager,
    DiskStorageManager,
    MemoryStorageManager,
    RawWormDevice,
    StorageManagerSwitch,
    WormStorageManager,
)
from repro.storage.constants import PAGE_SIZE


def block(fill: int) -> bytes:
    return bytes([fill]) * PAGE_SIZE


@pytest.fixture(params=["disk", "memory", "worm"])
def smgr(request, tmp_path):
    clock = SimClock()
    if request.param == "disk":
        return DiskStorageManager(str(tmp_path / "data"), clock)
    if request.param == "memory":
        return MemoryStorageManager(clock)
    return WormStorageManager(clock)


class TestCommonBehaviour:
    def test_create_and_exists(self, smgr):
        assert not smgr.exists("t")
        smgr.create("t")
        assert smgr.exists("t")
        assert smgr.nblocks("t") == 0

    def test_create_is_idempotent(self, smgr):
        smgr.create("t")
        smgr.write_block("t", 0, block(1))
        smgr.create("t")
        assert smgr.nblocks("t") == 1

    def test_extend_and_read(self, smgr):
        smgr.create("t")
        assert smgr.extend("t", block(1)) == 0
        assert smgr.extend("t", block(2)) == 1
        assert bytes(smgr.read_block("t", 0)) == block(1)
        assert bytes(smgr.read_block("t", 1)) == block(2)

    def test_read_past_end_rejected(self, smgr):
        smgr.create("t")
        smgr.extend("t", block(1))
        with pytest.raises(StorageManagerError):
            smgr.read_block("t", 1)
        with pytest.raises(StorageManagerError):
            smgr.read_block("t", -1)

    def test_write_hole_rejected(self, smgr):
        smgr.create("t")
        with pytest.raises(StorageManagerError):
            smgr.write_block("t", 5, block(1))

    def test_wrong_block_size_rejected(self, smgr):
        smgr.create("t")
        with pytest.raises(StorageManagerError):
            smgr.write_block("t", 0, b"tiny")

    def test_missing_file_rejected(self, smgr):
        with pytest.raises(StorageManagerError):
            smgr.nblocks("nope")

    def test_unlink(self, smgr):
        smgr.create("t")
        smgr.extend("t", block(1))
        smgr.unlink("t")
        assert not smgr.exists("t")

    def test_byte_size(self, smgr):
        smgr.create("t")
        smgr.extend("t", block(1))
        smgr.extend("t", block(2))
        assert smgr.byte_size("t") == 2 * PAGE_SIZE

    def test_io_charges_clock(self, smgr):
        smgr.create("t")
        smgr.extend("t", block(1))
        assert smgr.clock.elapsed > 0

    def test_stats(self, smgr):
        smgr.create("t")
        smgr.extend("t", block(1))
        smgr.read_block("t", 0)
        stats = smgr.stats()
        assert stats["reads"] >= 1
        assert stats["writes"] >= 1


class TestDiskSpecific:
    def test_survives_reopen(self, tmp_path):
        clock = SimClock()
        first = DiskStorageManager(str(tmp_path / "d"), clock)
        first.create("t")
        first.extend("t", block(7))
        first.sync("t")
        first.close()
        second = DiskStorageManager(str(tmp_path / "d"), SimClock())
        assert second.nblocks("t") == 1
        assert bytes(second.read_block("t", 0)) == block(7)

    def test_overwrite_allowed(self, tmp_path):
        smgr = DiskStorageManager(str(tmp_path / "d"), SimClock())
        smgr.create("t")
        smgr.extend("t", block(1))
        smgr.write_block("t", 0, block(9))
        assert bytes(smgr.read_block("t", 0)) == block(9)


class TestWormSpecific:
    def test_overwrite_rejected(self):
        smgr = WormStorageManager(SimClock())
        smgr.create("t")
        smgr.extend("t", block(1))
        with pytest.raises(WriteOnceViolation):
            smgr.write_block("t", 0, block(2))

    def test_unlink_does_not_reclaim_media(self):
        smgr = WormStorageManager(SimClock())
        smgr.create("t")
        smgr.extend("t", block(1))
        smgr.unlink("t")
        assert smgr.media_blocks_used() == 1

    def test_writes_slower_than_reads(self):
        clock = SimClock()
        smgr = WormStorageManager(clock, jukebox_device())
        smgr.create("t")
        smgr.extend("t", block(1))
        wrote = clock.elapsed_in("io.write")
        smgr.read_block("t", 0)
        read = clock.elapsed_in("io.read")
        assert wrote > read


class TestCachedWorm:
    def make(self, capacity=4):
        clock = SimClock()
        base = WormStorageManager(clock)
        return CachedStorageManager(base, clock, capacity_blocks=capacity)

    def test_second_read_hits_cache(self):
        smgr = self.make()
        smgr.create("t")
        smgr.extend("t", block(1))
        smgr.read_block("t", 0)  # hot from the write-through populate
        assert smgr.hits == 1
        assert smgr.misses == 0

    def test_cache_is_cheaper_than_media(self):
        smgr = self.make(capacity=2)
        smgr.create("t")
        smgr.extend("t", block(1))
        smgr.extend("t", block(2))
        smgr.migrate("t")
        smgr.invalidate("t")  # cold cache, blocks on media
        snap = smgr.clock.snapshot()
        smgr.read_block("t", 0)  # miss -> jukebox
        miss_cost = snap.since(smgr.clock).elapsed
        snap = smgr.clock.snapshot()
        smgr.read_block("t", 0)  # hit -> disk cache
        hit_cost = snap.since(smgr.clock).elapsed
        assert hit_cost < miss_cost / 2

    def test_eviction_respects_capacity(self):
        smgr = self.make(capacity=2)
        smgr.create("t")
        for i in range(5):
            smgr.extend("t", block(i))
        assert smgr.stats()["cached_blocks"] == 2

    def test_writes_staged_until_migrate(self):
        smgr = self.make()
        smgr.create("t")
        smgr.extend("t", block(3))
        smgr.sync("t")  # commit durability: satisfied by the cache disk
        assert smgr.base.nblocks("t") == 0  # nothing on media yet
        assert smgr.migrate("t") == 1
        assert bytes(smgr.base.read_block("t", 0)) == block(3)

    def test_staged_block_is_rewritable(self):
        """Heap pages are rewritten while they fill; the cache absorbs it."""
        smgr = self.make()
        smgr.create("t")
        smgr.extend("t", block(1))
        smgr.write_block("t", 0, block(2))  # rewrite before migration: fine
        smgr.migrate("t")
        assert bytes(smgr.base.read_block("t", 0)) == block(2)

    def test_write_once_enforced_after_migration(self):
        smgr = self.make()
        smgr.create("t")
        smgr.extend("t", block(1))
        smgr.migrate("t")
        with pytest.raises(WriteOnceViolation):
            smgr.write_block("t", 0, block(2))

    def test_eviction_spills_to_staging(self):
        smgr = self.make(capacity=2)
        smgr.create("t")
        for i in range(5):
            smgr.extend("t", block(i))
        assert smgr.base.nblocks("t") == 0  # nothing on media
        assert smgr.stats()["staged_blocks"] == 3
        for i in range(5):  # spilled blocks still readable (disk speed)
            assert bytes(smgr.read_block("t", i)) == block(i)

    def test_spilled_block_still_writable(self):
        smgr = self.make(capacity=2)
        smgr.create("t")
        for i in range(5):
            smgr.extend("t", block(i))
        smgr.write_block("t", 0, block(9))  # block 0 is in staging
        smgr.migrate("t")
        assert bytes(smgr.base.read_block("t", 0)) == block(9)

    def test_migrate_writes_media_in_order(self):
        smgr = self.make(capacity=2)
        smgr.create("t")
        for i in range(6):
            smgr.extend("t", block(i))
        assert smgr.migrate("t") == 6
        assert smgr.migrate("t") == 0  # idempotent
        for i in range(6):
            assert bytes(smgr.base.read_block("t", i)) == block(i)

    def test_sync_all_covers_every_file(self):
        smgr = self.make()
        for name in ("a", "b"):
            smgr.create(name)
            smgr.extend(name, block(7))
        smgr.sync_all()
        assert smgr.base.nblocks("a") == 1
        assert smgr.base.nblocks("b") == 1

    def test_invalidate_keeps_unarchived_blocks(self):
        smgr = self.make()
        smgr.create("t")
        smgr.extend("t", block(1))
        smgr.invalidate("t")  # dirty block must survive
        assert bytes(smgr.read_block("t", 0)) == block(1)
        smgr.migrate("t")
        smgr.invalidate("t")  # clean blocks may be dropped now
        assert bytes(smgr.read_block("t", 0)) == block(1)  # from media

    def test_unlink_invalidates(self):
        smgr = self.make()
        smgr.create("t")
        smgr.extend("t", block(1))
        smgr.unlink("t")
        assert smgr.stats()["cached_blocks"] == 0

    def test_hit_rate(self):
        smgr = self.make()
        assert smgr.hit_rate() == 0.0
        smgr.create("t")
        smgr.extend("t", block(1))
        smgr.read_block("t", 0)
        assert smgr.hit_rate() == 1.0


class TestRawWorm:
    def test_append_and_read(self):
        dev = RawWormDevice(SimClock())
        offset = dev.append(b"hello")
        assert offset == 0
        assert dev.append(b" world") == 5
        assert dev.read(0, 11) == b"hello world"
        assert dev.size == 11

    def test_read_out_of_range(self):
        dev = RawWormDevice(SimClock())
        dev.append(b"abc")
        with pytest.raises(StorageManagerError):
            dev.read(1, 5)

    def test_seal(self):
        from repro.errors import ReadOnlyObject
        dev = RawWormDevice(SimClock())
        dev.append(b"abc")
        dev.seal()
        with pytest.raises(ReadOnlyObject):
            dev.append(b"more")

    def test_sequential_cheaper_than_random(self):
        clock = SimClock()
        dev = RawWormDevice(clock)
        dev.append(bytes(1_000_000))
        snap = clock.snapshot()
        for i in range(10):
            dev.read(i * 4096, 4096)
        seq = snap.since(clock).elapsed
        snap = clock.snapshot()
        for i in [50, 3, 99, 12, 77, 31, 8, 64, 20, 90]:
            dev.read(i * 4096, 4096)
        rand = snap.since(clock).elapsed
        assert rand > seq


class TestSwitch:
    def test_register_and_get(self):
        switch = StorageManagerSwitch()
        clock = SimClock()
        switch.register("memory", lambda: MemoryStorageManager(clock))
        smgr = switch.get("memory")
        assert smgr is switch.get("memory")  # same live instance

    def test_unknown_manager(self):
        with pytest.raises(StorageManagerError):
            StorageManagerSwitch().get("tape")

    def test_names(self):
        switch = StorageManagerSwitch()
        clock = SimClock()
        switch.register("b", lambda: MemoryStorageManager(clock))
        switch.register("a", lambda: MemoryStorageManager(clock))
        assert switch.names() == ["a", "b"]

    def test_user_defined_manager(self):
        """The paper's extensibility claim: registering a new manager is
        just providing the construction routine."""
        clock = SimClock()

        class TapeManager(MemoryStorageManager):
            name = "tape"

        switch = StorageManagerSwitch()
        switch.register("tape", lambda: TapeManager(clock))
        smgr = switch.get("tape")
        smgr.create("t")
        smgr.extend("t", block(1))
        assert smgr.nblocks("t") == 1
