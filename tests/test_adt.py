"""Unit tests for the ADT system: types, functions, operators, Datum."""

import pytest

from repro.adt import Datum, FunctionRegistry, TypeRegistry
from repro.adt.types import normalize_storage
from repro.errors import CastError, UnknownFunction, UnknownType


class TestTypeRegistry:
    def test_builtins_present(self):
        registry = TypeRegistry()
        for name in ("int4", "int8", "float8", "bool", "text", "bytea",
                     "oid", "name", "rect"):
            assert registry.exists(name)

    def test_rect_conversion_roundtrip(self):
        registry = TypeRegistry()
        rect = registry.get("rect")
        value = rect.parse("0,0,20,20")
        assert value == (0.0, 0.0, 20.0, 20.0)
        assert rect.render(value) == "0,0,20,20"

    def test_bad_rect_rejected(self):
        registry = TypeRegistry()
        with pytest.raises(CastError):
            registry.get("rect").parse("1,2,3")

    def test_register_small_type(self):
        registry = TypeRegistry()
        registry.register("rgb",
                          lambda s: tuple(int(x) for x in s.split("/")),
                          lambda v: "/".join(str(x) for x in v))
        assert registry.get("rgb").parse("1/2/3") == (1, 2, 3)
        assert not registry.is_large("rgb")

    def test_register_large_type(self):
        registry = TypeRegistry()
        definition = registry.register_large(
            "image", storage="v-segment", compression="zlib")
        assert definition.is_large
        assert definition.storage == "vsegment"
        assert registry.large_names() == ["image"]

    def test_unknown_type(self):
        with pytest.raises(UnknownType):
            TypeRegistry().get("nope")

    def test_storage_spellings(self):
        assert normalize_storage("f-chunk") == "fchunk"
        assert normalize_storage("vsegment") == "vsegment"
        with pytest.raises(UnknownType):
            normalize_storage("toast")

    def test_bool_conversion(self):
        registry = TypeRegistry()
        boolean = registry.get("bool")
        assert boolean.parse("true") is True
        assert boolean.parse("0") is False
        assert boolean.render(True) == "true"

    def test_bytea_hex_conversion(self):
        registry = TypeRegistry()
        bytea = registry.get("bytea")
        assert bytea.parse("deadbeef") == b"\xde\xad\xbe\xef"
        assert bytea.render(b"\x01\x02") == "0102"


class TestFunctionRegistry:
    def test_exact_resolution(self):
        registry = FunctionRegistry()
        registry.register("f", ("int4", "text"), "bool",
                          lambda a, b: True)
        assert registry.resolve("f", ("int4", "text")).return_type == "bool"

    def test_overloading_by_types(self):
        registry = FunctionRegistry()
        registry.register("size", ("image",), "int4", lambda x: 1)
        registry.register("size", ("video",), "int8", lambda x: 2)
        assert registry.resolve("size", ("image",)).fn(None) == 1
        assert registry.resolve("size", ("video",)).fn(None) == 2

    def test_wildcard_fallback(self):
        registry = FunctionRegistry()
        registry.register("typename", ("*",), "text", lambda x: "any")
        assert registry.resolve("typename", ("rect",)).fn(0) == "any"

    def test_exact_beats_wildcard(self):
        registry = FunctionRegistry()
        registry.register("f", ("*",), "text", lambda x: "generic")
        registry.register("f", ("int4",), "text", lambda x: "specific")
        assert registry.resolve("f", ("int4",)).fn(0) == "specific"

    def test_unknown_function(self):
        with pytest.raises(UnknownFunction):
            FunctionRegistry().resolve("nope", ())

    def test_wrong_arity_not_matched(self):
        registry = FunctionRegistry()
        registry.register("f", ("int4",), "int4", abs)
        with pytest.raises(UnknownFunction):
            registry.resolve("f", ("int4", "int4"))

    def test_builtin_arithmetic_operators(self):
        registry = FunctionRegistry()
        plus = registry.resolve_operator("+", "int4", "int4")
        assert plus.fn(2, 3) == 5
        divide = registry.resolve_operator("/", "int4", "int4")
        assert divide.fn(7, 2) == 3  # integer division
        fdiv = registry.resolve_operator("/", "float8", "float8")
        assert fdiv.fn(7.0, 2.0) == 3.5

    def test_custom_operator(self):
        registry = FunctionRegistry()
        registry.register("rect_union", ("rect", "rect"), "rect",
                          lambda a, b: tuple(
                              min(x, y) if i < 2 else max(x, y)
                              for i, (x, y) in enumerate(zip(a, b))))
        registry.register_operator("+", "rect", "rect", "rect_union")
        union = registry.resolve_operator("+", "rect", "rect")
        assert union.fn((0, 0, 1, 1), (2, 2, 3, 3)) == (0, 0, 3, 3)

    def test_unknown_operator(self):
        with pytest.raises(UnknownFunction):
            FunctionRegistry().resolve_operator("@", "text", "text")

    def test_signature_rendering(self):
        registry = FunctionRegistry()
        definition = registry.register("clip", ("image", "rect"), "image",
                                       lambda a, b: None)
        assert definition.signature() == "clip(image, rect)"


class TestDatum:
    def test_infer(self):
        assert Datum.infer(5) == Datum("int4", 5)
        assert Datum.infer(2**40) == Datum("int8", 2**40)
        assert Datum.infer(1.5) == Datum("float8", 1.5)
        assert Datum.infer(True) == Datum("bool", True)
        assert Datum.infer("hi") == Datum("text", "hi")
        assert Datum.infer(b"\x00") == Datum("bytea", b"\x00")

    def test_infer_rejects_unknown(self):
        with pytest.raises(TypeError):
            Datum.infer(object())

    def test_truthiness(self):
        assert Datum("bool", True)
        assert not Datum("bool", False)
        assert not Datum("int4", 0)
