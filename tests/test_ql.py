"""Tests for the mini-POSTQUEL query language."""

import pytest

from repro.db import Database
from repro.errors import (
    ExecutionError,
    ParseError,
    UnknownFunction,
)


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


@pytest.fixture
def emp(db):
    db.execute('create EMP (name = text, salary = float8, age = int4)')
    db.execute('append EMP (name = "Joe", salary = 1000.0, age = 30)')
    db.execute('append EMP (name = "Mike", salary = 2000.0, age = 40)')
    db.execute('append EMP (name = "Sam", salary = 1500.0, age = 50)')
    return db


class TestLexerParser:
    def test_unterminated_string(self, db):
        with pytest.raises(ParseError):
            db.execute('retrieve (EMP.name) where EMP.name = "oops')

    def test_unknown_statement(self, db):
        with pytest.raises(ParseError):
            db.execute('frobnicate EMP')

    def test_trailing_garbage(self, db):
        with pytest.raises(ParseError):
            db.execute('destroy EMP extra')

    def test_error_carries_location(self, db):
        with pytest.raises(ParseError) as info:
            db.execute('retrieve (EMP.)')
        assert "line 1" in str(info.value)


class TestCreateAppendRetrieve:
    def test_basic_roundtrip(self, emp):
        result = emp.execute('retrieve (EMP.name) where EMP.age = 40')
        assert result.rows == [("Mike",)]
        assert result.columns == ["name"]

    def test_multiple_targets(self, emp):
        result = emp.execute(
            'retrieve (EMP.name, EMP.salary) where EMP.name = "Joe"')
        assert result.rows == [("Joe", 1000.0)]

    def test_named_target(self, emp):
        result = emp.execute('retrieve (who = EMP.name) where EMP.age < 35')
        assert result.columns == ["who"]

    def test_comparisons(self, emp):
        assert emp.execute(
            'retrieve (EMP.name) where EMP.age >= 40').count == 2
        assert emp.execute(
            'retrieve (EMP.name) where EMP.age != 40').count == 2
        assert emp.execute(
            'retrieve (EMP.name) where EMP.salary <= 1500.0').count == 2

    def test_boolean_connectives(self, emp):
        result = emp.execute(
            'retrieve (EMP.name) where EMP.age > 30 and EMP.salary < 1800.0')
        assert result.rows == [("Sam",)]
        result = emp.execute(
            'retrieve (EMP.name) where EMP.age = 30 or EMP.age = 50')
        assert result.count == 2
        result = emp.execute(
            'retrieve (EMP.name) where not EMP.age = 30')
        assert result.count == 2

    def test_arithmetic_in_targets(self, emp):
        result = emp.execute(
            'retrieve (double = EMP.salary * 2.0) where EMP.name = "Joe"')
        assert result.scalar() == 2000.0

    def test_arithmetic_in_qual(self, emp):
        result = emp.execute(
            'retrieve (EMP.name) where EMP.salary + 500.0 = 2000.0')
        assert result.rows == [("Sam",)]

    def test_unary_minus(self, emp):
        result = emp.execute(
            'retrieve (x = EMP.age * -1) where EMP.name = "Joe"')
        assert result.scalar() == -30

    def test_builtin_function(self, emp):
        result = emp.execute(
            'retrieve (n = length(EMP.name)) where EMP.name = "Mike"')
        assert result.scalar() == 4

    def test_retrieve_without_class(self, db):
        result = db.execute('retrieve (x = abs(-5))')
        assert result.scalar() == 5

    def test_unknown_function(self, emp):
        with pytest.raises(UnknownFunction):
            emp.execute('retrieve (frob(EMP.name))')

    def test_joins_rejected(self, emp):
        emp.execute('create DEPT (dname = text)')
        with pytest.raises(ExecutionError):
            emp.execute('retrieve (EMP.name, DEPT.dname)')


class TestReplaceDelete:
    def test_replace(self, emp):
        count = emp.execute(
            'replace EMP (salary = EMP.salary + 100.0) '
            'where EMP.name = "Joe"').count
        assert count == 1
        assert emp.execute(
            'retrieve (EMP.salary) where EMP.name = "Joe"').scalar() == 1100.0

    def test_replace_all(self, emp):
        assert emp.execute('replace EMP (age = EMP.age + 1)').count == 3

    def test_delete(self, emp):
        assert emp.execute('delete EMP where EMP.age > 35').count == 2
        assert emp.execute('retrieve (EMP.name)').rows == [("Joe",)]

    def test_delete_all(self, emp):
        assert emp.execute('delete EMP').count == 3

    def test_destroy(self, emp):
        emp.execute('destroy EMP')
        from repro.errors import RelationNotFound
        with pytest.raises(RelationNotFound):
            emp.execute('retrieve (EMP.name)')


class TestTransactionsInQl:
    def test_statement_atomicity(self, emp):
        """A failing statement run standalone leaves no changes."""
        from repro.errors import CastError
        with pytest.raises((ExecutionError, CastError)):
            emp.execute('replace EMP (salary = EMP.name) where EMP.age = 30')
        # Nothing was half-replaced (the statement's txn aborted).
        assert emp.execute(
            'retrieve (EMP.salary) where EMP.name = "Joe"').scalar() == 1000.0

    def test_explicit_transaction_spans_statements(self, emp):
        txn = emp.begin()
        emp.execute('append EMP (name = "Tmp", salary = 1.0, age = 1)', txn)
        emp.execute('append EMP (name = "Tmp2", salary = 2.0, age = 2)', txn)
        txn.abort()
        assert emp.execute('retrieve (EMP.name)').count == 3


class TestTimeTravelSyntax:
    def test_from_class_as_of(self, emp):
        t1 = emp.clock.now()
        emp.execute('replace EMP (salary = 9999.0) where EMP.name = "Joe"')
        result = emp.execute(
            f'retrieve (EMP.salary) from EMP["{t1}"] '
            f'where EMP.name = "Joe"')
        assert result.scalar() == 1000.0

    def test_epoch_and_now(self, emp):
        assert emp.execute(
            'retrieve (EMP.name) from EMP["epoch"]').count == 0
        assert emp.execute(
            'retrieve (EMP.name) from EMP["now"]').count == 3

    def test_full_history_range(self, emp):
        result = emp.execute(
            'retrieve (EMP.name) from EMP["epoch", "now"]')
        assert result.count == 3  # three rows, one version each


class TestCastsAndADTs:
    def test_rect_cast(self, db):
        db.register_function(
            "area", ("rect",), "float8",
            lambda r: abs((r[2] - r[0]) * (r[3] - r[1])))
        result = db.execute('retrieve (a = area("0,0,20,10"::rect))')
        assert result.scalar() == 200.0

    def test_custom_adt_column(self, db):
        db.execute('create BOX (label = text, bounds = rect)')
        db.execute('append BOX (label = "b1", bounds = "1,2,3,4")')
        result = db.execute('retrieve (BOX.bounds) where BOX.label = "b1"')
        assert result.scalar() == (1.0, 2.0, 3.0, 4.0)


class TestLargeADTsInQl:
    """The paper's end-to-end story: §4 and §5."""

    def setup_image_type(self, db, storage="f-chunk"):
        db.execute(f'create large type image (storage = {storage})')
        db.execute('create PHOTOS (name = text, picture = image)')

    def test_paper_section4_flow(self, db):
        """retrieve a designator, then open/seek/read it."""
        self.setup_image_type(db)
        txn = db.begin()
        designator = db.lo.create_for_type(txn, "image")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"JFIF....image bytes....")
        db.execute(
            f'append PHOTOS (name = "Joe", picture = "{designator}")', txn)
        txn.commit()

        result = db.execute(
            'retrieve (PHOTOS.picture) where PHOTOS.name = "Joe"')
        fetched = result.scalar()
        with db.lo.open(fetched) as obj:
            obj.seek(8)
            assert obj.read(5) == b"image"

    def test_newfilename_flow(self, db):
        """§6.2's insert protocol, verbatim."""
        self.setup_image_type(db)
        txn = db.begin()
        result = db.execute('retrieve (result = newfilename())', txn)
        designator = result.scalar()
        db.execute(
            f'append PHOTOS (name = "Joe", picture = "{designator}")', txn)
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(b"pfile contents")
        txn.commit()
        assert designator.startswith("pg_pfiles/")
        with db.lo.open(designator) as obj:
            assert obj.read() == b"pfile contents"

    def register_clip(self, db):
        """The paper's §5 function: clip(image, rect) -> image."""
        def clip(ctx, picture, rect):
            out = ctx.create_temporary_for_type("image")
            width = int(rect[2] - rect[0])
            picture.seek(int(rect[0]))
            with ctx.open(out, "rw") as target:
                target.write(picture.read(width))
            return out

        db.register_function("clip", ("image", "rect"), "image", clip,
                             needs_context=True)

    def store_photo(self, db, name, payload):
        txn = db.begin()
        designator = db.lo.create_for_type(txn, "image")
        with db.lo.open(designator, txn, "rw") as obj:
            obj.write(payload)
        db.execute(
            f'append PHOTOS (name = "{name}", picture = "{designator}")',
            txn)
        txn.commit()
        return designator

    def test_paper_section5_clip(self, db):
        """retrieve (clip(EMP.picture, "0,0,20,20"::rect)) where ..."""
        self.setup_image_type(db)
        self.register_clip(db)
        self.store_photo(db, "Mike", b"0123456789abcdefghij_tail")
        result = db.execute(
            'retrieve (clip(PHOTOS.picture, "5,0,15,20"::rect)) '
            'where PHOTOS.name = "Mike"')
        clipped = result.scalar()
        assert clipped.startswith("lo:")
        with db.lo.open(clipped) as obj:
            assert obj.read() == b"56789abcde"
        # The result temporary was kept for the caller...
        assert result.temporaries == {clipped}
        assert db.lo.exists(clipped)

    def test_intermediate_temporaries_collected(self, db):
        """clip(clip(x)) garbage-collects the inner temporary (§5)."""
        self.setup_image_type(db)
        self.register_clip(db)
        self.store_photo(db, "Mike", b"0123456789abcdefghij")
        created_before = set(db.catalog.large_objects)
        result = db.execute(
            'retrieve (clip(clip(PHOTOS.picture, "0,0,10,0"::rect), '
            '"2,0,6,0"::rect)) where PHOTOS.name = "Mike"')
        clipped = result.scalar()
        with db.lo.open(clipped) as obj:
            assert obj.read() == b"2345"
        survivors = set(db.catalog.large_objects) - created_before
        # Only the final result (and, for v-segment, its store) survive.
        final_oid = int(clipped[3:])
        assert final_oid in survivors
        inner = [oid for oid in survivors if oid != final_oid]
        assert len(inner) == 0

    def test_temporary_stored_into_class_is_kept(self, db):
        """append of a function result keeps the temporary (§5)."""
        self.setup_image_type(db)
        self.register_clip(db)
        self.store_photo(db, "Mike", b"0123456789")
        txn = db.begin()
        result = db.execute(
            'retrieve (c = clip(PHOTOS.picture, "0,0,4,0"::rect)) '
            'where PHOTOS.name = "Mike"', txn)
        clipped = result.scalar()
        db.execute(
            f'append PHOTOS (name = "MikeThumb", picture = "{clipped}")',
            txn)
        txn.commit()
        stored = db.execute(
            'retrieve (PHOTOS.picture) where PHOTOS.name = "MikeThumb"'
        ).scalar()
        with db.lo.open(stored) as obj:
            assert obj.read() == b"0123"

    def test_create_with_storage_manager_clause(self, db):
        db.execute('create ARCHIVE (label = text) '
                   'with storage manager "memory"')
        db.execute('append ARCHIVE (label = "x")')
        assert db.execute('retrieve (ARCHIVE.label)').count == 1

    def test_create_large_type_spellings(self, db):
        db.execute('create large type thumb '
                   '(storage = v-segment, compression = "zero-rle")')
        definition = db.types.get("thumb")
        assert definition.storage == "vsegment"
        assert definition.compression == "zero-rle"


class TestDefineIndex:
    def test_define_and_probe(self, emp):
        emp.execute('create NUM (name = text, n = int4)')
        emp.execute('define index num_n on NUM (n)')
        with emp.begin() as txn:
            for i in range(100):
                emp.execute(f'append NUM (name = "r{i}", n = {i})', txn)
        result = emp.execute('retrieve (NUM.name) where NUM.n = 42')
        assert result.rows == [("r42",)]

    def test_index_probe_actually_used(self, db):
        """The equality probe must touch far fewer tuples than a scan."""
        db.execute('create NUM (name = text, n = int4)')
        db.execute('define index num_n on NUM (n)')
        with db.begin() as txn:
            for i in range(300):
                # Fat rows so the class spans many pages.
                db.insert(txn, "NUM", (f"r{i}" + "x" * 400, i))
        before = db.bufmgr.stats.hits + db.bufmgr.stats.misses
        db.execute('retrieve (NUM.n) where NUM.n = 7')
        probe_cost = db.bufmgr.stats.hits + db.bufmgr.stats.misses - before
        before = db.bufmgr.stats.hits + db.bufmgr.stats.misses
        # != is not indexable, so this one walks the heap.
        db.execute('retrieve (NUM.n) where NUM.n != 7')
        scan_cost = db.bufmgr.stats.hits + db.bufmgr.stats.misses - before
        assert probe_cost < scan_cost / 3

    def test_probe_with_conjunction(self, db):
        db.execute('create NUM (name = text, n = int4)')
        db.execute('define index num_n on NUM (n)')
        with db.begin() as txn:
            db.insert(txn, "NUM", ("keep", 5))
            db.insert(txn, "NUM", ("drop", 5))
        result = db.execute(
            'retrieve (NUM.name) where NUM.n = 5 and NUM.name = "keep"')
        assert result.rows == [("keep",)]

    def test_probe_respects_time_travel(self, db):
        db.execute('create NUM (n = int4)')
        db.execute('define index num_n on NUM (n)')
        t0 = db.clock.now()
        db.execute('append NUM (n = 1)')
        result = db.execute(f'retrieve (NUM.n) from NUM["{t0}"] '
                            f'where NUM.n = 1')
        assert result.count == 0  # heap scan, not a stale index shortcut


class TestRetrieveInto:
    def test_materializes_result(self, emp):
        emp.execute('retrieve into RICH (EMP.name, EMP.salary) '
                    'where EMP.salary > 1200.0')
        rows = sorted(emp.execute('retrieve (RICH.name)').rows)
        assert rows == [("Mike",), ("Sam",)]

    def test_types_inferred_from_source(self, emp):
        emp.execute('retrieve into COPY (EMP.name, EMP.age)')
        schema = emp.get_class("COPY").schema
        assert schema.attribute("name").type_name == "text"
        assert schema.attribute("age").type_name == "int4"

    def test_computed_columns(self, emp):
        emp.execute('retrieve into DOUBLED (name = EMP.name, '
                    'pay = EMP.salary * 2.0)')
        rows = dict(emp.execute('retrieve (DOUBLED.name, DOUBLED.pay)').rows)
        assert rows["Joe"] == 2000.0

    def test_empty_result_still_creates_class(self, emp):
        emp.execute('retrieve into NONE_SUCH (EMP.name) '
                    'where EMP.age > 999')
        assert emp.execute('retrieve (NONE_SUCH.name)').count == 0


class TestScripts:
    def test_execute_script(self, db):
        results = db.execute_script('''
            create PETS (name = text, legs = int4);
            append PETS (name = "rex", legs = 4);
            append PETS (name = "tweety", legs = 2);
            retrieve (PETS.name) where PETS.legs = 4
        ''')
        assert len(results) == 4
        assert results[-1].rows == [("rex",)]

    def test_script_is_atomic(self, db):
        db.execute('create T (n = int4)')
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            db.execute_script('''
                append T (n = 1);
                append T (n = "not a number")
            ''')
        assert db.execute('retrieve (T.n)').count == 0

    def test_trailing_semicolon_ok(self, db):
        db.execute('create T (n = int4);')
        assert db.execute('retrieve (T.n);').count == 0


class TestTimeRangeQueries:
    """POSTQUEL interval semantics: EMP["t1","t2"] yields every version
    alive at any point in the interval."""

    def test_range_returns_all_versions(self, db):
        db.execute('create H (v = int4)')
        db.execute('append H (v = 1)')
        t1 = db.clock.now()
        db.execute('replace H (v = 2)')
        db.execute('replace H (v = 3)')
        t2 = db.clock.now()
        rows = sorted(db.execute(
            f'retrieve (H.v) from H["{t1}", "{t2}"]').rows)
        assert rows == [(1,), (2,), (3,)]

    def test_point_query_returns_one_version(self, db):
        db.execute('create H (v = int4)')
        db.execute('append H (v = 1)')
        t1 = db.clock.now()
        db.execute('replace H (v = 2)')
        assert db.execute(f'retrieve (H.v) from H["{t1}"]').rows == [(1,)]

    def test_epoch_to_now_is_full_history(self, db):
        db.execute('create H (v = int4)')
        db.execute('append H (v = 1)')
        db.execute('replace H (v = 2)')
        db.execute('delete H')
        rows = sorted(db.execute(
            'retrieve (H.v) from H["epoch", "now"]').rows)
        assert rows == [(1,), (2,)]
        assert db.execute('retrieve (H.v)').count == 0

    def test_range_excludes_versions_outside(self, db):
        db.execute('create H (v = int4)')
        db.execute('append H (v = 1)')
        db.execute('replace H (v = 2)')
        t1 = db.clock.now()
        db.execute('replace H (v = 3)')
        t2 = db.clock.now()
        db.execute('replace H (v = 4)')
        rows = sorted(db.execute(
            f'retrieve (H.v) from H["{t1}", "{t2}"]').rows)
        # v=1 died before t1; v=4 born after t2; v=2 alive at t1, v=3 at t2.
        assert rows == [(2,), (3,)]

    def test_range_api_on_scan(self, db):
        db.create_class("H", [("v", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "H", (1,))
        t1 = db.clock.now()
        with db.begin() as txn:
            db.replace(txn, "H", tid, (2,))
        t2 = db.clock.now()
        rows = sorted(t.values for t in db.scan("H", as_of=t1, until=t2))
        assert rows == [(1,), (2,)]


class TestSortBy:
    def test_ascending_default(self, emp):
        rows = emp.execute(
            'retrieve (EMP.name) sort by EMP.age').rows
        assert rows == [("Joe",), ("Mike",), ("Sam",)]

    def test_descending(self, emp):
        rows = emp.execute(
            'retrieve (EMP.name) sort by EMP.age >').rows
        assert rows == [("Sam",), ("Mike",), ("Joe",)]

    def test_multi_key(self, db):
        db.execute('create G (a = int4, b = int4)')
        for a, b in [(1, 2), (2, 1), (1, 1), (2, 2)]:
            db.execute(f'append G (a = {a}, b = {b})')
        rows = db.execute(
            'retrieve (G.a, G.b) sort by G.a, G.b >').rows
        assert rows == [(1, 2), (1, 1), (2, 2), (2, 1)]

    def test_sort_with_qualification(self, emp):
        rows = emp.execute(
            'retrieve (EMP.name) where EMP.age > 30 '
            'sort by EMP.salary >').rows
        assert rows == [("Mike",), ("Sam",)]

    def test_sort_by_expression(self, emp):
        rows = emp.execute(
            'retrieve (EMP.name) sort by EMP.salary * -1.0').rows
        assert rows == [("Mike",), ("Sam",), ("Joe",)]


class TestAggregates:
    def test_count(self, emp):
        assert emp.execute('retrieve (count(EMP.name))').scalar() == 3

    def test_count_with_qual(self, emp):
        result = emp.execute(
            'retrieve (n = count(EMP.name)) where EMP.age > 35')
        assert result.columns == ["n"]
        assert result.scalar() == 2

    def test_sum_avg_min_max(self, emp):
        result = emp.execute(
            'retrieve (s = sum(EMP.salary), a = avg(EMP.salary), '
            'lo = min(EMP.age), hi = max(EMP.age))')
        s, a, lo, hi = result.rows[0]
        assert s == 4500.0
        assert a == 1500.0
        assert (lo, hi) == (30, 50)

    def test_empty_aggregates(self, emp):
        result = emp.execute(
            'retrieve (c = count(EMP.name), s = sum(EMP.salary), '
            'a = avg(EMP.salary)) where EMP.age > 999')
        assert result.rows == [(0, 0, None)]

    def test_aggregate_over_expression(self, emp):
        assert emp.execute(
            'retrieve (sum(EMP.salary * 2.0))').scalar() == 9000.0

    def test_mixing_rejected(self, emp):
        with pytest.raises(ExecutionError):
            emp.execute('retrieve (EMP.name, count(EMP.name))')

    def test_aggregate_needs_class(self, db):
        with pytest.raises(ExecutionError):
            db.execute('retrieve (count(1))')

    def test_aggregate_in_time_travel(self, emp):
        t0 = emp.clock.now()
        emp.execute('append EMP (name = "New", salary = 1.0, age = 1)')
        assert emp.execute(
            f'retrieve (count(EMP.name)) from EMP["{t0}"]').scalar() == 3
        assert emp.execute('retrieve (count(EMP.name))').scalar() == 4


class TestIndexRangeScan:
    @pytest.fixture
    def num(self, db):
        db.execute('create NUM (n = int4)')
        db.execute('define index num_n on NUM (n)')
        with db.begin() as txn:
            for i in range(100):
                db.insert(txn, 'NUM', (i,))
        return db

    def test_between_style_pair(self, num):
        result = num.execute(
            'retrieve (NUM.n) where NUM.n >= 10 and NUM.n <= 20')
        assert sorted(r[0] for r in result.rows) == list(range(10, 21))

    def test_strict_bounds_tightened(self, num):
        result = num.execute(
            'retrieve (NUM.n) where NUM.n > 10 and NUM.n < 20')
        assert sorted(r[0] for r in result.rows) == list(range(11, 20))

    def test_half_open_ranges(self, num):
        assert num.execute('retrieve (NUM.n) where NUM.n >= 95').count == 5
        assert num.execute('retrieve (NUM.n) where NUM.n < 5').count == 5

    def test_mirrored_operands(self, num):
        """``7 < NUM.n`` must read as ``NUM.n > 7``."""
        result = num.execute('retrieve (NUM.n) where 7 < NUM.n and 12 > NUM.n')
        assert sorted(r[0] for r in result.rows) == list(range(8, 12))

    def test_range_plan_in_explain(self, num):
        plan = num.explain('retrieve (NUM.n) where NUM.n >= 10 and NUM.n <= 20')
        assert "index range scan num_n on NUM.n in [10, 20]" in plan
        plan = num.explain('retrieve (NUM.n) where NUM.n >= 42')
        assert "index range scan num_n on NUM.n in [42, +inf]" in plan

    def test_unindexed_attribute_falls_back(self, db):
        db.execute('create PLAIN (n = int4)')
        with db.begin() as txn:
            for i in range(10):
                db.insert(txn, 'PLAIN', (i,))
        plan = db.explain('retrieve (PLAIN.n) where PLAIN.n >= 3')
        assert "sequential scan of PLAIN" in plan
        assert db.execute('retrieve (PLAIN.n) where PLAIN.n >= 3').count == 7

    def test_range_with_extra_conjunct_rechecks(self, num):
        """Non-range conjuncts still filter the fetched tuples."""
        result = num.execute(
            'retrieve (NUM.n) where NUM.n >= 10 and NUM.n <= 30 '
            'and NUM.n != 15')
        got = sorted(r[0] for r in result.rows)
        assert got == [n for n in range(10, 31) if n != 15]

    def test_range_sees_fresh_and_replaced_tuples(self, num):
        with num.begin() as txn:
            tup = next(t for t in num.scan('NUM', txn)
                       if t.values[0] == 50)
            num.replace(txn, 'NUM', tup.tid, (1000,))
        result = num.execute('retrieve (NUM.n) where NUM.n >= 999')
        assert result.rows == [(1000,)]
        assert num.execute(
            'retrieve (NUM.n) where NUM.n >= 50 and NUM.n <= 50').count == 0

    def test_range_probe_cheaper_than_scan(self, db):
        db.execute('create FAT (name = text, n = int4)')
        db.execute('define index fat_n on FAT (n)')
        with db.begin() as txn:
            for i in range(300):
                # Fat rows so the class spans many pages.
                db.insert(txn, "FAT", ("x" * 400, i))

        def cost(query):
            before = db.bufmgr.stats.hits + db.bufmgr.stats.misses
            db.execute(query)
            return db.bufmgr.stats.hits + db.bufmgr.stats.misses - before

        narrow = cost('retrieve (FAT.n) where FAT.n >= 1 and FAT.n <= 4')
        # != is not indexable, so this one walks every heap page.
        full = cost('retrieve (FAT.n) where FAT.n != 1')
        assert narrow < full / 3


class TestExplain:
    def test_scan_plan(self, emp):
        plan = emp.explain('retrieve (EMP.name) where EMP.salary > 1.0')
        assert "sequential scan of EMP" in plan
        assert "filter" in plan

    def test_index_probe_plan(self, db):
        db.execute('create NUM (n = int4)')
        db.execute('define index num_n on NUM (n)')
        plan = db.explain('retrieve (NUM.n) where NUM.n = 5')
        assert "index probe num_n" in plan

    def test_time_travel_plan_never_probes(self, db):
        db.execute('create NUM (n = int4)')
        db.execute('define index num_n on NUM (n)')
        plan = db.explain('retrieve (NUM.n) from NUM["1.0"] '
                          'where NUM.n = 5')
        assert "sequential scan" in plan
        assert "as of 1" in plan

    def test_aggregate_and_sort_noted(self, emp):
        plan = emp.explain('retrieve (count(EMP.name))')
        assert "aggregate: count" in plan
        plan = emp.explain('retrieve (EMP.name) sort by EMP.age')
        assert "sort by 1 key(s)" in plan

    def test_into_noted(self, emp):
        plan = emp.explain('retrieve into COPY (EMP.name)')
        assert "materialize into new class COPY" in plan

    def test_utility_statement(self, emp):
        assert "utility" in emp.explain('destroy EMP')
