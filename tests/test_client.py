"""Tests for the libpq-style front-end large-object API."""

import pytest

from repro.client import LargeObjectApi
from repro.db import Database
from repro.errors import LargeObjectError, NoActiveTransaction


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


@pytest.fixture
def api(db):
    return LargeObjectApi(db)


class TestLifecycle:
    def test_creat_open_write_read(self, api):
        api.begin()
        oid = api.lo_creat()
        fd = api.lo_open(oid, api.INV_WRITE | api.INV_READ)
        assert api.lo_write(fd, b"hello large world") == 17
        api.lo_lseek(fd, 6, 0)
        assert api.lo_read(fd, 5) == b"large"
        assert api.lo_tell(fd) == 11
        api.lo_close(fd)
        api.commit()

    def test_requires_transaction(self, api):
        with pytest.raises(NoActiveTransaction):
            api.lo_creat()

    def test_double_begin_rejected(self, api):
        api.begin()
        with pytest.raises(LargeObjectError):
            api.begin()
        api.rollback()

    def test_rollback_discards(self, api, db):
        api.begin()
        oid = api.lo_creat()
        fd = api.lo_open(oid, api.INV_WRITE)
        api.lo_write(fd, b"doomed")
        api.rollback()
        assert not db.lo.exists(f"lo:{oid}")

    def test_unlink(self, api, db):
        api.begin()
        oid = api.lo_creat()
        api.lo_unlink(oid)
        api.commit()
        assert not db.lo.exists(f"lo:{oid}")

    def test_read_only_descriptor(self, api):
        from repro.errors import ReadOnlyObject
        api.begin()
        oid = api.lo_creat()
        fd = api.lo_open(oid, api.INV_READ)
        with pytest.raises(ReadOnlyObject):
            api.lo_write(fd, b"x")
        api.commit()

    def test_bad_descriptor(self, api):
        api.begin()
        with pytest.raises(LargeObjectError):
            api.lo_read(42, 1)
        api.rollback()

    def test_bad_mode(self, api):
        api.begin()
        oid = api.lo_creat()
        with pytest.raises(LargeObjectError):
            api.lo_open(oid, 0)
        api.commit()

    def test_commit_closes_descriptors(self, api):
        api.begin()
        oid = api.lo_creat()
        fd = api.lo_open(oid, api.INV_WRITE)
        api.lo_write(fd, b"flushed at commit")
        api.commit()  # descriptor closed + buffered chunk materialized
        api.begin()
        fd = api.lo_open(oid, api.INV_READ)
        assert api.lo_read(fd, 100) == b"flushed at commit"
        api.commit()

    def test_vsegment_objects(self, api):
        api.begin()
        oid = api.lo_creat(impl="vsegment", compression="zero-rle")
        fd = api.lo_open(oid, api.INV_WRITE | api.INV_READ)
        api.lo_write(fd, b"zz" + bytes(5000))
        api.lo_lseek(fd, 0, 0)
        assert api.lo_read(fd, 2) == b"zz"
        api.commit()


class TestImportExport:
    def test_roundtrip_through_real_files(self, api, tmp_path):
        source = tmp_path / "in.bin"
        source.write_bytes(b"\x01\x02" * 50_000)
        api.begin()
        oid = api.lo_import(str(source))
        api.commit()
        api.begin()
        target = tmp_path / "out.bin"
        assert api.lo_export(oid, str(target)) == 100_000
        api.commit()
        assert target.read_bytes() == source.read_bytes()
