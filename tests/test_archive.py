"""Tests for the archival vacuum cleaner (history → archive storage)."""

import pytest

from repro.db import Database
from repro.errors import RelationError


@pytest.fixture
def db():
    database = Database()
    yield database
    database.close()


def build_history(db):
    """Three committed generations of one row; returns [(stamp, value)]."""
    db.create_class("T", [("v", "int4")])
    stamps = []
    with db.begin() as txn:
        tid = db.insert(txn, "T", (1,))
    stamps.append((db.clock.now(), 1))
    for value in (2, 3):
        with db.begin() as txn:
            tid = db.replace(txn, "T", tid, (value,))
        stamps.append((db.clock.now(), value))
    return stamps


class TestSweep:
    def test_moves_dead_versions(self, db):
        build_history(db)
        result = db.archive_class("T")
        assert result == {"archived": 2, "discarded": 0}
        # Current relation keeps only the live version.
        assert [t.values for t in db.scan("T")] == [(3,)]
        archive = db.get_class("a_T")
        assert len(list(archive.scan_versions())) == 2

    def test_discards_aborted_versions(self, db):
        db.create_class("T", [("v", "int4")])
        txn = db.begin()
        db.insert(txn, "T", (99,))
        txn.abort()
        result = db.archive_class("T")
        assert result == {"archived": 0, "discarded": 1}
        assert not db.archiver.has_archive("T")  # nothing worth keeping

    def test_keeps_live_and_in_progress(self, db):
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "T", (1,))
        deleter = db.begin()
        db.delete(deleter, "T", tid)  # uncommitted delete
        assert db.archive_class("T") == {"archived": 0, "discarded": 0}
        deleter.abort()

    def test_horizon_limits_sweep(self, db):
        stamps = build_history(db)
        middle = stamps[1][0]
        result = db.archive_class("T", horizon=middle)
        assert result["archived"] == 1  # only the pre-middle version

    def test_idempotent(self, db):
        build_history(db)
        db.archive_class("T")
        assert db.archive_class("T") == {"archived": 0, "discarded": 0}

    def test_archive_of_archive_rejected(self, db):
        build_history(db)
        db.archive_class("T")
        with pytest.raises(RelationError):
            db.archive_class("a_T")

    def test_archive_lands_on_worm(self, db):
        build_history(db)
        db.archive_class("T")
        entry = db.catalog.get_relation("a_T")
        assert entry.smgr_name == "worm"

    def test_stamps_preserved_byte_for_byte(self, db):
        build_history(db)
        before = {(t.oid, t.xmin, t.xmax, t.values)
                  for t in db.get_class("T").scan_versions()
                  if t.xmax != 0}
        db.archive_class("T")
        after = {(t.oid, t.xmin, t.xmax, t.values)
                 for t in db.get_class("a_T").scan_versions()}
        assert before == after


class TestTimeTravelAcrossArchive:
    def test_history_readable_after_archiving(self, db):
        stamps = build_history(db)
        db.archive_class("T")
        for stamp, value in stamps:
            rows = [t.values for t in db.scan("T", as_of=stamp)]
            assert rows == [(value,)]

    def test_current_reads_skip_archive(self, db):
        build_history(db)
        db.archive_class("T")
        assert [t.values for t in db.scan("T")] == [(3,)]

    def test_no_duplicates_after_partial_crash(self, db):
        """A version present in both places (crash between copy and
        delete) appears once in historical scans."""
        stamps = build_history(db)
        relation = db.get_class("T")
        victim = next(t for t in relation.scan_versions() if t.xmax != 0)
        archive = db.archiver.archive_relation("T", create=True)
        from repro.access.tuples import serialize_tuple
        image = serialize_tuple(relation.schema, victim.xmin, victim.oid,
                                victim.values, xmax=victim.xmax)
        archive.insert_raw(image)  # the "crashed" half-done archive copy
        rows = [t.values for t in db.scan("T", as_of=stamps[0][0])]
        assert rows == [(stamps[0][1],)]

    def test_archive_survives_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        db.create_class("T", [("v", "int4")])
        with db.begin() as txn:
            tid = db.insert(txn, "T", (1,))
        stamp = db.clock.now()
        with db.begin() as txn:
            db.replace(txn, "T", tid, (2,))
        # Durable databases archive to disk (worm media is per-process).
        db.archiver.archive_smgr = "disk"
        db.archive_class("T")
        db.close()
        reopened = Database(path)
        assert [t.values for t in reopened.scan("T", as_of=stamp)] \
            == [(1,)]
        assert [t.values for t in reopened.scan("T")] == [(2,)]
        reopened.close()


class TestSpaceReclamation:
    def test_archived_space_is_reusable(self, db):
        db.create_class("T", [("pad", "text")])
        with db.begin() as txn:
            tids = [db.insert(txn, "T", ("x" * 500,)) for _ in range(100)]
        for generation in range(3):
            with db.begin() as txn:
                tids = [db.replace(txn, "T", tid, (f"{generation}" * 500,))
                        for tid in tids]
        blocks_before = db.get_class("T").nblocks()
        db.archive_class("T")
        with db.begin() as txn:
            for _ in range(100):
                db.insert(txn, "T", ("fresh" * 100,))
        assert db.get_class("T").nblocks() <= blocks_before + 1
