"""Stateful (model-based) hypothesis tests.

Hypothesis drives long random operation sequences against the Inversion
file system and a large object, checking after every step that the system
agrees with a trivially-correct in-memory model.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.db import Database

NAMES = st.sampled_from(["alpha", "beta", "gamma", "delta", "data.bin"])
CONTENT = st.binary(min_size=0, max_size=3000)


class InversionModel(RuleBasedStateMachine):
    """Inversion vs a dict of path -> bytes (directories implicit)."""

    @initialize()
    def setup(self):
        self.db = Database(charge_cpu=False)
        self.fs = self.db.inversion
        self.files: dict[str, bytes] = {}
        self.dirs: set[str] = set()

    def teardown(self):
        self.db.close()

    def _parent_exists(self, directory: str) -> bool:
        return directory == "" or directory in self.dirs

    @rule(directory=NAMES)
    def mkdir(self, directory):
        path = f"/{directory}"
        if path in self.dirs or path in self.files:
            return
        with self.db.begin() as txn:
            self.fs.mkdir(txn, path)
        self.dirs.add(path)

    @rule(directory=st.one_of(st.just(""), NAMES), name=NAMES,
          content=CONTENT)
    def write(self, directory, name, content):
        prefix = f"/{directory}" if directory else ""
        if prefix and prefix not in self.dirs:
            return
        path = f"{prefix}/{name}"
        if path in self.dirs:
            return
        with self.db.begin() as txn:
            self.fs.write_file(txn, path, content)
        self.files[path] = content

    @rule(content=CONTENT)
    def aborted_write_changes_nothing(self, content):
        if not self.files:
            return
        path = next(iter(self.files))
        txn = self.db.begin()
        with self.fs.open(path, txn, "rw") as handle:
            handle.write(content + b"!")
        txn.abort()

    @rule()
    def unlink_one(self):
        if not self.files:
            return
        path = sorted(self.files)[0]
        with self.db.begin() as txn:
            self.fs.unlink(txn, path)
        del self.files[path]

    @rule(src_name=NAMES, dst_name=NAMES)
    def rename_toplevel(self, src_name, dst_name):
        src, dst = f"/{src_name}", f"/{dst_name}"
        if src not in self.files or dst in self.files or dst in self.dirs:
            return
        with self.db.begin() as txn:
            self.fs.rename(txn, src, dst)
        self.files[dst] = self.files.pop(src)

    @invariant()
    def contents_match_model(self):
        if not hasattr(self, "fs"):
            return
        for path, expected in self.files.items():
            assert self.fs.read_file(path) == expected

    @invariant()
    def listings_match_model(self):
        if not hasattr(self, "fs"):
            return
        expected_top = {p[1:] for p in self.files if p.count("/") == 1}
        expected_top |= {d[1:] for d in self.dirs}
        assert set(self.fs.listdir("/")) == expected_top


class LargeObjectModel(RuleBasedStateMachine):
    """One v-segment object vs a plain bytearray, across transactions."""

    @initialize()
    def setup(self):
        self.db = Database(charge_cpu=False)
        with self.db.begin() as txn:
            self.designator = self.db.lo.create(
                txn, "vsegment", compression="zero-rle")
        self.model = bytearray()
        self.txn = None
        self.handle = None

    def teardown(self):
        if self.handle is not None and not self.handle.closed:
            self.handle.close()
        if self.txn is not None and self.txn.is_active:
            self.txn.abort()
        self.db.close()

    @precondition(lambda self: self.txn is None)
    @rule()
    def begin(self):
        self.txn = self.db.begin()
        self.handle = self.db.lo.open(self.designator, self.txn, "rw")
        self.pending = bytearray(self.model)

    @precondition(lambda self: self.txn is not None)
    @rule(offset=st.integers(0, 30_000), data=st.binary(min_size=1,
                                                        max_size=5000))
    def write(self, offset, data):
        self.handle.seek(offset)
        self.handle.write(data)
        if offset > len(self.pending):
            self.pending.extend(bytes(offset - len(self.pending)))
        self.pending[offset:offset + len(data)] = data

    @precondition(lambda self: self.txn is not None)
    @rule(offset=st.integers(0, 35_000), length=st.integers(1, 8000))
    def read_inside_txn(self, offset, length):
        self.handle.seek(offset)
        assert self.handle.read(length) == \
            bytes(self.pending[offset:offset + length])

    @precondition(lambda self: self.txn is not None)
    @rule()
    def commit(self):
        self.handle.close()
        self.txn.commit()
        self.model = self.pending
        self.txn = self.handle = None

    @precondition(lambda self: self.txn is not None)
    @rule()
    def abort(self):
        self.handle.close()
        self.txn.abort()
        self.txn = self.handle = None

    @invariant()
    def committed_state_matches_model(self):
        if not hasattr(self, "db") or self.txn is not None:
            return
        with self.db.lo.open(self.designator) as obj:
            assert obj.read() == bytes(self.model)


TestInversionStateful = InversionModel.TestCase
TestInversionStateful.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None)

TestLargeObjectStateful = LargeObjectModel.TestCase
TestLargeObjectStateful.settings = settings(
    max_examples=10, stateful_step_count=20, deadline=None)


class BTreeModel(RuleBasedStateMachine):
    """The disk B-tree vs a sorted multiset of (key, value) pairs."""

    keys = st.integers(-500, 500)

    @initialize()
    def setup(self):
        from repro.access.btree import BTree
        from repro.sim import SimClock
        from repro.smgr import MemoryStorageManager
        from repro.storage import BufferManager
        self.smgr = MemoryStorageManager(SimClock())
        self.bufmgr = BufferManager(pool_size=16)
        self.tree = BTree("model", self.smgr, self.bufmgr, key_arity=1)
        self.tree.create_storage()
        self.reference: list[tuple[int, tuple[int, int]]] = []
        self.counter = 0

    @rule(key=keys)
    def insert(self, key):
        value = (self.counter, 0)
        self.counter += 1
        self.tree.insert((key,), value)
        self.reference.append((key, value))

    @rule(key=keys)
    def insert_burst(self, key):
        """Many duplicates at once drives leaf splits on one key."""
        for _ in range(40):
            value = (self.counter, 0)
            self.counter += 1
            self.tree.insert((key,), value)
            self.reference.append((key, value))

    @rule(key=keys)
    def delete_key(self, key):
        removed = self.tree.delete((key,))
        expected = sum(1 for k, _v in self.reference if k == key)
        assert removed == expected
        self.reference = [(k, v) for k, v in self.reference if k != key]

    @rule(key=keys)
    def search(self, key):
        got = sorted(self.tree.search((key,)))
        expected = sorted(v for k, v in self.reference if k == key)
        assert got == expected

    @rule(lo=keys, hi=keys)
    def range_scan(self, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        got = [(k[0], v) for k, v in self.tree.range_scan((lo,), (hi,))]
        expected = sorted(
            ((k, v) for k, v in self.reference if lo <= k <= hi),
            key=lambda kv: kv[0])
        assert sorted(got) == sorted(expected)
        assert [k for k, _ in got] == sorted(k for k, _ in got)

    @invariant()
    def ordered_and_complete(self):
        if not hasattr(self, "tree"):
            return
        self.tree.check_invariants()
        assert self.tree.entry_count() == len(self.reference)


TestBTreeStateful = BTreeModel.TestCase
TestBTreeStateful.settings = settings(
    max_examples=10, stateful_step_count=30, deadline=None)


class TwoSessionModel(RuleBasedStateMachine):
    """Two interleaved sessions against one database, vs a visibility model.

    Hypothesis picks an arbitrary interleaving of begin / insert /
    LO-write / commit / abort across both sessions.  The model says what
    each side must see: committed rows are visible to everyone at the
    next statement, a session's own pending writes are visible only to
    it, and an abort erases pending work without a trace.  The schedule
    is single-threaded, so the rules stick to compatible locks (SHARED
    relation inserts, EXCLUSIVE on each session's *own* large object) —
    blocking conflicts belong to the threaded tests.
    """

    SESSIONS = st.sampled_from([0, 1])

    @initialize()
    def setup(self):
        self.db = Database(charge_cpu=False)
        self.db.create_class("events", [("session", "int4"), ("n", "int4")])
        self.sessions = [self.db.session(), self.db.session()]
        with self.db.begin() as txn:
            self.designators = [self.db.lo.create(txn, "fchunk")
                                for _ in range(2)]
        self.committed_rows: list[tuple[int, int]] = []
        self.pending_rows = [[], []]
        self.lo_committed = [bytearray(), bytearray()]
        self.lo_pending = [None, None]
        self.handles = [None, None]
        self.counter = 0

    def teardown(self):
        for session in getattr(self, "sessions", []):
            session.close()
        if hasattr(self, "db"):
            self.db.close()

    def _in_txn(self, s) -> bool:
        return self.sessions[s].in_transaction

    @rule(s=SESSIONS)
    def begin(self, s):
        if self._in_txn(s):
            return
        self.sessions[s].begin()
        self.pending_rows[s] = []
        self.lo_pending[s] = bytearray(self.lo_committed[s])
        self.handles[s] = self.sessions[s].lo_open(
            self.designators[s], "rw")

    @rule(s=SESSIONS)
    def insert_row(self, s):
        if not self._in_txn(s):
            return
        row = (s, self.counter)
        self.counter += 1
        self.sessions[s].insert("events", row)
        self.pending_rows[s].append(row)

    @rule(s=SESSIONS, offset=st.integers(0, 5000),
          data=st.binary(min_size=1, max_size=800))
    def write_own_lo(self, s, offset, data):
        if not self._in_txn(s):
            return
        self.handles[s].seek(offset)
        self.handles[s].write(data)
        pending = self.lo_pending[s]
        if offset > len(pending):
            pending.extend(bytes(offset - len(pending)))
        pending[offset:offset + len(data)] = data

    @rule(s=SESSIONS)
    def commit(self, s):
        if not self._in_txn(s):
            return
        self.sessions[s].commit()  # closes the open LO handle first
        self.committed_rows.extend(self.pending_rows[s])
        self.lo_committed[s] = self.lo_pending[s]
        self.pending_rows[s] = []
        self.lo_pending[s] = None
        self.handles[s] = None

    @rule(s=SESSIONS)
    def abort(self, s):
        if not self._in_txn(s):
            return
        self.sessions[s].rollback()
        self.pending_rows[s] = []
        self.lo_pending[s] = None
        self.handles[s] = None

    @invariant()
    def each_session_sees_committed_plus_own_pending(self):
        if not hasattr(self, "db"):
            return
        for s in (0, 1):
            seen = sorted(t.values for t in self.sessions[s].scan("events"))
            expected = sorted(self.committed_rows
                              + (self.pending_rows[s]
                                 if self._in_txn(s) else []))
            assert seen == expected, f"session {s} visibility broken"

    @invariant()
    def detached_reader_sees_only_committed(self):
        if not hasattr(self, "db"):
            return
        seen = sorted(t.values for t in self.db.scan("events"))
        assert seen == sorted(self.committed_rows)
        for s in (0, 1):
            if not self._in_txn(s):
                with self.db.lo.open(self.designators[s]) as obj:
                    assert obj.read() == bytes(self.lo_committed[s])

    @invariant()
    def no_locks_leak_between_transactions(self):
        if not hasattr(self, "db"):
            return
        if not any(self._in_txn(s) for s in (0, 1)):
            assert self.db.locks.grant_table_empty()
            assert self.db.locks.waiting() == []


TestTwoSessionStateful = TwoSessionModel.TestCase
TestTwoSessionStateful.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None)
