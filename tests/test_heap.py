"""Unit tests for heap relations: versioning, visibility, vacuum."""

import pytest

from repro.access import Attribute, HeapRelation, Schema
from repro.errors import RelationError, TransactionError, TupleNotFound


@pytest.fixture
def emp(stack):
    schema = Schema([Attribute("name", "text"), Attribute("age", "int4")])
    rel = HeapRelation("EMP", schema, stack.smgr, stack.bufmgr,
                       stack.clog, stack.next_oid)
    rel.create_storage()
    return rel


def committed_insert(stack, rel, values):
    with stack.tm.begin() as txn:
        tid = rel.insert(txn, values)
    return tid


class TestInsertFetch:
    def test_roundtrip(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        snap = stack.tm.snapshot()
        tup = emp.fetch(tid, snap)
        assert tup.values == ("Joe", 30)
        assert tup.oid > 0

    def test_uncommitted_visible_to_self_only(self, stack, emp):
        txn = stack.tm.begin()
        tid = emp.insert(txn, ("Joe", 30))
        assert emp.fetch(tid, stack.tm.snapshot(txn)) is not None
        assert emp.fetch(tid, stack.tm.snapshot()) is None
        txn.commit()
        assert emp.fetch(tid, stack.tm.snapshot()) is not None

    def test_aborted_insert_invisible(self, stack, emp):
        txn = stack.tm.begin()
        tid = emp.insert(txn, ("Joe", 30))
        txn.abort()
        assert emp.fetch(tid, stack.tm.snapshot()) is None

    def test_fetch_bad_tid(self, stack, emp):
        committed_insert(stack, emp, ("Joe", 30))
        from repro.access.tuples import TID
        with pytest.raises(TupleNotFound):
            emp.fetch_any_version(TID(0, 99))

    def test_oversized_tuple_rejected(self, stack, emp):
        txn = stack.tm.begin()
        with pytest.raises(RelationError):
            emp.insert(txn, ("x" * 9000, 1))
        txn.abort()

    def test_many_inserts_span_pages(self, stack, emp):
        tids = [committed_insert(stack, emp, (f"e{i}", i))
                for i in range(200)]
        assert emp.nblocks() > 1
        snap = stack.tm.snapshot()
        assert emp.fetch(tids[0], snap).values == ("e0", 0)
        assert emp.fetch(tids[-1], snap).values == ("e199", 199)


class TestBatchFetch:
    def test_fetch_many_preserves_order_and_visibility(self, stack, emp):
        tids = [committed_insert(stack, emp, (f"e{i}", i))
                for i in range(30)]
        txn = stack.tm.begin()
        emp.delete(txn, tids[5])
        txn.commit()
        snap = stack.tm.snapshot()
        got = emp.fetch_many(tids, snap)
        assert [t.values[1] for t in got] == [
            i for i in range(30) if i != 5]

    def test_prefetch_tids_groups_contiguous_runs(self, stack, emp):
        # Enough fat tuples to span several pages on the device.
        tids = [committed_insert(stack, emp, ("x" * 600, i))
                for i in range(60)]
        stack.bufmgr.flush_file(stack.smgr, emp.fileid)
        stack.bufmgr.drop_file(stack.smgr, emp.fileid)
        fetched = emp.prefetch_tids(tids)
        assert fetched >= 2  # contiguous block run was read ahead
        assert stack.bufmgr.stats.prefetched >= fetched

    def test_prefetch_tids_skips_isolated_blocks(self, stack, emp):
        tids = [committed_insert(stack, emp, ("x" * 600, i))
                for i in range(60)]
        stack.bufmgr.flush_file(stack.smgr, emp.fileid)
        stack.bufmgr.drop_file(stack.smgr, emp.fileid)
        # A single isolated block is not worth a readahead call.
        lone = [t for t in tids if t.blockno == tids[-1].blockno][:1]
        assert emp.prefetch_tids(lone) == 0


class TestDeleteReplace:
    def test_delete_hides_tuple(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        with stack.tm.begin() as txn:
            emp.delete(txn, tid)
        assert emp.fetch(tid, stack.tm.snapshot()) is None

    def test_aborted_delete_leaves_tuple(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        txn = stack.tm.begin()
        emp.delete(txn, tid)
        txn.abort()
        assert emp.fetch(tid, stack.tm.snapshot()) is not None

    def test_delete_after_aborted_delete(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        txn = stack.tm.begin()
        emp.delete(txn, tid)
        txn.abort()
        with stack.tm.begin() as txn2:
            emp.delete(txn2, tid)
        assert emp.fetch(tid, stack.tm.snapshot()) is None

    def test_write_write_conflict(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        a = stack.tm.begin()
        b = stack.tm.begin()
        emp.delete(a, tid)
        with pytest.raises(TransactionError):
            emp.delete(b, tid)
        a.commit()
        b.abort()

    def test_replace_preserves_oid(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        oid = emp.fetch_any_version(tid).oid
        with stack.tm.begin() as txn:
            new_tid = emp.replace(txn, tid, ("Joe", 31))
        tup = emp.fetch(new_tid, stack.tm.snapshot())
        assert tup.values == ("Joe", 31)
        assert tup.oid == oid

    def test_replace_leaves_old_version_for_history(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        with stack.tm.begin() as txn:
            emp.replace(txn, tid, ("Joe", 31))
        versions = [t.values for t in emp.scan_versions()]
        assert ("Joe", 30) in versions
        assert ("Joe", 31) in versions


class TestScan:
    def test_scan_sees_only_visible(self, stack, emp):
        committed_insert(stack, emp, ("A", 1))
        committed_insert(stack, emp, ("B", 2))
        txn = stack.tm.begin()
        emp.insert(txn, ("C", 3))
        rows = {t.values for t in emp.scan(stack.tm.snapshot())}
        assert rows == {("A", 1), ("B", 2)}
        txn.abort()

    def test_scan_after_replace_sees_one_version(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        with stack.tm.begin() as txn:
            emp.replace(txn, tid, ("Joe", 31))
        rows = [t.values for t in emp.scan(stack.tm.snapshot())]
        assert rows == [("Joe", 31)]

    def test_empty_scan(self, stack, emp):
        assert list(emp.scan(stack.tm.snapshot())) == []


class TestTimeTravelOnHeap:
    def test_as_of_reads_old_version(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        t_after_insert = stack.clock.now()
        with stack.tm.begin() as txn:
            emp.replace(txn, tid, ("Joe", 31))
        t_after_replace = stack.clock.now()

        old = [t.values for t in
               emp.scan(stack.tm.snapshot(as_of=t_after_insert))]
        new = [t.values for t in
               emp.scan(stack.tm.snapshot(as_of=t_after_replace))]
        assert old == [("Joe", 30)]
        assert new == [("Joe", 31)]

    def test_as_of_before_creation_is_empty(self, stack, emp):
        t0 = stack.clock.now()
        committed_insert(stack, emp, ("Joe", 30))
        assert list(emp.scan(stack.tm.snapshot(as_of=t0))) == []

    def test_deleted_tuple_still_readable_historically(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        t_alive = stack.clock.now()
        with stack.tm.begin() as txn:
            emp.delete(txn, tid)
        assert list(emp.scan(stack.tm.snapshot())) == []
        historic = list(emp.scan(stack.tm.snapshot(as_of=t_alive)))
        assert [t.values for t in historic] == [("Joe", 30)]


class TestVacuum:
    def test_vacuum_removes_superseded(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        with stack.tm.begin() as txn:
            emp.replace(txn, tid, ("Joe", 31))
        assert emp.vacuum() == 1
        assert [t.values for t in emp.scan_versions()] == [("Joe", 31)]

    def test_vacuum_removes_aborted(self, stack, emp):
        txn = stack.tm.begin()
        emp.insert(txn, ("Ghost", 0))
        txn.abort()
        assert emp.vacuum() == 1

    def test_vacuum_keeps_live(self, stack, emp):
        committed_insert(stack, emp, ("Joe", 30))
        assert emp.vacuum() == 0

    def test_vacuum_respects_horizon(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        with stack.tm.begin() as txn:
            emp.replace(txn, tid, ("Joe", 31))
        horizon_before = 0.0  # keep all history
        assert emp.vacuum(horizon=horizon_before) == 0
        assert emp.vacuum(horizon=stack.clock.now()) == 1

    def test_vacuum_keeps_uncommitted_delete(self, stack, emp):
        tid = committed_insert(stack, emp, ("Joe", 30))
        txn = stack.tm.begin()
        emp.delete(txn, tid)
        assert emp.vacuum() == 0
        txn.abort()

    def test_space_reused_after_vacuum(self, stack, emp):
        tids = [committed_insert(stack, emp, (f"e{i}", i))
                for i in range(50)]
        with stack.tm.begin() as txn:
            for tid in tids:
                emp.delete(txn, tid)
        emp.vacuum()
        blocks_before = emp.nblocks()
        for i in range(50):
            committed_insert(stack, emp, (f"n{i}", i))
        assert emp.nblocks() <= blocks_before + 1


class TestDurability:
    def test_commit_forces_pages(self, stack, emp):
        with stack.tm.begin() as txn:
            emp.insert(txn, ("Joe", 30))
        # After commit the device file must contain the data.
        assert stack.smgr.nblocks(emp.fileid) >= 1

    def test_uncommitted_not_forced(self, stack, emp):
        txn = stack.tm.begin()
        emp.insert(txn, ("Joe", 30))
        assert stack.smgr.nblocks(emp.fileid) == 0
        txn.abort()
