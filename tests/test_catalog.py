"""Unit tests for the catalog and its journal."""

import pytest

from repro.access.schema import Attribute, Schema
from repro.catalog import Catalog, CatalogJournal
from repro.errors import (
    DuplicateRelation,
    LargeObjectNotFound,
    RelationNotFound,
)


def schema():
    return Schema([Attribute("a", "int4"), Attribute("b", "text")])


@pytest.fixture
def catalog():
    return Catalog(CatalogJournal())


class TestRelations:
    def test_add_get(self, catalog):
        catalog.add_relation("EMP", schema(), "disk", "heap_EMP")
        entry = catalog.get_relation("EMP")
        assert entry.smgr_name == "disk"
        assert entry.schema == schema()

    def test_duplicate_rejected(self, catalog):
        catalog.add_relation("EMP", schema(), "disk", "f")
        with pytest.raises(DuplicateRelation):
            catalog.add_relation("EMP", schema(), "disk", "f")

    def test_missing_rejected(self, catalog):
        with pytest.raises(RelationNotFound):
            catalog.get_relation("GHOST")

    def test_drop(self, catalog):
        catalog.add_relation("EMP", schema(), "disk", "f")
        catalog.drop_relation("EMP")
        with pytest.raises(RelationNotFound):
            catalog.get_relation("EMP")

    def test_names_sorted(self, catalog):
        catalog.add_relation("Z", schema(), "disk", "z")
        catalog.add_relation("A", schema(), "disk", "a")
        assert catalog.relation_names() == ["A", "Z"]


class TestIndexes:
    def test_add_and_query(self, catalog):
        catalog.add_relation("EMP", schema(), "disk", "f")
        catalog.add_index("emp_a", "EMP", "a", "btree_emp_a")
        assert [e.name for e in catalog.indexes_on("EMP")] == ["emp_a"]
        assert catalog.indexes_on("OTHER") == []

    def test_drop_missing(self, catalog):
        with pytest.raises(RelationNotFound):
            catalog.drop_index("nope")


class TestLargeObjects:
    def test_add_get_drop(self, catalog):
        catalog.add_large_object(42, "fchunk", "disk", "zlib")
        entry = catalog.get_large_object(42)
        assert entry.impl == "fchunk"
        assert entry.compression == "zlib"
        catalog.drop_large_object(42)
        with pytest.raises(LargeObjectNotFound):
            catalog.get_large_object(42)

    def test_detail_roundtrip(self, catalog):
        catalog.add_large_object(1, "vsegment", "disk", "none",
                                 detail={"store_oid": 2})
        assert catalog.get_large_object(1).detail == {"store_oid": 2}


class TestOids:
    def test_unique_and_increasing(self, catalog):
        oids = [catalog.allocate_oid() for _ in range(300)]
        assert oids == sorted(set(oids))

    def test_never_reused_across_reopen(self, tmp_path):
        path = str(tmp_path / "journal")
        first = Catalog(CatalogJournal(path))
        used = [first.allocate_oid() for _ in range(5)]
        first.journal.close()
        second = Catalog(CatalogJournal(path))
        assert second.allocate_oid() > max(used)


class TestJournalReplay:
    def test_full_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal")
        first = Catalog(CatalogJournal(path))
        first.add_relation("EMP", schema(), "worm", "heap_EMP")
        first.add_index("emp_a", "EMP", "a", "btree_emp_a")
        first.add_large_object(1001, "vsegment", "disk", "zero-rle",
                               detail={"store_oid": 1000})
        first.add_relation("DOOMED", schema(), "disk", "d")
        first.drop_relation("DOOMED")
        first.journal.close()

        second = Catalog(CatalogJournal(path))
        assert second.get_relation("EMP").smgr_name == "worm"
        assert second.indexes["emp_a"].attribute == "a"
        assert second.get_large_object(1001).detail == {"store_oid": 1000}
        with pytest.raises(RelationNotFound):
            second.get_relation("DOOMED")

    def test_torn_tail_ignored(self, tmp_path):
        path = str(tmp_path / "journal")
        first = Catalog(CatalogJournal(path))
        first.add_relation("KEEP", schema(), "disk", "k")
        first.journal.close()
        with open(path, "ab") as fh:
            fh.write(b'{"action": "create_class", "name": "TORN"')
        second = Catalog(CatalogJournal(path))
        assert second.get_relation("KEEP")
        with pytest.raises(RelationNotFound):
            second.get_relation("TORN")

    def test_corrupt_middle_stops_replay_safely(self, tmp_path):
        path = str(tmp_path / "journal")
        with open(path, "wb") as fh:
            fh.write(b'{"action": "create_class", "name": "A", '
                     b'"schema": [{"name": "x", "type": "int4", '
                     b'"storage": ""}], "smgr": "disk", "fileid": "a"}\n')
            fh.write(b"not json at all\n")
            fh.write(b'{"action": "create_class", "name": "B", '
                     b'"schema": [], "smgr": "disk", "fileid": "b"}\n')
        catalog = Catalog(CatalogJournal(path))
        assert "A" in catalog.relations
        assert "B" not in catalog.relations  # replay stopped at corruption

    def test_memory_journal_replays_nothing(self):
        journal = CatalogJournal()
        journal.append({"action": "create_class"})  # no-op without a path
        assert list(journal.replay()) == []
