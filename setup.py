"""Legacy setup shim so `python setup.py develop` works offline
(environments without the `wheel` package cannot do PEP-660 editable
installs; `pip install -e .` uses the pyproject metadata when wheel is
available).  The console script is declared here too because old
setuptools does not always materialize [project.scripts] on the legacy
path."""
from setuptools import setup

setup(
    entry_points={
        "console_scripts": ["repro-bench = repro.bench.cli:main"],
    },
)
