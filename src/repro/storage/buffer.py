"""Buffer manager: a fixed pool of 8 KB frames with clock-sweep replacement.

Relations never touch storage managers directly; they pin pages here.  The
pool implements the pieces POSTGRES needed for its no-overwrite storage
system:

* **pin/unpin with usage counts** and clock-sweep victim selection;
* **dirty tracking with write-back on eviction**;
* **force-at-commit**: :meth:`BufferManager.flush_file` writes a relation's
  dirty pages (in block order, so device writes stay sequential) — the
  transaction manager calls this at commit instead of keeping a WAL, per
  the POSTGRES storage-system design;
* **lazy file extension**: :meth:`allocate` creates a page in the pool
  without a device write; the device file grows when the page is first
  flushed.  Holes created by out-of-order eviction are zero-filled so the
  storage manager never sees a gap.
* **checksums**: pages are stamped before a device write and verified on
  read.

The pool charges a small CPU cost per lookup so simulated elapsed times
include buffer-management overhead (the paper's "special purpose program"
baseline explicitly has "no overhead for cache management").

The pool is shared by every concurrent session, so each operation
(lookup/pin, eviction, write-back, decoded-cache probe) runs under one
re-entrant latch.  The latch covers the pool's own bookkeeping; *page
content* mutation between pin and unpin is serialized one level up by the
database's engine latch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.errors import BufferError_, ChecksumError
from repro.sim.clock import SimClock
from repro.sim.devices import CpuModel
from repro.storage.constants import PAGE_SIZE
from repro.storage.page import SlottedPage
from repro.txn.lockdep import LockdepMutex

if TYPE_CHECKING:  # avoid a circular import with repro.smgr.base
    from repro.smgr.base import StorageManager

#: CPU instructions charged for a pool hit / miss (lookup + header checks).
_HIT_INSTRUCTIONS = 1_000
_MISS_INSTRUCTIONS = 10_000
#: A decoded-object hit skips the pin *and* the re-parse: only a dict probe.
_DECODED_HIT_INSTRUCTIONS = 200

#: Usage count ceiling for the clock sweep (as in PostgreSQL).
_MAX_USAGE = 5


@dataclass
class BufferStats:
    """Counters exposed for benchmarks and tests."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    allocations: int = 0
    #: Blocks brought in ahead of demand by :meth:`BufferManager.prefetch`.
    prefetched: int = 0
    #: Pins satisfied by a block that prefetch (not demand) read in.
    prefetch_hits: int = 0
    #: Decoded-object side cache (B-tree nodes): serves without a pin.
    node_cache_hits: int = 0
    node_cache_misses: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class Buffer:
    """One pooled frame holding one page of one relation file."""

    smgr: "StorageManager"
    fileid: str
    blockno: int
    page: SlottedPage
    dirty: bool = False
    pin_count: int = 0
    usage: int = 1
    #: True until the first demand pin when prefetch read this block in.
    prefetched: bool = False

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.smgr.smgr_id, self.fileid, self.blockno)


class BufferManager:
    """Fixed-size pool of page buffers shared by all relations."""

    def __init__(self, pool_size: int = 256,
                 clock: SimClock | None = None,
                 cpu: CpuModel | None = None,
                 verify_checksums: bool = True):
        if pool_size < 1:
            raise BufferError_(f"pool size must be >= 1, got {pool_size}")
        self.pool_size = pool_size
        self.clock = clock
        self.cpu = cpu if (cpu and clock) else None
        self.verify_checksums = verify_checksums
        self.stats = BufferStats()
        #: Pool latch: page lookup/pin, eviction, write-back, and the
        #: decoded-object cache are shared by every session, so each pool
        #: operation runs atomically.  Re-entrant because flush paths nest
        #: (flush_all → flush_file) and one thread may pin while holding
        #: the latch through a ``page()`` block's nested pins.  Despite
        #: the attribute name this is the *pool* mutex (lock class
        #: ``mutex:buffer``), not the engine latch.
        self._latch = LockdepMutex("mutex:buffer", reentrant=True)
        #: Frames are keyed by the manager's stable ``smgr_id`` (plus file
        #: and block), never ``id(smgr)``: instance ids are reused by the
        #: allocator, so a re-registered manager could have aliased a dead
        #: predecessor's frames and served stale pages.
        self._frames: dict[tuple[str, str, int], Buffer] = {}
        self._sweep_order: list[tuple[str, str, int]] = []
        self._hand = 0
        #: Pool-side view of each file's length, >= the device's nblocks.
        self._virtual_nblocks: dict[tuple[str, str], int] = {}
        #: Side cache of *decoded* page contents (B-tree nodes), keyed like
        #: frames.  Writers must update or drop entries on every page
        #: write; the pool drops them with the file.  LRU-bounded so it
        #: can never outgrow the pool it shadows.
        self._decoded: OrderedDict[tuple[str, str, int], object] = \
            OrderedDict()
        self._decoded_limit = max(64, pool_size)
        #: Monotone stamp written into each page header on write-back.  A
        #: page that has ever been written carries a nonzero LSN, which is
        #: what arms checksum verification on later reads (fresh all-zero
        #: pages are exempt) — so a torn device write is detected instead
        #: of served.
        self._next_lsn = 1

    # -- CPU accounting ------------------------------------------------------

    def _charge(self, instructions: int) -> None:
        if self.cpu is not None:
            self.cpu.charge(self.clock, instructions)

    # -- file length ---------------------------------------------------------

    def nblocks(self, smgr: "StorageManager", fileid: str) -> int:
        """Logical length of the file: device blocks plus unflushed tail."""
        with self._latch:
            key = (smgr.smgr_id, fileid)
            if key not in self._virtual_nblocks:
                self._virtual_nblocks[key] = smgr.nblocks(fileid)
            return self._virtual_nblocks[key]

    # -- pin / unpin -----------------------------------------------------------

    def pin(self, smgr: "StorageManager", fileid: str, blockno: int) -> Buffer:
        """Pin the page; reads it from the device on a pool miss."""
        with self._latch:
            key = (smgr.smgr_id, fileid, blockno)
            buf = self._frames.get(key)
            if buf is not None:
                self.stats.hits += 1
                if buf.prefetched:
                    self.stats.prefetch_hits += 1
                    buf.prefetched = False
                self._charge(_HIT_INSTRUCTIONS)
                buf.pin_count += 1
                buf.usage = min(buf.usage + 1, _MAX_USAGE)
                return buf

            self.stats.misses += 1
            self._charge(_MISS_INSTRUCTIONS)
            self._make_room()
            raw = smgr.read_block(fileid, blockno)
            page = SlottedPage(raw)
            if (self.verify_checksums and page.lsn != 0
                    and not page.verify_checksum()):
                raise ChecksumError(
                    f"checksum mismatch reading block {blockno} of {fileid!r}")
            buf = Buffer(smgr=smgr, fileid=fileid, blockno=blockno,
                         page=page, pin_count=1)
            self._install(buf)
            return buf

    def rehit(self, buf: Buffer) -> Buffer:
        """Account a repeated pin of a buffer the caller already holds.

        Batched readers that keep one pin while consuming several tuples
        from the same page call this once per extra tuple, performing
        **exactly** the bookkeeping a redundant :meth:`pin` hit would have
        done — same hit counter, same instruction charge, same usage bump
        — minus the frame lookup and pin-count churn.  This is what keeps
        the simulated cost figures byte-identical to the unbatched path.
        """
        with self._latch:
            if buf.pin_count <= 0:
                raise BufferError_(
                    f"rehit of unpinned buffer {buf.fileid!r}:{buf.blockno}")
            self.stats.hits += 1
            if buf.prefetched:
                self.stats.prefetch_hits += 1
                buf.prefetched = False
            self._charge(_HIT_INSTRUCTIONS)
            buf.usage = min(buf.usage + 1, _MAX_USAGE)
            return buf

    def prefetch(self, smgr: "StorageManager", fileid: str,
                 blockno: int, count: int) -> int:
        """Read up to *count* blocks starting at *blockno* into the pool.

        Sequential readahead: the blocks arrive unpinned with low usage so
        they are cheap to evict if the guess was wrong, but a streaming
        reader finds them resident.  Returns how many were actually read.

        Reads are batched per physical device (``smgr.placement_groups``)
        so that a sharded file's readahead visits each node's blocks
        contiguously; for a single-device manager the grouping degenerates
        to the plain ascending order.
        """
        with self._latch:
            limit = min(blockno + count, smgr.nblocks(fileid))
            wanted = [block for block in range(max(0, blockno), limit)
                      if (smgr.smgr_id, fileid, block) not in self._frames]
            fetched = 0
            for group in smgr.placement_groups(fileid, wanted):
                for block in group:
                    self._charge(_MISS_INSTRUCTIONS)
                    self._make_room()
                    raw = smgr.read_block(fileid, block)
                    page = SlottedPage(raw)
                    if (self.verify_checksums and page.lsn != 0
                            and not page.verify_checksum()):
                        raise ChecksumError(
                            f"checksum mismatch prefetching block {block} "
                            f"of {fileid!r}")
                    buf = Buffer(smgr=smgr, fileid=fileid, blockno=block,
                                 page=page, pin_count=0, usage=1,
                                 prefetched=True)
                    self._install(buf)
                    fetched += 1
            self.stats.prefetched += fetched
            return fetched

    def allocate(self, smgr: "StorageManager", fileid: str,
                 special_size: int = 0) -> Buffer:
        """Append a fresh, pinned, dirty page to the file (no device I/O)."""
        with self._latch:
            self.stats.allocations += 1
            self._charge(_MISS_INSTRUCTIONS)
            self._make_room()
            blockno = self.nblocks(smgr, fileid)
            self._virtual_nblocks[(smgr.smgr_id, fileid)] = blockno + 1
            buf = Buffer(smgr=smgr, fileid=fileid, blockno=blockno,
                         page=SlottedPage(special_size=special_size),
                         dirty=True, pin_count=1)
            self._install(buf)
            return buf

    # -- decoded-object side cache ---------------------------------------------

    def get_decoded(self, smgr: "StorageManager", fileid: str,
                    blockno: int) -> object | None:
        """The cached decoded form of a page, or ``None``.

        Access methods that parse page images into richer structures
        (the B-tree's node arrays) register the decoded form here and
        serve repeat reads without re-pinning or re-parsing.  The cache
        is shared pool-wide, so two handles on the same index file see
        one coherent copy.  Callers own coherence on writes: every page
        write must go through :meth:`put_decoded` or
        :meth:`drop_decoded`.
        """
        with self._latch:
            key = (smgr.smgr_id, fileid, blockno)
            obj = self._decoded.get(key)
            if obj is None:
                self.stats.node_cache_misses += 1
                return None
            self._decoded.move_to_end(key)
            self.stats.node_cache_hits += 1
            self._charge(_DECODED_HIT_INSTRUCTIONS)
            return obj

    def put_decoded(self, smgr: "StorageManager", fileid: str,
                    blockno: int, obj: object) -> None:
        """Install (or overwrite) the decoded form of a page."""
        with self._latch:
            key = (smgr.smgr_id, fileid, blockno)
            self._decoded[key] = obj
            self._decoded.move_to_end(key)
            while len(self._decoded) > self._decoded_limit:
                self._decoded.popitem(last=False)

    def drop_decoded(self, smgr: "StorageManager", fileid: str,
                     blockno: int | None = None) -> None:
        """Forget decoded pages of a file (one block, or all of them)."""
        with self._latch:
            if blockno is not None:
                self._decoded.pop((smgr.smgr_id, fileid, blockno), None)
                return
            stale = [key for key in self._decoded
                     if key[0] == smgr.smgr_id and key[1] == fileid]
            for key in stale:
                del self._decoded[key]

    def unpin(self, buf: Buffer, dirty: bool = False) -> None:
        """Release one pin; *dirty* marks the page as modified."""
        with self._latch:
            if buf.pin_count <= 0:
                raise BufferError_(
                    f"unpin of unpinned buffer {buf.fileid!r}:{buf.blockno}")
            buf.pin_count -= 1
            if dirty:
                buf.dirty = True

    @contextmanager
    def page(self, smgr: "StorageManager", fileid: str, blockno: int,
             write: bool = False) -> Iterator[SlottedPage]:
        """Pin a page for the duration of a ``with`` block."""
        buf = self.pin(smgr, fileid, blockno)
        try:
            yield buf.page
        finally:
            self.unpin(buf, dirty=write)

    # -- replacement -------------------------------------------------------------

    def _install(self, buf: Buffer) -> None:
        self._frames[buf.key] = buf
        self._sweep_order.append(buf.key)

    def _make_room(self) -> None:
        if len(self._frames) < self.pool_size:
            return
        victim = self._pick_victim()
        if victim is None:
            raise BufferError_(
                f"buffer pool exhausted: all {self.pool_size} pages pinned")
        self._evict(victim)

    def _pick_victim(self) -> Buffer | None:
        """Clock sweep: decrement usage counts until a (0, unpinned) frame."""
        if not self._sweep_order:
            return None
        for _ in range(len(self._sweep_order) * (_MAX_USAGE + 1)):
            if self._hand >= len(self._sweep_order):
                self._hand = 0
            key = self._sweep_order[self._hand]
            buf = self._frames.get(key)
            if buf is None:
                # Stale entry left by drop_file; compact lazily.
                self._sweep_order.pop(self._hand)
                continue
            if buf.pin_count == 0:
                if buf.usage == 0:
                    self._sweep_order.pop(self._hand)
                    return buf
                buf.usage -= 1
            self._hand += 1
        return None

    def _evict(self, buf: Buffer) -> None:
        self.stats.evictions += 1
        if buf.dirty:
            # Write back every dirty page of the victim's file, in block
            # order, while we are positioned on that file anyway — the
            # elevator-style batching any real buffer manager does.  The
            # pages stay cached (clean), so later evictions are free.
            self._writeback_batch(buf.smgr, buf.fileid)
        del self._frames[buf.key]

    def _writeback_batch(self, smgr: "StorageManager", fileid: str) -> None:
        dirty = sorted(
            (other for other in self._frames.values()
             if other.smgr is smgr and other.fileid == fileid
             and other.dirty),
            key=lambda b: b.blockno)
        for other in dirty:
            if other.dirty:  # hole-filling may have cleaned it already
                self._writeback(other)

    def _writeback(self, buf: Buffer) -> None:
        """Write a dirty page to its device, zero-filling any hole first."""
        self.stats.writebacks += 1
        device_blocks = buf.smgr.nblocks(buf.fileid)
        zero = bytes(PAGE_SIZE)
        for hole in range(device_blocks, buf.blockno):
            hole_buf = self._frames.get(
                (buf.smgr.smgr_id, buf.fileid, hole))
            if hole_buf is not None and hole_buf.dirty:
                self._stamp(hole_buf.page)
                buf.smgr.write_block(buf.fileid, hole, bytes(hole_buf.page.buf))
                hole_buf.dirty = False
                self.stats.writebacks += 1
            else:
                buf.smgr.write_block(buf.fileid, hole, zero)
        self._stamp(buf.page)
        buf.smgr.write_block(buf.fileid, buf.blockno, bytes(buf.page.buf))
        buf.dirty = False

    def _stamp(self, page: SlottedPage) -> None:
        """Mark the page written (nonzero LSN) and seal its checksum."""
        page.lsn = self._next_lsn
        self._next_lsn += 1
        page.stamp_checksum()

    # -- flushing ---------------------------------------------------------------

    def flush_file(self, smgr: "StorageManager", fileid: str) -> int:
        """Write all dirty pages of one file, then sync it.

        This is the force-at-commit path.  Returns the number of pages
        written.  The sync is unconditional: a file with no dirty pages
        left may still have unsynced device writes from eviction
        write-backs (:meth:`_writeback_batch`), and skipping the sync for
        it would leave a committed transaction's pages in the OS cache.

        Blocks already materialized on the device are written in per-node
        batches (``smgr.placement_groups``) so each physical device sees
        its blocks in ascending order; blocks beyond the device's current
        tail are appended afterwards in global block order, because the
        hole-filling in :meth:`_writeback` relies on it.  For a
        single-device manager this is exactly the historical ascending
        order.
        """
        with self._latch:
            dirty = {buf.blockno: buf
                     for buf in self._frames.values()
                     if buf.smgr is smgr and buf.fileid == fileid
                     and buf.dirty}
            device_end = smgr.nblocks(fileid) if dirty else 0
            body = [blockno for blockno in dirty if blockno < device_end]
            tail = sorted(blockno for blockno in dirty
                          if blockno >= device_end)
            for group in smgr.placement_groups(fileid, body):
                for blockno in group:
                    buf = dirty[blockno]
                    if buf.dirty:  # hole-fill may have flushed it already
                        self._writeback(buf)
            for blockno in tail:
                buf = dirty[blockno]
                if buf.dirty:
                    self._writeback(buf)
            smgr.sync(fileid)
            return len(dirty)

    def flush_all(self) -> int:
        """Write every dirty page in the pool (checkpoint)."""
        with self._latch:
            written = 0
            by_file: dict[tuple[str, str], StorageManager] = {}
            for buf in self._frames.values():
                if buf.dirty:
                    by_file[(buf.smgr.smgr_id, buf.fileid)] = buf.smgr
            for (_smgr_id, fileid), smgr in sorted(by_file.items(),
                                                   key=lambda kv: kv[0][1]):
                written += self.flush_file(smgr, fileid)
            return written

    def drop_file(self, smgr: "StorageManager", fileid: str) -> None:
        """Discard (without writing) all buffered pages of a dropped file."""
        with self._latch:
            stale = [key for key, buf in self._frames.items()
                     if buf.smgr is smgr and buf.fileid == fileid]
            for key in stale:
                del self._frames[key]
            self._virtual_nblocks.pop((smgr.smgr_id, fileid), None)
            self.drop_decoded(smgr, fileid)

    def pinned_count(self) -> int:
        """Number of frames with at least one pin (should be 0 at rest)."""
        with self._latch:
            return sum(1 for buf in self._frames.values()
                       if buf.pin_count > 0)

    def invalidate_all(self) -> None:
        """Flush everything, then empty the pool (cold-start benchmarks)."""
        with self._latch:
            if self.pinned_count():
                raise BufferError_("cannot invalidate while pages are pinned")
            self.flush_all()
            self._frames.clear()
            self._sweep_order.clear()
            self._decoded.clear()
            self._hand = 0
