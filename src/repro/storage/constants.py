"""Storage-layer constants, chosen to match the paper's POSTGRES V4.

The paper stores f-chunk records as ``(sequence-number = int4,
data = byte[8000])`` on 8 KB pages, "a small amount of space … reserved for
the tuple and page headers" (§6.3).  The header sizes below are what our
page and tuple formats actually occupy; ``CHUNK_PAYLOAD`` is sized so one
uncompressed chunk record exactly fills one page — which is what produces
the paper's Figure 1/2 effects (30 % compression saves no space because two
compressed chunks only fit a page when each shrinks to roughly half).
"""

from __future__ import annotations

#: POSTGRES page size (bytes).
PAGE_SIZE = 8192

#: Bytes of fixed page header: lsn(8) checksum(4) flags(2) lower(2)
#: upper(2) special(2) reserved(4).
PAGE_HEADER_SIZE = 24

#: Bytes per line pointer (offset(2) flags+length(2) packed into 4 bytes).
ITEM_ID_SIZE = 4

#: Bytes of heap tuple header: xmin(8) xmax(8) oid(8) flags(4) natts(4).
TUPLE_HEADER_SIZE = 32

#: User bytes per f-chunk record, per the paper ("byte[8000]").
CHUNK_PAYLOAD = 8000

#: Largest tuple (header + data) that fits on an empty page.
MAX_TUPLE_SIZE = PAGE_SIZE - PAGE_HEADER_SIZE - ITEM_ID_SIZE

#: Benchmark frame size from §9.1 of the paper.
FRAME_SIZE = 4096

#: Number of frames in the paper's 51.2 MB benchmark object.
FRAME_COUNT = 12_500

#: Invalid transaction id sentinel (tuple never deleted / never inserted).
INVALID_XID = 0

#: First transaction id handed out by the transaction manager.
FIRST_XID = 2
