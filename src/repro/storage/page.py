"""Slotted 8 KB page, in the style of the POSTGRES page layout.

A page is a fixed-size ``bytearray`` with:

* a 24-byte header — LSN, checksum, flags, ``lower`` (end of the line-pointer
  array), ``upper`` (start of tuple data), ``special`` (start of the
  special space used by index pages);
* an array of 4-byte **line pointers** (*ItemIds*) growing down from the
  header, each holding the offset and length of one item plus a 2-bit state
  (unused / normal / dead / redirect);
* tuple data growing up from ``special`` toward ``lower``.

Deleting an item marks its line pointer dead but leaves the slot number
stable, so TIDs (page, slot) held by indexes stay valid; ``compact()``
reclaims the dead space without renumbering slots — exactly the vacuum-style
behaviour heap relations need.

The checksum covers the whole page except the checksum field itself and is
verified by the buffer manager when a page is read from a device.

Zero-copy discipline
--------------------
The read path hands out **memoryviews** into the page buffer
(:meth:`SlottedPage.item_view`) so that decoding a tuple does not copy its
image first.  A view aliases the live page: any mutation (``add_item``,
``overwrite_item``, ``compact``) may rewrite the bytes under it.  The
contract is therefore *views do not survive page modification* — callers
that retain data past the current latched read use :meth:`get_item`, the
one sanctioned ``bytes``-returning accessor (linter rule R007 enforces
that no other hot-path code copies buffer slices).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import PageError, PageFullError
from repro.storage.constants import ITEM_ID_SIZE, PAGE_HEADER_SIZE, PAGE_SIZE

# Header: lsn(8) checksum(4) flags(2) lower(2) upper(2) special(2) reserved(4)
_HEADER = struct.Struct("<QIHHHH4x")
assert _HEADER.size == PAGE_HEADER_SIZE

# The (lower, upper, special) trio lives at byte 14 of the header; the hot
# paths read it directly instead of unpacking the whole header.
_LUS = struct.Struct("<HHH")
_LUS_OFFSET = 14

# Line pointer: offset(2), then length(14 bits) | state(2 bits)
_ITEMID = struct.Struct("<HH")
assert _ITEMID.size == ITEM_ID_SIZE

#: Line-pointer states.
LP_UNUSED = 0
LP_NORMAL = 1
LP_DEAD = 2

_LP_STATE_MASK = 0x3
_LP_LEN_SHIFT = 2
_LP_MAX_LEN = (1 << 14) - 1


@dataclass(frozen=True)
class ItemId:
    """Decoded line pointer: where an item lives and whether it is live."""

    offset: int
    length: int
    state: int

    @property
    def is_live(self) -> bool:
        return self.state == LP_NORMAL


class SlottedPage:
    """A mutable view over one page buffer.

    The page object does not own durability — the buffer manager does.  All
    offsets are validated; a malformed page raises :class:`PageError` rather
    than corrupting neighbours.
    """

    __slots__ = ("buf", "_view")

    def __init__(self, buf: bytearray | None = None, special_size: int = 0):
        if buf is None:
            self.buf = bytearray(PAGE_SIZE)
            special = PAGE_SIZE - special_size
            self._write_header(
                lsn=0, checksum=0, flags=0,
                lower=PAGE_HEADER_SIZE, upper=special, special=special)
        else:
            if len(buf) != PAGE_SIZE:
                raise PageError(
                    f"page buffer is {len(buf)} bytes, expected {PAGE_SIZE}")
            self.buf = buf
        #: One long-lived view over the buffer; zero-copy item reads are
        #: slices of this (slicing a memoryview allocates only the small
        #: view object, never the bytes).
        self._view = memoryview(self.buf)

    # -- header access ----------------------------------------------------

    def _read_header(self) -> tuple[int, int, int, int, int, int]:
        return _HEADER.unpack_from(self.buf, 0)

    def _write_header(self, lsn: int, checksum: int, flags: int,
                      lower: int, upper: int, special: int) -> None:
        _HEADER.pack_into(self.buf, 0, lsn, checksum, flags,
                          lower, upper, special)

    @property
    def lsn(self) -> int:
        return self._read_header()[0]

    @lsn.setter
    def lsn(self, value: int) -> None:
        lsn, checksum, flags, lower, upper, special = self._read_header()
        self._write_header(value, checksum, flags, lower, upper, special)

    @property
    def lower(self) -> int:
        return _LUS.unpack_from(self.buf, _LUS_OFFSET)[0]

    @property
    def upper(self) -> int:
        return _LUS.unpack_from(self.buf, _LUS_OFFSET)[1]

    @property
    def special_offset(self) -> int:
        return _LUS.unpack_from(self.buf, _LUS_OFFSET)[2]

    def special_space(self) -> memoryview:
        """The index-private region at the end of the page (mutable)."""
        return self._view[self.special_offset:]

    # -- line pointers ----------------------------------------------------

    @property
    def slot_count(self) -> int:
        """Number of line pointers, live or dead."""
        return (self.lower - PAGE_HEADER_SIZE) // ITEM_ID_SIZE

    def _itemid_pos(self, slot: int) -> int:
        if not 0 <= slot < self.slot_count:
            raise PageError(
                f"slot {slot} out of range (page has {self.slot_count})")
        return PAGE_HEADER_SIZE + slot * ITEM_ID_SIZE

    def item_id(self, slot: int) -> ItemId:
        """Decode the line pointer for *slot*."""
        offset, lenstate = _ITEMID.unpack_from(self.buf, self._itemid_pos(slot))
        return ItemId(offset=offset,
                      length=lenstate >> _LP_LEN_SHIFT,
                      state=lenstate & _LP_STATE_MASK)

    def _set_item_id(self, slot: int, offset: int, length: int,
                     state: int) -> None:
        if length > _LP_MAX_LEN:
            raise PageError(f"item length {length} exceeds {_LP_MAX_LEN}")
        _ITEMID.pack_into(self.buf, self._itemid_pos(slot),
                          offset, (length << _LP_LEN_SHIFT) | state)

    # -- space accounting --------------------------------------------------

    def free_space(self) -> int:
        """Contiguous bytes available for a new item plus its line pointer."""
        lower, upper, _special = _LUS.unpack_from(self.buf, _LUS_OFFSET)
        gap = upper - lower
        return max(0, gap - ITEM_ID_SIZE)

    def can_fit(self, length: int) -> bool:
        """Whether an item of *length* bytes can be stored on this page,
        counting space that a compaction would reclaim."""
        if length <= self.free_space():
            return True
        lower, _upper, special = _LUS.unpack_from(self.buf, _LUS_OFFSET)
        count = (lower - PAGE_HEADER_SIZE) // ITEM_ID_SIZE
        live = 0
        dead_slots = False
        unpack = _ITEMID.unpack_from
        buf = self.buf
        for slot in range(count):
            lenstate = unpack(buf, PAGE_HEADER_SIZE + slot * ITEM_ID_SIZE)[1]
            state = lenstate & _LP_STATE_MASK
            if state == LP_NORMAL:
                live += lenstate >> _LP_LEN_SHIFT
            elif state == LP_DEAD:
                dead_slots = True
        pointer_slots = count + (0 if dead_slots else 1)
        ceiling = (special - PAGE_HEADER_SIZE
                   - pointer_slots * ITEM_ID_SIZE)
        return length <= ceiling - live

    # -- item operations ---------------------------------------------------

    def add_item(self, data: bytes) -> int:
        """Store *data* on the page and return its slot number.

        Reuses a dead line pointer when one exists (keeping the pointer
        array from growing without bound under churn); otherwise appends a
        new pointer.  Raises :class:`PageFullError` when the page cannot
        hold the item.
        """
        length = len(data)
        if length == 0:
            raise PageError("cannot store a zero-length item")
        lsn, checksum, flags, lower, upper, special = self._read_header()

        reuse = None
        count = (lower - PAGE_HEADER_SIZE) // ITEM_ID_SIZE
        unpack = _ITEMID.unpack_from
        buf = self.buf
        for slot in range(count):
            lenstate = unpack(buf, PAGE_HEADER_SIZE + slot * ITEM_ID_SIZE)[1]
            if lenstate & _LP_STATE_MASK == LP_DEAD:
                reuse = slot
                break

        needed = length if reuse is not None else length + ITEM_ID_SIZE
        if upper - lower < needed:
            raise PageFullError(
                f"item of {length} bytes does not fit "
                f"({upper - lower} bytes free)")

        new_upper = upper - length
        buf[new_upper:new_upper + length] = data
        if reuse is not None:
            slot = reuse
        else:
            slot = count
            lower += ITEM_ID_SIZE
        self._write_header(lsn, checksum, flags, lower, new_upper, special)
        self._set_item_id(slot, new_upper, length, LP_NORMAL)
        return slot

    def item_view(self, slot: int) -> memoryview:
        """Zero-copy view of the live item in *slot*.

        The view aliases the page buffer and is valid only until the next
        page mutation; callers that keep the bytes use :meth:`get_item`.

        The line-pointer decode is inlined (no :class:`ItemId`): this is
        the hottest accessor in the engine, and constructing a frozen
        dataclass per read costs more than the slice it guards.
        """
        buf = self.buf
        if not 0 <= slot < (
                _LUS.unpack_from(buf, _LUS_OFFSET)[0]
                - PAGE_HEADER_SIZE) // ITEM_ID_SIZE:
            raise PageError(
                f"slot {slot} out of range (page has {self.slot_count})")
        offset, lenstate = _ITEMID.unpack_from(
            buf, PAGE_HEADER_SIZE + slot * ITEM_ID_SIZE)
        state = lenstate & _LP_STATE_MASK
        if state != LP_NORMAL:
            raise PageError(f"slot {slot} is not live (state={state})")
        return self._view[offset:offset + (lenstate >> _LP_LEN_SHIFT)]

    def get_item(self, slot: int) -> bytes:
        """Return a copy of the live item in *slot*.

        This is the sanctioned copying accessor: data it returns survives
        any later page modification.
        """
        buf = self.buf
        if not 0 <= slot < (
                _LUS.unpack_from(buf, _LUS_OFFSET)[0]
                - PAGE_HEADER_SIZE) // ITEM_ID_SIZE:
            raise PageError(
                f"slot {slot} out of range (page has {self.slot_count})")
        offset, lenstate = _ITEMID.unpack_from(
            buf, PAGE_HEADER_SIZE + slot * ITEM_ID_SIZE)
        state = lenstate & _LP_STATE_MASK
        if state != LP_NORMAL:
            raise PageError(f"slot {slot} is not live (state={state})")
        # This *is* the sanctioned copying accessor (R007 exempts
        # get_item by name).
        return bytes(self._view[offset:offset + (lenstate >> _LP_LEN_SHIFT)])

    def delete_item(self, slot: int) -> None:
        """Mark *slot* dead.  Space is reclaimed later by :meth:`compact`."""
        item = self.item_id(slot)
        if not item.is_live:
            raise PageError(f"slot {slot} already dead or unused")
        self._set_item_id(slot, 0, 0, LP_DEAD)

    def overwrite_item(self, slot: int, data: bytes) -> None:
        """Replace the item in *slot* in place.

        Only same-length overwrites are done in place; a different length
        deletes + re-adds into the same slot (compacting first if needed).
        Callers in the no-overwrite heap never use this for user tuples —
        it exists for index pages and tuple-header updates (setting xmax),
        which POSTGRES also updated in place.
        """
        item = self.item_id(slot)
        if not item.is_live:
            raise PageError(f"slot {slot} is not live")
        if len(data) == item.length:
            self.buf[item.offset:item.offset + item.length] = data
            return
        delta = len(data) - item.length
        if item.offset == self.upper and delta <= self.upper - self.lower:
            # The bottom-most item resizes by sliding its start — no
            # delete/re-add, no compaction.  B-tree node pages (one item
            # that grows a little on every insert) live on this path.
            lsn, checksum, flags, lower, upper, special = self._read_header()
            new_offset = upper - delta
            self.buf[new_offset:new_offset + len(data)] = data
            self._write_header(lsn, checksum, flags, lower,
                               new_offset, special)
            self._set_item_id(slot, new_offset, len(data), LP_NORMAL)
            return
        old_data = self.get_item(slot)  # survives the compaction below
        self._set_item_id(slot, 0, 0, LP_DEAD)
        if len(data) > self.upper - self.lower:
            self.compact()
        replacement = data
        lsn, checksum, flags, lower, upper, special = self._read_header()
        if len(data) > upper - lower:
            # Put the original item back (compaction may have moved
            # everything, so re-insert rather than restore the old offset).
            replacement = old_data
        new_upper = upper - len(replacement)
        self.buf[new_upper:new_upper + len(replacement)] = replacement
        self._write_header(lsn, checksum, flags, lower, new_upper, special)
        self._set_item_id(slot, new_upper, len(replacement), LP_NORMAL)
        if replacement is not data:
            raise PageFullError(
                f"replacement item of {len(data)} bytes does not fit")

    def patch_item(self, slot: int, offset_in_item: int,
                   patch: bytes) -> None:
        """Overwrite *patch* bytes inside the item at *offset_in_item*.

        In-place header updates (stamping ``xmax``) go through this instead
        of copying the whole image through :meth:`overwrite_item`.
        """
        item = self.item_id(slot)
        if not item.is_live:
            raise PageError(f"slot {slot} is not live")
        if offset_in_item < 0 or offset_in_item + len(patch) > item.length:
            raise PageError(
                f"patch [{offset_in_item}:{offset_in_item + len(patch)}] "
                f"outside item of {item.length} bytes")
        start = item.offset + offset_in_item
        self.buf[start:start + len(patch)] = patch

    def live_slots(self) -> list[int]:
        """Slot numbers of all live items, in slot order."""
        return [s for s in range(self.slot_count)
                if self.item_id(s).is_live]

    def compact(self) -> int:
        """Slide live items together, reclaiming dead space.

        Slot numbers are preserved.  Returns the number of free bytes after
        compaction.

        Any outstanding :meth:`item_view` views are left dangling over
        stale bytes — this is the mutation the zero-copy contract warns
        about, and why the items are snapshotted (one whole-page copy,
        cheaper than per-item slices) before the rewrite.
        """
        lsn, checksum, flags, lower, _upper, special = self._read_header()
        snapshot = bytes(self.buf)
        items = []
        for slot in range(self.slot_count):
            item = self.item_id(slot)
            if item.is_live:
                items.append(
                    (slot, snapshot[item.offset:item.offset + item.length]))
        # Rewrite from the top of the data area down.
        upper = special
        for slot, data in sorted(items, key=lambda x: -len(x[1])):
            upper -= len(data)
            self.buf[upper:upper + len(data)] = data
            self._set_item_id(slot, upper, len(data), LP_NORMAL)
        if upper < lower:
            raise PageError("page corrupted: live data overlaps pointers")
        self._write_header(lsn, checksum, flags, lower, upper, special)
        return upper - lower

    # -- checksums ----------------------------------------------------------

    def compute_checksum(self) -> int:
        """CRC32 of the page with the checksum field zeroed."""
        header = self.buf[:PAGE_HEADER_SIZE]
        lsn, _checksum, flags, lower, upper, special = _HEADER.unpack(header)
        clean = bytearray(header)
        _HEADER.pack_into(clean, 0, lsn, 0, flags, lower, upper, special)
        crc = zlib.crc32(clean)
        return zlib.crc32(self._view[PAGE_HEADER_SIZE:], crc) & 0xFFFFFFFF

    def stamp_checksum(self) -> None:
        """Store the current checksum into the header (before a device write)."""
        lsn, _checksum, flags, lower, upper, special = self._read_header()
        self._write_header(lsn, self.compute_checksum(), flags,
                           lower, upper, special)

    def verify_checksum(self) -> bool:
        """True if the stored checksum matches the page contents."""
        stored = self._read_header()[1]
        return stored == self.compute_checksum()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SlottedPage(slots={self.slot_count}, "
                f"free={self.free_space()}, lower={self.lower}, "
                f"upper={self.upper})")
