"""A small free-space map so heap inserts don't scan the whole relation.

The map is an in-memory, best-effort hint: it remembers the approximate
free bytes of pages that recently gained space (deletes, vacuum) plus the
current insertion target.  Losing it is harmless — inserts fall back to
"try the last page, else extend", which is also what keeps bulk loads
appending sequentially (important for the paper's sequential-write numbers).
"""

from __future__ import annotations


class FreeSpaceMap:
    """Per-relation page free-space hints."""

    def __init__(self) -> None:
        self._free: dict[int, int] = {}
        self._last_insert: int | None = None
        #: Stale upper bound on ``max(self._free.values())``.  Sequential
        #: bulk loads call :meth:`find` once per insert with a request no
        #: page can satisfy; the watermark answers those in O(1) instead of
        #: scanning every known page, and is recomputed lazily only when a
        #: scan actually runs.  It never changes *which* page ``find``
        #: returns — only whether the losing scan is skipped.
        self._max_free = 0

    def record(self, blockno: int, free_bytes: int) -> None:
        """Remember that *blockno* has about *free_bytes* available."""
        if free_bytes <= 0:
            self._free.pop(blockno, None)
        else:
            self._free[blockno] = free_bytes
            if free_bytes > self._max_free:
                self._max_free = free_bytes

    def note_insert_target(self, blockno: int) -> None:
        """Remember the page the relation last inserted into."""
        self._last_insert = blockno

    @property
    def insert_target(self) -> int | None:
        return self._last_insert

    def find(self, needed: int) -> int | None:
        """A page believed to fit *needed* bytes, or ``None``.

        Prefers the current insertion target (keeps inserts clustered and
        sequential), then the lowest-numbered known page with room.
        """
        target = self._last_insert
        if target is not None and self._free.get(target, 0) >= needed:
            return target
        if needed > self._max_free:
            return None
        best = None
        actual_max = 0
        for blockno, free in self._free.items():
            if free > actual_max:
                actual_max = free
            if free >= needed and (best is None or blockno < best):
                best = blockno
        self._max_free = actual_max  # tighten the stale bound for free
        return best

    def known_insufficient(self, blockno: int, needed: int) -> bool:
        """True when the hints affirmatively say *blockno* cannot fit *needed*.

        Only claims knowledge about the current insertion target — its
        hint is refreshed on every placement, so it can only understate
        free space (deletes free bytes without a ``record``).  Callers
        may use this to skip a probe where a false "insufficient" merely
        costs a fresh page, never correctness.
        """
        return (blockno == self._last_insert
                and self._free.get(blockno, 0) < needed)

    def forget(self) -> None:
        """Drop all hints (after truncate or drop)."""
        self._free.clear()
        self._last_insert = None
        self._max_free = 0
