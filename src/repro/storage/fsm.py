"""A small free-space map so heap inserts don't scan the whole relation.

The map is an in-memory, best-effort hint: it remembers the approximate
free bytes of pages that recently gained space (deletes, vacuum) plus the
current insertion target.  Losing it is harmless — inserts fall back to
"try the last page, else extend", which is also what keeps bulk loads
appending sequentially (important for the paper's sequential-write numbers).
"""

from __future__ import annotations


class FreeSpaceMap:
    """Per-relation page free-space hints."""

    def __init__(self) -> None:
        self._free: dict[int, int] = {}
        self._last_insert: int | None = None

    def record(self, blockno: int, free_bytes: int) -> None:
        """Remember that *blockno* has about *free_bytes* available."""
        if free_bytes <= 0:
            self._free.pop(blockno, None)
        else:
            self._free[blockno] = free_bytes

    def note_insert_target(self, blockno: int) -> None:
        """Remember the page the relation last inserted into."""
        self._last_insert = blockno

    @property
    def insert_target(self) -> int | None:
        return self._last_insert

    def find(self, needed: int) -> int | None:
        """A page believed to fit *needed* bytes, or ``None``.

        Prefers the current insertion target (keeps inserts clustered and
        sequential), then the lowest-numbered known page with room.
        """
        target = self._last_insert
        if target is not None and self._free.get(target, 0) >= needed:
            return target
        candidates = [b for b, free in self._free.items() if free >= needed]
        return min(candidates) if candidates else None

    def forget(self) -> None:
        """Drop all hints (after truncate or drop)."""
        self._free.clear()
        self._last_insert = None
