"""Page-level storage: slotted 8 KB pages and the buffer manager."""

from repro.storage.buffer import BufferManager, BufferStats
from repro.storage.constants import CHUNK_PAYLOAD, PAGE_SIZE
from repro.storage.page import ItemId, SlottedPage

__all__ = [
    "PAGE_SIZE",
    "CHUNK_PAYLOAD",
    "SlottedPage",
    "ItemId",
    "BufferManager",
    "BufferStats",
]
