"""Append-only catalog journal.

DDL (create/drop class, create index, create large object) is recorded as
one JSON line per action and replayed when the database directory is
reopened.  Classic POSTGRES kept its catalogs in ordinary classes; a
journal gives us the same durability for far less machinery, at the
documented cost that DDL is not transactional (which matches POSTGRES V4's
behaviour closely enough for everything the paper measures).

A torn final line — the signature of a crash mid-write — is ignored on
replay.
"""

from __future__ import annotations

import json
import os
from typing import Iterator


class CatalogJournal:
    """One durable JSON-lines file of catalog actions."""

    def __init__(self, path: str | None = None):
        self.path = path
        self._handle = None
        if path is not None:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)

    def replay(self) -> Iterator[dict]:
        """Yield every intact record, oldest first."""
        if self.path is None or not os.path.exists(self.path):
            return
        # repro: allow(R003): the catalog journal is host-side metadata
        # with its own torn-tail recovery, not block storage.
        with open(self.path, "rb") as fh:
            for line in fh:
                if not line.endswith(b"\n"):
                    break  # torn tail from a crash
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    break  # corrupt tail: stop replaying

    def append(self, record: dict) -> None:
        """Durably append one action record."""
        if self.path is None:
            return
        if self._handle is None:
            # repro: allow(R003): append-only journal with explicit
            # flush+fsync per record; deliberately outside the smgr.
            self._handle = open(self.path, "ab")
        self._handle.write(json.dumps(record, sort_keys=True).encode()
                           + b"\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
