"""Whole-database integrity checking (à la PostgreSQL's amcheck).

``Database.check_integrity()`` walks every layer and returns a list of
problem descriptions (empty = healthy):

* **catalog ↔ storage**: every cataloged class/index has a backing file;
* **pages**: every page parses, and its line pointers stay inside bounds;
* **tuples**: every live tuple decodes under its relation's schema, and
  its transaction stamps refer to known-fate xids;
* **B-trees**: key ordering holds, and every index entry's TID points at
  a decodable heap tuple;
* **large objects**: every cataloged object has its chunk relations, its
  ``pg_largeobject`` size row, and (v-segment) a byte store covering every
  visible segment;
* **Inversion**: every live DIRECTORY file row has STORAGE and FILESTAT
  rows and its designator resolves; no duplicate directory slots or
  file ids; no orphan FILESTAT/STORAGE rows; every parent id is a live
  directory; every directory is reachable from the root (no cycles).

The checker only reads; it never repairs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.access.tuples import TID
from repro.errors import ReproError
from repro.storage.constants import INVALID_XID, PAGE_SIZE
from repro.txn.xlog import TxnStatus

if TYPE_CHECKING:
    from repro.db import Database


class IntegrityChecker:
    """Read-only consistency sweep over one database."""

    def __init__(self, db: "Database"):
        self.db = db
        self.problems: list[str] = []

    def _report(self, message: str) -> None:
        self.problems.append(message)

    # -- entry point -------------------------------------------------------------

    def run(self) -> list[str]:
        """Run every check; returns the accumulated problem list."""
        self.problems = []
        self._check_catalog_storage()
        for name in self.db.catalog.relation_names():
            self._check_heap(name)
        for index_name in sorted(self.db.catalog.indexes):
            self._check_index(index_name)
        self._check_large_objects()
        self._check_inversion()
        return self.problems

    # -- individual checks ----------------------------------------------------------

    def _check_catalog_storage(self) -> None:
        for name, entry in sorted(self.db.catalog.relations.items()):
            smgr = self.db.storage_manager(entry.smgr_name)
            if not smgr.exists(entry.fileid):
                self._report(f"class {name!r}: backing file "
                             f"{entry.fileid!r} missing on "
                             f"{entry.smgr_name!r}")
        for name, entry in sorted(self.db.catalog.indexes.items()):
            relation = self.db.catalog.relations.get(entry.relation)
            if relation is None:
                self._report(f"index {name!r}: its class "
                             f"{entry.relation!r} is not cataloged")

    def _check_heap(self, name: str) -> None:
        entry = self.db.catalog.relations[name]
        if not self.db.storage_manager(entry.smgr_name).exists(
                entry.fileid):
            return  # already reported by the catalog/storage check
        try:
            relation = self.db.get_class(name)
        except ReproError as exc:
            self._report(f"class {name!r}: unopenable: {exc}")
            return
        for blockno in range(relation.nblocks()):
            try:
                with self.db.bufmgr.page(relation.smgr, relation.fileid,
                                         blockno) as page:
                    if page.lower > page.upper or page.upper > PAGE_SIZE:
                        self._report(f"class {name!r} page {blockno}: "
                                     f"header bounds corrupt")
                        continue
                    slots = page.live_slots()
                    images = [(s, page.get_item(s)) for s in slots]
            except ReproError as exc:
                self._report(f"class {name!r} page {blockno}: {exc}")
                continue
            for slot, image in images:
                self._check_tuple(name, relation, TID(blockno, slot),
                                  image)

    def _check_tuple(self, name: str, relation, tid: TID,
                     image: bytes) -> None:
        from repro.access.tuples import deserialize_tuple
        try:
            tup = deserialize_tuple(relation.schema, image, tid)
        except ReproError as exc:
            self._report(f"class {name!r} tuple {tid}: undecodable: {exc}")
            return
        if tup.xmin == INVALID_XID:
            self._report(f"class {name!r} tuple {tid}: invalid xmin")
        for label, xid in (("xmin", tup.xmin), ("xmax", tup.xmax)):
            if xid == INVALID_XID:
                continue
            status = self.db.clog.status(xid)
            if status == TxnStatus.COMMITTED:
                try:
                    self.db.clog.commit_time(xid)
                except ReproError:
                    self._report(f"class {name!r} tuple {tid}: committed "
                                 f"{label} {xid} has no commit time")

    def _check_index(self, index_name: str) -> None:
        from repro.access.scan import check_index, dangling_index_entries
        entry = self.db.catalog.indexes.get(index_name)
        if entry is None or entry.relation not in self.db.catalog.relations:
            return
        try:
            index = self.db.get_index(index_name)
            check_index(self.db, index)
        except ReproError as exc:
            self._report(f"index {index_name!r}: {exc}")
            return
        relation = self.db.get_class(entry.relation)
        for key, tid in dangling_index_entries(self.db, index, relation):
            self._report(f"index {index_name!r} entry {key}: "
                         f"dangling TID ({tid.blockno},{tid.slot})")

    def _check_large_objects(self) -> None:
        from repro.db import PG_LARGEOBJECT
        from repro.lo.fchunk import chunk_class_name
        from repro.lo.vsegment import segment_class_name
        snapshot = self.db.snapshot()
        size_rows = {t.values[0]: t.values[1]
                     for t in self.db.scan(PG_LARGEOBJECT)}
        for oid, entry in sorted(self.db.catalog.large_objects.items()):
            if oid not in size_rows:
                self._report(f"large object {oid}: no visible size row "
                             f"in {PG_LARGEOBJECT}")
            expected = (segment_class_name(oid)
                        if entry.impl == "vsegment"
                        else chunk_class_name(oid))
            if not self.db.class_exists(expected):
                self._report(f"large object {oid} ({entry.impl}): "
                             f"class {expected!r} missing")
            if entry.impl == "vsegment":
                store_oid = (entry.detail or {}).get("store_oid")
                if store_oid is None:
                    self._report(f"large object {oid}: v-segment without "
                                 f"a recorded byte store")
                elif store_oid not in self.db.catalog.large_objects:
                    self._report(f"large object {oid}: byte store "
                                 f"{store_oid} not cataloged")
                else:
                    self._check_segments(oid, store_oid, size_rows,
                                         snapshot)

    def _check_segments(self, oid: int, store_oid: int, size_rows: dict,
                        snapshot) -> None:
        from repro.lo.vsegment import segment_class_name
        store_size = size_rows.get(store_oid)
        if store_size is None:
            self._report(f"large object {oid}: byte store {store_oid} "
                         f"has no size row")
            return
        name = segment_class_name(oid)
        if not self.db.class_exists(name):
            return
        for tup in self.db.get_class(name).scan(snapshot):
            locn, _length, clen, ptr = tup.values
            if ptr + clen > store_size:
                self._report(
                    f"large object {oid}: segment at {locn} points past "
                    f"the byte store ({ptr}+{clen} > {store_size})")

    def _check_inversion(self) -> None:
        from repro.inversion.filesystem import (DIRECTORY, FILESTAT,
                                                ROOT_ID, STORAGE)
        if not self.db.class_exists(DIRECTORY):
            return
        snapshot = self.db.snapshot()
        storage_ids = {t.values[0]: t.values[1]
                       for t in self.db.get_class(STORAGE).scan(snapshot)}
        stat_ids: set[int] = set()
        for tup in self.db.get_class(FILESTAT).scan(snapshot):
            file_id = tup.values[0]
            if file_id in stat_ids:
                self._report(f"inversion FILESTAT: duplicate rows for "
                             f"id {file_id}")
            stat_ids.add(file_id)
        storage_seen: set[int] = set()
        for tup in self.db.get_class(STORAGE).scan(snapshot):
            file_id = tup.values[0]
            if file_id in storage_seen:
                self._report(f"inversion STORAGE: duplicate rows for "
                             f"id {file_id}")
            storage_seen.add(file_id)
        entries = [t.values
                   for t in self.db.get_class(DIRECTORY).scan(snapshot)]
        dir_ids = {ROOT_ID} | {file_id for _n, file_id, _p, kind
                               in entries if kind == "d"}
        entry_ids = {file_id for _n, file_id, _p, _k in entries}
        slots: set[tuple[int, str]] = set()
        file_ids: set[int] = set()
        children: dict[int, list[int]] = {}
        for name, file_id, parent, kind in entries:
            if (parent, name) in slots:
                self._report(f"inversion: duplicate entry {name!r} under "
                             f"directory {parent}")
            slots.add((parent, name))
            if file_id in file_ids:
                self._report(f"inversion {name!r}: file id {file_id} "
                             f"appears in more than one DIRECTORY row")
            file_ids.add(file_id)
            if parent not in dir_ids:
                self._report(f"inversion {name!r} (id {file_id}): parent "
                             f"{parent} is not a live directory")
            elif kind == "d":
                children.setdefault(parent, []).append(file_id)
            if file_id not in stat_ids:
                self._report(f"inversion {name!r} (id {file_id}): "
                             f"no FILESTAT row")
            if kind == "f":
                designator = storage_ids.get(file_id)
                if designator is None:
                    self._report(f"inversion file {name!r} (id {file_id})"
                                 f": no STORAGE row")
                elif not self.db.lo.exists(designator):
                    self._report(f"inversion file {name!r}: designator "
                                 f"{designator!r} dangles")
        # Orphans: metadata rows whose file went away without them.
        for file_id in sorted(stat_ids - entry_ids):
            self._report(f"inversion FILESTAT: orphan row for id "
                         f"{file_id} (no DIRECTORY entry)")
        for file_id in sorted(storage_seen - entry_ids):
            self._report(f"inversion STORAGE: orphan row for id "
                         f"{file_id} (no DIRECTORY entry)")
        # Reachability: every directory must hang off the root.  An
        # unreachable directory means a rename committed a cycle (the bug
        # DirectoryLoop now prevents) or a detached subtree.
        reachable = {ROOT_ID}
        frontier = [ROOT_ID]
        while frontier:
            for child in children.get(frontier.pop(), ()):
                if child not in reachable:
                    reachable.add(child)
                    frontier.append(child)
        for name, file_id, parent, kind in entries:
            if kind == "d" and file_id not in reachable \
                    and parent in dir_ids:
                self._report(f"inversion directory {name!r} (id {file_id})"
                             f": unreachable from the root (cycle?)")
