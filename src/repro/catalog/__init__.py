"""System catalogs: relations, indexes, large objects, and persistence."""

from repro.catalog.catalog import (
    Catalog,
    IndexEntry,
    LargeObjectEntry,
    RelationEntry,
)
from repro.catalog.journal import CatalogJournal

__all__ = [
    "Catalog",
    "RelationEntry",
    "IndexEntry",
    "LargeObjectEntry",
    "CatalogJournal",
]
