"""The catalog: what classes, indexes, and large objects exist.

Entries are kept in memory and mirrored to the
:class:`~repro.catalog.journal.CatalogJournal`; reopening a database
directory replays the journal to rebuild this state.  Mutable large-object
state (the current byte size) is *not* here — it lives in the
``pg_largeobject`` system class, where no-overwrite versioning makes it
transactional and time-travel-able.

The catalog also allocates object ids, reserving them from the journal in
batches so a crash never reissues an oid.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.access.schema import Schema
from repro.catalog.journal import CatalogJournal
from repro.txn.lockdep import LockdepMutex
from repro.errors import (
    DuplicateRelation,
    LargeObjectNotFound,
    RelationNotFound,
)

_OID_BATCH = 128
_FIRST_OID = 1000  # below this: reserved for system objects


@dataclass
class RelationEntry:
    """One class (heap relation)."""

    name: str
    schema: Schema
    smgr_name: str
    fileid: str


@dataclass
class IndexEntry:
    """One B-tree index over an integer attribute of a class."""

    name: str
    relation: str
    attribute: str
    fileid: str


@dataclass
class LargeObjectEntry:
    """The immutable half of a large object's identity.

    ``impl`` is one of the four §6 implementations; ``compression`` names
    the per-chunk compressor fixed at creation.  ``detail`` holds
    implementation-private wiring (v-segment stores the oid of its
    underlying f-chunk byte store).  The object's size is in
    ``pg_largeobject``, not here.
    """

    oid: int
    impl: str
    smgr_name: str
    compression: str
    detail: dict | None = None


class Catalog:
    """In-memory catalog state mirrored to a journal."""

    def __init__(self, journal: CatalogJournal):
        self.journal = journal
        self.relations: dict[str, RelationEntry] = {}
        self.indexes: dict[str, IndexEntry] = {}
        self.large_objects: dict[int, LargeObjectEntry] = {}
        self._next_oid = _FIRST_OID
        self._oid_reserved = _FIRST_OID
        #: Guards oid allocation — concurrent sessions get distinct oids.
        self._oid_mutex = LockdepMutex("mutex:oid")
        self._replay()

    # -- replay ---------------------------------------------------------------------

    def _replay(self) -> None:
        for record in self.journal.replay():
            action = record.get("action")
            if action == "create_class":
                self.relations[record["name"]] = RelationEntry(
                    name=record["name"],
                    schema=Schema.from_dict(record["schema"]),
                    smgr_name=record["smgr"],
                    fileid=record["fileid"])
            elif action == "drop_class":
                self.relations.pop(record["name"], None)
            elif action == "create_index":
                self.indexes[record["name"]] = IndexEntry(
                    name=record["name"], relation=record["relation"],
                    attribute=record["attribute"],
                    fileid=record["fileid"])
            elif action == "drop_index":
                self.indexes.pop(record["name"], None)
            elif action == "create_lo":
                entry = LargeObjectEntry(
                    oid=record["oid"], impl=record["impl"],
                    smgr_name=record["smgr"],
                    compression=record["compression"],
                    detail=record.get("detail"))
                self.large_objects[entry.oid] = entry
            elif action == "drop_lo":
                self.large_objects.pop(record["oid"], None)
            elif action == "oid_hwm":
                self._oid_reserved = max(self._oid_reserved, record["upto"])
        self._next_oid = max(self._next_oid, self._oid_reserved)

    # -- oid allocation ----------------------------------------------------------------

    def allocate_oid(self) -> int:
        """A fresh oid, never reused even across crashes or threads."""
        with self._oid_mutex:
            oid = self._next_oid
            if oid >= self._oid_reserved:
                self._oid_reserved = oid + _OID_BATCH
                self.journal.append({"action": "oid_hwm",
                                     "upto": self._oid_reserved})
            self._next_oid += 1
            return oid

    # -- classes ------------------------------------------------------------------------

    def add_relation(self, name: str, schema: Schema,
                     smgr_name: str, fileid: str) -> RelationEntry:
        if name in self.relations:
            raise DuplicateRelation(f"class {name!r} already exists")
        entry = RelationEntry(name=name, schema=schema,
                              smgr_name=smgr_name, fileid=fileid)
        self.relations[name] = entry
        self.journal.append({"action": "create_class", "name": name,
                             "schema": schema.to_dict(),
                             "smgr": smgr_name, "fileid": fileid})
        return entry

    def get_relation(self, name: str) -> RelationEntry:
        entry = self.relations.get(name)
        if entry is None:
            raise RelationNotFound(f"no class named {name!r}")
        return entry

    def drop_relation(self, name: str) -> RelationEntry:
        entry = self.get_relation(name)
        del self.relations[name]
        self.journal.append({"action": "drop_class", "name": name})
        return entry

    def relation_names(self) -> list[str]:
        return sorted(self.relations)

    # -- indexes -------------------------------------------------------------------------

    def add_index(self, name: str, relation: str, attribute: str,
                  fileid: str) -> IndexEntry:
        if name in self.indexes:
            raise DuplicateRelation(f"index {name!r} already exists")
        entry = IndexEntry(name=name, relation=relation,
                           attribute=attribute, fileid=fileid)
        self.indexes[name] = entry
        self.journal.append({"action": "create_index", "name": name,
                             "relation": relation, "attribute": attribute,
                             "fileid": fileid})
        return entry

    def drop_index(self, name: str) -> IndexEntry:
        entry = self.indexes.get(name)
        if entry is None:
            raise RelationNotFound(f"no index named {name!r}")
        del self.indexes[name]
        self.journal.append({"action": "drop_index", "name": name})
        return entry

    def indexes_on(self, relation: str) -> list[IndexEntry]:
        return [e for e in self.indexes.values() if e.relation == relation]

    # -- large objects ------------------------------------------------------------------------

    def add_large_object(self, oid: int, impl: str, smgr_name: str,
                         compression: str,
                         detail: dict | None = None) -> LargeObjectEntry:
        entry = LargeObjectEntry(oid=oid, impl=impl, smgr_name=smgr_name,
                                 compression=compression, detail=detail)
        self.large_objects[oid] = entry
        self.journal.append({"action": "create_lo", "oid": oid,
                             "impl": impl, "smgr": smgr_name,
                             "compression": compression,
                             "detail": detail})
        return entry

    def get_large_object(self, oid: int) -> LargeObjectEntry:
        entry = self.large_objects.get(oid)
        if entry is None:
            raise LargeObjectNotFound(f"no large object with oid {oid}")
        return entry

    def drop_large_object(self, oid: int) -> LargeObjectEntry:
        entry = self.get_large_object(oid)
        del self.large_objects[oid]
        self.journal.append({"action": "drop_lo", "oid": oid})
        return entry
