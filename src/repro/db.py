"""The database façade: one object wiring every subsystem together.

A :class:`Database` owns the simulation clock, the storage-manager switch,
the buffer pool, the transaction machinery, the catalogs, the ADT
registries, the large-object manager, the Inversion file system, and the
query-language executor.  Two deployment shapes:

* ``Database()`` — fully in-memory.  The ``"disk"`` storage manager is
  backed by process memory but charges the magnetic-disk cost model, which
  is what the benchmark harness uses: wall-clock fast, simulated-time
  faithful.
* ``Database(path)`` — durable.  Relation files, ``pg_log``, and the
  catalog journal live under *path* and survive reopen; commit forces
  pages per the POSTGRES no-overwrite design.

Example
-------
>>> db = Database()
>>> emp = db.create_class("EMP", [("name", "text"), ("age", "int4")])
>>> with db.begin() as txn:
...     _ = db.insert(txn, "EMP", ("Joe", 30))
>>> [t.values for t in db.scan("EMP")]
[('Joe', 30)]
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterator

from repro.access.btree import BTree
from repro.access.heap import HeapRelation
from repro.access.scan import (AccessStats, EngineLatch, IndexProbe,
                               fetch_visible)
from repro.access.schema import Attribute, Schema
from repro.access.tuples import TID, HeapTuple
from repro.adt.functions import FunctionRegistry
from repro.adt.types import TypeDefinition, TypeRegistry
from repro.catalog.catalog import Catalog
from repro.catalog.journal import CatalogJournal
from repro.errors import RelationNotFound, SchemaError
from repro.sim.clock import SimClock
from repro.sim.devices import CpuModel, magnetic_disk_device
from repro.sim.faults import FaultPlan, parse_plan
from repro.smgr.base import StorageManager, StorageManagerSwitch
from repro.smgr.cache import CachedStorageManager
from repro.smgr.disk import DiskStorageManager
from repro.smgr.faulty import FaultInjector
from repro.smgr.memory import MemoryStorageManager
from repro.smgr.sharded import sharded_disk_manager, sharded_memory_manager
from repro.smgr.worm import WormStorageManager
from repro.storage.buffer import BufferManager
from repro.txn import lockdep
from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import Transaction, TransactionManager
from repro.txn.snapshot import Snapshot
from repro.txn.xlog import CommitLog

if TYPE_CHECKING:
    from repro.inversion.filesystem import InversionFileSystem
    from repro.lo.manager import LargeObjectManager
    from repro.ql.executor import QueryResult
    from repro.session import Session

#: System class holding each chunked large object's mutable state (size).
PG_LARGEOBJECT = "pg_largeobject"


class Database:
    """One POSTGRES-style database instance."""

    def __init__(self, path: str | None = None, pool_size: int = 256,
                 mips: float = 15.0, worm_cache_blocks: int = 1024,
                 charge_cpu: bool = True, no_wait: bool = False,
                 lock_timeout: float | None = None,
                 debug_latch: bool | None = None,
                 faulty_base: str = "disk",
                 shard_nodes: int = 4, shard_replication: int = 3,
                 shard_quorum: int | None = None,
                 shard_placement: str = "range"):
        self.path = path
        #: Which manager the ``"faulty"`` injector wraps — ``"disk"`` by
        #: default, ``"sharded"`` to run the crash matrix over the
        #: replicated backend.  A constructor parameter (not post-hoc
        #: re-registration) because ``__init__`` itself may open
        #: large-object relations through the switch (orphan recovery).
        self._faulty_base = faulty_base
        #: Default ``"sharded"`` topology: N nodes, R-of-N replication
        #: (quorum defaults to a majority of R), banded range/hash
        #: placement.  Reopening a durable database must use the same
        #: topology parameters.
        self._shard_config = {
            "n_nodes": shard_nodes,
            "replication": shard_replication,
            "write_quorum": shard_quorum,
            "placement": shard_placement,
        }
        self.clock = SimClock()
        self.cpu = CpuModel(mips=mips)
        self.bufmgr = BufferManager(
            pool_size=pool_size, clock=self.clock,
            cpu=self.cpu if charge_cpu else None)
        #: Blocking 2PL with deadlock detection by default; ``no_wait=True``
        #: restores the paper's immediate-rejection policy, and
        #: ``lock_timeout`` bounds every blocking wait (a safety net — the
        #: deadlock detector does not rely on it).  A single thread running
        #: two conflicting transactions does not hang: a wait that depends
        #: on a lock the caller's own thread holds raises ``LockError``
        #: immediately, like the old no-wait policy did.
        self.locks = LockManager(no_wait=no_wait, timeout=lock_timeout)
        #: Engine latch: serializes structural mutation (page content,
        #: relation/index caches) across sessions.  The canonical rule
        #: lives in DESIGN.md §"Locking discipline": heavyweight locks are
        #: ALWAYS taken before this latch, never while holding it — a
        #: blocking lock wait under the latch would stall every session.
        self._latch = EngineLatch()
        #: Per-scan counters (probes, tuples scanned/visible, prefetch
        #: batches) maintained by the scan descriptors in
        #: :mod:`repro.access.scan`; see ``statistics()["access"]``.
        self.access_stats = AccessStats()
        #: Debug tripwire: when on, relations and indexes opened through
        #: this Database assert the engine latch is held on raw reads
        #: (``fetch``/``fetch_many``/``search``/``range_scan``), so code
        #: bypassing the scan layer fails loudly instead of racing.
        #: ``None`` defers to the REPRO_DEBUG_LATCH environment variable
        #: (armed by tests/conftest.py for the whole suite).
        if debug_latch is None:
            debug_latch = os.environ.get(
                "REPRO_DEBUG_LATCH", "") not in ("", "0")
        self.debug_latch = debug_latch

        if path is not None:
            os.makedirs(path, exist_ok=True)
            self.clog = CommitLog(os.path.join(path, "pg_log"))
            journal = CatalogJournal(os.path.join(path, "catalog.journal"))
        else:
            self.clog = CommitLog()
            journal = CatalogJournal()
        self.tm = TransactionManager(self.clog, self.bufmgr, self.locks,
                                     self.clock)
        self.catalog = Catalog(journal)
        self.types = TypeRegistry()
        self.functions = FunctionRegistry()

        self.switch = StorageManagerSwitch()
        self._register_default_smgrs(worm_cache_blocks)
        self.default_smgr_name = "disk"

        self._relations: dict[str, HeapRelation] = {}
        self._indexes: dict[str, BTree] = {}
        self._lo_manager: "LargeObjectManager | None" = None
        self._inversion: "InversionFileSystem | None" = None
        self._archiver = None
        self._bootstrap()
        # Crash-recovery sweep: the catalog journal is not transactional,
        # so a crash mid-create can leave large-object entries whose size
        # row never committed.  (Only a reopened directory can have any.)
        if self.catalog.large_objects:
            self.lo.recover_orphans()

    def _register_default_smgrs(self, worm_cache_blocks: int) -> None:
        if self.path is not None:
            base = os.path.join(self.path, "base")
            self.switch.register(
                "disk", lambda: DiskStorageManager(base, self.clock))
        else:
            # In-memory blocks priced as a magnetic disk: the benchmark mode.
            self.switch.register(
                "disk", lambda: MemoryStorageManager(
                    self.clock, model=magnetic_disk_device()))
        self.switch.register(
            "memory", lambda: MemoryStorageManager(self.clock))
        self.switch.register(
            "worm", lambda: CachedStorageManager(
                WormStorageManager(self.clock), self.clock,
                capacity_blocks=worm_cache_blocks))
        # Scale-out backend: blocks striped over N nodes (each priced as
        # its own magnetic disk) with R-of-N quorum replication.
        if self.path is not None:
            shard_dir = os.path.join(self.path, "shard")
            self.switch.register(
                "sharded", lambda: sharded_disk_manager(
                    shard_dir, self.clock, **self._shard_config))
        else:
            self.switch.register(
                "sharded", lambda: sharded_memory_manager(
                    self.clock, **self._shard_config))
        # Scripted fault injection over a durable manager: relations
        # created "with storage manager 'faulty'" behave exactly like the
        # wrapped base until a plan is armed (Database.inject_faults).
        self.switch.register(
            "faulty",
            lambda: FaultInjector(self.switch.get(self._faulty_base)))

    def _bootstrap(self) -> None:
        """Create system classes on first open."""
        if PG_LARGEOBJECT not in self.catalog.relations:
            self.create_class(
                PG_LARGEOBJECT,
                [("loid", "oid"), ("size", "int8")])
        if "pg_largeobject_loid" not in self.catalog.indexes:
            self.create_index("pg_largeobject_loid", PG_LARGEOBJECT, "loid")

    # -- infrastructure accessors ---------------------------------------------------

    def storage_manager(self, name: str | None = None) -> StorageManager:
        """The live storage manager instance registered under *name*."""
        return self.switch.get(name or self.default_smgr_name)

    @property
    def latch(self) -> EngineLatch:
        """The engine latch serializing page-content access.

        Tuple-level visibility is MVCC's job, but slot directories and
        B-tree nodes are only consistent *between* latched sections — so
        any subsystem reading pages directly (``index.search`` /
        ``range_scan`` plus ``relation.fetch``) must hold this latch, the
        same one ``insert``/``replace``/``scan`` mutate under.  Normal
        code never takes it by hand: the scan descriptors in
        :mod:`repro.access.scan` own it for every read path.  Re-entrant;
        never acquire a heavyweight lock while holding it (DESIGN.md
        §"Locking discipline").
        """
        return self._latch

    @property
    def lo(self) -> "LargeObjectManager":
        """The large-object manager (lazily constructed)."""
        with self._latch:
            if self._lo_manager is None:
                from repro.lo.manager import LargeObjectManager
                self._lo_manager = LargeObjectManager(self)
            return self._lo_manager

    @property
    def inversion(self) -> "InversionFileSystem":
        """The Inversion file system over this database."""
        with self._latch:
            if self._inversion is None:
                from repro.inversion.filesystem import InversionFileSystem
                self._inversion = InversionFileSystem(self)
            return self._inversion

    # -- transactions ------------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction (usable as a context manager)."""
        return self.tm.begin()

    def session(self) -> "Session":
        """A new :class:`~repro.session.Session` handle on this database.

        Each concurrent caller (thread, connection) gets its own session:
        the transaction cursor and open large-object descriptors live on
        the handle, never on the shared :class:`Database`.
        """
        from repro.session import Session
        return Session(self)

    def snapshot(self, txn: Transaction | None = None,
                 as_of: float | None = None,
                 until: float | None = None) -> Snapshot:
        return self.tm.snapshot(txn, as_of=as_of, until=until)

    # -- DDL ------------------------------------------------------------------------------

    def _build_schema(self, columns) -> Schema:
        if isinstance(columns, Schema):
            return columns
        attributes = []
        for name, type_name in columns:
            if not self.types.exists(type_name):
                raise SchemaError(f"unknown type {type_name!r} for "
                                  f"column {name!r}")
            definition = self.types.get(type_name)
            attributes.append(Attribute(name, type_name,
                                        storage_type=definition.storage_type))
        return Schema(attributes)

    def create_class(self, name: str, columns,
                     smgr: str | None = None) -> HeapRelation:
        """``create <name> (...) [with storage manager <smgr>]``."""
        with self._latch:
            schema = self._build_schema(columns)
            smgr_name = smgr or self.default_smgr_name
            manager = self.storage_manager(smgr_name)
            fileid = f"heap_{name}"
            self.catalog.add_relation(name, schema, smgr_name, fileid)
            relation = HeapRelation(name, schema, manager, self.bufmgr,
                                    self.clog, self.catalog.allocate_oid,
                                    fileid=fileid)
            if self.debug_latch:
                relation.latch_probe = self._latch.held
            relation.create_storage()
            self._relations[name] = relation
            return relation

    def get_class(self, name: str) -> HeapRelation:
        """The (cached) heap relation for class *name*."""
        with self._latch:
            relation = self._relations.get(name)
            if relation is None:
                entry = self.catalog.get_relation(name)
                relation = HeapRelation(
                    entry.name, entry.schema,
                    self.storage_manager(entry.smgr_name), self.bufmgr,
                    self.clog, self.catalog.allocate_oid,
                    fileid=entry.fileid)
                if self.debug_latch:
                    relation.latch_probe = self._latch.held
                relation.create_storage()
                self._relations[name] = relation
            return relation

    def class_exists(self, name: str) -> bool:
        return name in self.catalog.relations

    def drop_class(self, name: str) -> None:
        """Drop a class, its storage, and its indexes."""
        with self._latch:
            relation = self.get_class(name)
            for index_entry in self.catalog.indexes_on(name):
                self.drop_index(index_entry.name)
            self.catalog.drop_relation(name)
            relation.drop_storage()
            self._relations.pop(name, None)

    def create_index(self, name: str, relation_name: str,
                     attribute: str) -> BTree:
        """B-tree index on an integer attribute of a class."""
        with self._latch:
            relation = self.get_class(relation_name)
            attr = relation.schema.attribute(attribute)
            if (attr.storage_type or attr.type_name) not in (
                    "int4", "int8", "oid"):
                raise SchemaError(
                    f"can only index integer attributes, {attribute!r} "
                    f"is {attr.type_name}")
            entry = self.catalog.get_relation(relation_name)
            fileid = f"btree_{name}"
            self.catalog.add_index(name, relation_name, attribute, fileid)
            index = BTree(name, self.storage_manager(entry.smgr_name),
                          self.bufmgr, key_arity=1, fileid=fileid)
            if self.debug_latch:
                index.latch_probe = self._latch.held
            index.create_storage()
            # Index any rows that already exist.
            position = relation.schema.position(attribute)
            for tup in relation.scan_versions():
                key = tup.values[position]
                if key is not None:
                    index.insert((key,), (tup.tid.blockno, tup.tid.slot))
            self._indexes[name] = index
            return index

    def get_index(self, name: str) -> BTree:
        with self._latch:
            index = self._indexes.get(name)
            if index is None:
                entry = self.catalog.indexes.get(name)
                if entry is None:
                    raise RelationNotFound(f"no index named {name!r}")
                relation_entry = self.catalog.get_relation(entry.relation)
                index = BTree(name,
                              self.storage_manager(relation_entry.smgr_name),
                              self.bufmgr, key_arity=1, fileid=entry.fileid)
                if self.debug_latch:
                    index.latch_probe = self._latch.held
                index.create_storage()
                self._indexes[name] = index
            return index

    def drop_index(self, name: str) -> None:
        with self._latch:
            index = self.get_index(name)
            self.catalog.drop_index(name)
            index.drop_storage()
            self._indexes.pop(name, None)

    # -- DML (index-maintaining) --------------------------------------------------------------

    def insert(self, txn: Transaction, class_name: str,
               values: tuple) -> TID:
        """Insert *values* into *class_name*, maintaining its indexes.

        The relation lock is taken *before* the engine latch (and may
        block); the latched section then mutates pages atomically with
        respect to every other session.
        """
        self.tm.require_transaction(txn)
        self.locks.acquire(txn.xid, ("relation", class_name),
                           LockMode.SHARED)
        with self._latch:
            relation = self.get_class(class_name)
            tid = relation.insert(txn, values)
            self._index_insert(class_name, relation, values, tid, txn)
            return tid

    def _index_insert(self, class_name: str, relation: HeapRelation,
                      values: tuple, tid: TID, txn: Transaction) -> None:
        for entry in self.catalog.indexes_on(class_name):
            key = values[relation.schema.position(entry.attribute)]
            if key is not None:
                index = self.get_index(entry.name)
                index.insert((key,), (tid.blockno, tid.slot))
                txn.touch(index.smgr, index.fileid)

    def delete(self, txn: Transaction, class_name: str, tid: TID) -> None:
        """Delete the tuple at *tid*.

        Index entries are left behind (the old version is still needed for
        time travel); scans filter by visibility, and vacuum reconciles.
        """
        self.tm.require_transaction(txn)
        self.locks.acquire(txn.xid, ("relation", class_name),
                           LockMode.SHARED)
        with self._latch:
            self.get_class(class_name).delete(txn, tid)

    def replace(self, txn: Transaction, class_name: str, tid: TID,
                values: tuple) -> TID:
        """Write a new version of the tuple at *tid*."""
        self.tm.require_transaction(txn)
        self.locks.acquire(txn.xid, ("relation", class_name),
                           LockMode.SHARED)
        with self._latch:
            relation = self.get_class(class_name)
            new_tid = relation.replace(txn, tid, values)
            self._index_insert(class_name, relation, values, new_tid, txn)
            return new_tid

    def scan(self, class_name: str, txn: Transaction | None = None,
             as_of: float | None = None,
             until: float | None = None) -> Iterator[HeapTuple]:
        """Visible tuples of *class_name* (optionally at a past instant,
        or across the interval ``[as_of, until]``).

        Time-travel scans transparently include versions the archival
        vacuum has moved to the class's archive relation.

        The result is materialized under the engine latch, so the tuples
        returned are a consistent cut even while other sessions write.
        """
        snapshot = self.snapshot(txn, as_of=as_of, until=until)
        with self._latch:
            if as_of is not None and self.archiver.has_archive(class_name):
                tuples = list(
                    self.archiver.scan_with_archive(class_name, snapshot))
            else:
                tuples = list(self.get_class(class_name).scan(snapshot))
        return iter(tuples)

    def fetch(self, class_name: str, tid: TID,
              txn: Transaction | None = None,
              as_of: float | None = None) -> HeapTuple | None:
        """The visible tuple at *tid*, or ``None``."""
        snapshot = self.snapshot(txn, as_of=as_of)
        return fetch_visible(self, self.get_class(class_name), tid, snapshot)

    def history(self, class_name: str, oid: int) -> list[dict]:
        """Every committed version of the logical tuple *oid*, oldest
        first, with its validity interval.

        Returns dicts with ``values``, ``valid_from`` (commit time of the
        inserter) and ``valid_to`` (commit time of the deleter, or
        ``None`` while live).  Versions moved to the class's archive are
        included.  Uncommitted and aborted versions are skipped.
        """
        from repro.txn.xlog import TxnStatus
        with self._latch:
            relation = self.get_class(class_name)
            sources = [list(relation.scan_versions())]
            archive = self.archiver.archive_relation(class_name)
            if archive is not None:
                sources.append(list(archive.scan_versions()))
        versions = []
        seen = set()
        for source in sources:
            for tup in source:
                if tup.oid != oid:
                    continue
                if self.clog.status(tup.xmin) != TxnStatus.COMMITTED:
                    continue
                key = (tup.xmin, tup.xmax)
                if key in seen:  # crash-duplicated archive copy
                    continue
                seen.add(key)
                valid_from = self.clog.commit_time(tup.xmin)
                valid_to = None
                if (tup.xmax != 0 and self.clog.status(tup.xmax)
                        == TxnStatus.COMMITTED):
                    valid_to = self.clog.commit_time(tup.xmax)
                versions.append({"values": tup.values,
                                 "valid_from": valid_from,
                                 "valid_to": valid_to})
        versions.sort(key=lambda v: v["valid_from"])
        return versions

    def index_lookup(self, index_name: str, key: int,
                     txn: Transaction | None = None,
                     as_of: float | None = None) -> list[HeapTuple]:
        """Visible tuples whose indexed attribute equals *key*.

        The fetched tuple's attribute is re-checked against the probe key
        — a defence against index entries that went stale between a
        deletion and the vacuum that prunes them.
        """
        snapshot = self.snapshot(txn, as_of=as_of)
        index = self.get_index(index_name)
        entry = self.catalog.indexes[index_name]
        relation = self.get_class(entry.relation)
        position = relation.schema.position(entry.attribute)
        return IndexProbe(self, index, relation, (key,),
                          recheck_position=position).tuples(snapshot)

    # -- ADT registration -------------------------------------------------------------------------

    def create_type(self, name: str, input_fn, output_fn) -> TypeDefinition:
        """``create type`` — register a small ADT."""
        return self.types.register(name, input_fn, output_fn)

    def create_large_type(self, name: str, storage: str = "fchunk",
                          compression: str = "none",
                          input_fn=None, output_fn=None) -> TypeDefinition:
        """``create large type`` with a storage clause (§4)."""
        return self.types.register_large(
            name, storage=storage, compression=compression,
            input_fn=input_fn, output_fn=output_fn)

    def register_function(self, name: str, arg_types, return_type: str,
                          fn, needs_context: bool = False):
        """Register a user-defined function callable from queries."""
        return self.functions.register(name, tuple(arg_types), return_type,
                                       fn, needs_context=needs_context)

    # -- queries ------------------------------------------------------------------------------------

    def execute(self, query: str,
                txn: Transaction | None = None) -> "QueryResult":
        """Run one mini-POSTQUEL statement.

        Without *txn*, the statement runs in its own transaction, committed
        on success and aborted on error.
        """
        from repro.ql.executor import Executor
        return Executor(self).execute(query, txn=txn)

    def execute_script(self, script: str,
                       txn: Transaction | None = None) -> list:
        """Run `;`-separated statements atomically (one transaction)."""
        from repro.ql.executor import Executor
        return Executor(self).execute_script(script, txn=txn)

    def explain(self, query: str) -> str:
        """Describe how *query* would execute, without running it."""
        from repro.ql.executor import Executor
        return Executor(self).explain(query)

    # -- maintenance -----------------------------------------------------------------------------------

    @property
    def archiver(self):
        """The archival vacuum cleaner (history → archive storage)."""
        if self._archiver is None:
            from repro.access.archive import Archiver
            self._archiver = Archiver(self)
        return self._archiver

    def archive_class(self, class_name: str,
                      horizon: float | None = None) -> dict[str, int]:
        """Move *class_name*'s dead versions to its archive relation."""
        return self.archiver.archive_class(class_name, horizon=horizon)

    def vacuum(self, horizon: float | None = None) -> dict[str, int]:
        """Vacuum every user class; returns per-class removal counts.

        Index entries pointing at removed versions are pruned too —
        vacuumed slots may be reused, so stale entries must never dangle.
        """
        removed = {}
        for name in self.catalog.relation_names():
            sink: list = []
            removed[name] = self.get_class(name).vacuum(
                horizon, removed_sink=sink)
            if sink:
                self.prune_index_entries(name, sink)
        return removed

    def prune_index_entries(self, class_name: str, tuples) -> int:
        """Remove the index entries of physically-removed tuple versions."""
        entries = self.catalog.indexes_on(class_name)
        if not entries:
            return 0
        relation = self.get_class(class_name)
        pruned = 0
        for entry in entries:
            index = self.get_index(entry.name)
            position = relation.schema.position(entry.attribute)
            for tup in tuples:
                key = tup.values[position]
                if key is not None:
                    pruned += index.delete(
                        (key,), (tup.tid.blockno, tup.tid.slot))
        return pruned

    def checkpoint(self) -> int:
        """Flush every dirty buffer (returns pages written)."""
        return self.bufmgr.flush_all()

    # -- fault injection -------------------------------------------------------------------------------

    def inject_faults(self, plan) -> "FaultPlan":
        """Arm a fault plan (a :class:`~repro.sim.faults.FaultPlan` or plan
        DSL text) over the ``"faulty"`` storage manager and ``pg_log``.

        ``on node <k> [after N]: down|slow|flaky|up`` rules additionally
        drive node health in the ``"sharded"`` manager, whether it is the
        faulty wrapper's base or addressed directly.

        Returns the armed plan so callers can inspect ``plan.fired``.
        """
        if isinstance(plan, str):
            plan = parse_plan(plan)
        self.switch.get("faulty").arm(plan)
        self.clog.set_fault_plan(plan)
        if plan.has_node_rules():
            self.switch.get("sharded").set_node_plan(plan)
        return plan

    def clear_faults(self) -> None:
        """Disarm any fault plan; injected managers become transparent
        and every storage node returns to healthy."""
        self.switch.get("faulty").disarm()
        self.clog.set_fault_plan(None)
        for _name, smgr in list(self.switch.items()):
            clear_node_plan = getattr(smgr, "clear_node_plan", None)
            if clear_node_plan is not None:
                clear_node_plan()

    def check_integrity(self) -> list[str]:
        """Read-only consistency sweep over every layer.

        Returns a list of problem descriptions (empty = healthy); see
        :class:`repro.catalog.integrity.IntegrityChecker`.
        """
        from repro.catalog.integrity import IntegrityChecker
        return IntegrityChecker(self).run()

    def statistics(self) -> dict:
        """A snapshot of every layer's counters, for monitoring/benchmarks.

        Keys: ``clock`` (simulated seconds by category), ``buffer`` (pool
        counters and hit rate), ``storage`` (per-manager physical access
        counters), ``catalog`` (object counts), ``transactions``,
        ``locks`` (grants, waits, wait time, deadlocks, victims),
        ``access`` (scan-descriptor counters), ``largeobjects``
        (descriptor cache hits/misses), and ``lockdep`` (whether the
        runtime lock-order validator is armed, the observed
        acquisition-order edges, and the violation count — see
        ``repro/txn/lockdep.py`` and docs/invariants.md).
        """
        from repro.lo.metadata import LargeObjectCacheStats
        storage = {}
        for name, smgr in self.switch.items():
            storage[name] = smgr.stats()
        # Avoid constructing the LO manager just to report zeros.
        lo_caches = (self._lo_manager.cache_stats
                     if self._lo_manager is not None
                     else LargeObjectCacheStats())
        return {
            "clock": {"elapsed": self.clock.elapsed,
                      **self.clock.breakdown()},
            "buffer": {
                "hits": self.bufmgr.stats.hits,
                "misses": self.bufmgr.stats.misses,
                "hit_rate": self.bufmgr.stats.hit_rate(),
                "evictions": self.bufmgr.stats.evictions,
                "writebacks": self.bufmgr.stats.writebacks,
                "prefetched": self.bufmgr.stats.prefetched,
                "prefetch_hits": self.bufmgr.stats.prefetch_hits,
                "node_cache_hits": self.bufmgr.stats.node_cache_hits,
                "node_cache_misses": self.bufmgr.stats.node_cache_misses,
                "pool_size": self.bufmgr.pool_size,
            },
            "storage": storage,
            "catalog": {
                "classes": len(self.catalog.relations),
                "indexes": len(self.catalog.indexes),
                "large_objects": len(self.catalog.large_objects),
            },
            "transactions": {
                "active": self.tm.active_count(),
            },
            "locks": self.locks.stats.as_dict(),
            "access": self.access_stats.as_dict(),
            "largeobjects": lo_caches.as_dict(),
            "lockdep": lockdep.VALIDATOR.as_dict(),
        }

    def close(self) -> None:
        """Flush and release everything; the directory can be reopened."""
        self.bufmgr.flush_all()
        for smgr in self.switch.instances():
            close = getattr(smgr, "close", None)
            if close is not None:
                close()
        self.clog.close()
        self.catalog.journal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
