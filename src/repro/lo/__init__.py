"""The four large-object implementations (§6 of the paper).

========== ====================================================== ==========
storage    what it is                                             services
========== ====================================================== ==========
u-file     a user-owned native file, its path stored in a tuple   none
p-file     a DBMS-owned native file (``newfilename()``)           single-
                                                                  writer
f-chunk    fixed 8 KB chunks as records in a POSTGRES class,      security,
           B-tree on the sequence number                          txns, time
                                                                  travel,
                                                                  per-chunk
                                                                  compression
v-segment  variable-length compressed segments + a segment index  all of the
           over an f-chunk byte store                             above, with
                                                                  segment-
                                                                  granular
                                                                  compression
========== ====================================================== ==========

All four expose the same **file-oriented interface** (§4): open / seek /
read / write / close, so "a function can be written and debugged using
files, and then moved into the database where it can manage large objects
without being rewritten."
"""

from repro.lo.interface import SEEK_CUR, SEEK_END, SEEK_SET, LargeObject
from repro.lo.manager import LargeObjectManager
from repro.lo.temporary import TemporaryObjects

__all__ = [
    "LargeObject",
    "LargeObjectManager",
    "TemporaryObjects",
    "SEEK_SET",
    "SEEK_CUR",
    "SEEK_END",
]
