"""The large-object manager: create / open / unlink across all four
implementations.

Designators
-----------
A large object is named in tuples by a **designator** string:

* ``"lo:<oid>"`` — a chunked object (f-chunk or v-segment); the oid
  resolves through the catalog to the implementation and its relations;
* ``"pg_pfiles/<n>"`` — a DBMS-owned p-file, allocated by
  :meth:`LargeObjectManager.newfilename` (the paper's function of the
  same name);
* anything else — a u-file path owned by the user.

This is exactly the paper's usage: *"the name of a user file is used as a
large object designator and stored in the appropriate field in the data
base"* (§6.1).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.compress.base import get_compressor
from repro.db import PG_LARGEOBJECT
from repro.errors import (
    LargeObjectError,
    LargeObjectNotFound,
    RelationNotFound,
)
from repro.lo import metadata
from repro.lo.fchunk import FChunkObject, chunk_class_name, chunk_index_name
from repro.lo.interface import LargeObject
from repro.lo.nativefs import NativeFileSystem
from repro.lo.pfile import PFILE_PREFIX, PostgresFileObject, is_pfile
from repro.lo.ufile import UserFileObject
from repro.lo.vsegment import (
    VSegmentObject,
    segment_class_name,
    segment_index_name,
)
from repro.txn.lockdep import LockdepMutex
from repro.txn.locks import LockMode
from repro.txn.manager import Transaction
from repro.txn.rangelock import lo_whole

if TYPE_CHECKING:
    import os

    from repro.db import Database


def is_chunked(designator: str) -> bool:
    """Whether a designator names an f-chunk/v-segment object."""
    return designator.startswith("lo:")


def designator_oid(designator: str) -> int:
    """The oid inside a chunked designator."""
    try:
        return int(designator[3:])
    except ValueError as exc:
        raise LargeObjectError(
            f"malformed large-object designator {designator!r}") from exc


class LargeObjectManager:
    """Creates, opens, and destroys large objects of every kind."""

    def __init__(self, db: "Database"):
        self.db = db
        root = None
        if db.path is not None:
            import os
            root = os.path.join(db.path, "files")
        self.nativefs = NativeFileSystem(db.clock, root=root)
        self._pfile_writers: set[str] = set()
        #: Aggregated hit/miss counters for every descriptor's
        #: decompressed-data cache; ``db.statistics()["largeobjects"]``.
        self.cache_stats = metadata.LargeObjectCacheStats()
        #: oid -> count of open chunked descriptors (any mode, any
        #: session).  Readers take no heavyweight locks, so this registry
        #: is how unlink — whose relation drop is non-transactional DDL —
        #: refuses to pull a class out from under a live scan.
        self._open_mutex = LockdepMutex("mutex:lo_registry")
        self._open_counts: dict[int, int] = {}
        #: Per-store append cursors for v-segment byte stores.  The store
        #: "only grows"; under concurrency each writer reserves a
        #: disjoint extent here instead of trusting its descriptor's
        #: (possibly stale) EOF.  Extents reserved by transactions that
        #: later abort are simply never written — holes read as zeros.
        self._cursor_mutex = LockdepMutex("mutex:lo_registry")
        self._append_cursors: dict[int, int] = {}

    # -- creation --------------------------------------------------------------------

    def create(self, txn: Transaction, impl: str = "fchunk",
               smgr: str | None = None, compression: str = "none",
               path: str | None = None) -> str:
        """Create a new large object; returns its designator.

        ``impl`` is one of ``ufile``/``pfile``/``fchunk``/``vsegment``
        (the paper's §6 implementations, hyphenated spellings accepted).
        ``path`` is required for ``ufile`` and rejected otherwise.
        """
        from repro.adt.types import normalize_storage
        impl = normalize_storage(impl)
        if impl == "ufile":
            if path is None:
                raise LargeObjectError("a u-file object needs a path")
            return self.create_ufile(path)
        if path is not None:
            raise LargeObjectError(
                f"{impl} objects are named by the system, not by path")
        if impl == "pfile":
            return self.newfilename(txn)
        if impl == "fchunk":
            return self._create_fchunk(txn, smgr, compression)
        return self._create_vsegment(txn, smgr, compression)

    def create_for_type(self, txn: Transaction, type_name: str,
                        path: str | None = None) -> str:
        """Create an object per a large ADT's storage clause."""
        definition = self.db.types.get(type_name)
        if not definition.is_large:
            raise LargeObjectError(f"type {type_name!r} is not a large ADT")
        return self.create(txn, impl=definition.storage,
                           compression=definition.compression, path=path)

    def create_ufile(self, path: str) -> str:
        """Register a user file as a large object (creates it if absent)."""
        if is_pfile(path) or is_chunked(path):
            raise LargeObjectError(
                f"{path!r} collides with a system designator namespace")
        self.nativefs.create(path)
        return path

    def newfilename(self, txn: Transaction | None = None) -> str:
        """Allocate a DBMS-owned file (§6.2's ``newfilename`` function).

        If called inside a transaction, the allocation (though not any
        bytes later written — p-files are not transactional) is undone on
        abort.
        """
        name = f"{PFILE_PREFIX}{self.db.catalog.allocate_oid()}"
        self.nativefs.create(name)
        if txn is not None:
            txn.on_abort.append(lambda: self.nativefs.unlink(name))
        return name

    def _register_chunked(self, txn: Transaction, oid: int, impl: str,
                          smgr_name: str, compression: str,
                          detail: dict | None = None) -> None:
        self.db.catalog.add_large_object(oid, impl, smgr_name, compression,
                                         detail=detail)
        self.db.insert(txn, PG_LARGEOBJECT, (oid, 0))
        txn.on_abort.append(lambda: self._undo_create(oid))

    def _undo_create(self, oid: int) -> None:
        """Abort hook: remove the relations a failed create left behind."""
        entry = self.db.catalog.large_objects.get(oid)
        if entry is None:
            return
        if entry.impl == "vsegment":
            self._drop_relations(oid, segment_class_name,
                                 segment_index_name)
            store_oid = (entry.detail or {}).get("store_oid")
            if store_oid is not None:
                self._undo_create(store_oid)
        else:
            self._drop_relations(oid, chunk_class_name, chunk_index_name)
        self.db.catalog.drop_large_object(oid)

    def _drop_relations(self, oid: int, class_name_fn, index_name_fn):
        name = class_name_fn(oid)
        if self.db.class_exists(name):
            self.db.drop_class(name)

    def recover_orphans(self) -> list[int]:
        """Drop cataloged large objects whose creating transaction never
        committed.

        The catalog journal is not transactional: a crash between
        registering a large object and committing the creating
        transaction leaves a catalog entry (and empty chunk relations)
        with no size row ever visible in ``pg_largeobject``.  In-process
        aborts are compensated by the ``on_abort`` hook installed in
        :meth:`_register_chunked`; this sweep is the crash-recovery
        equivalent, run once when a database directory is reopened.

        Safe because the only path that deletes size rows
        (:meth:`_unlink_chunked`) also drops the catalog entry, so a
        cataloged oid with no visible size row can only be the residue
        of an uncommitted create.
        """
        sized = {t.values[0] for t in self.db.scan(PG_LARGEOBJECT)}
        dropped = []
        for oid in sorted(self.db.catalog.large_objects):
            if oid in sized:
                continue
            if self.db.catalog.large_objects.get(oid) is None:
                continue  # already swept as a v-segment's byte store
            self._undo_create(oid)
            dropped.append(oid)
        return dropped

    def _create_fchunk(self, txn: Transaction, smgr: str | None,
                       compression: str) -> str:
        txn.require_active()
        get_compressor(compression)  # validate the name early
        smgr_name = smgr or self.db.default_smgr_name
        oid = self.db.catalog.allocate_oid()
        name = chunk_class_name(oid)
        self.db.create_class(name, [("seqno", "int4"), ("data", "bytea")],
                             smgr=smgr_name)
        self.db.create_index(chunk_index_name(oid), name, "seqno")
        self._register_chunked(txn, oid, "fchunk", smgr_name, compression)
        return f"lo:{oid}"

    def _create_vsegment(self, txn: Transaction, smgr: str | None,
                         compression: str) -> str:
        txn.require_active()
        get_compressor(compression)
        smgr_name = smgr or self.db.default_smgr_name
        # The byte store is a plain (uncompressed) f-chunk object.
        store_designator = self._create_fchunk(txn, smgr_name, "none")
        store_oid = designator_oid(store_designator)
        oid = self.db.catalog.allocate_oid()
        name = segment_class_name(oid)
        self.db.create_class(
            name,
            [("locn", "int8"), ("length", "int4"),
             ("compressed_len", "int4"), ("byte_pointer", "int8")],
            smgr=smgr_name)
        self.db.create_index(segment_index_name(oid), name, "locn")
        self._register_chunked(txn, oid, "vsegment", smgr_name, compression,
                               detail={"store_oid": store_oid})
        return f"lo:{oid}"

    # -- open -------------------------------------------------------------------------------

    def open(self, designator: str, txn: Transaction | None = None,
             mode: str = "r", as_of: float | None = None) -> LargeObject:
        """Open a large object with file semantics.

        ``mode`` is ``"r"`` or ``"rw"``.  ``as_of`` opens a historical
        snapshot — supported only by the chunked implementations, which is
        precisely the paper's point about time travel (§6.1 lists its
        absence as a u-file drawback).
        """
        if mode not in ("r", "rw", "w"):
            raise LargeObjectError(f"bad open mode {mode!r}")
        writable = "w" in mode
        if is_chunked(designator):
            return self._open_chunked(designator_oid(designator), txn,
                                      writable, as_of)
        if as_of is not None:
            raise LargeObjectError(
                f"{designator!r} is a native file: file-based large "
                f"objects do not support time travel")
        if not self.nativefs.exists(designator):
            raise LargeObjectNotFound(
                f"no native file {designator!r}")
        if is_pfile(designator):
            return PostgresFileObject(self.nativefs, designator, writable,
                                      self._pfile_writers)
        return UserFileObject(self.nativefs, designator, writable)

    def _open_chunked(self, oid: int, txn: Transaction | None,
                      writable: bool, as_of: float | None) -> LargeObject:
        # No whole-object lock here: writers declare the byte ranges they
        # actually mutate (EXCLUSIVE range locks taken at write time, held
        # to txn end), so disjoint-range writers proceed in parallel.
        # Readers still take no lock at all — no-overwrite versioning
        # means they never see a writer's uncommitted chunks.
        entry = self.db.catalog.get_large_object(oid)
        compressor = get_compressor(entry.compression)
        try:
            if entry.impl == "fchunk":
                obj: LargeObject = FChunkObject(
                    self.db, oid, compressor, txn, writable, as_of=as_of)
            else:
                store_oid = (entry.detail or {}).get("store_oid")
                if store_oid is None:
                    raise LargeObjectError(
                        f"v-segment object {oid} has no byte store "
                        f"recorded")
                store = self._open_chunked(store_oid, txn, writable, as_of)
                try:
                    obj = VSegmentObject(self.db, oid, compressor, store,
                                         txn, writable, as_of=as_of)
                except Exception:
                    store.close()
                    raise
        except RelationNotFound as exc:
            raise LargeObjectNotFound(
                f"large object {oid} was unlinked concurrently") from exc
        self._register_open(oid)
        obj.on_close.append(lambda: self._release_open(oid))
        return obj

    # -- open-descriptor registry / store append cursors -------------------------------------

    def _register_open(self, oid: int) -> None:
        with self._open_mutex:
            self._open_counts[oid] = self._open_counts.get(oid, 0) + 1

    def _release_open(self, oid: int) -> None:
        with self._open_mutex:
            count = self._open_counts.get(oid, 0) - 1
            if count > 0:
                self._open_counts[oid] = count
            else:
                self._open_counts.pop(oid, None)

    def open_descriptors(self, oid: int) -> int:
        """How many chunked descriptors are currently open on *oid*."""
        with self._open_mutex:
            return self._open_counts.get(oid, 0)

    def reserve_store_extent(self, store_oid: int, length: int, *,
                             eof_hint: int) -> int:
        """Claim ``length`` fresh bytes of a v-segment byte store.

        The cursor is lazily anchored at *eof_hint* (the caller's view of
        the store EOF) and only ever moves forward, so concurrent writers
        get disjoint extents without a size-row probe; a lone writer gets
        back exactly its own EOF — the identical layout the plain
        ``seek(0, SEEK_END)`` append produced.
        """
        with self._cursor_mutex:
            start = max(self._append_cursors.get(store_oid, 0), eof_hint)
            self._append_cursors[store_oid] = start + length
            return start

    # -- unlink -------------------------------------------------------------------------------

    def unlink(self, txn: Transaction | None, designator: str) -> None:
        """Destroy a large object.

        Chunked objects need a transaction (their size record is deleted
        transactionally); the relation drop itself is DDL and, as in
        POSTGRES V4, not undone by a later abort.
        """
        if not is_chunked(designator):
            if designator in self._pfile_writers:
                # A native-file writer flushes straight to the filesystem:
                # unlinking under it would let a later flush resurrect the
                # file (or lose the bytes entirely).
                raise LargeObjectError(
                    f"cannot unlink {designator!r}: an open writer holds "
                    f"it (close the descriptor first)")
            self.nativefs.unlink(designator)
            return
        if txn is None:
            raise LargeObjectError(
                f"unlinking {designator!r} requires a transaction")
        self._unlink_chunked(txn, designator_oid(designator))

    def _unlink_chunked(self, txn: Transaction, oid: int) -> None:
        # The whole-object [0, inf) range: conflicts with every writer's
        # range lock, so no write can be mid-flight while we drop.
        self.db.locks.acquire(txn.xid, lo_whole(oid), LockMode.EXCLUSIVE)
        # Lock-free readers are invisible to the lock manager; the open-
        # descriptor registry is what keeps the (non-transactional) DDL
        # drop below from failing them mid-scan.
        open_count = self.open_descriptors(oid)
        if open_count:
            raise LargeObjectError(
                f"cannot unlink large object {oid}: {open_count} open "
                f"descriptor(s) remain (close them first — the chunk "
                f"relations would drop under a live reader)")
        entry = self.db.catalog.get_large_object(oid)
        # Delete the size row (transactional part).  The scan collects
        # (and releases the engine latch) before the deletes: db.delete
        # takes a heavyweight relation lock, which must never be acquired
        # while the latch is held.
        snapshot = self.db.snapshot(txn)
        for row in metadata.size_rows(self.db, oid, snapshot):
            self.db.delete(txn, PG_LARGEOBJECT, row.tid)
        # Drop the relations (DDL).
        if entry.impl == "vsegment":
            self._drop_relations(oid, segment_class_name, segment_index_name)
            store_oid = (entry.detail or {}).get("store_oid")
            if store_oid is not None:
                self._unlink_chunked(txn, store_oid)
        else:
            self._drop_relations(oid, chunk_class_name, chunk_index_name)
        self.db.catalog.drop_large_object(oid)

    # -- introspection ----------------------------------------------------------------------------

    def exists(self, designator: str) -> bool:
        """Whether the designator names a live object."""
        if is_chunked(designator):
            return designator_oid(designator) in self.db.catalog.large_objects
        return self.nativefs.exists(designator)

    def implementation(self, designator: str) -> str:
        """Which §6 implementation stores this object."""
        if is_chunked(designator):
            return self.db.catalog.get_large_object(
                designator_oid(designator)).impl
        return "pfile" if is_pfile(designator) else "ufile"

    def stat(self, designator: str,
             txn: Transaction | None = None) -> dict:
        """Implementation, storage manager, compression, and size."""
        impl = self.implementation(designator)
        info = {"designator": designator, "impl": impl}
        if is_chunked(designator):
            entry = self.db.catalog.get_large_object(
                designator_oid(designator))
            info["smgr"] = entry.smgr_name
            info["compression"] = entry.compression
        else:
            info["smgr"] = "native"
            info["compression"] = "none"
        with self.open(designator, txn) as obj:
            info["size"] = obj.size()
        return info

    def storage_breakdown(self, designator: str) -> dict[str, int]:
        """Device bytes per component, as reported in Figure 1."""
        if not is_chunked(designator):
            return {"data": self.nativefs.size(designator)}
        oid = designator_oid(designator)
        entry = self.db.catalog.get_large_object(oid)
        if entry.impl == "fchunk":
            return {
                "data": self.db.get_class(chunk_class_name(oid)).byte_size(),
                "btree": self.db.get_index(chunk_index_name(oid)).byte_size(),
            }
        store_oid = entry.detail["store_oid"]
        return {
            "data": self.db.get_class(
                chunk_class_name(store_oid)).byte_size(),
            "segment_map": self.db.get_class(
                segment_class_name(oid)).byte_size(),
            "btree": self.db.get_index(
                segment_index_name(oid)).byte_size(),
            "store_btree": self.db.get_index(
                chunk_index_name(store_oid)).byte_size(),
        }
