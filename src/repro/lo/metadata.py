"""``pg_largeobject`` size-row bookkeeping, shared by every chunked
implementation.

A chunked large object's only mutable scalar state — its byte size —
lives as a row in the ``pg_largeobject`` system class, where no-overwrite
versioning makes it roll back on abort and travel in time along with the
chunks.  f-chunk descriptors, v-segment descriptors, and the manager's
unlink path all read and update that row; the helpers here are the one
copy of that logic, built on the scan descriptors of
:mod:`repro.access.scan` (which own the engine-latch discipline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.access.scan import IndexProbe
from repro.access.tuples import HeapTuple
from repro.db import PG_LARGEOBJECT
from repro.errors import LargeObjectError
from repro.txn.locks import LockMode
from repro.txn.snapshot import Snapshot

if TYPE_CHECKING:
    from repro.db import Database
    from repro.txn.manager import Transaction

#: B-tree on ``pg_largeobject.loid`` (created at bootstrap).
SIZE_INDEX = "pg_largeobject_loid"


@dataclass
class LargeObjectCacheStats:
    """Hit/miss counters for the descriptor-level decompressed caches.

    One instance lives on the :class:`~repro.lo.manager.LargeObjectManager`
    and aggregates across every descriptor, f-chunk read caches and
    v-segment segment caches alike; ``db.statistics()["largeobjects"]``
    reports it.
    """

    read_cache_hits: int = 0        # f-chunk _read_cache
    read_cache_misses: int = 0
    segment_cache_hits: int = 0     # v-segment _segment_cache
    segment_cache_misses: int = 0

    def as_dict(self) -> dict:
        return {
            "read_cache_hits": self.read_cache_hits,
            "read_cache_misses": self.read_cache_misses,
            "segment_cache_hits": self.segment_cache_hits,
            "segment_cache_misses": self.segment_cache_misses,
        }


def _probe(db: "Database", oid: int) -> IndexProbe:
    return IndexProbe(db, db.get_index(SIZE_INDEX),
                      db.get_class(PG_LARGEOBJECT), (oid,))


def size_row(db: "Database", oid: int, snapshot: Snapshot) -> HeapTuple:
    """The visible ``pg_largeobject`` row of *oid*; raises if absent."""
    row = _probe(db, oid).first(snapshot)
    if row is None:
        raise LargeObjectError(
            f"large object {oid} has no size record "
            f"(not visible to this snapshot?)")
    return row


def size_rows(db: "Database", oid: int,
              snapshot: Snapshot) -> list[HeapTuple]:
    """Every visible size-row version (unlink deletes each one)."""
    return _probe(db, oid).tuples(snapshot)


def read_size(db: "Database", oid: int, snapshot: Snapshot) -> int:
    """The object's byte size as of *snapshot*."""
    return size_row(db, oid, snapshot).values[1]


def write_size(db: "Database", txn: "Transaction", oid: int,
               size: int, *, exact: bool = False) -> None:
    """Persist *size* as a new row version, if it changed.

    Disjoint-range writers commit concurrently, so by default the stored
    size is **max-merged** under a short EXCLUSIVE ``("losize", oid)``
    lock: each committer folds in its own high-water mark and can never
    regress another's extension.  ``exact=True`` stores *size* verbatim —
    only for callers holding the whole-object ``[0, inf)`` range lock
    (truncate), where a shrink is legitimate and no concurrent writer can
    exist.
    """
    row = size_row(db, oid, db.snapshot(txn))
    if not exact and row.values[1] >= size:
        return  # our high-water mark is already (or about to be) merged
    epoch = db.clog.visibility_epoch
    db.locks.acquire(txn.xid, ("losize", oid), LockMode.EXCLUSIVE)
    if db.clog.visibility_epoch != epoch:
        # The lock waited out another committer; re-read under the lock.
        row = size_row(db, oid, db.snapshot(txn))
    new = size if exact else max(size, row.values[1])
    if row.values[1] != new:
        db.replace(txn, PG_LARGEOBJECT, row.tid, (oid, new))
