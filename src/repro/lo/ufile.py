"""Implementation 1: user file as an ADT (§6.1).

    append EMP (name = "Joe", picture = "/usr/joe")

The designator stored in the tuple is just a path the *user* owns.  The
implementation "has the advantage of being simple, and gives the user
complete control over object placement" — and the documented drawbacks:
no access control (both user and DBMS must reach the file), **no
transaction semantics** (writes are immediate and survive an abort), and
no version management.  The tests verify the drawbacks as behaviour.
"""

from __future__ import annotations

from repro.lo.interface import LargeObject
from repro.lo.nativefs import NativeFileSystem


class UserFileObject(LargeObject):
    """A large object that is simply a user-owned native file."""

    impl = "ufile"

    def __init__(self, fs: NativeFileSystem, path: str, writable: bool,
                 create: bool = False):
        super().__init__(path, writable)
        self.fs = fs
        if create:
            fs.create(path)

    def _read_at(self, offset: int, nbytes: int) -> bytes:
        return self.fs.read_at(self.designator, offset, nbytes)

    def _write_at(self, offset: int, data: bytes) -> None:
        # Immediate, non-transactional: this is the documented drawback.
        self.fs.write_at(self.designator, offset, data)

    def _size(self) -> int:
        return self.fs.size(self.designator)

    def _truncate(self, size: int) -> None:
        self.fs.truncate_at(self.designator, size)
