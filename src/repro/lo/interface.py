"""The file-oriented large-object interface (§4 of the paper).

    "The application can then open the large object, seek to any byte
    location, and read any number of bytes.  The application need not
    buffer the entire object; it can manage only the bytes it actually
    needs at one time."

Every implementation — u-file, p-file, f-chunk, v-segment — subclasses
:class:`LargeObject`, so client code (including the Inversion file system
and user-defined functions) is implementation-agnostic.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod

from repro.errors import InvalidSeek, ObjectClosedError, ReadOnlyObject

SEEK_SET = os.SEEK_SET
SEEK_CUR = os.SEEK_CUR
SEEK_END = os.SEEK_END


class LargeObject(ABC):
    """An open large-object descriptor with file semantics.

    Descriptors keep a position; :meth:`read` and :meth:`write` advance it.
    Subclasses implement the positioned primitives ``_read_at`` /
    ``_write_at`` / ``_size``; the base class owns position bookkeeping,
    mode enforcement, and close-state checks.
    """

    def __init__(self, designator: str, writable: bool):
        self.designator = designator
        self.writable = writable
        self._pos = 0
        self._closed = False
        #: Callbacks run exactly once when the descriptor closes; the
        #: session uses this to forget the handle, the manager to retire
        #: its open-descriptor registration (which unlink checks).
        self.on_close: list = []

    # -- primitive operations (implementation-specific) -----------------------

    @abstractmethod
    def _read_at(self, offset: int, nbytes: int) -> bytes:
        """Up to *nbytes* bytes starting at *offset* (short at EOF)."""

    @abstractmethod
    def _write_at(self, offset: int, data: bytes) -> None:
        """Store *data* at *offset*, extending the object if needed."""

    @abstractmethod
    def _size(self) -> int:
        """Current object size in bytes."""

    def _truncate(self, size: int) -> None:
        """Cut or (sparsely) extend the object to *size* bytes."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support truncate")

    def _close(self) -> None:
        """Implementation-specific close work (default: none)."""

    # -- file interface ----------------------------------------------------------

    def read(self, nbytes: int = -1) -> bytes:
        """Read up to *nbytes* from the current position (-1 = to EOF)."""
        self._check_open()
        if nbytes < 0:
            nbytes = max(0, self._size() - self._pos)
        data = self._read_at(self._pos, nbytes)
        self._pos += len(data)
        return data

    def write(self, data: bytes) -> int:
        """Write *data* at the current position; returns bytes written."""
        self._check_open()
        if not self.writable:
            raise ReadOnlyObject(
                f"large object {self.designator!r} is open read-only")
        data = bytes(data)
        if data:
            self._write_at(self._pos, data)
            self._pos += len(data)
        return len(data)

    def seek(self, offset: int, whence: int = SEEK_SET) -> int:
        """Move the position; returns the new absolute position."""
        self._check_open()
        if whence == SEEK_SET:
            target = offset
        elif whence == SEEK_CUR:
            target = self._pos + offset
        elif whence == SEEK_END:
            target = self._size() + offset
        else:
            raise InvalidSeek(f"bad whence {whence!r}")
        if target < 0:
            raise InvalidSeek(
                f"seek to negative offset {target} in "
                f"{self.designator!r}")
        self._pos = target
        return self._pos

    def tell(self) -> int:
        """Current position."""
        self._check_open()
        return self._pos

    def truncate(self, size: int | None = None) -> int:
        """Resize the object to *size* bytes (default: current position).

        Shrinking discards the tail — historically, not physically, on the
        chunked implementations: the pre-truncate contents stay readable
        through time travel.  Growing pads with zeros.  Returns the new
        size.  (An extension beyond the paper's §4 interface, which had no
        truncate; POSTGRES gained ``lo_truncate`` much later.)
        """
        self._check_open()
        if not self.writable:
            raise ReadOnlyObject(
                f"large object {self.designator!r} is open read-only")
        if size is None:
            size = self._pos
        if size < 0:
            raise InvalidSeek(f"cannot truncate to {size} bytes")
        self._truncate(size)
        return size

    def size(self) -> int:
        """Current object size in bytes."""
        self._check_open()
        return self._size()

    def append(self, data: bytes) -> int:
        """Write *data* at end-of-file; returns the bytes written.

        The base implementation is ``seek(0, SEEK_END)`` + ``write``.
        The chunked implementations override it to re-resolve the EOF
        *under* their write range lock, so concurrent appenders land
        exactly once instead of overwriting each other at a stale EOF.
        """
        self._check_open()
        self.seek(0, SEEK_END)
        return self.write(data)

    def close(self) -> None:
        """Release the descriptor.  Idempotent."""
        if not self._closed:
            self._close()
            self._closed = True
            callbacks, self.on_close = self.on_close, []
            for callback in callbacks:
                callback()

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ObjectClosedError(
                f"large object {self.designator!r} is closed")

    # -- conveniences ----------------------------------------------------------------

    def read_exact(self, nbytes: int) -> bytes:
        """Read exactly *nbytes* or raise on a short read."""
        data = self.read(nbytes)
        if len(data) != nbytes:
            raise EOFError(
                f"wanted {nbytes} bytes from {self.designator!r}, "
                f"got {len(data)}")
        return data

    def copy_from(self, source: "LargeObject",
                  buffer_size: int = 1 << 16) -> int:
        """Append *source* (from its current position) into this object."""
        total = 0
        while True:
            chunk = source.read(buffer_size)
            if not chunk:
                return total
            total += self.write(chunk)

    def __enter__(self) -> "LargeObject":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"pos={self._pos}"
        return f"{type(self).__name__}({self.designator!r}, {state})"
