"""Implementation 3: fixed-length data chunks (§6.3).

    create P (sequence-number = int4, data = byte[8000])

Each large object gets its own POSTGRES class of 8000-byte chunks with a
B-tree index on the sequence number.  Because chunks are ordinary tuples in
an ordinary class:

* the object is **protected** (DBMS-owned storage),
* **transactions** come for free (no-overwrite versioning + force at
  commit),
* **time travel** comes for free (old chunk versions survive a replace),
* an optional conversion routine compresses each chunk independently, so
  only the chunks covering a requested byte range are ever uncompressed
  ("just-in-time conversion").

The paper's space caveat is emergent here, not hard-coded: one
uncompressed chunk record exactly fills an 8 KB page, so a compressed
chunk only saves space if **two** compressed records fit on one page —
i.e. the compressor must at least halve the chunk (§6.3, Figure 1).

Write buffering
---------------
A writable descriptor keeps the chunk it is currently writing in memory
and materializes it as a tuple version only when the write moves to a
different chunk, the descriptor is closed, or the transaction commits
(via a before-commit hook).  This is semantically transparent — versions
are visible at commit granularity, so coalescing intra-transaction
rewrites of the same chunk changes nothing a reader can observe — and it
is what keeps a sequential load from writing every chunk twice.  At most
one writable descriptor per object per transaction should be open at a
time.

The object's byte size lives in the ``pg_largeobject`` system class, where
no-overwrite versioning makes it roll back on abort and travel in time
along with the chunks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.access.scan import IndexProbe, IndexRangeScan, fetch_visible
from repro.access.tuples import TID, HeapTuple
from repro.compress.base import Compressor
from repro.errors import (
    LargeObjectError,
    NoActiveTransaction,
    ReadOnlyObject,
)
from repro.lo import metadata
from repro.lo.interface import LargeObject
from repro.storage.constants import CHUNK_PAYLOAD
from repro.txn.locks import LockMode
from repro.txn.manager import Transaction
from repro.txn.rangelock import IntervalSet, lo_range, lo_whole
from repro.txn.snapshot import Snapshot

if TYPE_CHECKING:
    from repro.db import Database


#: Decompressed chunks kept per descriptor (~64 KB): enough that
#: re-reads and short backward seeks never re-inflate, small enough to
#: stay irrelevant next to the buffer pool.
READ_CACHE_CHUNKS = 8

#: Write range locks are taken on chunk-aligned spans rounded out to this
#: many chunks (64 × 8000 B = 512 KB by default).  Chunk alignment is a
#: correctness requirement — the write buffer materializes whole-chunk
#: versions, so two writers sharing a chunk would lose updates;
#: coarsening beyond one chunk is a throughput choice: a sequential load
#: takes O(object / grain) lock-manager trips instead of one per chunk,
#: and writers only serialize when their spans land in the same grain.
LOCK_GRAIN_CHUNKS = 64

#: Sentinel for "this seqno's fate has not been learned yet" in the
#: writer's known-TID map (``None`` there means *known absent*).
_UNKNOWN = object()


def chunk_class_name(oid: int) -> str:
    """Name of the per-object chunk class (the paper's class ``P``)."""
    return f"lo_{oid}"


def chunk_index_name(oid: int) -> str:
    """Name of the B-tree on the chunk sequence number."""
    return f"lo_{oid}_seq"


class FChunkObject(LargeObject):
    """An open f-chunk large object."""

    impl = "fchunk"

    def __init__(self, db: "Database", oid: int, compressor: Compressor,
                 txn: Transaction | None, writable: bool,
                 as_of: float | None = None,
                 chunk_payload: int = CHUNK_PAYLOAD):
        if writable and txn is None:
            raise NoActiveTransaction(
                f"opening large object {oid} for writing requires a "
                f"transaction")
        if writable and as_of is not None:
            raise LargeObjectError(
                "historical (as-of) opens are read-only")
        super().__init__(f"lo:{oid}", writable)
        self.db = db
        self.oid = oid
        self.txn = txn
        self.as_of = as_of
        self.compressor = compressor
        self.chunk_payload = chunk_payload
        self.relation = db.get_class(chunk_class_name(oid))
        self.index = db.get_index(chunk_index_name(oid))
        # Write-buffer state (writable descriptors only).
        self._buf_seqno: int | None = None
        self._buf_data = bytearray()
        self._buf_dirty = False
        self._pending_size: int | None = None
        #: Highest byte-end this transaction itself has written (or the
        #: exact size its own truncate set).  The committed size can move
        #: *down* under us (a neighbour's committed truncate), so the
        #: pending size is re-derived as max(committed, own) — never
        #: ratcheted monotonically, which would resurrect the pre-cut
        #: extent and land appends past the new EOF.
        self._own_high = 0
        # Descriptor-level LRU of decompressed chunks, so streaming reads
        # uncompress each chunk once ("just-in-time" conversion without
        # repeating work for every frame in a chunk) and backward seeks
        # within the window never re-inflate.
        self._read_cache: OrderedDict[int, bytes] = OrderedDict()
        self._cache_stats = db.lo.cache_stats
        # -- model-fidelity gate -------------------------------------------
        # The fast paths below (known-TID map, epoch-keyed size cache)
        # skip B-tree probes and pin sequences the simulated cost model
        # charges for, so they engage only when the database runs in
        # wall-clock mode (``charge_cpu=False`` → ``bufmgr.cpu is None``).
        # Figure runs therefore execute the identical operation stream
        # they always did; see docs/performance.md.
        self._fast = db.bufmgr.cpu is None
        #: Writer-only map seqno -> TID (or None = known absent).  Safe
        #: under range locking because every entry is invalidated (and
        #: the absence baseline re-anchored to the committed size) by
        #: ``_refresh_committed`` whenever any transaction commits or
        #: aborts — see the visibility-epoch gate there.
        self._known_tids: dict[int, TID | None] | None = None
        self._baseline_chunks = 0
        #: Read-only size memo: (size, clog.visibility_epoch).  Reusable
        #: while nothing commits or aborts — and only for descriptors
        #: outside a transaction, whose snapshots see committed state
        #: only (an in-transaction descriptor also sees its own writes,
        #: which the epoch cannot witness).
        self._size_cache: tuple[int, int] | None = None
        #: Read-only index memo: (epoch, seqno -> [TIDs of all entries]).
        #: One leaf-chain walk replaces one range scan per read(); the
        #: TIDs are re-checked for visibility on every use, so the memo
        #: only trusts the epoch for *index membership* (vacuum bumps
        #: the epoch when it prunes entries).
        self._ro_entries: tuple[int, dict[int, list[TID]]] | None = None
        #: Byte spans this descriptor has EXCLUSIVE range locks on
        #: (writable only); re-locking a covered span is a no-op.
        self._locked = IntervalSet()
        self._whole_locked = False
        self._commit_epoch = db.clog.visibility_epoch
        if writable:
            self._pending_size = self._read_size(self._snapshot())
            txn.before_commit.append(self.flush)
            if self._fast:
                self._known_tids = {}
                payload = self.chunk_payload
                self._baseline_chunks = (
                    (self._pending_size + payload - 1) // payload)

    # -- snapshots ----------------------------------------------------------------

    def _snapshot(self) -> Snapshot:
        return self.db.snapshot(self.txn, as_of=self.as_of)

    # -- range locking / concurrent-commit refresh --------------------------------

    def _refresh_committed(self, force: bool = False) -> None:
        """Fold size changes committed by *other* transactions into this
        writable descriptor's view.

        Gated on ``CommitLog.visibility_epoch``: while nothing commits or
        aborts anywhere, this is one integer compare (so single-writer
        runs — including the simulated figure workloads — never pay an
        extra size probe).  When the epoch has moved, the committed size
        is re-read: the pending size becomes max(committed, own writes)
        — both directions, since a neighbour's committed *truncate*
        legitimately shrinks it — the known-TID map and read cache drop
        entries that a concurrent committer may have retired, and the
        "chunks at or past here never existed" absence baseline
        re-anchors to the new committed extent.

        Once this descriptor holds the whole-object lock, no other
        transaction can commit a size change (every write path locks a
        sub-range of ``[0, inf)``), so the fold is skipped and the
        descriptor's own pending size is authoritative — refreshing
        would clobber its own in-flight truncate with the stale
        committed size.  ``force`` is the one-time fold performed while
        *acquiring* that lock.
        """
        if self._pending_size is None:  # read-only: epoch-keyed memos
            return
        if self._whole_locked and not force:
            return
        epoch = self.db.clog.visibility_epoch
        if epoch == self._commit_epoch and not force:
            return
        self._commit_epoch = epoch
        committed = self._read_size(self._snapshot())
        self._pending_size = max(committed, self._own_high)
        if self._known_tids is not None:
            self._known_tids.clear()
            payload = self.chunk_payload
            self._baseline_chunks = max(
                self._baseline_chunks,
                (committed + payload - 1) // payload)
        self._read_cache.clear()

    def _lock_span(self, offset: int, end: int) -> None:
        """EXCLUSIVE range lock covering ``[offset, end)``, grain-aligned.

        Writers declare the byte range they are about to mutate; disjoint
        declarations are granted in parallel, overlapping ones block
        until the holder's transaction ends (strict 2PL).
        """
        if self._whole_locked:
            return
        grain = self.chunk_payload * LOCK_GRAIN_CHUNKS
        lo = (offset // grain) * grain
        hi = ((max(end, offset + 1) + grain - 1) // grain) * grain
        if self._locked.covers(lo, hi):
            return
        self.db.locks.acquire(self.txn.xid, lo_range(self.oid, lo, hi),
                              LockMode.EXCLUSIVE)
        self._locked.add(lo, hi)
        self._refresh_committed()

    def _lock_whole(self) -> None:
        """The whole-object ``[0, inf)`` range (truncate): conflicts with
        every concurrent writer, and makes the flushed size *exact*."""
        if self._whole_locked:
            return
        self.db.locks.acquire(self.txn.xid, lo_whole(self.oid),
                              LockMode.EXCLUSIVE)
        self._locked.add(0, None)
        # Fold the committed size one last time, then freeze: while the
        # whole lock is held nobody else can commit a size change.
        self._refresh_committed(force=True)
        self._whole_locked = True

    # -- size row ------------------------------------------------------------------

    def _read_size(self, snapshot: Snapshot) -> int:
        return metadata.read_size(self.db, self.oid, snapshot)

    def _size(self) -> int:
        if self._pending_size is not None:
            # Another transaction's committed append may have grown the
            # object past what this writer last saw (epoch-gated no-op
            # in the common single-writer case).
            self._refresh_committed()
            return self._pending_size
        if self._fast and self.txn is None:
            epoch = self.db.clog.visibility_epoch
            cached = self._size_cache
            if cached is not None and cached[1] == epoch:
                return cached[0]
            size = self._read_size(self._snapshot())
            self._size_cache = (size, epoch)
            return size
        return self._read_size(self._snapshot())

    # -- chunk access -----------------------------------------------------------------

    def _chunk_anomaly(self, key, count: int) -> LargeObjectError:
        """Anomaly diagnostic for the scan layer's ``unique`` mode."""
        return LargeObjectError(
            f"large object {self.oid}: {count} visible versions of "
            f"chunk {key[0]} (snapshot anomaly)")

    def _chunk_tuple(self, seqno: int,
                     snapshot: Snapshot | None = None) -> HeapTuple | None:
        """The visible version of chunk *seqno*, or ``None``.

        ``snapshot=None`` creates one lazily — only if a probe actually
        runs; the writer's known-TID fast path answers without either.
        """
        known = self._known_tids
        if known is not None:
            # Epoch-gated: drops entries a concurrent commit could have
            # retired and re-anchors the absence baseline before either
            # is trusted below.
            self._refresh_committed()
            tid = known.get(seqno, _UNKNOWN)
            if tid is None:
                return None
            if tid is _UNKNOWN and seqno >= self._baseline_chunks:
                # Beyond every committed chunk (baseline tracks the
                # committed size) and this descriptor never created it.
                known[seqno] = None
                return None
            if tid is not _UNKNOWN:
                tup = fetch_visible(self.db, self.relation, tid,
                                    snapshot or self._snapshot())
                if tup is not None:
                    return tup
                # Defensive: fall through to a real probe.
        if snapshot is None:
            snapshot = self._snapshot()
        candidates = IndexProbe(
            self.db, self.index, self.relation, (seqno,),
            unique=True, anomaly=self._chunk_anomaly).tuples(snapshot)
        tup = candidates[0] if candidates else None
        if known is not None:
            known[seqno] = None if tup is None else tup.tid
        return tup

    def _stored_chunk_bytes(self, seqno: int,
                            snapshot: Snapshot | None = None
                            ) -> bytes | None:
        tup = self._chunk_tuple(seqno, snapshot)
        if tup is None:
            return None
        return self.compressor.decompress(tup.values[1])

    def _chunk_bytes(self, seqno: int, snapshot: Snapshot) -> bytes | None:
        """Chunk contents, honouring this descriptor's buffers."""
        if seqno == self._buf_seqno:
            return bytes(self._buf_data)
        cached = self._read_cache.get(seqno)
        if cached is not None:
            self._cache_stats.read_cache_hits += 1
            self._read_cache.move_to_end(seqno)
            return cached
        self._cache_stats.read_cache_misses += 1
        data = self._stored_chunk_bytes(seqno, snapshot)
        if data is not None:
            self._cache_chunk(seqno, data)
        return data

    def _cache_chunk(self, seqno: int, data: bytes) -> None:
        self._read_cache[seqno] = data
        self._read_cache.move_to_end(seqno)
        while len(self._read_cache) > READ_CACHE_CHUNKS:
            self._read_cache.popitem(last=False)

    def _visible_chunk_tuples(self, seqnos: list[int],
                              snapshot: Snapshot) -> dict[int, HeapTuple]:
        """Visible chunk versions for *seqnos* via one index range scan.

        This is the streaming read path: instead of one full root-to-leaf
        descent per chunk, a single descent finds the first leaf and the
        scan walks right-sibling pointers across ``[min, max]``, so a
        long read costs O(chunks / leaf fanout) node reads.  The heap
        blocks the scan resolved to are read ahead before the fetch loop
        pins them.
        """
        scan = IndexRangeScan(
            self.db, self.index, self.relation,
            (min(seqnos),), (max(seqnos),),
            unique=True, anomaly=self._chunk_anomaly)
        wanted = {(seqno,) for seqno in seqnos}
        return {key[0]: tup
                for key, tup in scan.visible(snapshot, wanted=wanted)}

    def _ro_entry_map(self) -> dict[int, list[TID]]:
        """Raw index entries by seqno, epoch-cached (fast mode only).

        Entries only — no heap fetch or decode — so building the memo
        costs one leaf-chain walk, not a pass over the object's data.
        """
        epoch = self.db.clog.visibility_epoch
        cached = self._ro_entries
        if cached is not None and cached[0] == epoch:
            return cached[1]
        entries: dict[int, list[TID]] = {}
        scan = IndexRangeScan(self.db, self.index, self.relation,
                              None, None)
        for key, tid in scan.entries():
            entries.setdefault(key[0], []).append(tid)
        self._ro_entries = (epoch, entries)
        return entries

    def _ro_chunk_tuples(self, seqnos: list[int],
                         snapshot: Snapshot) -> dict[int, HeapTuple]:
        """Fast-mode twin of :meth:`_visible_chunk_tuples`.

        Resolves each seqno through the memoized entry map and fetches
        only those TIDs; visibility (and the unique-visible-version
        invariant) is still checked per fetch against *snapshot*.
        """
        entries = self._ro_entry_map()
        out: dict[int, HeapTuple] = {}
        for seqno in seqnos:
            visible = None
            for tid in entries.get(seqno, ()):
                tup = fetch_visible(self.db, self.relation, tid, snapshot)
                if tup is None:
                    continue
                if visible is not None:
                    raise self._chunk_anomaly((seqno,), 2)
                visible = tup
            if visible is not None:
                out[seqno] = visible
        return out

    # -- write buffer ------------------------------------------------------------------

    def flush(self) -> None:
        """Materialize the buffered chunk and the pending size.

        Called automatically on chunk switch, close, and transaction
        commit; harmless to call at any other time.
        """
        if self._closed:
            return
        self._flush_chunk()
        self._flush_size()

    def _flush_chunk(self) -> None:
        if self._buf_seqno is None or not self._buf_dirty:
            return
        self._refresh_committed()
        seqno = self._buf_seqno
        image = self.compressor.compress(bytes(self._buf_data))
        known = self._known_tids
        if known is not None:
            # Fast path: the known-TID map already answers "does this
            # chunk exist, and where" — no snapshot, no B-tree probe.
            tid = known.get(seqno, _UNKNOWN)
            if tid is _UNKNOWN and seqno >= self._baseline_chunks:
                tid = None
            if tid is not _UNKNOWN:
                if tid is None:
                    new_tid = self.db.insert(self.txn, self.relation.name,
                                             (seqno, image))
                else:
                    new_tid = self.db.replace(self.txn, self.relation.name,
                                              tid, (seqno, image))
                known[seqno] = new_tid
                self._buf_dirty = False
                return
        existing = self._chunk_tuple(seqno)
        if existing is not None:
            new_tid = self.db.replace(self.txn, self.relation.name,
                                      existing.tid, (seqno, image))
        else:
            new_tid = self.db.insert(self.txn, self.relation.name,
                                     (seqno, image))
        if known is not None:
            known[seqno] = new_tid
        self._buf_dirty = False

    def _flush_size(self) -> None:
        if self._pending_size is None:
            return
        # Holding [0, inf) (truncate) is the only case where the size may
        # legitimately shrink; everyone else max-merges (see write_size).
        metadata.write_size(self.db, self.txn, self.oid,
                            self._pending_size, exact=self._whole_locked)

    def _switch_buffer(self, seqno: int,
                       snapshot: Snapshot | None = None) -> None:
        """Point the write buffer at *seqno*, flushing the previous chunk."""
        if self._buf_seqno == seqno:
            return
        self._flush_chunk()
        # The write buffer supersedes any cached copy of this chunk.
        stored = self._read_cache.pop(seqno, None)
        if stored is None:
            stored = self._stored_chunk_bytes(seqno, snapshot)
        self._buf_seqno = seqno
        self._buf_data = bytearray(stored if stored is not None else b"")
        self._buf_dirty = False

    def _close(self) -> None:
        if self.writable:
            self.flush()
            # A closed descriptor has nothing left to flush; leaving the
            # hook registered would pin this object (and every other
            # descriptor opened by a long transaction) until commit.
            try:
                self.txn.before_commit.remove(self.flush)
            except ValueError:
                pass

    # -- reads ----------------------------------------------------------------------------

    def _read_at(self, offset: int, nbytes: int) -> bytes:
        size = self._size()
        if offset >= size or nbytes <= 0:
            return b""
        return self._read_span(offset, min(offset + nbytes, size))

    def _read_span(self, offset: int, end: int) -> bytes:
        """Gather exactly ``[offset, end)`` without consulting the size
        row (missing chunks read as zeros).

        The v-segment byte store reads through this: a segment record
        visible to the caller's snapshot proves its extent exists even
        when this store descriptor's pending size has not caught up with
        another writer's committed appends.
        """
        payload = self.chunk_payload
        first = offset // payload
        last = (end - 1) // payload
        # Gather the covered chunks: descriptor buffers first, then one
        # batched index range scan for whatever is left — never one
        # B-tree descent per chunk.  The snapshot is created only if a
        # scan actually runs (building one is pure bookkeeping but shows
        # up at one-per-read() rates).
        chunks: dict[int, bytes] = {}
        missing: list[int] = []
        for seqno in range(first, last + 1):
            if seqno == self._buf_seqno:
                chunks[seqno] = bytes(self._buf_data)
            else:
                cached = self._read_cache.get(seqno)
                if cached is not None:
                    self._cache_stats.read_cache_hits += 1
                    self._read_cache.move_to_end(seqno)
                    chunks[seqno] = cached
                else:
                    self._cache_stats.read_cache_misses += 1
                    missing.append(seqno)
        if missing:
            if self._fast and self.txn is None:
                fetched = self._ro_chunk_tuples(missing, self._snapshot())
            else:
                fetched = self._visible_chunk_tuples(missing,
                                                     self._snapshot())
            for seqno, tup in fetched.items():
                data = self.compressor.decompress(tup.values[1])
                self._cache_chunk(seqno, data)
                chunks[seqno] = data
        if first == last:
            # Overwhelmingly common: the request lies inside one chunk —
            # one slice, no join machinery.
            chunk = chunks.get(first, b"")
            lo = offset - first * payload
            hi = end - first * payload
            if hi <= len(chunk):
                return bytes(chunk[lo:hi])
            piece = bytes(chunk[lo:])
            return piece + bytes((hi - lo) - len(piece))
        parts = []
        for seqno in range(first, last + 1):
            chunk = chunks.get(seqno, b"")
            chunk_start = seqno * payload
            lo = max(0, offset - chunk_start)
            hi = min(len(chunk), end - chunk_start)
            # A memoryview slice defers the copy to the final join.
            piece = memoryview(chunk)[lo:hi]
            wanted = (min(end, chunk_start + payload)
                      - max(offset, chunk_start))
            if len(piece) < wanted:  # short/missing chunk inside size
                piece = bytes(piece) + bytes(wanted - len(piece))
            parts.append(piece)
        return b"".join(parts)

    # -- writes ----------------------------------------------------------------------------

    def _write_at(self, offset: int, data: bytes) -> None:
        self.txn.require_active()
        payload = self.chunk_payload
        end = offset + len(data)
        # Declare the mutated range before buffering anything: overlapping
        # writers block here (strict 2PL), disjoint ones sail through.
        self._lock_span(offset, end)
        self._refresh_committed()
        for seqno in range(offset // payload, (end - 1) // payload + 1):
            chunk_start = seqno * payload
            lo = max(offset, chunk_start)
            hi = min(end, chunk_start + payload)
            piece = data[lo - offset:hi - offset]
            self._switch_buffer(seqno)
            chunk_offset = lo - chunk_start
            if chunk_offset > len(self._buf_data):
                self._buf_data.extend(
                    bytes(chunk_offset - len(self._buf_data)))
            self._buf_data[chunk_offset:chunk_offset + len(piece)] = piece
            self._buf_dirty = True
        self._own_high = max(self._own_high, end)
        self._pending_size = max(self._pending_size, end)

    def _truncate(self, size: int) -> None:
        self.txn.require_active()
        # Truncate rewrites the object's extent wholesale: take [0, inf)
        # so no concurrent writer can be mid-flight past the cut.
        self._lock_whole()
        snapshot = self._snapshot()
        current = self._size()
        if size >= current:
            # Sparse extension: reads zero-fill short/missing chunks.
            self._own_high = size
            self._pending_size = size
            return
        payload = self.chunk_payload
        cut = size % payload
        if cut:
            # The boundary chunk survives, trimmed: shorten it in the
            # write buffer so stale tail bytes can never resurface.
            boundary = size // payload
            self._switch_buffer(boundary, snapshot)
            del self._buf_data[cut:]
            self._buf_dirty = True
            first_doomed = boundary + 1
        else:
            first_doomed = size // payload
        # Physically delete whole chunks past the cut (their old versions
        # remain reachable through time travel).
        for seqno in range(first_doomed, (current - 1) // payload + 1):
            if seqno == self._buf_seqno:
                self._buf_seqno = None
                self._buf_data = bytearray()
                self._buf_dirty = False
            tup = self._chunk_tuple(seqno, snapshot)
            if tup is not None:
                self.db.delete(self.txn, self.relation.name, tup.tid)
                if self._known_tids is not None:
                    self._known_tids[seqno] = None
        self._read_cache.clear()
        self._own_high = size
        self._pending_size = size

    # -- append ----------------------------------------------------------------------------

    def append(self, data: bytes) -> int:
        """Write *data* at end-of-file, atomically under concurrency.

        ``seek(0, SEEK_END)`` + ``write`` computes the EOF before taking
        any lock, so two appenders that both read the same committed size
        would overwrite each other after serializing.  This re-resolves
        the EOF *under* the range lock (see :meth:`_reserve_eof`), so
        concurrent appends land exactly once, in lock-grant order.
        """
        self._check_open()
        if not self.writable:
            raise ReadOnlyObject(
                f"large object {self.designator!r} is open read-only")
        data = bytes(data)
        if not data:
            return 0
        self.txn.require_active()
        offset = self._reserve_eof(len(data))
        self._write_at(offset, data)
        self._pos = offset + len(data)
        return len(data)

    def _reserve_eof(self, length: int) -> int:
        """A stable EOF to append *length* bytes at.

        Lock the grain the current EOF lands in, then re-check: if
        granting the lock waited out another appender's commit, the EOF
        has moved and the loop locks the new target.  Once the EOF grain
        is held, later appenders block on it, so the size is frozen and
        the loop exits — each retry implies another transaction committed
        an extension, so progress is guaranteed.
        """
        while True:
            self._refresh_committed()
            start = self._size()
            self._lock_span(start, start + length)
            self._refresh_committed()
            if self._size() == start:
                return start

    # -- storage accounting (Figure 1) ---------------------------------------------------------

    def storage_breakdown(self) -> dict[str, int]:
        """Bytes occupied on the device: chunk data and B-tree index."""
        return {
            "data": self.relation.byte_size(),
            "btree": self.index.byte_size(),
        }
