"""Implementation 4: variable-length segments (§6.4).

    segment_ndx (locn, compressed_len, byte_pointer)

A v-segment object is a **segment index** mapping logical byte ranges to
compressed variable-length segments, whose contents are "concatenated
end-to-end and stored as a large ADT, chunked into 8K blocks using the
fixed-block storage scheme f-chunk".  Consequences, exactly as the paper
lists them:

* the unit of compression is a segment, not an 8 KB block, so **any**
  reduction in size is reflected in the stored object (unlike f-chunk,
  where savings under 50 % are wasted page space);
* the segment index is an ordinary no-overwrite class, so **time travel
  covers the index**, and segment contents are never overwritten (the
  store only grows), so **time travel covers the data** too;
* reads pay an extra hop — B-tree on ``locn`` → segment-index record →
  byte store — which is the ~25 % random-read penalty of §9.2.

Overwrites never touch old bytes: the new data is compressed into fresh
segments appended to the store, and the affected index records are
replaced (old versions surviving for history).  Partially-overlapped edge
segments are merged read-modify-write style.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.access.scan import IndexRangeScan
from repro.access.tuples import TID, HeapTuple
from repro.compress.base import Compressor
from repro.errors import (
    LargeObjectError,
    NoActiveTransaction,
    ReadOnlyObject,
)
from repro.lo import metadata
from repro.lo.fchunk import FChunkObject
from repro.lo.interface import LargeObject
from repro.txn.locks import LockMode
from repro.txn.manager import Transaction
from repro.txn.rangelock import IntervalSet, lo_range, lo_whole
from repro.txn.snapshot import Snapshot

if TYPE_CHECKING:
    from repro.db import Database

#: Upper bound on one segment's uncompressed length.  Bounding segments
#: lets the overlap query scan only ``[offset - SEGMENT_MAX, end)`` of the
#: index instead of the whole object.
SEGMENT_MAX = 65536

#: Write range locks cover the mutated span padded by SEGMENT_MAX on both
#: sides (an edge segment that a write must merge read-modify-write style
#: starts within SEGMENT_MAX of the window, so two writes that would both
#: touch it always hold overlapping locks) and are rounded out to this
#: grain, bounding lock-manager trips for sequential loads.
LOCK_GRAIN_BYTES = 16 * SEGMENT_MAX

#: Decompressed segments kept per descriptor (up to ~256 KB).  Keyed by
#: the record's TID: segment contents are immutable once written (the
#: byte store only grows, and an overwrite appends *new* segments under
#: *new* TIDs), so a TID-keyed entry can never go stale.
SEGMENT_CACHE_ENTRIES = 4


def segment_class_name(oid: int) -> str:
    """Name of the per-object segment-index class (``segment_ndx``)."""
    return f"lo_{oid}_seg"


def segment_index_name(oid: int) -> str:
    """Name of the B-tree on segment ``locn``."""
    return f"lo_{oid}_segidx"


class VSegmentObject(LargeObject):
    """An open v-segment large object."""

    impl = "vsegment"

    def __init__(self, db: "Database", oid: int, compressor: Compressor,
                 store: FChunkObject, txn: Transaction | None,
                 writable: bool, as_of: float | None = None):
        if writable and txn is None:
            raise NoActiveTransaction(
                f"opening large object {oid} for writing requires a "
                f"transaction")
        if writable and as_of is not None:
            raise LargeObjectError("historical (as-of) opens are read-only")
        super().__init__(f"lo:{oid}", writable)
        self.db = db
        self.oid = oid
        self.txn = txn
        self.as_of = as_of
        self.compressor = compressor
        self.store = store
        self.relation = db.get_class(segment_class_name(oid))
        self.index = db.get_index(segment_index_name(oid))
        # Deferred size: materialized at close/commit, like f-chunk's.
        self._pending_size: int | None = None
        #: Highest byte-end this transaction itself has written (or the
        #: size its own truncate set) — see f-chunk's ``_own_high``.
        self._own_high = 0
        # Descriptor-level LRU of decompressed segments (see
        # SEGMENT_CACHE_ENTRIES for why TID keys are safe).
        self._segment_cache: OrderedDict[TID, bytes] = OrderedDict()
        self._cache_stats = db.lo.cache_stats
        # Model-fidelity gate (same rule as f-chunk): segment-map and
        # size memos skip index scans the cost model charges for, so
        # they engage only in wall-clock mode and only for descriptors
        # outside a transaction (the visibility epoch cannot witness a
        # transaction's own writes).
        self._fast = db.bufmgr.cpu is None
        self._size_cache: tuple[int, int] | None = None
        #: (epoch, records sorted by locn, their locns) — the whole
        #: visible segment map, fetched with one range scan and then
        #: answered with bisect until something commits.
        self._segmap_cache: tuple[int, list[HeapTuple],
                                  list[int]] | None = None
        #: Byte spans this descriptor holds EXCLUSIVE range locks on
        #: (writable only).
        self._locked = IntervalSet()
        self._whole_locked = False
        self._commit_epoch = db.clog.visibility_epoch
        if writable:
            self._pending_size = metadata.read_size(
                db, oid, self._snapshot())
            txn.before_commit.append(self.flush)

    # -- snapshots / size ---------------------------------------------------------

    def _snapshot(self) -> Snapshot:
        return self.db.snapshot(self.txn, as_of=self.as_of)

    # -- range locking / concurrent-commit refresh --------------------------------

    def _refresh_committed(self, force: bool = False) -> None:
        """Re-derive the pending size from the committed size.

        Epoch-gated like f-chunk's: free while nothing commits anywhere,
        one size probe when something has.  Without this, a writer whose
        neighbour committed an extension would see a stale EOF and
        zero-fill a "gap" right over the neighbour's committed bytes.
        The fold is max(committed, own writes) in *both* directions — a
        neighbour's committed truncate legitimately shrinks the size,
        and ratcheting up only would land appends past the new EOF.
        Skipped once the whole-object lock is held (nobody else can
        commit a size change then, and the descriptor's own in-flight
        truncate must not be clobbered); ``force`` is the one-time fold
        done while acquiring that lock.
        """
        if self._pending_size is None:
            return
        if self._whole_locked and not force:
            return
        epoch = self.db.clog.visibility_epoch
        if epoch == self._commit_epoch and not force:
            return
        self._commit_epoch = epoch
        committed = metadata.read_size(self.db, self.oid, self._snapshot())
        self._pending_size = max(committed, self._own_high)

    def _lock_span(self, start: int, end: int) -> None:
        """EXCLUSIVE range lock on ``[start, end)`` padded by SEGMENT_MAX
        (edge-segment merges) and rounded out to LOCK_GRAIN_BYTES."""
        if self._whole_locked:
            return
        grain = LOCK_GRAIN_BYTES
        lo = (max(0, start - SEGMENT_MAX) // grain) * grain
        hi = ((max(end, start + 1) + SEGMENT_MAX + grain - 1)
              // grain) * grain
        if self._locked.covers(lo, hi):
            return
        self.db.locks.acquire(self.txn.xid, lo_range(self.oid, lo, hi),
                              LockMode.EXCLUSIVE)
        self._locked.add(lo, hi)
        self._refresh_committed()

    def _lock_whole(self) -> None:
        if self._whole_locked:
            return
        self.db.locks.acquire(self.txn.xid, lo_whole(self.oid),
                              LockMode.EXCLUSIVE)
        self._locked.add(0, None)
        # Fold the committed size one last time, then freeze: while the
        # whole lock is held nobody else can commit a size change.
        self._refresh_committed(force=True)
        self._whole_locked = True

    def _size(self) -> int:
        if self._pending_size is not None:
            self._refresh_committed()
            return self._pending_size
        if self._fast and self.txn is None:
            epoch = self.db.clog.visibility_epoch
            cached = self._size_cache
            if cached is not None and cached[0] == epoch:
                return cached[1]
            size = metadata.read_size(self.db, self.oid, self._snapshot())
            self._size_cache = (epoch, size)
            return size
        return metadata.read_size(self.db, self.oid, self._snapshot())

    def flush(self) -> None:
        """Materialize the pending size row (and the store's buffer)."""
        if self._closed or self._pending_size is None:
            return
        self.store.flush()
        metadata.write_size(self.db, self.txn, self.oid,
                            self._pending_size,
                            exact=self._whole_locked)

    # -- segment lookup --------------------------------------------------------------

    def _segment_anomaly(self, key, count: int) -> LargeObjectError:
        """Anomaly diagnostic for the scan layer's ``unique`` mode.

        Two visible versions of the segment at one ``locn`` would mean
        ``_read_at`` lets whichever sorts later silently overwrite the
        other's bytes — that is a snapshot anomaly, diagnosed exactly as
        f-chunk diagnoses duplicate chunk versions.
        """
        return LargeObjectError(
            f"large object {self.oid}: {count} visible versions of "
            f"segment {key[0]} (snapshot anomaly)")

    def _segments_overlapping(self, start: int, end: int,
                              snapshot: Snapshot | None = None
                              ) -> list[HeapTuple]:
        """Visible segment records intersecting ``[start, end)``, sorted."""
        if self._fast and self.txn is None:
            records, locns = self._segment_map()
            # Segments never exceed SEGMENT_MAX, so an overlapping one
            # starts at locn in [start - SEGMENT_MAX, end).
            i = bisect_left(locns, start - SEGMENT_MAX)
            j = bisect_left(locns, end)
            return [t for t in records[i:j]
                    if t.values[0] + t.values[1] > start]
        if snapshot is None:
            snapshot = self._snapshot()
        lo_key = max(0, start - SEGMENT_MAX)
        scan = IndexRangeScan(self.db, self.index, self.relation,
                              (lo_key,), (end - 1,),
                              unique=True, anomaly=self._segment_anomaly)
        found = [tup for _key, tup in scan.visible(snapshot)
                 if tup.values[0] + tup.values[1] > start
                 and tup.values[0] < end]
        found.sort(key=lambda t: t.values[0])
        return found

    def _segment_map(self) -> tuple[list[HeapTuple], list[int]]:
        """The whole visible segment map, epoch-cached (fast mode only).

        One range scan over the entire index replaces one scan per read;
        the memo stays valid until any transaction commits or aborts
        (the epoch token), at which point it is rebuilt.  Only read-only
        descriptors outside a transaction qualify — see ``_fast``.
        """
        epoch = self.db.clog.visibility_epoch
        cached = self._segmap_cache
        if cached is not None and cached[0] == epoch:
            return cached[1], cached[2]
        scan = IndexRangeScan(self.db, self.index, self.relation,
                              None, None,
                              unique=True, anomaly=self._segment_anomaly)
        records = [tup for _key, tup in scan.visible(self._snapshot())]
        records.sort(key=lambda t: t.values[0])
        locns = [t.values[0] for t in records]
        self._segmap_cache = (epoch, records, locns)
        return records, locns

    def _segment_bytes(self, record: HeapTuple) -> bytes:
        """Decompressed contents of one segment (LRU-cached)."""
        cached = self._segment_cache.get(record.tid)
        if cached is not None:
            self._cache_stats.segment_cache_hits += 1
            self._segment_cache.move_to_end(record.tid)
            return cached
        self._cache_stats.segment_cache_misses += 1
        _locn, length, clen, ptr = record.values
        # _read_span, not _read_at: a record visible to our snapshot
        # proves its store extent exists, even when this (writable)
        # store descriptor's pending size lags another writer's
        # committed appends.
        image = self.store._read_span(ptr, ptr + clen)
        data = self.compressor.decompress(image)
        if len(data) != length:
            raise LargeObjectError(
                f"large object {self.oid}: segment at {record.values[0]} "
                f"decompressed to {len(data)} bytes, index says {length}")
        self._segment_cache[record.tid] = data
        self._segment_cache.move_to_end(record.tid)
        while len(self._segment_cache) > SEGMENT_CACHE_ENTRIES:
            self._segment_cache.popitem(last=False)
        return data

    # -- reads ---------------------------------------------------------------------------

    def _read_at(self, offset: int, nbytes: int) -> bytes:
        size = self._size()
        if offset >= size or nbytes <= 0:
            return b""
        end = min(offset + nbytes, size)
        records = self._segments_overlapping(offset, end)
        if len(records) == 1:
            # Fast path: one segment fully covers the window — slice it
            # directly instead of splicing through a zero-filled buffer.
            locn, length, _clen, _ptr = records[0].values
            if locn <= offset and locn + length >= end:
                data = self._segment_bytes(records[0])
                return data[offset - locn:end - locn]
        out = bytearray(end - offset)  # holes read as zeros
        for record in records:
            locn, length, _clen, _ptr = record.values
            data = self._segment_bytes(record)
            lo = max(offset, locn)
            hi = min(end, locn + length)
            out[lo - offset:hi - offset] = data[lo - locn:hi - locn]
        return bytes(out)

    # -- writes ---------------------------------------------------------------------------

    def _write_at(self, offset: int, data: bytes) -> None:
        self.txn.require_active()
        # Lock a span covering the write *and* any gap it will zero-fill
        # from the current EOF.  The gap start depends on the size, which
        # can shrink while the lock request waits (a committing truncate
        # holds [0, inf)) — so re-check after the grant and widen if the
        # locked span no longer reaches the new, lower EOF.
        while True:
            self._refresh_committed()
            size = self._size()
            start = min(offset, size)
            self._lock_span(start, offset + len(data))
            self._refresh_committed()
            if min(offset, self._size()) >= start:
                break
        size = self._size()
        if offset > size:
            # Zero-fill the gap so the object is dense.
            data = bytes(offset - size) + data
            offset = size
        end = offset + len(data)

        if self._fast and offset == size:
            # Pure append: every stored segment lies inside [0, size),
            # so the overlap scan cannot find anything — skip it.  Wall
            # clock mode only: the scan is charged work in figure runs.
            overlapped: list[HeapTuple] = []
        else:
            overlapped = self._segments_overlapping(offset, end)
        new_start = offset
        head = tail = b""
        if overlapped:
            first = overlapped[0]
            if first.values[0] < offset:
                head = self._segment_bytes(first)[:offset - first.values[0]]
                new_start = first.values[0]
            last = overlapped[-1]
            last_end = last.values[0] + last.values[1]
            if last_end > end:
                tail = self._segment_bytes(last)[end - last.values[0]:]
        for record in overlapped:
            self.db.delete(self.txn, self.relation.name, record.tid)

        merged = head + data + tail
        self._append_segments(new_start, merged)
        self._own_high = max(self._own_high, end)
        self._pending_size = max(self._pending_size, end)

    def _append_segments(self, locn: int, data: bytes) -> None:
        """Compress *data* into fresh segments appended to the store.

        The store "only grows", but its EOF as seen by this descriptor
        is stale under concurrency — two writers resolving ``seek(0,
        SEEK_END)`` to the same committed size would interleave their
        bytes.  The manager's append cursor hands out disjoint extents
        instead (for a single writer it degenerates to exactly the old
        EOF, byte-for-byte); the store's own chunk-range locks then cover
        the reserved extent via the ordinary write path.
        """
        for start in range(0, len(data), SEGMENT_MAX):
            piece = data[start:start + SEGMENT_MAX]
            image = self.compressor.compress(piece)
            ptr = self.db.lo.reserve_store_extent(
                self.store.oid, len(image),
                eof_hint=self.store.seek(0, 2))
            self.store.seek(ptr)
            self.store.write(image)
            self.db.insert(self.txn, self.relation.name,
                           (locn + start, len(piece), len(image), ptr))

    def _truncate(self, size: int) -> None:
        self.txn.require_active()
        self._lock_whole()
        current = self._size()
        if size >= current:
            self._own_high = size
            self._pending_size = size  # sparse: reads zero-fill holes
            return
        # Delete every segment record past the cut; re-append the trimmed
        # prefix of the boundary segment as a fresh segment.  The store
        # only grows, so history stays intact.
        for record in self._segments_overlapping(size, current):
            locn = record.values[0]
            keep = b""
            if locn < size:
                keep = self._segment_bytes(record)[:size - locn]
            self.db.delete(self.txn, self.relation.name, record.tid)
            if keep:
                self._append_segments(locn, keep)
        self._own_high = size
        self._pending_size = size

    # -- append ----------------------------------------------------------------------------

    def append(self, data: bytes) -> int:
        """Write *data* at end-of-file, atomically under concurrency.

        Same protocol as f-chunk's: resolve the EOF *under* the range
        lock, retrying if granting the lock waited out another appender's
        committed extension.
        """
        self._check_open()
        if not self.writable:
            raise ReadOnlyObject(
                f"large object {self.designator!r} is open read-only")
        data = bytes(data)
        if not data:
            return 0
        self.txn.require_active()
        while True:
            self._refresh_committed()
            start = self._size()
            self._lock_span(start, start + len(data))
            self._refresh_committed()
            if self._size() == start:
                break
        self._write_at(start, data)
        self._pos = start + len(data)
        return len(data)

    def _close(self) -> None:
        if self.writable:
            self.flush()
            # Mirror f-chunk: a closed descriptor must not stay pinned by
            # the transaction's before-commit hook list.
            try:
                self.txn.before_commit.remove(self.flush)
            except ValueError:
                pass
        self.store.close()

    # -- storage accounting (Figure 1) -----------------------------------------------------

    def storage_breakdown(self) -> dict[str, int]:
        """Bytes on the device: compressed data, segment map, B-trees."""
        store_sizes = self.store.storage_breakdown()
        return {
            "data": store_sizes["data"],
            "segment_map": self.relation.byte_size(),
            "btree": self.index.byte_size(),
            "store_btree": store_sizes["btree"],
        }
