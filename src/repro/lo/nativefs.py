"""The "native file system" that u-file and p-file objects live in.

The paper benchmarks u-file and p-file against the Dynix fast file system.
This module is its substitute: byte-addressed files that charge the
magnetic-disk cost model per access — with **no** buffer pool, no tuple
headers, no index, and no transaction machinery, because that absence *is*
the baseline the DBMS implementations are compared against.

Files can be backed by real OS files (durable databases) or by process
memory (benchmark databases); the cost accounting is identical.
"""

from __future__ import annotations

import os

from repro.errors import FileNotFound, StorageManagerError
from repro.sim.clock import SimClock
from repro.sim.devices import DeviceModel, DevicePort, magnetic_disk_device


class NativeFileSystem:
    """A flat namespace of byte-addressed native files."""

    def __init__(self, clock: SimClock, root: str | None = None,
                 model: DeviceModel | None = None):
        self.clock = clock
        self.root = root
        self.port = DevicePort(model or magnetic_disk_device(), clock)
        self._memory: dict[str, bytearray] = {}
        if root is not None:
            os.makedirs(root, exist_ok=True)

    # -- path mapping ------------------------------------------------------------

    def _os_path(self, name: str) -> str:
        safe = name.replace("/", "__").replace("..", "_")
        return os.path.join(self.root, safe)

    # -- namespace ----------------------------------------------------------------

    def exists(self, name: str) -> bool:
        if self.root is not None:
            return os.path.exists(self._os_path(name))
        return name in self._memory

    def create(self, name: str) -> None:
        """Create an empty file (idempotent)."""
        if self.root is not None:
            path = self._os_path(name)
            if not os.path.exists(path):
                with open(path, "wb"):
                    pass
        else:
            self._memory.setdefault(name, bytearray())

    def unlink(self, name: str) -> None:
        if self.root is not None:
            path = self._os_path(name)
            if os.path.exists(path):
                os.remove(path)
        else:
            self._memory.pop(name, None)

    def size(self, name: str) -> int:
        self._require(name)
        if self.root is not None:
            return os.path.getsize(self._os_path(name))
        return len(self._memory[name])

    def _require(self, name: str) -> None:
        if not self.exists(name):
            raise FileNotFound(f"native file {name!r} does not exist")

    # -- byte I/O ----------------------------------------------------------------------

    def read_at(self, name: str, offset: int, nbytes: int) -> bytes:
        """Up to *nbytes* at *offset* (short at EOF)."""
        self._require(name)
        if offset < 0 or nbytes < 0:
            raise StorageManagerError(
                f"bad read [{offset}, +{nbytes}) on {name!r}")
        if self.root is not None:
            with open(self._os_path(name), "rb") as fh:
                fh.seek(offset)
                data = fh.read(nbytes)
        else:
            data = bytes(self._memory[name][offset:offset + nbytes])
        if data:
            self.port.charge_read(name, offset, len(data))
        return data

    def write_at(self, name: str, offset: int, data: bytes) -> None:
        """Write *data* at *offset*, zero-padding any gap past EOF."""
        self._require(name)
        if offset < 0:
            raise StorageManagerError(f"bad write offset {offset} on {name!r}")
        if self.root is not None:
            with open(self._os_path(name), "r+b") as fh:
                end = fh.seek(0, os.SEEK_END)
                if offset > end:
                    fh.write(bytes(offset - end))
                fh.seek(offset)
                fh.write(data)
        else:
            buf = self._memory[name]
            if offset > len(buf):
                buf.extend(bytes(offset - len(buf)))
            buf[offset:offset + len(data)] = data
        if data:
            self.port.charge_write(name, offset, len(data))

    def truncate_at(self, name: str, size: int) -> None:
        """Resize a file: cut the tail or zero-extend."""
        self._require(name)
        if size < 0:
            raise StorageManagerError(f"bad truncate size {size}")
        current = self.size(name)
        if self.root is not None:
            with open(self._os_path(name), "r+b") as fh:
                fh.truncate(size)
        else:
            buf = self._memory[name]
            if size <= current:
                del buf[size:]
            else:
                buf.extend(bytes(size - current))
        self.port.charge_write(name, min(size, current),
                               max(1, abs(size - current)))

    def stats(self) -> dict[str, int]:
        return self.port.stats()
