"""Implementation 2: POSTGRES file as an ADT (§6.2).

    retrieve (result = newfilename())
    append EMP (name = "Joe", picture = result)

Identical to u-file except that the DBMS allocates and owns the file, so
the underlying native file "is updatable by a single user" — the manager
enforces the DBMS-owned namespace and grants one writer at a time.
Still non-transactional: writes are immediate, like u-file.
"""

from __future__ import annotations

from repro.errors import LargeObjectError
from repro.lo.interface import LargeObject
from repro.lo.nativefs import NativeFileSystem

#: Namespace prefix for DBMS-owned files.
PFILE_PREFIX = "pg_pfiles/"


def is_pfile(designator: str) -> bool:
    """Whether a designator names a DBMS-owned (p-file) object."""
    return designator.startswith(PFILE_PREFIX)


class PostgresFileObject(LargeObject):
    """A large object in a DBMS-owned native file."""

    impl = "pfile"

    def __init__(self, fs: NativeFileSystem, path: str, writable: bool,
                 writers: set[str], create: bool = False):
        if not is_pfile(path):
            raise LargeObjectError(
                f"{path!r} is not in the DBMS-owned namespace "
                f"{PFILE_PREFIX!r}")
        super().__init__(path, writable)
        self.fs = fs
        self._writers = writers
        if create:
            fs.create(path)
        if writable:
            if path in writers:
                raise LargeObjectError(
                    f"p-file {path!r} already has a writer "
                    f"(single-writer rule)")
            writers.add(path)

    def _read_at(self, offset: int, nbytes: int) -> bytes:
        return self.fs.read_at(self.designator, offset, nbytes)

    def _write_at(self, offset: int, data: bytes) -> None:
        self.fs.write_at(self.designator, offset, data)

    def _size(self) -> int:
        return self.fs.size(self.designator)

    def _close(self) -> None:
        if self.writable:
            self._writers.discard(self.designator)

    def _truncate(self, size: int) -> None:
        self.fs.truncate_at(self.designator, size)
