"""Temporary large objects and their garbage collection (§5).

    "a function returning a large object must create a new large object
    and then fill in the bytes using a collection of write operations …
    Temporary large objects must be garbage-collected in the same way as
    temporary classes after the query has completed."

The query executor opens a :class:`TemporaryObjects` scope per query;
functions that return large values create their results through it.  When
the query finishes, every temporary that was not *kept* (stored into a
class, or explicitly claimed by the caller) is unlinked.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.db import Database
    from repro.txn.manager import Transaction


class TemporaryObjects:
    """Tracks large objects created during one query."""

    def __init__(self, db: "Database", txn: "Transaction"):
        self.db = db
        self.txn = txn
        self._pending: set[str] = set()
        self._kept: set[str] = set()

    def register(self, designator: str) -> str:
        """Mark *designator* as a temporary awaiting collection."""
        self._pending.add(designator)
        return designator

    def keep(self, designator: str) -> None:
        """Exempt *designator* from collection (its value was stored)."""
        if designator in self._pending:
            self._kept.add(designator)

    def pending(self) -> set[str]:
        """Designators currently slated for collection."""
        return self._pending - self._kept

    def collect(self) -> int:
        """Unlink every unkept temporary; returns how many were removed."""
        doomed = self.pending()
        for designator in doomed:
            self.db.lo.unlink(self.txn, designator)
        removed = len(doomed)
        self._pending.clear()
        self._kept.clear()
        return removed

    def __enter__(self) -> "TemporaryObjects":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.txn.is_active:
            self.collect()
