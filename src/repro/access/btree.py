"""A paged B-tree index over the buffer manager.

The paper's f-chunk implementation "maintains a secondary btree index on
the data blocks, and so must traverse the index any time a seek is done"
(§9.2) — the traversal cost is visible in its random-access numbers, so the
index here is a real disk tree doing real page reads, not a dict.

Layout
------
* Block 0 is the **meta page**: root block number, tree height, key arity.
* Every other block is one **node**, serialized as a single page item:
  a small header plus a sorted entry array.
* Leaf entries map ``key -> (v0, v1)`` — two signed 64-bit payload ints,
  used as heap TIDs ``(blockno, slot)`` or as plain numbers.
* Internal entries map separator keys to child block numbers.
* Leaves are chained through right-sibling pointers for range scans.

Keys are tuples of signed 64-bit integers (arity fixed per tree), compared
lexicographically.  **Duplicate keys are allowed** — a no-overwrite heap
stores several versions of a logical record, and the index points at all
of them; readers filter by visibility.

Deletion removes entries without rebalancing (as PostgreSQL does); empty
nodes are left in place and skipped.

Decoded-node cache
------------------
Descents used to re-parse every node page from its struct array on every
lookup — ruinous for the streaming read path, which touches the index for
every chunk.  Nodes are now cached in decoded form in the buffer
manager's pool-wide side cache, keyed by ``(fileid, blockno)``: a hit
skips the pin and the parse.  Every node write (store, split, new node)
writes through the cache, and the pool drops entries with the file, so a
reader can never observe a stale node — including after ``replace`` or a
vacuum's index pruning, which both funnel through :meth:`BTree.insert` /
:meth:`BTree.delete`.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass, field
from itertools import chain
from typing import Callable, Iterator

from repro.errors import RelationError
from repro.smgr.base import StorageManager
from repro.storage.buffer import BufferManager
from repro.storage.constants import MAX_TUPLE_SIZE, PAGE_SIZE

_META = struct.Struct("<IHHI")          # root block, arity, height, magic
_NODE_HEADER = struct.Struct("<BBHi")   # is_leaf, pad, nentries, right sibling
_MAGIC = 0xB7EE

Key = tuple[int, ...]
Value = tuple[int, int]


@dataclass
class _Node:
    """Decoded B-tree node."""

    is_leaf: bool
    keys: list[Key] = field(default_factory=list)
    #: leaf: payload pairs; internal: child block numbers (as (child, 0)).
    values: list[Value] = field(default_factory=list)
    right: int = -1

    def entry_bytes(self, arity: int) -> int:
        per_entry = 8 * arity + (16 if self.is_leaf else 4)
        extra_child = 0 if self.is_leaf else 4  # nkeys + 1 children
        return _NODE_HEADER.size + per_entry * len(self.keys) + extra_child

    def copy(self) -> "_Node":
        """A mutation-safe copy (entries are immutable tuples)."""
        return _Node(is_leaf=self.is_leaf, keys=list(self.keys),
                     values=list(self.values), right=self.right)


class BTree:
    """A B-tree index living in one relation file."""

    def __init__(self, name: str, smgr: StorageManager,
                 bufmgr: BufferManager, key_arity: int = 1,
                 fileid: str | None = None):
        if key_arity < 1 or key_arity > 4:
            raise RelationError(f"unsupported key arity {key_arity}")
        self.name = name
        self.smgr = smgr
        self.bufmgr = bufmgr
        self.key_arity = key_arity
        self.fileid = fileid or f"btree_{name}"
        self._key_struct = struct.Struct(f"<{key_arity}q")
        self._leaf_value = struct.Struct("<qq")
        self._child = struct.Struct("<I")
        # Soft node-size ceiling: leave room for one more max-size entry.
        self._node_limit = MAX_TUPLE_SIZE - 64
        #: Debug tripwire (see :mod:`repro.access.scan`): when the owning
        #: Database runs with ``debug_latch=True`` it points this at the
        #: engine latch's ``held()``, and lookups verify the latch is
        #: taken.  ``None`` (standalone use) disables the check.
        self.latch_probe: Callable[[], bool] | None = None

    def _assert_latched(self, operation: str) -> None:
        if self.latch_probe is not None and not self.latch_probe():
            raise AssertionError(
                f"index {self.name!r}.{operation} called without the "
                f"engine latch — go through the scan layer "
                f"(repro.access.scan) or take db.latch first")

    # -- lifecycle ----------------------------------------------------------------

    def create_storage(self) -> None:
        """Create the index file with an empty root leaf (idempotent)."""
        self.smgr.create(self.fileid)
        if self.bufmgr.nblocks(self.smgr, self.fileid) > 0:
            return
        meta_buf = self.bufmgr.allocate(self.smgr, self.fileid)
        root_buf = self.bufmgr.allocate(self.smgr, self.fileid)
        try:
            self._write_node(root_buf.page, _Node(is_leaf=True))
            meta_buf.page.add_item(
                _META.pack(root_buf.blockno, self.key_arity, 0, _MAGIC))
        finally:
            self.bufmgr.unpin(meta_buf, dirty=True)
            self.bufmgr.unpin(root_buf, dirty=True)

    def drop_storage(self) -> None:
        self.bufmgr.drop_file(self.smgr, self.fileid)
        self.smgr.unlink(self.fileid)

    def nblocks(self) -> int:
        return self.bufmgr.nblocks(self.smgr, self.fileid)

    def byte_size(self) -> int:
        """Bytes occupied by the index (Figure 1 reports these)."""
        return self.nblocks() * PAGE_SIZE

    # -- meta page ----------------------------------------------------------------

    def _read_meta(self) -> tuple[int, int]:
        with self.bufmgr.page(self.smgr, self.fileid, 0) as page:
            root, arity, height, magic = _META.unpack(page.get_item(0))
        if magic != _MAGIC:
            raise RelationError(f"index {self.name!r} meta page corrupt")
        if arity != self.key_arity:
            raise RelationError(
                f"index {self.name!r} has key arity {arity}, "
                f"opened with {self.key_arity}")
        return root, height

    def _write_meta(self, root: int, height: int) -> None:
        with self.bufmgr.page(self.smgr, self.fileid, 0, write=True) as page:
            page.overwrite_item(
                0, _META.pack(root, self.key_arity, height, _MAGIC))

    # -- node (de)serialization -------------------------------------------------------

    def _write_node(self, page, node: _Node) -> None:
        arity = self.key_arity
        nkeys = len(node.keys)
        parts = [_NODE_HEADER.pack(1 if node.is_leaf else 0, 0,
                                   nkeys, node.right)]
        if nkeys:
            # chain.from_iterable flattens at C speed; a node is
            # re-serialized on every insert, so this is hot.
            parts.append(struct.pack(
                f"<{nkeys * arity}q", *chain.from_iterable(node.keys)))
        if node.is_leaf:
            if node.values:
                parts.append(struct.pack(
                    f"<{2 * nkeys}q", *chain.from_iterable(node.values)))
        else:
            # Internal nodes have nkeys + 1 children.
            children = [child for child, _ in node.values]
            parts.append(struct.pack(f"<{len(children)}I", *children))
        image = b"".join(parts)
        if page.slot_count:
            page.overwrite_item(0, image)
        else:
            page.add_item(image)

    def _read_node(self, blockno: int, mutable: bool = False) -> _Node:
        """The decoded node at *blockno*.

        Served from the pool-wide decoded-node cache when possible —
        a hit skips both the page pin and the struct re-parse, which is
        what makes repeated descents (one per chunk, in the old read
        path) cheap.  *mutable* callers get a private copy; the cached
        node itself is only ever replaced through :meth:`_store_node` /
        :meth:`_new_node`, so the cache can never serve a stale node.
        """
        node = self.bufmgr.get_decoded(self.smgr, self.fileid, blockno)
        if node is not None:
            return node.copy() if mutable else node
        node = self._decode_node(blockno)
        self.bufmgr.put_decoded(self.smgr, self.fileid, blockno, node)
        return node.copy() if mutable else node

    def _decode_node(self, blockno: int) -> _Node:
        with self.bufmgr.page(self.smgr, self.fileid, blockno) as page:
            image = page.get_item(0)
        is_leaf, _pad, nentries, right = _NODE_HEADER.unpack_from(image, 0)
        arity = self.key_arity
        pos = _NODE_HEADER.size
        if nentries:
            flat = struct.unpack_from(f"<{nentries * arity}q", image, pos)
            if arity == 1:
                keys = [(component,) for component in flat]
            else:
                keys = [tuple(flat[i:i + arity])
                        for i in range(0, len(flat), arity)]
        else:
            keys = []
        pos += nentries * arity * 8
        values: list[Value]
        if is_leaf:
            flat = struct.unpack_from(f"<{2 * nentries}q", image, pos)
            values = [(flat[i], flat[i + 1])
                      for i in range(0, len(flat), 2)]
        else:
            children = struct.unpack_from(f"<{nentries + 1}I", image, pos)
            values = [(child, 0) for child in children]
        return _Node(is_leaf=bool(is_leaf), keys=keys, values=values,
                     right=right)

    def _store_node(self, blockno: int, node: _Node) -> None:
        with self.bufmgr.page(self.smgr, self.fileid, blockno,
                              write=True) as page:
            self._write_node(page, node)
        # Write-through: the cache always mirrors the page just written.
        self.bufmgr.put_decoded(self.smgr, self.fileid, blockno,
                                node.copy())

    def _new_node(self, node: _Node) -> int:
        buf = self.bufmgr.allocate(self.smgr, self.fileid)
        try:
            self._write_node(buf.page, node)
            self.bufmgr.put_decoded(self.smgr, self.fileid, buf.blockno,
                                    node.copy())
            return buf.blockno
        finally:
            self.bufmgr.unpin(buf, dirty=True)

    # -- key handling --------------------------------------------------------------------

    def _check_key(self, key: Key) -> Key:
        key = tuple(key)
        if len(key) != self.key_arity:
            raise RelationError(
                f"key {key!r} has arity {len(key)}, index {self.name!r} "
                f"expects {self.key_arity}")
        return key

    # -- insert ---------------------------------------------------------------------------

    def insert(self, key: Key, value: Value) -> None:
        """Insert one entry; duplicate keys are fine."""
        key = self._check_key(key)
        root, height = self._read_meta()
        split = self._insert_into(root, key, tuple(value))
        if split is not None:
            sep_key, right_block = split
            new_root = _Node(is_leaf=False,
                             keys=[sep_key],
                             values=[(root, 0), (right_block, 0)])
            self._write_meta(self._new_node(new_root), height + 1)

    def _insert_into(self, blockno: int, key: Key,
                     value: Value) -> tuple[Key, int] | None:
        """Recursive insert; returns (separator, new right block) on split."""
        # Read shared (cached) nodes and copy only when a mutation is
        # actually needed: the common cases — a leaf append, an internal
        # node whose child did not split — never touch the node's lists.
        node = self._read_node(blockno)
        if node.is_leaf:
            if not node.keys or key >= node.keys[-1]:
                # Sequential loads (f-chunk/v-segment writers emit
                # monotonically increasing keys) hit this on nearly
                # every insert; splicing beats re-flattening the leaf.
                # (key >= last matches bisect_right: equals land at the
                # end.)
                node = _Node(is_leaf=True, keys=node.keys + [key],
                             values=node.values + [value], right=node.right)
                if node.entry_bytes(self.key_arity) <= self._node_limit:
                    self._append_leaf_store(blockno, node)
                    return None
            else:
                node = node.copy()
                pos = bisect.bisect_right(node.keys, key)
                node.keys.insert(pos, key)
                node.values.insert(pos, value)
        else:
            child_idx = self._descend_index(node, key)
            split = self._insert_into(node.values[child_idx][0], key, value)
            if split is None:
                return None
            sep_key, right_block = split
            node = node.copy()
            node.keys.insert(child_idx, sep_key)
            node.values.insert(child_idx + 1, (right_block, 0))
        if node.entry_bytes(self.key_arity) <= self._node_limit:
            self._store_node(blockno, node)
            return None
        return self._split(blockno, node)

    def _append_leaf_store(self, blockno: int, node: _Node) -> None:
        """Store a leaf whose only change is one entry appended at the end.

        Produces bytes identical to :meth:`_write_node` for the same
        node, but builds the image by splicing the page's current image
        (old keys and values are already packed there) instead of
        re-flattening every tuple — the same page pin, the same
        ``overwrite_item``, an order of magnitude less Python per call.
        *node* must be a fresh object (not the cached one): it is handed
        to the decoded-node cache without a defensive copy.
        """
        arity = self.key_arity
        key = node.keys[-1]
        value = node.values[-1]
        nkeys = len(node.keys)          # includes the appended entry
        old = nkeys - 1
        koff = _NODE_HEADER.size
        voff = koff + old * arity * 8
        with self.bufmgr.page(self.smgr, self.fileid, blockno,
                              write=True) as page:
            image = page.item_view(0)
            new_image = b"".join((
                _NODE_HEADER.pack(1, 0, nkeys, node.right),
                image[koff:voff],
                struct.pack(f"<{arity}q", *key),
                image[voff:voff + 16 * old],
                struct.pack("<2q", *value),
            ))
            page.overwrite_item(0, new_image)
        # Write-through: the cache always mirrors the page just written.
        self.bufmgr.put_decoded(self.smgr, self.fileid, blockno, node)

    @staticmethod
    def _descend_index(node: _Node, key: Key) -> int:
        """Child slot to follow for *key* in an internal node."""
        return bisect.bisect_right(node.keys, key)

    def _split(self, blockno: int, node: _Node) -> tuple[Key, int]:
        """Split an overfull node; returns (separator, right block)."""
        mid = len(node.keys) // 2
        if node.is_leaf:
            right = _Node(is_leaf=True, keys=node.keys[mid:],
                          values=node.values[mid:], right=node.right)
            sep = right.keys[0]
            right_block = self._new_node(right)
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            node.right = right_block
        else:
            # The middle key moves up; children split around it.
            sep = node.keys[mid]
            right = _Node(is_leaf=False, keys=node.keys[mid + 1:],
                          values=node.values[mid + 1:])
            right_block = self._new_node(right)
            node.keys = node.keys[:mid]
            node.values = node.values[:mid + 1]
        self._store_node(blockno, node)
        return sep, right_block

    # -- lookup ---------------------------------------------------------------------------

    def _find_leaf(self, key: Key,
                   mutable: bool = False) -> tuple[int, _Node]:
        """The leftmost leaf that can contain *key*.

        Descends with ``bisect_left`` so that, with duplicate keys spanning
        several leaves, scans start at the first occurrence (inserts use
        ``bisect_right`` via :meth:`_descend_index` instead).
        """
        blockno, _height = self._read_meta()
        node = self._read_node(blockno)
        while not node.is_leaf:
            blockno = node.values[bisect.bisect_left(node.keys, key)][0]
            node = self._read_node(blockno)
        if mutable:
            node = node.copy()
        return blockno, node

    def search(self, key: Key) -> list[Value]:
        """All values stored under exactly *key* (duplicates preserved)."""
        self._assert_latched("search")
        key = self._check_key(key)
        return [value for _k, value in self._range_scan(key, key)]

    def range_scan(self, lo: Key | None = None,
                   hi: Key | None = None) -> Iterator[tuple[Key, Value]]:
        """Entries with ``lo <= key <= hi``, in key order.

        ``None`` bounds are open.  Follows leaf sibling links, so a scan
        costs one page read per leaf touched.
        """
        # The latch check must fire at call time, not at first next():
        # a generator body only runs lazily, by which point the caller's
        # latch block may already have exited.
        self._assert_latched("range_scan")
        return self._range_scan(lo, hi)

    def _range_scan(self, lo: Key | None = None,
                    hi: Key | None = None) -> Iterator[tuple[Key, Value]]:
        if lo is not None:
            lo = self._check_key(lo)
            _blockno, node = self._find_leaf(lo)
            start = bisect.bisect_left(node.keys, lo)
        else:
            node = self._leftmost_leaf()
            start = 0
        if hi is not None:
            hi = self._check_key(hi)
        while True:
            for i in range(start, len(node.keys)):
                if hi is not None and node.keys[i] > hi:
                    return
                yield node.keys[i], node.values[i]
            if node.right < 0:
                return
            node = self._read_node(node.right)
            start = 0

    def _leftmost_leaf(self) -> _Node:
        blockno, _height = self._read_meta()
        node = self._read_node(blockno)
        while not node.is_leaf:
            node = self._read_node(node.values[0][0])
        return node

    # -- delete ---------------------------------------------------------------------------

    def delete(self, key: Key, value: Value | None = None) -> int:
        """Remove entries with *key* (and *value*, if given).

        Returns the number of entries removed.  Nodes are never merged.
        """
        key = self._check_key(key)
        removed = 0
        blockno, node = self._find_leaf(key, mutable=True)
        while True:
            changed = False
            i = bisect.bisect_left(node.keys, key)
            while i < len(node.keys) and node.keys[i] == key:
                if value is None or node.values[i] == tuple(value):
                    del node.keys[i]
                    del node.values[i]
                    removed += 1
                    changed = True
                else:
                    i += 1
            if changed:
                self._store_node(blockno, node)
            if node.keys and node.keys[-1] > key:
                return removed
            if node.right < 0:
                return removed
            blockno, node = node.right, self._read_node(node.right,
                                                        mutable=True)
            if not node.keys or node.keys[0] > key:
                return removed

    # -- introspection ----------------------------------------------------------------------

    def height(self) -> int:
        """Levels above the leaves (0 for a single-leaf tree)."""
        return self._read_meta()[1]

    def entry_count(self) -> int:
        """Total entries (walks every leaf).

        A diagnostic, so it bypasses the latch tripwire; callers that
        need a consistent count under concurrency should latch anyway.
        """
        return sum(1 for _ in self._range_scan())

    def check_invariants(self) -> None:
        """Verify ordering and structure; raises on violation (tests).

        A diagnostic like :meth:`entry_count`; the integrity sweep runs
        it under the latch via :func:`repro.access.scan.check_index`.
        """
        previous: Key | None = None
        for key, _value in self._range_scan():
            if previous is not None and key < previous:
                raise RelationError(
                    f"index {self.name!r} keys out of order: "
                    f"{key} after {previous}")
            previous = key
