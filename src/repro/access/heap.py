"""Heap relations with no-overwrite versioning.

A heap relation ("class" in POSTGRES terms) is a file of slotted pages
holding :mod:`tuple versions <repro.access.tuples>`.  The write operations
follow the POSTGRES storage system:

* ``insert`` appends a new version stamped ``xmin = current xid``;
* ``delete`` stamps ``xmax`` on the existing version **in place** — the
  version stays on disk for time travel;
* ``replace`` is delete + insert of a new version *with the same oid*;
* ``vacuum`` is the only operation that physically removes versions, and
  only those dead before a caller-supplied horizon.

Every mutation records the relation file in the transaction's touched set
so commit can force it to stable storage.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.access.schema import Schema
from repro.access.tuples import (
    TID,
    XMAX_OFFSET,
    HeapTuple,
    deserialize_tuple,
    read_stamps,
    serialize_tuple,
    xmax_patch,
)
from repro.errors import RelationError, TransactionError, TupleNotFound
from repro.smgr.base import StorageManager
from repro.storage.buffer import BufferManager
from repro.storage.constants import INVALID_XID, MAX_TUPLE_SIZE
from repro.storage.fsm import FreeSpaceMap
from repro.storage.page import SlottedPage
from repro.txn.manager import Transaction
from repro.txn.snapshot import Snapshot
from repro.txn.xlog import CommitLog, TxnStatus

#: Readahead window (blocks) for sequential scans: far enough ahead to
#: batch device reads, small enough not to wash streams out of the pool.
SCAN_PREFETCH_BLOCKS = 16


class HeapRelation:
    """One POSTGRES class stored as a heap of versioned tuples."""

    def __init__(self, name: str, schema: Schema, smgr: StorageManager,
                 bufmgr: BufferManager, clog: CommitLog,
                 oid_source: Callable[[], int], fileid: str | None = None):
        self.name = name
        self.schema = schema
        self.smgr = smgr
        self.bufmgr = bufmgr
        self.clog = clog
        self.oid_source = oid_source
        self.fileid = fileid or f"heap_{name}"
        self.fsm = FreeSpaceMap()
        #: Debug tripwire (see :mod:`repro.access.scan`): when the owning
        #: Database runs with ``debug_latch=True`` it points this at the
        #: engine latch's ``held()``, and visibility reads verify the
        #: latch is taken.  ``None`` (standalone use, tests over a raw
        #: stack) disables the check.
        self.latch_probe: Callable[[], bool] | None = None

    def _assert_latched(self, operation: str) -> None:
        if self.latch_probe is not None and not self.latch_probe():
            raise AssertionError(
                f"{self.name!r}.{operation} called without the engine "
                f"latch — go through the scan layer "
                f"(repro.access.scan) or take db.latch first")

    # -- lifecycle ----------------------------------------------------------------

    def create_storage(self) -> None:
        """Create the backing relation file (idempotent)."""
        self.smgr.create(self.fileid)

    def drop_storage(self) -> None:
        """Discard buffers and unlink the backing file."""
        self.bufmgr.drop_file(self.smgr, self.fileid)
        self.smgr.unlink(self.fileid)
        self.fsm.forget()

    def nblocks(self) -> int:
        return self.bufmgr.nblocks(self.smgr, self.fileid)

    def byte_size(self) -> int:
        """Bytes the relation occupies (buffered tail included)."""
        from repro.storage.constants import PAGE_SIZE
        return self.nblocks() * PAGE_SIZE

    # -- insert ---------------------------------------------------------------------

    def insert(self, txn: Transaction, values: tuple,
               oid: int | None = None) -> TID:
        """Insert a new tuple; returns its TID.

        The tuple's oid defaults to a fresh one from the oid source; pass
        *oid* explicitly when writing a new version of an existing object.
        """
        txn.require_active()
        if oid is None:
            oid = self.oid_source()
        image = serialize_tuple(self.schema, txn.xid, oid, values)
        if len(image) > MAX_TUPLE_SIZE:
            raise RelationError(
                f"tuple of {len(image)} bytes exceeds the page limit "
                f"{MAX_TUPLE_SIZE} for relation {self.name!r} "
                f"(store big values as large objects)")
        tid = self._place(image)
        txn.touch(self.smgr, self.fileid)
        return tid

    def _place(self, image: bytes) -> TID:
        """Store an image on a page with room, extending if needed."""
        target = self.fsm.find(len(image))
        if target is None:
            nblocks = self.nblocks()
            target = nblocks - 1 if nblocks else None
            if (target is not None and self.bufmgr.cpu is None
                    and self.fsm.known_insufficient(target, len(image))):
                # Wall-clock mode only (model fidelity: the probe is a
                # charged pin in sim mode): the tail page's hint was
                # refreshed by the last placement and says no room, so
                # go straight to a fresh page.  Bulk loads (one 8000 B
                # chunk per page) pay this dead probe on every insert.
                target = None
        if target is not None:
            buf = self.bufmgr.pin(self.smgr, self.fileid, target)
            try:
                slot = self._try_add(buf.page, image)
                if slot is not None:
                    self._after_place(buf.page, target)
                    self.bufmgr.unpin(buf, dirty=True)
                    return TID(target, slot)
            except Exception:
                self.bufmgr.unpin(buf)
                raise
            self.bufmgr.unpin(buf)
        buf = self.bufmgr.allocate(self.smgr, self.fileid)
        try:
            slot = buf.page.add_item(image)
            self._after_place(buf.page, buf.blockno)
            blockno = buf.blockno
        finally:
            self.bufmgr.unpin(buf, dirty=True)
        return TID(blockno, slot)

    def insert_raw(self, image: bytes) -> TID:
        """Place a pre-serialized tuple image, preserving its stamps.

        Used by the archival vacuum to move versions between relations
        without rewriting their transaction history.  The caller owns
        durability (this is maintenance work, outside any transaction).
        """
        if len(image) > MAX_TUPLE_SIZE:
            raise RelationError(
                f"tuple image of {len(image)} bytes exceeds the page "
                f"limit for relation {self.name!r}")
        return self._place(image)

    @staticmethod
    def _try_add(page: SlottedPage, image: bytes) -> int | None:
        """Add to *page*, compacting first if fragmentation is the issue."""
        if page.free_space() < len(image):
            live = sum(page.item_id(s).length for s in page.live_slots())
            from repro.storage.constants import (
                ITEM_ID_SIZE,
                PAGE_HEADER_SIZE,
                PAGE_SIZE,
            )
            ceiling = (PAGE_SIZE - PAGE_HEADER_SIZE
                       - (page.slot_count + 1) * ITEM_ID_SIZE)
            if ceiling - live < len(image):
                return None
            page.compact()
            if page.free_space() < len(image):
                return None
        return page.add_item(image)

    def _after_place(self, page: SlottedPage, blockno: int) -> None:
        self.fsm.record(blockno, page.free_space())
        self.fsm.note_insert_target(blockno)

    # -- point reads -------------------------------------------------------------------

    def fetch_any_version(self, tid: TID) -> HeapTuple:
        """The tuple at *tid* regardless of visibility."""
        with self.bufmgr.page(self.smgr, self.fileid, tid.blockno) as page:
            try:
                view = page.item_view(tid.slot)
            except Exception as exc:
                raise TupleNotFound(
                    f"no tuple at {tid} in {self.name!r}") from exc
            # Decode while the page is pinned: the view aliases the pool,
            # the decoded values do not.
            return deserialize_tuple(self.schema, view, tid)

    def fetch(self, tid: TID, snapshot: Snapshot) -> HeapTuple | None:
        """The tuple at *tid* if visible to *snapshot*, else ``None``."""
        self._assert_latched("fetch")
        with self.bufmgr.page(self.smgr, self.fileid, tid.blockno) as page:
            try:
                view = page.item_view(tid.slot)
            except Exception as exc:
                raise TupleNotFound(
                    f"no tuple at {tid} in {self.name!r}") from exc
            xmin, xmax, _oid = read_stamps(view)
            if not snapshot.is_visible(xmin, xmax, self.clog):
                return None
            return deserialize_tuple(self.schema, view, tid)

    # -- batched reads -----------------------------------------------------------------

    def prefetch_tids(self, tids) -> int:
        """Issue readahead for the blocks a TID batch is about to pin.

        Contiguous runs of two or more blocks become one
        :meth:`~repro.storage.buffer.BufferManager.prefetch` call each
        (readahead pays off exactly when the device would otherwise see
        a string of single-block demand reads); isolated blocks are left
        to demand paging.  Returns how many blocks were read ahead.
        """
        blocks = sorted({tid.blockno for tid in tids})
        fetched = 0
        run_start = None
        previous = None
        for blockno in blocks + [None]:
            if run_start is not None and blockno == previous + 1:
                previous = blockno
                continue
            if run_start is not None and previous > run_start:
                fetched += self.bufmgr.prefetch(
                    self.smgr, self.fileid, run_start,
                    previous - run_start + 1)
            run_start = previous = blockno
        return fetched

    def fetch_many(self, tids, snapshot: Snapshot,
                   prefetch: bool = True) -> list[HeapTuple]:
        """Visible tuples among *tids*, in input order, with readahead.

        Consecutive TIDs on the same block share one pin: the page is
        pinned when the run starts and each further tuple only pays
        :meth:`~repro.storage.buffer.BufferManager.rehit` bookkeeping
        (identical simulated cost to pinning again).  Tuple images are
        read as zero-copy views and only visible ones are decoded.
        ``prefetch=False`` skips the readahead pass when the caller
        already issued it for these TIDs.
        """
        self._assert_latched("fetch_many")
        tids = list(tids)
        if prefetch:
            self.prefetch_tids(tids)
        out = []
        bufmgr = self.bufmgr
        is_visible = snapshot.is_visible
        clog = self.clog
        schema = self.schema
        buf = None
        cur_block = None
        try:
            for tid in tids:
                if tid.blockno != cur_block:
                    if buf is not None:
                        bufmgr.unpin(buf)
                        buf = None
                    buf = bufmgr.pin(self.smgr, self.fileid, tid.blockno)
                    cur_block = tid.blockno
                else:
                    bufmgr.rehit(buf)
                try:
                    view = buf.page.item_view(tid.slot)
                except Exception as exc:
                    raise TupleNotFound(
                        f"no tuple at {tid} in {self.name!r}") from exc
                xmin, xmax, _oid = read_stamps(view)
                if is_visible(xmin, xmax, clog):
                    out.append(deserialize_tuple(schema, view, tid))
        finally:
            if buf is not None:
                bufmgr.unpin(buf)
        return out

    # -- delete / replace ------------------------------------------------------------------

    def delete(self, txn: Transaction, tid: TID) -> None:
        """Stamp ``xmax = txn.xid`` on the version at *tid*.

        Rejects tuples already deleted by a live or committed transaction
        (a write-write conflict under no-wait 2PL); a stamp left by an
        *aborted* deleter is overwritten.
        """
        txn.require_active()
        buf = self.bufmgr.pin(self.smgr, self.fileid, tid.blockno)
        try:
            try:
                view = buf.page.item_view(tid.slot)
            except Exception as exc:
                raise TupleNotFound(
                    f"no tuple at {tid} in {self.name!r}") from exc
            _xmin, xmax, _oid = read_stamps(view)
            if xmax != INVALID_XID and xmax != txn.xid:
                if self.clog.status(xmax) != TxnStatus.ABORTED:
                    raise TransactionError(
                        f"tuple {tid} in {self.name!r} already deleted "
                        f"by transaction {xmax}")
            view.release()
            # Stamp the 8-byte xmax field in place — no image copy; the
            # rest of the version is immutable by the no-overwrite rule.
            buf.page.patch_item(tid.slot, XMAX_OFFSET, xmax_patch(txn.xid))
        finally:
            self.bufmgr.unpin(buf, dirty=True)
        txn.touch(self.smgr, self.fileid)

    def replace(self, txn: Transaction, tid: TID, values: tuple) -> TID:
        """Write a new version of the tuple at *tid* (same oid)."""
        old = self.fetch_any_version(tid)
        self.delete(txn, tid)
        return self.insert(txn, values, oid=old.oid)

    # -- scans ------------------------------------------------------------------------------

    def scan(self, snapshot: Snapshot) -> Iterator[HeapTuple]:
        """All tuple versions visible to *snapshot*, in physical order."""
        for tup in self.scan_versions():
            if snapshot.is_visible(tup.xmin, tup.xmax, self.clog):
                yield tup

    def scan_versions(self) -> Iterator[HeapTuple]:
        """Every stored version, visible or not (vacuum, debugging).

        Issues windowed readahead so a sequential scan's device reads
        arrive in batches instead of one demand miss per page.
        """
        for blockno in range(self.nblocks()):
            if blockno % SCAN_PREFETCH_BLOCKS == 0:
                self.bufmgr.prefetch(self.smgr, self.fileid, blockno,
                                     SCAN_PREFETCH_BLOCKS)
            with self.bufmgr.page(self.smgr, self.fileid, blockno) as page:
                # Decode from views while pinned; yield after the pin is
                # dropped so consumers never run with a page held.
                tuples = [deserialize_tuple(self.schema, page.item_view(s),
                                            TID(blockno, s))
                          for s in page.live_slots()]
            yield from tuples

    # -- vacuum ------------------------------------------------------------------------------

    def vacuum(self, horizon: float | None = None,
               removed_sink: list | None = None) -> int:
        """Physically remove dead versions; returns how many were removed.

        A version is dead if its inserter aborted, or its deleter committed
        — and, when *horizon* is given, committed **before** *horizon*
        (keeping history reachable by time travel after the horizon).
        With ``horizon=None`` all superseded versions go, discarding
        history, which is what the paper's u-file/p-file implementations
        effectively live with permanently.

        When *removed_sink* is given, each removed version is appended as
        a decoded :class:`HeapTuple` — the caller (normally
        :meth:`Database.vacuum`) uses these to prune index entries, since
        freed slots may be reused and stale entries must not dangle.
        """
        removed = 0
        for blockno in range(self.nblocks()):
            buf = self.bufmgr.pin(self.smgr, self.fileid, blockno)
            try:
                dirty = False
                for slot in buf.page.live_slots():
                    view = buf.page.item_view(slot)
                    xmin, xmax, _oid = read_stamps(view)
                    if self._is_dead(xmin, xmax, horizon):
                        if removed_sink is not None:
                            removed_sink.append(deserialize_tuple(
                                self.schema, view, TID(blockno, slot)))
                        view.release()
                        buf.page.delete_item(slot)
                        removed += 1
                        dirty = True
                if dirty:
                    buf.page.compact()
                    self.fsm.record(blockno, buf.page.free_space())
            finally:
                self.bufmgr.unpin(buf, dirty=dirty)
        if removed:
            # Pruning frees slots without any transaction changing fate;
            # epoch-keyed TID memos must not survive it.
            self.clog.bump_visibility_epoch()
        return removed

    def _is_dead(self, xmin: int, xmax: int, horizon: float | None) -> bool:
        if self.clog.status(xmin) == TxnStatus.ABORTED:
            return True
        if xmax == INVALID_XID:
            return False
        if self.clog.status(xmax) != TxnStatus.COMMITTED:
            return False
        if horizon is None:
            return True
        return self.clog.commit_time(xmax) < horizon
