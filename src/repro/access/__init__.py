"""Access methods: heap relations, tuples, and B-tree indexes."""

from repro.access.btree import BTree
from repro.access.heap import HeapRelation
from repro.access.schema import Attribute, Schema
from repro.access.tuples import TID, HeapTuple

__all__ = [
    "Attribute",
    "Schema",
    "HeapTuple",
    "TID",
    "HeapRelation",
    "BTree",
]
