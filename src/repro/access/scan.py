"""Unified access-path layer: scan descriptors owning latching,
visibility, and prefetch.

Every construct the paper layers over the storage system — f-chunk's
chunk class (§6.3), v-segment's segment index (§6.4), Inversion's
metadata classes (§8) — reduces to the same pattern: B-tree probe or
range scan, heap fetch, snapshot-visibility filter.  Before this module
existed, that pattern (plus the engine-latch discipline around raw page
reads) was hand-rolled at eight call sites, and getting the latch wrong
at any one of them was a silent race.  The descriptors here are the one
place that pattern lives:

* :class:`IndexProbe` — equality probe: one key, all visible versions;
* :class:`IndexRangeScan` — leaf-chain walk over ``[lo, hi]`` with
  batched heap prefetch;
* :class:`SeqScan` — full-relation scan with visibility filtering.

All three take the engine latch internally (see :class:`EngineLatch` and
DESIGN.md §"Locking discipline": heavyweight locks are always acquired
*before* the latch, never under it), apply the snapshot, and count what
they did into the shared :class:`AccessStats`, surfaced as
``db.statistics()["access"]``.

``unique=True`` enforces the "exactly one visible version per key"
invariant that a no-overwrite heap owes its readers: if a snapshot ever
sees two versions of the same chunk or segment, something upstream
violated snapshot isolation, and the scan raises the caller-supplied
snapshot-anomaly error instead of silently letting one version shadow
the other.

The layer is backed by a debug tripwire: when a :class:`~repro.db.Database`
is constructed with ``debug_latch=True`` (the default under pytest — see
``tests/conftest.py``), the raw access methods
(``HeapRelation.fetch``/``fetch_many``, ``BTree.search``/``range_scan``)
verify the engine latch is held, so any future call site that bypasses
this layer fails loudly in CI instead of racing in production.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.access.tuples import TID, HeapTuple
from repro.errors import ReproError
from repro.txn import lockdep
from repro.txn.snapshot import Snapshot

if TYPE_CHECKING:
    from repro.access.btree import BTree, Key
    from repro.access.heap import HeapRelation
    from repro.db import Database

#: Builds the error raised when ``unique=True`` finds several visible
#: versions of one key: ``(key, visible_count) -> Exception``.
AnomalyFactory = Callable[["Key", int], Exception]


class EngineLatch:
    """The engine latch: a re-entrant lock that knows its owner.

    Serializes structural mutation (page contents, relation/index caches)
    across sessions.  Functionally a ``threading.RLock``; the addition is
    :meth:`held`, which the debug tripwire uses to assert that raw page
    reads happen inside a latched section.  The canonical ordering rule
    (DESIGN.md §"Locking discipline"): heavyweight locks are ALWAYS
    acquired before this latch, never while holding it.
    """

    __slots__ = ("_lock", "_owner", "_count")

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._owner: int | None = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        validate = (lockdep.VALIDATOR.armed
                    and self._owner != threading.get_ident())
        if validate:
            lockdep.VALIDATOR.scoped_check("latch", id(self))
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            # Only the owning thread can reach these fields: they are
            # written strictly inside the lock's critical section.
            self._owner = threading.get_ident()
            self._count += 1
            if validate:
                lockdep.VALIDATOR.scoped_acquired("latch", id(self))
        return acquired

    def release(self) -> None:
        self._count -= 1
        if self._count == 0:
            self._owner = None
            if lockdep.VALIDATOR.armed:
                lockdep.VALIDATOR.scoped_released(id(self))
        self._lock.release()

    def __enter__(self) -> "EngineLatch":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def held(self) -> bool:
        """Whether the calling thread currently holds the latch."""
        return self._owner == threading.get_ident()


@dataclass
class AccessStats:
    """Counters for every access path executed through this layer."""

    probes: int = 0            # IndexProbe executions
    range_scans: int = 0       # IndexRangeScan executions
    seq_scans: int = 0         # SeqScan executions
    tuples_scanned: int = 0    # candidate versions fetched from the heap
    tuples_visible: int = 0    # of those, visible to the scan's snapshot
    prefetch_batches: int = 0  # range scans that issued heap readahead

    def as_dict(self) -> dict:
        return {
            "probes": self.probes,
            "range_scans": self.range_scans,
            "seq_scans": self.seq_scans,
            "tuples_scanned": self.tuples_scanned,
            "tuples_visible": self.tuples_visible,
            "prefetch_batches": self.prefetch_batches,
        }


def _default_anomaly(relation_name: str) -> AnomalyFactory:
    def build(key: "Key", count: int) -> Exception:
        return ReproError(
            f"relation {relation_name!r}: {count} visible versions of "
            f"key {key} (snapshot anomaly)")
    return build


class IndexProbe:
    """Equality probe: all visible versions stored under one key.

    ``recheck_position`` re-verifies the fetched tuple's attribute at
    that position against the probe key — the defence against index
    entries that went stale between a deletion and the vacuum that
    prunes them (a freed slot may be reused by an unrelated tuple).

    ``unique=True`` raises the ``anomaly`` error if more than one
    version is visible.
    """

    def __init__(self, db: "Database", index: "BTree",
                 relation: "HeapRelation", key: "Key", *,
                 unique: bool = False,
                 anomaly: AnomalyFactory | None = None,
                 recheck_position: int | None = None):
        self.db = db
        self.index = index
        self.relation = relation
        self.key = tuple(key)
        self.unique = unique
        self.anomaly = anomaly or _default_anomaly(relation.name)
        self.recheck_position = recheck_position

    def tuples(self, snapshot: Snapshot) -> list[HeapTuple]:
        """All visible versions under the key, in index order."""
        stats = self.db.access_stats
        out: list[HeapTuple] = []
        with self.db.latch:
            stats.probes += 1
            for blockno, slot in self.index.search(self.key):
                stats.tuples_scanned += 1
                tup = self.relation.fetch(TID(blockno, slot), snapshot)
                if tup is None:
                    continue
                if (self.recheck_position is not None
                        and tup.values[self.recheck_position]
                        != self.key[0]):
                    continue
                out.append(tup)
            stats.tuples_visible += len(out)
        if self.unique and len(out) > 1:
            raise self.anomaly(self.key, len(out))
        return out

    def first(self, snapshot: Snapshot) -> HeapTuple | None:
        """The first visible version, stopping at the first hit.

        For rows with many superseded versions (e.g. a hot
        ``pg_largeobject`` size row) this skips fetching the rest of the
        version chain; use :meth:`tuples` when every version matters.
        """
        stats = self.db.access_stats
        with self.db.latch:
            stats.probes += 1
            for blockno, slot in self.index.search(self.key):
                stats.tuples_scanned += 1
                tup = self.relation.fetch(TID(blockno, slot), snapshot)
                if tup is None:
                    continue
                if (self.recheck_position is not None
                        and tup.values[self.recheck_position]
                        != self.key[0]):
                    continue
                stats.tuples_visible += 1
                return tup
        return None


class IndexRangeScan:
    """Leaf-chain scan over ``[lo, hi]`` with batched heap prefetch.

    One root-to-leaf descent finds the first leaf; the scan then walks
    right-sibling pointers, so a long read costs O(entries / leaf
    fanout) node reads.  The heap blocks the entries resolve to are read
    ahead in contiguous runs before the fetch loop pins them.

    ``None`` bounds are open.  ``unique=True`` raises the ``anomaly``
    error when any single key in the scan has several visible versions.
    """

    def __init__(self, db: "Database", index: "BTree",
                 relation: "HeapRelation", lo: "Key | None",
                 hi: "Key | None", *, unique: bool = False,
                 anomaly: AnomalyFactory | None = None):
        self.db = db
        self.index = index
        self.relation = relation
        self.lo = None if lo is None else tuple(lo)
        self.hi = None if hi is None else tuple(hi)
        self.unique = unique
        self.anomaly = anomaly or _default_anomaly(relation.name)

    def entries(self) -> "list[tuple[Key, TID]]":
        """Raw index entries (no heap fetch), materialized under the latch."""
        with self.db.latch:
            self.db.access_stats.range_scans += 1
            return [(key, TID(blockno, slot)) for key, (blockno, slot)
                    in self.index.range_scan(self.lo, self.hi)]

    def visible(self, snapshot: Snapshot,
                wanted: "set[Key] | None" = None
                ) -> "list[tuple[Key, HeapTuple]]":
        """Visible ``(key, tuple)`` pairs in index-key order.

        *wanted* restricts the scan to those keys (the f-chunk read path
        scans ``[min, max]`` of a chunk window but only needs the chunks
        the caller is missing).
        """
        stats = self.db.access_stats
        counts: dict["Key", int] = {}
        out: list[tuple["Key", HeapTuple]] = []
        with self.db.latch:
            stats.range_scans += 1
            pairs = [(key, TID(blockno, slot)) for key, (blockno, slot)
                     in self.index.range_scan(self.lo, self.hi)
                     if wanted is None or key in wanted]
            if self.relation.prefetch_tids(tid for _key, tid in pairs):
                stats.prefetch_batches += 1
            stats.tuples_scanned += len(pairs)
            # One batched heap fetch for the whole entry list: the heap
            # layer shares pins across same-block runs and decodes only
            # visible tuples; results come back in input (index-key)
            # order with their TIDs stamped.
            key_by_tid = {tid: key for key, tid in pairs}
            for tup in self.relation.fetch_many(
                    [tid for _key, tid in pairs], snapshot,
                    prefetch=False):
                key = key_by_tid[tup.tid]
                counts[key] = counts.get(key, 0) + 1
                out.append((key, tup))
            stats.tuples_visible += len(out)
        if self.unique:
            for key, count in counts.items():
                if count > 1:
                    raise self.anomaly(key, count)
        return out

    def tuples(self, snapshot: Snapshot) -> list[HeapTuple]:
        """Visible tuples in index-key order."""
        return [tup for _key, tup in self.visible(snapshot)]


class SeqScan:
    """Full-relation scan: every version examined, visible ones returned.

    Materializes under the engine latch, so the result is a consistent
    cut even while other sessions write.
    """

    def __init__(self, db: "Database", relation: "HeapRelation"):
        self.db = db
        self.relation = relation

    def tuples(self, snapshot: Snapshot) -> list[HeapTuple]:
        stats = self.db.access_stats
        out: list[HeapTuple] = []
        with self.db.latch:
            stats.seq_scans += 1
            for tup in self.relation.scan_versions():
                stats.tuples_scanned += 1
                if snapshot.is_visible(tup.xmin, tup.xmax,
                                       self.relation.clog):
                    out.append(tup)
            stats.tuples_visible += len(out)
        return out


def fetch_visible(db: "Database", relation: "HeapRelation", tid: TID,
                  snapshot: Snapshot) -> HeapTuple | None:
    """Point fetch: the visible tuple at *tid*, latched, or ``None``.

    The TID analogue of :class:`IndexProbe` — the one sanctioned way to
    resolve a caller-supplied TID outside this module (the ``Database``
    facade's ``fetch`` routes through here).
    """
    with db.latch:
        db.access_stats.probes += 1
        db.access_stats.tuples_scanned += 1
        tup = relation.fetch(tid, snapshot)
        if tup is not None:
            db.access_stats.tuples_visible += 1
        return tup


# -- structural checks (integrity sweep) -------------------------------------

def check_index(db: "Database", index: "BTree") -> None:
    """Run the index's structural invariant check under the engine latch."""
    with db.latch:
        index.check_invariants()


def dangling_index_entries(db: "Database", index: "BTree",
                           relation: "HeapRelation"
                           ) -> "list[tuple[Key, TID]]":
    """Index entries whose TID no longer resolves to a decodable tuple."""
    out = []
    with db.latch:
        db.access_stats.range_scans += 1
        for key, (blockno, slot) in index.range_scan():
            tid = TID(blockno, slot)
            try:
                relation.fetch_any_version(tid)
            except ReproError:
                out.append((key, tid))
    return out
