"""The archival vacuum cleaner: history migrates to slower storage.

The POSTGRES storage system [STON87B] pairs no-overwrite versioning with a
*vacuum cleaner* that sweeps superseded tuple versions out of the current
relation and into an **archive** relation — typically placed on the WORM
jukebox, whose write-once semantics suit data that will never change
again.  The paper leans on this design twice: time travel over large
objects (§6.3/§6.4) and the WORM storage manager (§7) are two halves of
one archival story.

Mechanics:

* each class ``X`` gets, on first archive, a companion class ``a_X`` with
  the same schema, on the archive storage manager;
* :meth:`Archiver.archive_class` moves every version that is *dead before
  the horizon* (deleter committed before it, or inserter aborted — the
  latter are discarded, not archived) into ``a_X``, preserving the
  original transaction stamps byte-for-byte;
* current-state readers never look at the archive; **time-travel readers
  chain** the current relation and the archive (see
  :meth:`Archiver.scan_with_archive`), deduplicating versions that a crash
  between the copy and the delete may have left in both places.

Archival is maintenance, not a user transaction: like vacuum in POSTGRES
(and PostgreSQL), it runs outside MVCC and is idempotent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.access.heap import HeapRelation
from repro.access.tuples import HeapTuple, read_stamps
from repro.errors import RelationError
from repro.storage.constants import INVALID_XID
from repro.txn.snapshot import Snapshot
from repro.txn.xlog import TxnStatus

if TYPE_CHECKING:
    from repro.db import Database


def archive_name(class_name: str) -> str:
    """Name of the archive companion class."""
    return f"a_{class_name}"


class Archiver:
    """Moves dead tuple versions into per-class archive relations."""

    def __init__(self, db: "Database", archive_smgr: str = "worm"):
        self.db = db
        self.archive_smgr = archive_smgr

    # -- archive relations -------------------------------------------------------

    def archive_relation(self, class_name: str,
                         create: bool = False) -> HeapRelation | None:
        """The companion archive class, optionally creating it."""
        name = archive_name(class_name)
        if self.db.class_exists(name):
            return self.db.get_class(name)
        if not create:
            return None
        source = self.db.get_class(class_name)
        return self.db.create_class(name, source.schema,
                                    smgr=self.archive_smgr)

    def has_archive(self, class_name: str) -> bool:
        return self.db.class_exists(archive_name(class_name))

    # -- the sweep ------------------------------------------------------------------

    def archive_class(self, class_name: str,
                      horizon: float | None = None) -> dict[str, int]:
        """Sweep *class_name*; returns ``{"archived": n, "discarded": m}``.

        A version is swept when its deleter committed (before *horizon*,
        if one is given).  Versions whose inserter aborted are discarded
        outright — they were never visible to anyone and carry no history.
        Live versions, and versions whose deleter is still in progress,
        stay where they are.
        """
        if class_name.startswith("a_"):
            raise RelationError("archives are not themselves archived")
        relation = self.db.get_class(class_name)
        clog = self.db.clog
        archived = discarded = 0
        archive = self.archive_relation(class_name)
        removed: list = []

        from repro.access.tuples import deserialize_tuple
        from repro.access.tuples import TID as _TID
        for blockno in range(relation.nblocks()):
            buf = relation.bufmgr.pin(relation.smgr, relation.fileid,
                                      blockno)
            dirty = False
            try:
                for slot in buf.page.live_slots():
                    image = buf.page.get_item(slot)
                    xmin, xmax, _oid = read_stamps(image)
                    fate = self._classify(xmin, xmax, horizon, clog)
                    if fate == "keep":
                        continue
                    if fate == "archive":
                        if archive is None:
                            archive = self.archive_relation(class_name,
                                                            create=True)
                        archive.insert_raw(image)
                        archived += 1
                    else:
                        discarded += 1
                    removed.append(deserialize_tuple(
                        relation.schema, image, _TID(blockno, slot)))
                    buf.page.delete_item(slot)
                    dirty = True
                if dirty:
                    buf.page.compact()
                    relation.fsm.record(blockno, buf.page.free_space())
            finally:
                relation.bufmgr.unpin(buf, dirty=dirty)
        if removed:
            # Freed slots may be reused: the class's indexes must not keep
            # entries for the moved/discarded versions.
            self.db.prune_index_entries(class_name, removed)

        if archived and archive is not None:
            # Make the copies durable *before* the deletions can reach the
            # device: a crash in between leaves harmless duplicates, never
            # a hole in history.
            relation.bufmgr.flush_file(archive.smgr, archive.fileid)
        if archived or discarded:
            relation.bufmgr.flush_file(relation.smgr, relation.fileid)
        return {"archived": archived, "discarded": discarded}

    @staticmethod
    def _classify(xmin: int, xmax: int, horizon: float | None,
                  clog) -> str:
        if clog.status(xmin) == TxnStatus.ABORTED:
            return "discard"
        if xmax == INVALID_XID:
            return "keep"
        if clog.status(xmax) != TxnStatus.COMMITTED:
            return "keep"
        if horizon is not None and clog.commit_time(xmax) >= horizon:
            return "keep"
        return "archive"

    # -- time-travel reads across the chain --------------------------------------------

    def scan_with_archive(self, class_name: str,
                          snapshot: Snapshot) -> Iterator[HeapTuple]:
        """Visible tuples from the current class *and* its archive.

        Current-state snapshots never need the archive (it holds only dead
        versions); travelling snapshots read both, deduplicating on the
        (oid, xmin, xmax) identity a crash-duplicated version shares.
        """
        relation = self.db.get_class(class_name)
        seen: set[tuple[int, int, int]] = set()
        for tup in relation.scan(snapshot):
            seen.add((tup.oid, tup.xmin, tup.xmax))
            yield tup
        if not snapshot.travelling():
            return
        archive = self.archive_relation(class_name)
        if archive is None:
            return
        for tup in archive.scan(snapshot):
            key = (tup.oid, tup.xmin, tup.xmax)
            if key not in seen:
                seen.add(key)
                yield tup
