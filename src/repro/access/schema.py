"""Relation schemas and attribute type codecs.

A :class:`Schema` is an ordered list of :class:`Attribute`\\ s.  Each
attribute has a type drawn from the built-in scalar types below; large ADTs
are *not* stored inline — a large-object column is declared with the large
type's name and stores the object's **designator** (an ``oid`` for f-chunk
and v-segment objects, a file path for u-file and p-file objects), which the
ADT layer resolves.  That indirection is the heart of the paper's design:
tuples stay small, objects can be gigabytes.

Scalar values are serialized with a simple length-prefixed format that is
byte-for-byte stable across runs (tests depend on that for checksums).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SchemaError

_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


@dataclass(frozen=True)
class TypeCodec:
    """Encode/decode one scalar type to/from bytes."""

    name: str
    encode: Callable[[Any], bytes]
    decode: Callable[[bytes], Any]
    python_types: tuple[type, ...]

    def check(self, value: Any) -> None:
        if not isinstance(value, self.python_types):
            raise SchemaError(
                f"value {value!r} is not valid for type {self.name} "
                f"(expected {', '.join(t.__name__ for t in self.python_types)})")


def _encode_int4(value: int) -> bytes:
    try:
        return _I32.pack(value)
    except struct.error as exc:
        raise SchemaError(f"int4 out of range: {value}") from exc


def _encode_int8(value: int) -> bytes:
    try:
        return _I64.pack(value)
    except struct.error as exc:
        raise SchemaError(f"int8 out of range: {value}") from exc


def _encode_text(value: str) -> bytes:
    return value.encode("utf-8")


#: Built-in scalar types.  ``oid`` and ``name`` are POSTGRES-flavoured
#: aliases with their historical meanings.
SCALAR_TYPES: dict[str, TypeCodec] = {}


def _register(codec: TypeCodec) -> None:
    SCALAR_TYPES[codec.name] = codec


_register(TypeCodec("int4", _encode_int4,
                    lambda b: _I32.unpack(b)[0], (int,)))
_register(TypeCodec("int8", _encode_int8,
                    lambda b: _I64.unpack(b)[0], (int,)))
_register(TypeCodec("oid", _encode_int8,
                    lambda b: _I64.unpack(b)[0], (int,)))
_register(TypeCodec("float8", lambda v: _F64.pack(float(v)),
                    lambda b: _F64.unpack(b)[0], (int, float)))
_register(TypeCodec("bool", lambda v: b"\x01" if v else b"\x00",
                    lambda b: b == b"\x01", (bool,)))
_register(TypeCodec("text", _encode_text,
                    lambda b: b.decode("utf-8"), (str,)))
_register(TypeCodec("name", _encode_text,
                    lambda b: b.decode("utf-8"), (str,)))
_register(TypeCodec("bytea", bytes,
                    bytes, (bytes, bytearray, memoryview)))


def scalar_codec(type_name: str) -> TypeCodec:
    """The codec for a built-in scalar type name."""
    codec = SCALAR_TYPES.get(type_name)
    if codec is None:
        raise SchemaError(f"unknown scalar type {type_name!r} "
                          f"(have: {sorted(SCALAR_TYPES)})")
    return codec


@dataclass(frozen=True)
class Attribute:
    """One column: a name and a type.

    ``type_name`` may be a scalar type or a registered (large) ADT name;
    non-scalar attributes store their *designator type* on disk, declared
    via ``storage_type`` ("oid" for chunked objects, "text" for file
    paths).
    """

    name: str
    type_name: str
    storage_type: str = ""

    def codec(self) -> TypeCodec:
        return scalar_codec(self.storage_type or self.type_name)


class Schema:
    """Ordered attribute list with record (de)serialization.

    Record wire format: ``natts(u16)`` then, per attribute,
    ``length(u32)`` + payload, with length ``0xFFFFFFFF`` denoting NULL.
    """

    _LEN = struct.Struct("<I")
    _NATTS = struct.Struct("<H")
    _NULL = 0xFFFFFFFF

    def __init__(self, attributes: list[Attribute]):
        if not attributes:
            raise SchemaError("a schema needs at least one attribute")
        names = [attr.name for attr in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {names}")
        self.attributes = list(attributes)
        self._index = {attr.name: i for i, attr in enumerate(attributes)}

    def __len__(self) -> int:
        return len(self.attributes)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Schema)
                and self.attributes == other.attributes)

    def names(self) -> list[str]:
        return [attr.name for attr in self.attributes]

    def position(self, name: str) -> int:
        """Index of attribute *name*."""
        if name not in self._index:
            raise SchemaError(
                f"no attribute {name!r} (have: {self.names()})")
        return self._index[name]

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.position(name)]

    # -- record serialization ----------------------------------------------------

    def encode(self, values: tuple) -> bytes:
        """Serialize one record.  ``None`` encodes as NULL."""
        if len(values) != len(self.attributes):
            raise SchemaError(
                f"record has {len(values)} values for "
                f"{len(self.attributes)} attributes")
        parts = [self._NATTS.pack(len(values))]
        for attr, value in zip(self.attributes, values):
            if value is None:
                parts.append(self._LEN.pack(self._NULL))
                continue
            codec = attr.codec()
            codec.check(value)
            payload = codec.encode(value)
            if len(payload) >= self._NULL:
                raise SchemaError(
                    f"attribute {attr.name!r} value too large "
                    f"({len(payload)} bytes)")
            parts.append(self._LEN.pack(len(payload)))
            parts.append(payload)
        return b"".join(parts)

    def decode(self, data: bytes) -> tuple:
        """Deserialize one record produced by :meth:`encode`."""
        (natts,) = self._NATTS.unpack_from(data, 0)
        if natts != len(self.attributes):
            raise SchemaError(
                f"record has {natts} attributes, schema has "
                f"{len(self.attributes)}")
        pos = self._NATTS.size
        values = []
        for attr in self.attributes:
            (length,) = self._LEN.unpack_from(data, pos)
            pos += self._LEN.size
            if length == self._NULL:
                values.append(None)
                continue
            payload = data[pos:pos + length]
            if len(payload) != length:
                raise SchemaError(
                    f"truncated record while decoding {attr.name!r}")
            values.append(attr.codec().decode(payload))
            pos += length
        return tuple(values)

    # -- catalog persistence -----------------------------------------------------

    def to_dict(self) -> list[dict[str, str]]:
        """JSON-friendly form for the catalog journal."""
        return [{"name": a.name, "type": a.type_name,
                 "storage": a.storage_type}
                for a in self.attributes]

    @classmethod
    def from_dict(cls, data: list[dict[str, str]]) -> "Schema":
        return cls([Attribute(d["name"], d["type"], d.get("storage", ""))
                    for d in data])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{a.name}={a.type_name}" for a in self.attributes)
        return f"Schema({cols})"
