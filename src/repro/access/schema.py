"""Relation schemas and attribute type codecs.

A :class:`Schema` is an ordered list of :class:`Attribute`\\ s.  Each
attribute has a type drawn from the built-in scalar types below; large ADTs
are *not* stored inline — a large-object column is declared with the large
type's name and stores the object's **designator** (an ``oid`` for f-chunk
and v-segment objects, a file path for u-file and p-file objects), which the
ADT layer resolves.  That indirection is the heart of the paper's design:
tuples stay small, objects can be gigabytes.

Scalar values are serialized with a simple length-prefixed format that is
byte-for-byte stable across runs (tests depend on that for checksums).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SchemaError

_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


@dataclass(frozen=True)
class TypeCodec:
    """Encode/decode one scalar type to/from bytes."""

    name: str
    encode: Callable[[Any], bytes]
    decode: Callable[[bytes], Any]
    python_types: tuple[type, ...]

    def check(self, value: Any) -> None:
        if not isinstance(value, self.python_types):
            raise SchemaError(
                f"value {value!r} is not valid for type {self.name} "
                f"(expected {', '.join(t.__name__ for t in self.python_types)})")


def _encode_int4(value: int) -> bytes:
    try:
        return _I32.pack(value)
    except struct.error as exc:
        raise SchemaError(f"int4 out of range: {value}") from exc


def _encode_int8(value: int) -> bytes:
    try:
        return _I64.pack(value)
    except struct.error as exc:
        raise SchemaError(f"int8 out of range: {value}") from exc


def _encode_text(value: str) -> bytes:
    return value.encode("utf-8")


#: Built-in scalar types.  ``oid`` and ``name`` are POSTGRES-flavoured
#: aliases with their historical meanings.
SCALAR_TYPES: dict[str, TypeCodec] = {}


def _register(codec: TypeCodec) -> None:
    SCALAR_TYPES[codec.name] = codec


_register(TypeCodec("int4", _encode_int4,
                    lambda b: _I32.unpack(b)[0], (int,)))
_register(TypeCodec("int8", _encode_int8,
                    lambda b: _I64.unpack(b)[0], (int,)))
_register(TypeCodec("oid", _encode_int8,
                    lambda b: _I64.unpack(b)[0], (int,)))
_register(TypeCodec("float8", lambda v: _F64.pack(float(v)),
                    lambda b: _F64.unpack(b)[0], (int, float)))
_register(TypeCodec("bool", lambda v: b"\x01" if v else b"\x00",
                    lambda b: b == b"\x01", (bool,)))
# str(b, "utf-8") decodes bytes and memoryview alike; bytes.decode would
# reject the zero-copy views the page layer hands out.
_register(TypeCodec("text", _encode_text,
                    lambda b: str(b, "utf-8"), (str,)))
_register(TypeCodec("name", _encode_text,
                    lambda b: str(b, "utf-8"), (str,)))
_register(TypeCodec("bytea", bytes,
                    bytes, (bytes, bytearray, memoryview)))


def scalar_codec(type_name: str) -> TypeCodec:
    """The codec for a built-in scalar type name."""
    codec = SCALAR_TYPES.get(type_name)
    if codec is None:
        raise SchemaError(f"unknown scalar type {type_name!r} "
                          f"(have: {sorted(SCALAR_TYPES)})")
    return codec


@dataclass(frozen=True)
class Attribute:
    """One column: a name and a type.

    ``type_name`` may be a scalar type or a registered (large) ADT name;
    non-scalar attributes store their *designator type* on disk, declared
    via ``storage_type`` ("oid" for chunked objects, "text" for file
    paths).
    """

    name: str
    type_name: str
    storage_type: str = ""

    def codec(self) -> TypeCodec:
        return scalar_codec(self.storage_type or self.type_name)


class Schema:
    """Ordered attribute list with record (de)serialization.

    Record wire format: ``natts(u16)`` then, per attribute,
    ``length(u32)`` + payload, with length ``0xFFFFFFFF`` denoting NULL.
    """

    _LEN = struct.Struct("<I")
    _NATTS = struct.Struct("<H")
    _NULL = 0xFFFFFFFF
    _NULL_LEN = _LEN.pack(_NULL)

    def __init__(self, attributes: list[Attribute]):
        if not attributes:
            raise SchemaError("a schema needs at least one attribute")
        names = [attr.name for attr in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {names}")
        self.attributes = list(attributes)
        self._index = {attr.name: i for i, attr in enumerate(attributes)}
        # Resolve each attribute's codec once.  A None entry means the
        # type isn't a known scalar *yet* (large ADTs may register their
        # storage mapping after the schema is built) — those fall back to
        # the per-call lookup, preserving the original late-binding error.
        self._codecs: list[TypeCodec | None] = []
        for attr in self.attributes:
            try:
                self._codecs.append(
                    scalar_codec(attr.storage_type or attr.type_name))
            except SchemaError:
                self._codecs.append(None)

    def __len__(self) -> int:
        return len(self.attributes)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Schema)
                and self.attributes == other.attributes)

    def names(self) -> list[str]:
        return [attr.name for attr in self.attributes]

    def position(self, name: str) -> int:
        """Index of attribute *name*."""
        if name not in self._index:
            raise SchemaError(
                f"no attribute {name!r} (have: {self.names()})")
        return self._index[name]

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.position(name)]

    # -- record serialization ----------------------------------------------------

    def encode(self, values: tuple) -> bytes:
        """Serialize one record.  ``None`` encodes as NULL."""
        if len(values) != len(self.attributes):
            raise SchemaError(
                f"record has {len(values)} values for "
                f"{len(self.attributes)} attributes")
        parts = [self._NATTS.pack(len(values))]
        pack_len = self._LEN.pack
        for attr, codec, value in zip(self.attributes, self._codecs,
                                      values):
            if value is None:
                parts.append(self._NULL_LEN)
                continue
            if codec is None:
                codec = attr.codec()
            codec.check(value)
            payload = codec.encode(value)
            if len(payload) >= self._NULL:
                raise SchemaError(
                    f"attribute {attr.name!r} value too large "
                    f"({len(payload)} bytes)")
            parts.append(pack_len(len(payload)))
            parts.append(payload)
        return b"".join(parts)

    def encode_many(self, records: list[tuple]) -> list[bytes]:
        """Serialize a batch of records (one image per record).

        Equivalent to ``[self.encode(r) for r in records]`` — one call into
        the codec layer per batch instead of per record.
        """
        encode = self.encode
        return [encode(record) for record in records]

    def decode(self, data) -> tuple:
        """Deserialize one record produced by :meth:`encode`.

        Accepts ``bytes``, ``bytearray``, or a ``memoryview`` into a page
        buffer — the zero-copy read path decodes straight from the pool.
        Variable-length values (text, bytea) are materialized as owned
        objects, so the returned tuple never aliases the page.
        """
        (natts,) = self._NATTS.unpack_from(data, 0)
        attributes = self.attributes
        if natts != len(attributes):
            raise SchemaError(
                f"record has {natts} attributes, schema has "
                f"{len(attributes)}")
        pos = self._NATTS.size
        unpack_len = self._LEN.unpack_from
        null = self._NULL
        values = []
        append = values.append
        data_len = len(data)
        for i, codec in enumerate(self._codecs):
            (length,) = unpack_len(data, pos)
            pos += 4
            if length == null:
                append(None)
                continue
            end = pos + length
            if end > data_len:
                raise SchemaError(
                    f"truncated record while decoding "
                    f"{attributes[i].name!r}")
            if codec is None:
                codec = attributes[i].codec()
            append(codec.decode(data[pos:end]))
            pos = end
        return tuple(values)

    def decode_many(self, images: list) -> list[tuple]:
        """Deserialize a batch of record images.

        Equivalent to ``[self.decode(img) for img in images]``; images may
        be bytes or memoryviews (see :meth:`decode`).
        """
        decode = self.decode
        return [decode(image) for image in images]

    # -- catalog persistence -----------------------------------------------------

    def to_dict(self) -> list[dict[str, str]]:
        """JSON-friendly form for the catalog journal."""
        return [{"name": a.name, "type": a.type_name,
                 "storage": a.storage_type}
                for a in self.attributes]

    @classmethod
    def from_dict(cls, data: list[dict[str, str]]) -> "Schema":
        return cls([Attribute(d["name"], d["type"], d.get("storage", ""))
                    for d in data])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{a.name}={a.type_name}" for a in self.attributes)
        return f"Schema({cols})"
