"""Heap tuples: the versioned on-page record format.

Every stored tuple carries a 32-byte header with the transaction stamps the
no-overwrite storage system needs:

* ``xmin`` — xid of the inserting transaction;
* ``xmax`` — xid of the deleting transaction (0 while the version is live);
* ``oid``  — the tuple's permanent object id, stable across versions, which
  is what large-object chunk records are addressed by;
* ``flags``/``natts`` — reserved bits and a sanity check.

The header is followed by the record bytes produced by
:meth:`repro.access.schema.Schema.encode`.  ``xmax`` is the only field ever
updated in place (setting it marks deletion); everything else is immutable,
which is what makes old versions trustworthy for time travel.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

from repro.access.schema import Schema
from repro.errors import SchemaError
from repro.storage.constants import INVALID_XID, TUPLE_HEADER_SIZE

_HEADER = struct.Struct("<QQQII")
assert _HEADER.size == TUPLE_HEADER_SIZE

#: ``xmax`` is the second u64 of the header — the one field the
#: no-overwrite system ever rewrites on a stored image.
_XMAX = struct.Struct("<Q")
XMAX_OFFSET = 8


@dataclass(frozen=True, order=True)
class TID:
    """Tuple identifier: (block number, slot) within a relation file."""

    blockno: int
    slot: int

    def __repr__(self) -> str:
        return f"({self.blockno},{self.slot})"


@dataclass
class HeapTuple:
    """A decoded tuple version."""

    xmin: int
    xmax: int
    oid: int
    values: tuple
    tid: TID | None = None

    @property
    def is_deleted(self) -> bool:
        """Whether some transaction has stamped this version's xmax."""
        return self.xmax != INVALID_XID

    def value(self, schema: Schema, name: str) -> Any:
        """Attribute *name*'s value under *schema*."""
        return self.values[schema.position(name)]


def serialize_tuple(schema: Schema, xmin: int, oid: int,
                    values: tuple, xmax: int = INVALID_XID) -> bytes:
    """Header + record bytes for a new tuple version."""
    record = schema.encode(values)
    header = _HEADER.pack(xmin, xmax, oid, 0, len(values))
    return header + record


def deserialize_tuple(schema: Schema, data,
                      tid: TID | None = None) -> HeapTuple:
    """Decode an on-page tuple image.

    *data* may be ``bytes`` or a ``memoryview`` into a page buffer; the
    record body is decoded without copying it first (the decoded values
    own their storage, so the result never aliases the page).
    """
    if len(data) < TUPLE_HEADER_SIZE:
        raise SchemaError(
            f"tuple image of {len(data)} bytes is shorter than the header")
    xmin, xmax, oid, _flags, natts = _HEADER.unpack_from(data, 0)
    if natts != len(schema):
        raise SchemaError(
            f"tuple has {natts} attributes, schema expects {len(schema)}")
    if not isinstance(data, memoryview):
        data = memoryview(data)
    values = schema.decode(data[TUPLE_HEADER_SIZE:])
    return HeapTuple(xmin=xmin, xmax=xmax, oid=oid, values=values, tid=tid)


def read_stamps(data) -> tuple[int, int, int]:
    """Fast path: (xmin, xmax, oid) without decoding the record body.

    Works on ``bytes`` or a ``memoryview`` of the on-page image.
    """
    xmin, xmax, oid, _flags, _natts = _HEADER.unpack_from(data, 0)
    return xmin, xmax, oid


def xmax_patch(xmax: int) -> bytes:
    """The 8-byte header patch that stamps *xmax* on a stored image.

    Written at :data:`XMAX_OFFSET` via ``SlottedPage.patch_item`` — the
    in-place equivalent of :func:`stamp_xmax` without copying the image.
    """
    return _XMAX.pack(xmax)


def stamp_xmax(data: bytes, xmax: int) -> bytes:
    """A copy of the tuple image with *xmax* written into the header.

    This is the single in-place mutation the no-overwrite system performs:
    marking a version as superseded.
    """
    xmin, _old_xmax, oid, flags, natts = _HEADER.unpack_from(data, 0)
    return _HEADER.pack(xmin, xmax, oid, flags, natts) + data[TUPLE_HEADER_SIZE:]
