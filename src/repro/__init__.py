"""Reproduction of *Large Object Support in POSTGRES* (Stonebraker &
Olson, ICDE 1993).

The public entry point is :class:`repro.Database`; everything else hangs
off it::

    from repro import Database
    db = Database()
    db.execute('create large type image (storage = f-chunk)')   # section 4
    db.lo          # the four large-object implementations (section 6)
    db.inversion   # the Inversion file system (section 8)
    db.archiver    # the archival vacuum (history -> WORM)

See README.md for a tour and DESIGN.md / EXPERIMENTS.md for the mapping
to the paper.
"""

from repro.client import LargeObjectApi
from repro.db import Database

__version__ = "1.0.0"

__all__ = ["Database", "LargeObjectApi", "__version__"]
