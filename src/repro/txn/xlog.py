"""The commit log (``pg_log``): every transaction's fate, and when.

POSTGRES records two bits per transaction id; we also record the commit
*timestamp*, which classic POSTGRES kept in a companion structure (the TIME
relation) and which time travel needs.  The log is append-only on disk —
one fixed-size record per status change — and replayed on open, so a
database directory can be closed and reopened (or "crashed" mid-transaction:
an xid with no commit record is treated as aborted, which is exactly the
no-overwrite recovery story).
"""

from __future__ import annotations

import enum
import os
import struct
import threading

from repro.errors import TransactionError
from repro.storage.constants import FIRST_XID, INVALID_XID
from repro.txn.lockdep import LockdepMutex


class TxnStatus(enum.IntEnum):
    """Fate of a transaction id."""

    IN_PROGRESS = 0
    COMMITTED = 1
    ABORTED = 2


_RECORD = struct.Struct("<QBd7x")  # xid, status, commit_time, pad to 24

#: Record-type byte for xid high-water-mark records (not a TxnStatus).
_HWM_RECORD = 0xF0

#: Xids are reserved from the log in batches of this size, so a crash can
#: never lead to reusing an xid that stamped tuples on disk.
_XID_BATCH = 64


class CommitLog:
    """Append-only transaction status log with commit times.

    Parameters
    ----------
    path:
        File to persist records to, or ``None`` for a purely in-memory log
        (used by throwaway benchmark databases).
    """

    def __init__(self, path: str | None = None):
        self.path = path
        #: Serializes xid allocation and record appends across sessions —
        #: concurrent commits must not interleave torn half-records, and an
        #: xid must never be handed to two threads.
        self._mutex = LockdepMutex("mutex:xlog")
        self._status: dict[int, TxnStatus] = {}
        self._commit_time: dict[int, float] = {}
        #: Monotonic counter bumped on every commit/abort.  Consumers use
        #: it as a visibility-epoch token: a value cached while the epoch
        #: was E is still trustworthy iff the epoch is still E (nothing
        #: changed fate in between, so no snapshot's view moved).
        self.visibility_epoch = 0
        self._next_xid = FIRST_XID
        self._reserved_until = FIRST_XID  # exclusive upper bound on disk
        self._handle = None
        #: Optional fault plan consulted before each record append (the
        #: crash harness's torn-tail / die-before-log injection points).
        self._fault_plan = None
        if path is not None:
            self._replay()
            self._next_xid = max(self._next_xid, self._reserved_until)
            # repro: allow(R003): pg_log is the durability root — the
            # commit record must hit the platter before smgr-cached data
            # counts, so it bypasses the switch by design (fault
            # injection hooks it via set_fault_plan instead).
            self._handle = open(path, "ab")

    def set_fault_plan(self, plan) -> None:
        """Arm (or with ``None`` disarm) a fault plan over record appends."""
        self._fault_plan = plan

    # -- persistence -----------------------------------------------------------

    def _replay(self) -> None:
        if not os.path.exists(self.path):
            return
        # repro: allow(R003): replaying the raw pg_log file (see above).
        with open(self.path, "rb") as fh:
            data = fh.read()
        usable = len(data) - (len(data) % _RECORD.size)  # drop torn tail
        if usable != len(data):
            # Physically discard the torn tail: appending behind it would
            # leave every later record misaligned and unreadable.
            os.truncate(self.path, usable)
        for pos in range(0, usable, _RECORD.size):
            xid, status, commit_time = _RECORD.unpack_from(data, pos)
            if status == _HWM_RECORD:
                self._reserved_until = max(self._reserved_until, xid)
                continue
            self._status[xid] = TxnStatus(status)
            if status == TxnStatus.COMMITTED:
                self._commit_time[xid] = commit_time
            self._next_xid = max(self._next_xid, xid + 1)

    def _append(self, xid: int, status: TxnStatus, commit_time: float) -> None:
        if self._handle is None:
            return
        record = _RECORD.pack(xid, status, commit_time)
        if self._fault_plan is not None:
            rule = self._fault_plan.check("append", "pg_log")
            if rule is not None:
                if rule.action == "torn":
                    # The record made it to disk only partially — exactly
                    # what a crash mid-append leaves; replay drops it.
                    self._handle.write(record[:rule.keep_bytes])
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                self._fault_plan.fire(
                    rule, f"pg_log append for xid {xid}")
        self._handle.write(record)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the backing file (records already written are durable)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- xid allocation -----------------------------------------------------------

    def allocate_xid(self) -> int:
        """Hand out the next transaction id and mark it in progress.

        Before crossing the on-disk reservation boundary, a high-water-mark
        record reserving the next batch of xids is forced to the log, so no
        xid can ever be handed out twice across a crash.  Allocation is
        thread-safe: concurrent sessions each get a distinct xid.
        """
        with self._mutex:
            xid = self._next_xid
            if self._handle is not None and xid >= self._reserved_until:
                self._reserved_until = xid + _XID_BATCH
                self._handle.write(
                    _RECORD.pack(self._reserved_until, _HWM_RECORD, 0.0))
                self._handle.flush()
                os.fsync(self._handle.fileno())
            self._next_xid += 1
            self._status[xid] = TxnStatus.IN_PROGRESS
            return xid

    # -- status transitions ---------------------------------------------------------

    def set_committed(self, xid: int, commit_time: float) -> None:
        """Record that *xid* committed at *commit_time*.

        The record is forced to disk *before* the in-memory status flips:
        a commit that never became durable must never become visible.
        """
        with self._mutex:
            self._require_in_progress(xid)
            self._append(xid, TxnStatus.COMMITTED, commit_time)
            self._status[xid] = TxnStatus.COMMITTED
            self._commit_time[xid] = commit_time
            self.visibility_epoch += 1

    def set_aborted(self, xid: int) -> None:
        """Record that *xid* aborted."""
        with self._mutex:
            self._require_in_progress(xid)
            self._append(xid, TxnStatus.ABORTED, 0.0)
            self._status[xid] = TxnStatus.ABORTED
            self.visibility_epoch += 1

    def bump_visibility_epoch(self) -> None:
        """Invalidate epoch-keyed caches after physical reorganization.

        Vacuum prunes dead tuples and their index entries without any
        transaction changing fate, so consumers holding epoch-keyed TID
        memos would otherwise chase freed slots.
        """
        with self._mutex:
            self.visibility_epoch += 1

    def _require_in_progress(self, xid: int) -> None:
        status = self.status(xid)
        if status != TxnStatus.IN_PROGRESS:
            raise TransactionError(
                f"transaction {xid} is already {status.name}")

    # -- queries ---------------------------------------------------------------------

    def status(self, xid: int) -> TxnStatus:
        """The fate of *xid*.

        Unknown non-zero xids are **aborted**: after a crash, a transaction
        that never wrote its commit record never happened.
        """
        if xid == INVALID_XID:
            raise TransactionError("the invalid xid has no status")
        return self._status.get(xid, TxnStatus.ABORTED)

    def is_committed(self, xid: int) -> bool:
        return self.status(xid) == TxnStatus.COMMITTED

    def commit_time(self, xid: int) -> float:
        """Commit timestamp of a committed *xid*."""
        if xid not in self._commit_time:
            raise TransactionError(f"transaction {xid} has no commit time "
                                   f"(status {self.status(xid).name})")
        return self._commit_time[xid]

    @property
    def next_xid(self) -> int:
        """The next xid that will be allocated (snapshot ceilings)."""
        return self._next_xid

    def in_progress_xids(self) -> set[int]:
        """All xids currently marked in progress."""
        return {xid for xid, st in self._status.items()
                if st == TxnStatus.IN_PROGRESS}
