"""Lockdep: the declared lock hierarchy and its runtime validator.

The engine has five interacting synchronization layers — strict-2PL
heavyweight locks, byte-range LO locks, the engine latch, Inversion
path locks, and a handful of short-critical-section mutexes.  Their
ordering rules have so far lived as prose in DESIGN.md §"Locking
discipline" and as one lexical lint rule (R002).  This module turns
them into data:

* :data:`HIERARCHY` declares every lock *class* with a rank and a
  domain.  Lower rank = acquired earlier (outermost).  The static
  analyzer (``repro/analysis/lockdep.py``, rules R008/R009) and the
  runtime validator both read this one table, so the checked order and
  the documented order cannot drift apart.

* :class:`LockdepValidator` is the runtime half.  When armed
  (``REPRO_LOCKDEP=1``, set suite-wide by ``tests/conftest.py``) every
  instrumented acquisition records ``(lock class, thread, held set)``
  into a global order graph and is checked *before it can block*:

  - acquiring a *scoped* lock (latch or mutex) ranked below one the
    thread already holds raises :class:`~repro.errors.LockOrderError`
    with both stacks;
  - acquiring a *heavyweight* lock (``LockManager``) while the thread
    holds any scoped lock raises — heavy waits can park a thread for a
    whole transaction, which must never happen under a mutex or the
    engine latch (runtime analogue of rule R009);
  - inside an *operation scope* (pushed by the Inversion path-locking
    helpers), the ``inv_*`` heavyweight family must be acquired in its
    declared protocol order.  The scope is per locking attempt: strict
    2PL keeps earlier operations' locks until commit, so cross
    operation "inversions" within one transaction are expected and are
    recorded but not raised.

* :class:`LockdepMutex` wraps ``threading.Lock``/``RLock`` and carries
  its lock-class name as a constructor literal, e.g.
  ``self._mutex = LockdepMutex("mutex:xlog")``.  That one string is
  read by three consumers: the runtime checks here, the static
  analyzer's classifier, and the hierarchy table in docs.

Observed edges are exported through ``db.statistics()["lockdep"]`` so
stress tests can assert the runtime graph stays inside the declared
hierarchy (:func:`check_edges`).
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass

from repro.errors import LockOrderError

__all__ = [
    "HIERARCHY",
    "INV_FAMILY",
    "LockClass",
    "LockdepMutex",
    "LockdepValidator",
    "VALIDATOR",
    "check_edges",
    "classify_resource",
    "declared_allows",
]


# ---------------------------------------------------------------------------
# The declared hierarchy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LockClass:
    """One row of the lock-hierarchy table.

    ``domain`` is ``"heavy"`` for LockManager resources (held per-xid
    until commit) or ``"scoped"`` for latch/mutex classes (held
    per-thread, released on block exit).  ``rank`` orders acquisition:
    lower rank must be taken first.  Scoped ranks are totally ordered;
    heavy ranks order only the ``inv_*`` family (within one locking
    attempt) — other heavy-vs-heavy orderings are arbitrated by the
    deadlock detector, not by this table.
    """

    name: str
    rank: int
    domain: str
    summary: str


def _table(*rows: tuple[str, int, str, str]) -> dict[str, LockClass]:
    table = {}
    for name, rank, domain, summary in rows:
        table[name] = LockClass(name, rank, domain, summary)
    return table


#: Every lock class in the engine, outermost first.  This is the single
#: source of truth for both the static analyzer and the runtime
#: validator; docs/invariants.md renders the same table as prose.
HIERARCHY: dict[str, LockClass] = _table(
    # -- heavyweight (LockManager) classes: per-xid, strict 2PL --------
    ("lock:inv_dirmove", 10, "heavy",
     "global directory-move token; first lock of a cross-directory "
     "dir rename"),
    ("lock:inv_entry", 11, "heavy",
     "one (parent, name) directory slot; taken before the tree locks "
     "that guard its chain"),
    ("lock:inv_tree", 12, "heavy",
     "one directory subtree, shared root-down along the parent chain"),
    ("lock:inv_stat", 13, "heavy",
     "one file's FILESTAT row; innermost Inversion lock"),
    ("lock:largeobject", 20, "heavy",
     "byte-range LO write lock (rangelock.py); whole-object for "
     "truncate/unlink"),
    ("lock:losize", 21, "heavy",
     "one LO's size row in lo_sizes"),
    ("lock:relation", 22, "heavy",
     "table-level DML lock taken by db.insert/delete/replace"),
    ("lock:other", 29, "heavy",
     "any heavyweight resource not otherwise classified"),
    # -- scoped classes: per-thread latch and mutexes ------------------
    ("latch", 40, "scoped",
     "the engine latch (access/scan.py); serializes structural "
     "mutation; never held across a heavy-lock wait"),
    ("mutex:server", 42, "scoped",
     "server connection registry (server/server.py)"),
    ("mutex:txn", 45, "scoped",
     "transaction-manager active-set mutex; calls into the commit log "
     "while held"),
    ("mutex:xlog", 50, "scoped",
     "commit-log record/xid mutex"),
    ("mutex:lo_registry", 55, "scoped",
     "LO manager descriptor/cursor registries"),
    ("mutex:oid", 60, "scoped",
     "catalog OID allocator"),
    ("mutex:buffer", 65, "scoped",
     "buffer-pool frame table latch; calls the storage manager while "
     "held"),
    ("mutex:smgr", 70, "scoped",
     "sharded storage-manager topology lock; charges the clock while "
     "held"),
    ("mutex:clock", 90, "scoped",
     "simulated clock; innermost lock in the engine"),
)

#: The Inversion path-locking family, in protocol order.  Checked at
#: runtime only inside an operation scope (one path-locking attempt).
INV_FAMILY = ("lock:inv_dirmove", "lock:inv_entry", "lock:inv_tree",
              "lock:inv_stat")


def classify_resource(resource: object) -> str:
    """Map a LockManager resource to its lock class name.

    Resources are either :class:`~repro.txn.rangelock.RangeResource`
    instances (classified by namespace) or plain tuples whose first
    element is a namespace string (``("relation", name)``,
    ``("inv_tree", dir_id)``, ...).
    """
    namespace = getattr(resource, "namespace", None)
    if namespace is None and isinstance(resource, tuple) and resource:
        namespace = resource[0]
    if isinstance(namespace, str):
        name = f"lock:{namespace}"
        if name in HIERARCHY:
            return name
    return "lock:other"


def declared_allows(held: str, acquired: str) -> bool:
    """Whether the declared hierarchy permits ``held -> acquired``.

    Scoped-under-scoped must be non-decreasing in rank (same rank =
    re-entrant or sibling instances, allowed).  Heavy-under-scoped is
    never allowed.  Heavy-to-anything is unconstrained here: heavy
    ordering across operations is the deadlock detector's job, and the
    ``inv_*`` protocol order is enforced per operation scope, not per
    edge (strict 2PL makes cross-operation edges within one
    transaction legitimately "inverted").
    """
    a = HIERARCHY.get(held)
    b = HIERARCHY.get(acquired)
    if a is None or b is None:
        return False
    if a.domain == "scoped":
        if b.domain == "heavy":
            return False
        return b.rank >= a.rank
    return True


def check_edges(edges: dict[str, int]) -> list[str]:
    """Validate an observed-edge dict against the declared hierarchy.

    ``edges`` is the ``db.statistics()["lockdep"]["edges"]`` mapping,
    keyed ``"held -> acquired"``.  Returns the offending keys (empty
    when the runtime graph is a subgraph of the declared order).
    """
    bad = []
    for key in edges:
        held, _, acquired = key.partition(" -> ")
        if not declared_allows(held.strip(), acquired.strip()):
            bad.append(key)
    return sorted(bad)


# ---------------------------------------------------------------------------
# Runtime validator
# ---------------------------------------------------------------------------

def _call_site(skip: int, depth: int) -> tuple:
    """A cheap partial stack: up to ``depth`` caller frames.

    Captured on every instrumented acquisition, so this walks raw frame
    objects instead of building a ``StackSummary`` (no line-text lookup,
    no allocation beyond the result tuple).
    """
    frames = []
    try:
        frame = sys._getframe(skip)
    except ValueError:  # pragma: no cover - shallow stack
        return ()
    while frame is not None and len(frames) < depth:
        code = frame.f_code
        frames.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return tuple(frames)


def _render_site(site: tuple) -> str:
    if not site:
        return "    <no acquisition stack recorded>"
    return "\n".join(f'    File "{f}", line {ln}, in {fn}'
                     for f, ln, fn in site)


class _Held:
    """One scoped lock a thread currently holds."""

    __slots__ = ("name", "rank", "instance", "site", "depth")

    def __init__(self, name: str, rank: int, instance: int, site: tuple):
        self.name = name
        self.rank = rank
        self.instance = instance
        self.site = site
        self.depth = 1  # re-entrant acquisitions of the same instance


class _OpScope:
    """One Inversion locking attempt: watermark over the inv family."""

    __slots__ = ("label", "rank", "name", "site")

    def __init__(self, label: str):
        self.label = label
        self.rank = -1       # highest inv rank acquired so far
        self.name = ""       # ...and its class name
        self.site = ()       # ...and where


class LockdepValidator:
    """Global runtime lock-order validator (one per process).

    Disarmed (the default outside the test suite) every hook is a
    single attribute check.  Armed, scoped state lives in
    ``threading.local`` so the hot path takes no shared lock; the edge
    graph is a plain dict mutated under the GIL (counts are
    best-effort under contention, keys are not).
    """

    #: frames kept per acquisition site; violations render these.
    stack_depth = 6

    def __init__(self) -> None:
        self.armed = False
        self._tls = threading.local()
        self._edges: dict[str, int] = {}
        self._heavy_mutex = threading.Lock()
        self._heavy_held: dict[int, dict[str, int]] = {}  # xid -> class -> n
        self._violations = 0

    # -- arming --------------------------------------------------------

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def reset(self) -> None:
        """Clear the observed graph (held-state is left to unwind)."""
        self._edges = {}
        with self._heavy_mutex:
            self._heavy_held = {}
        self._violations = 0

    # -- per-thread state ----------------------------------------------

    def _scoped(self) -> list:
        stack = getattr(self._tls, "scoped", None)
        if stack is None:
            stack = self._tls.scoped = []
        return stack

    def _ops(self) -> list:
        ops = getattr(self._tls, "ops", None)
        if ops is None:
            ops = self._tls.ops = []
        return ops

    # -- edges ---------------------------------------------------------

    def _record_edge(self, held: str, acquired: str) -> None:
        key = f"{held} -> {acquired}"
        edges = self._edges
        edges[key] = edges.get(key, 0) + 1

    def edges(self) -> dict[str, int]:
        return dict(self._edges)

    def as_dict(self) -> dict:
        """The ``db.statistics()["lockdep"]`` payload."""
        return {
            "armed": self.armed,
            "edges": self.edges(),
            "violations": self._violations,
        }

    # -- scoped (latch / mutex) hooks ----------------------------------

    def scoped_check(self, name: str, instance: int) -> None:
        """Validate taking scoped lock ``name`` *before* blocking on it.

        Raises :class:`LockOrderError` if the calling thread already
        holds a scoped lock of higher rank.  Re-entrant acquisition of
        the *same instance* is always allowed (it cannot block).
        """
        stack = self._scoped()
        if not stack:
            return
        for held in stack:
            if held.instance == instance:
                return  # re-entrant: cannot deadlock
        rank = HIERARCHY[name].rank
        for held in stack:
            self._record_edge(held.name, name)
        worst = max(stack, key=lambda h: h.rank)
        if rank < worst.rank:
            self._violations += 1
            raise LockOrderError(
                f"lock-order inversion: acquiring {name} "
                f"(rank {rank}) while holding {worst.name} "
                f"(rank {worst.rank}); the hierarchy requires "
                f"{name} first.\n"
                f"  {worst.name} was acquired at:\n"
                f"{_render_site(worst.site)}\n"
                f"  {name} is being acquired at:\n"
                f"{_render_site(_call_site(2, self.stack_depth))}")

    def scoped_acquired(self, name: str, instance: int) -> None:
        """Record that the calling thread now holds ``name``."""
        stack = self._scoped()
        for held in stack:
            if held.instance == instance:
                held.depth += 1
                return
        stack.append(_Held(name, HIERARCHY[name].rank, instance,
                           _call_site(2, self.stack_depth)))

    def scoped_released(self, instance: int) -> None:
        stack = getattr(self._tls, "scoped", None)
        if not stack:
            return
        for i in range(len(stack) - 1, -1, -1):
            if stack[i].instance == instance:
                stack[i].depth -= 1
                if stack[i].depth == 0:
                    del stack[i]
                return

    def scoped_held(self) -> list[str]:
        """Class names of scoped locks held by the calling thread."""
        return [h.name for h in self._scoped()]

    # -- operation scopes (Inversion path-locking attempts) ------------

    class _Operation:
        __slots__ = ("_validator", "_scope")

        def __init__(self, validator: "LockdepValidator", label: str):
            self._validator = validator
            self._scope = _OpScope(label)

        def __enter__(self):
            self._validator._ops().append(self._scope)
            return self._scope

        def __exit__(self, exc_type, exc, tb):
            ops = self._validator._ops()
            if ops and ops[-1] is self._scope:
                ops.pop()
            elif self._scope in ops:  # pragma: no cover - defensive
                ops.remove(self._scope)

    def operation(self, label: str) -> "LockdepValidator._Operation":
        """Open a locking-attempt scope for the ``inv_*`` order check.

        Within the scope, acquisitions of the Inversion family must be
        non-decreasing in declared rank.  Each retry of a path-locking
        loop opens a fresh scope: the retry legitimately starts over
        (still holding the previous attempt's 2PL locks), and only the
        per-attempt order is the protocol.
        """
        return LockdepValidator._Operation(self, label)

    # -- heavyweight (LockManager) hooks -------------------------------

    def heavy_acquiring(self, xid: int, resource: object) -> None:
        """Validate a LockManager acquisition before it can block."""
        name = classify_resource(resource)
        scoped = self._scoped()
        if scoped:
            for held in scoped:
                self._record_edge(held.name, name)
            worst = max(scoped, key=lambda h: h.rank)
            self._violations += 1
            raise LockOrderError(
                f"blocking-under-mutex: acquiring heavyweight {name} "
                f"({resource!r}) while holding scoped lock "
                f"{worst.name}; a heavy-lock wait can park this thread "
                f"until another transaction commits, so it must never "
                f"be entered while holding the latch or a mutex.\n"
                f"  {worst.name} was acquired at:\n"
                f"{_render_site(worst.site)}\n"
                f"  {name} is being acquired at:\n"
                f"{_render_site(_call_site(2, self.stack_depth))}")
        with self._heavy_mutex:
            held_classes = self._heavy_held.setdefault(xid, {})
            for held_name in held_classes:
                if held_name != name:
                    self._record_edge(held_name, name)
            held_classes[name] = held_classes.get(name, 0) + 1
        ops = getattr(self._tls, "ops", None)
        if ops and name in INV_FAMILY:
            scope = ops[-1]
            rank = HIERARCHY[name].rank
            if rank < scope.rank:
                self._violations += 1
                raise LockOrderError(
                    f"lock-order inversion in Inversion locking attempt "
                    f"{scope.label!r}: acquiring {name} (rank {rank}) "
                    f"after {scope.name} (rank {scope.rank}); the "
                    f"path-locking protocol is "
                    f"{' -> '.join(INV_FAMILY)}.\n"
                    f"  {scope.name} was acquired at:\n"
                    f"{_render_site(scope.site)}\n"
                    f"  {name} is being acquired at:\n"
                    f"{_render_site(_call_site(2, self.stack_depth))}")
            if rank > scope.rank:
                scope.rank = rank
                scope.name = name
                scope.site = _call_site(2, self.stack_depth)

    def heavy_released_all(self, xid: int) -> None:
        """Forget ``xid``'s held classes (2PL release at txn end)."""
        with self._heavy_mutex:
            self._heavy_held.pop(xid, None)


#: The process-wide validator.  Armed explicitly (tests/conftest.py) or
#: by the environment at import time, mirroring REPRO_DEBUG_LATCH.
VALIDATOR = LockdepValidator()

if os.environ.get("REPRO_LOCKDEP", "") not in ("", "0"):
    VALIDATOR.arm()


# ---------------------------------------------------------------------------
# LockdepMutex
# ---------------------------------------------------------------------------

class LockdepMutex:
    """A ``threading.Lock``/``RLock`` that declares its lock class.

    The constructor literal — ``LockdepMutex("mutex:xlog")`` — is the
    contract: the runtime validator checks it on every acquisition and
    the static analyzer reads the assignment to classify ``with
    self._mutex:`` sites without type inference.  Disarmed overhead is
    one attribute check per acquire.
    """

    __slots__ = ("_lock", "name")

    def __init__(self, name: str, *, reentrant: bool = False):
        if name not in HIERARCHY or HIERARCHY[name].domain != "scoped":
            raise ValueError(f"unknown scoped lock class {name!r} "
                             f"(declare it in repro/txn/lockdep.py)")
        self.name = name
        self._lock = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        validate = VALIDATOR.armed
        if validate:
            VALIDATOR.scoped_check(self.name, id(self))
        acquired = self._lock.acquire(blocking, timeout)
        if acquired and validate:
            VALIDATOR.scoped_acquired(self.name, id(self))
        return acquired

    def release(self) -> None:
        self._lock.release()
        if VALIDATOR.armed:
            VALIDATOR.scoped_released(id(self))

    def __enter__(self) -> "LockdepMutex":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LockdepMutex({self.name!r})"
