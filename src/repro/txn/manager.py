"""The transaction manager: begin / commit / abort with force-at-commit.

Commit follows the POSTGRES storage-system recipe (no WAL):

1. flush every relation file the transaction dirtied, in block order
   (:meth:`~repro.storage.buffer.BufferManager.flush_file`);
2. append the commit record — with the commit *timestamp* used by time
   travel — to ``pg_log``.

If the process dies between 1 and 2 the transaction simply never committed:
its tuples are on disk but stamped with an xid whose status is aborted, so
no reader ever sees them.  Abort is therefore free — release locks, run the
abort hooks, and walk away.

Hooks exist because two of the paper's large-object implementations
(u-file and p-file, §6.1–6.2) live *outside* the database and "the database
cannot guarantee transaction semantics" for them; the hooks let the
large-object manager at least unlink files allocated by a transaction that
aborted.
"""

from __future__ import annotations

import enum
import threading
from typing import TYPE_CHECKING, Callable

from repro.errors import NoActiveTransaction, SimulatedCrash, TransactionError
from repro.txn.lockdep import LockdepMutex
from repro.txn.locks import LockManager
from repro.txn.snapshot import Snapshot
from repro.txn.xlog import CommitLog

if TYPE_CHECKING:
    # Runtime imports would close an import cycle now that the storage
    # and sim layers import repro.txn.lockdep (whose parent package
    # imports this module); both names are type-only here.
    from repro.sim.clock import SimClock
    from repro.storage.buffer import BufferManager


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work; created by :meth:`TransactionManager.begin`."""

    def __init__(self, xid: int, manager: "TransactionManager"):
        self.xid = xid
        self.manager = manager
        self.state = TxnState.ACTIVE
        #: (smgr, fileid) pairs dirtied by this transaction.
        self.touched: list[tuple[object, str]] = []
        self._touched_keys: set[tuple[str, str]] = set()
        #: Run at the start of commit, before pages are forced — open
        #: large-object descriptors flush their write buffers here.
        self.before_commit: list[Callable[[], None]] = []
        self.on_commit: list[Callable[[], None]] = []
        self.on_abort: list[Callable[[], None]] = []

    def touch(self, smgr, fileid: str) -> None:
        """Record that this transaction dirtied *fileid* on *smgr*."""
        key = (smgr.smgr_id, fileid)
        if key not in self._touched_keys:
            self._touched_keys.add(key)
            self.touched.append((smgr, fileid))

    @property
    def is_active(self) -> bool:
        return self.state == TxnState.ACTIVE

    def require_active(self) -> None:
        if self.state != TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.xid} is {self.state.value}")

    def commit(self) -> None:
        self.manager.commit(self)

    def abort(self) -> None:
        self.manager.abort(self)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state == TxnState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transaction(xid={self.xid}, {self.state.value})"


class TransactionManager:
    """Allocates xids, drives commit/abort, and builds snapshots."""

    def __init__(self, clog: CommitLog, bufmgr: BufferManager,
                 locks: LockManager, clock: SimClock):
        self.clog = clog
        self.bufmgr = bufmgr
        self.locks = locks
        self.clock = clock
        self._active: dict[int, Transaction] = {}
        #: Guards the active-transaction table: sessions begin/commit/abort
        #: concurrently, and snapshots must see a consistent active set.
        #: Ordered before mutex:xlog — begin() allocates the xid while
        #: holding it (see the hierarchy table in repro/txn/lockdep.py).
        self._mutex = LockdepMutex("mutex:txn")

    # -- lifecycle ----------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a new transaction.

        The xid is allocated and registered in the active table under one
        critical section: ``snapshot()`` reads the ceiling first and the
        active set under the same mutex afterwards, so a snapshot can
        never observe a ceiling above the new xid without also seeing it
        active — in either order of the race the new transaction stays
        invisible until it commits *after* the snapshot exists.
        """
        with self._mutex:
            xid = self.clog.allocate_xid()
            txn = Transaction(xid, self)
            self._active[xid] = txn
        return txn

    def commit(self, txn: Transaction) -> None:
        """Force dirty pages, then make the commit durable and visible.

        A failure anywhere before the commit record — a ``before_commit``
        hook, a page write, a sync — **aborts** the transaction: locks are
        released, abort hooks run, and the original exception propagates.
        The one exception is :class:`SimulatedCrash` from the
        fault-injection harness, which models the process dying and must
        not trigger cleanup a dead process could never run.
        """
        txn.require_active()
        try:
            for hook in txn.before_commit:
                hook()
            for smgr, fileid in txn.touched:
                if smgr.exists(fileid):  # file may have been dropped again
                    self.bufmgr.flush_file(smgr, fileid)
        except SimulatedCrash:
            raise
        except BaseException:
            # Abort rather than leave the session wedged ACTIVE with locks
            # held.  If an abort hook also fails, its error propagates with
            # the original failure attached as context.
            self.abort(txn)
            raise
        self.clog.set_committed(txn.xid, self.clock.now())
        txn.state = TxnState.COMMITTED
        self._finish(txn, txn.on_commit)

    def abort(self, txn: Transaction) -> None:
        """Abandon the transaction; its tuples become permanent garbage."""
        txn.require_active()
        self.clog.set_aborted(txn.xid)
        txn.state = TxnState.ABORTED
        self._finish(txn, txn.on_abort)

    def _finish(self, txn: Transaction, hooks: list[Callable[[], None]]) -> None:
        with self._mutex:
            self._active.pop(txn.xid, None)
        self.locks.release_all(txn.xid)
        failures = []
        for hook in hooks:
            try:
                hook()
            except Exception as exc:  # hooks must all run
                failures.append(exc)
        if failures:
            raise TransactionError(
                f"{len(failures)} end-of-transaction hook(s) failed: "
                f"{failures[0]}") from failures[0]

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self, txn: Transaction | None = None,
                 as_of: float | None = None,
                 until: float | None = None) -> Snapshot:
        """Visibility snapshot for *txn* (or a detached reader).

        ``as_of`` alone reads a past instant; ``as_of`` + ``until`` reads
        every version alive at any point in the interval (POSTQUEL's
        ``CLASS["t1", "t2"]``).
        """
        xid = txn.xid if txn is not None else 0
        # Ceiling first: a transaction that begins between the two reads
        # then lands above the ceiling (invisible) instead of slipping past
        # the active set and becoming visible once it commits.
        ceiling = self.clog.next_xid
        with self._mutex:
            active = frozenset(x for x in self._active if x != xid)
        return Snapshot(xid=xid, active_xids=active, as_of=as_of,
                        until=until, xid_ceiling=ceiling)

    def active_count(self) -> int:
        """Number of transactions currently in progress."""
        with self._mutex:
            return len(self._active)

    def require_transaction(self, txn: Transaction | None) -> Transaction:
        """Validate that *txn* is a live transaction (helper for callers)."""
        if txn is None:
            raise NoActiveTransaction(
                "this operation must run inside a transaction")
        txn.require_active()
        return txn
