"""Snapshots and the visibility rules, including time travel.

A tuple version carries ``xmin`` (inserting xid) and ``xmax`` (deleting
xid, or 0 while live).  A :class:`Snapshot` decides which versions a reader
sees:

* a **current** snapshot (``as_of is None``) sees versions inserted by a
  committed transaction that was not in progress when the snapshot was
  taken — plus the reader's own uncommitted work;
* a **time-travel** snapshot (``as_of = T``) sees the version whose commit
  interval ``[commit(xmin), commit(xmax))`` contains ``T``, ignoring all
  in-progress work.  This is the rule that gives f-chunk and v-segment
  large objects "fine-grained time travel over versions" for free;
* a **time-range** snapshot (``as_of = T1, until = T2`` — POSTQUEL's
  ``EMP["T1", "T2"]``) sees *every* version whose lifetime intersects
  ``[T1, T2]``, so a query can retrieve all historical states of an
  object across an interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.constants import INVALID_XID
from repro.txn.xlog import CommitLog, TxnStatus


@dataclass(frozen=True)
class Snapshot:
    """An immutable visibility decision procedure.

    Parameters
    ----------
    xid:
        The observing transaction's id (0 for a detached reader).
    active_xids:
        Xids in progress at snapshot creation; their effects are invisible.
    as_of:
        Historical timestamp for time travel, or ``None`` for "now".
    """

    xid: int
    active_xids: frozenset[int] = field(default_factory=frozenset)
    as_of: float | None = None
    #: Upper bound of a time-range snapshot; ``None`` means a point query
    #: at ``as_of``.  Only meaningful when ``as_of`` is set.
    until: float | None = None
    #: Xids at or above this began after the snapshot; their effects are
    #: invisible even once they commit (the snapshot's future horizon).
    xid_ceiling: int = 2**63

    def travelling(self) -> bool:
        """Whether this snapshot reads a historical state."""
        return self.as_of is not None

    # -- component rules --------------------------------------------------------

    def _xid_did_commit_for_me(self, xid: int, clog: CommitLog) -> bool:
        """Whether *xid*'s effects are settled-and-visible to this snapshot."""
        if xid == self.xid:
            return True  # my own work
        if xid in self.active_xids:
            return False  # concurrent: invisible regardless of later fate
        if xid >= self.xid_ceiling:
            return False  # began after this snapshot was taken
        return clog.status(xid) == TxnStatus.COMMITTED

    def _visible_now(self, xmin: int, xmax: int, clog: CommitLog) -> bool:
        if not self._xid_did_commit_for_me(xmin, clog):
            return False
        if xmax == INVALID_XID:
            return True
        return not self._xid_did_commit_for_me(xmax, clog)

    def _visible_as_of(self, xmin: int, xmax: int, clog: CommitLog) -> bool:
        """Version lifetime [commit(xmin), commit(xmax)) must intersect
        the query interval [as_of, until] (a point when until is None)."""
        if clog.status(xmin) != TxnStatus.COMMITTED:
            return False
        upper = self.until if self.until is not None else self.as_of
        if clog.commit_time(xmin) > upper:
            return False
        if xmax == INVALID_XID:
            return True
        if clog.status(xmax) != TxnStatus.COMMITTED:
            return True  # deletion not (yet) committed: version still live
        return clog.commit_time(xmax) > self.as_of

    # -- public entry point -------------------------------------------------------

    def is_visible(self, xmin: int, xmax: int, clog: CommitLog) -> bool:
        """Whether a tuple version stamped (*xmin*, *xmax*) is visible."""
        if self.as_of is not None:
            return self._visible_as_of(xmin, xmax, clog)
        return self._visible_now(xmin, xmax, clog)
