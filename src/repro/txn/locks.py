"""Two-phase locking with shared/exclusive modes and no-wait conflicts.

The library runs transactions cooperatively in one process, so a lock that
cannot be granted raises :class:`~repro.errors.LockError` immediately (the
classic *no-wait* policy) instead of blocking — blocking would deadlock a
single-threaded caller, and no-wait makes deadlock impossible by
construction.  Locks are held until end of transaction (strict 2PL) and
released in bulk by the transaction manager.

Resources are identified by arbitrary hashable keys; the conventional keys
are ``("relation", name)`` and ``("largeobject", oid)``.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Hashable

from repro.errors import LockError


class LockMode(enum.Enum):
    """Lock compatibility: SHARED conflicts only with EXCLUSIVE."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class LockManager:
    """Grant table mapping resource keys to holder xids and modes."""

    def __init__(self) -> None:
        #: resource -> {xid: mode}
        self._grants: dict[Hashable, dict[int, LockMode]] = defaultdict(dict)

    def acquire(self, xid: int, resource: Hashable, mode: LockMode) -> None:
        """Grant *mode* on *resource* to *xid*, or raise :class:`LockError`.

        Re-acquiring an already-held mode is a no-op; holding SHARED and
        asking for EXCLUSIVE upgrades when no other transaction holds the
        lock.
        """
        holders = self._grants[resource]
        held = holders.get(xid)
        if held == LockMode.EXCLUSIVE or held == mode:
            return
        others = {x: m for x, m in holders.items() if x != xid}
        if mode == LockMode.SHARED:
            if any(m == LockMode.EXCLUSIVE for m in others.values()):
                raise LockError(
                    f"txn {xid} cannot share-lock {resource!r}: "
                    f"exclusively held by txn "
                    f"{self._exclusive_holder(others)}")
        else:
            if others:
                raise LockError(
                    f"txn {xid} cannot exclusive-lock {resource!r}: "
                    f"held by txns {sorted(others)}")
        holders[xid] = mode

    @staticmethod
    def _exclusive_holder(others: dict[int, LockMode]) -> int:
        return next(x for x, m in others.items() if m == LockMode.EXCLUSIVE)

    def release_all(self, xid: int) -> int:
        """Drop every lock held by *xid* (end of transaction)."""
        released = 0
        empty = []
        for resource, holders in self._grants.items():
            if holders.pop(xid, None) is not None:
                released += 1
            if not holders:
                empty.append(resource)
        for resource in empty:
            del self._grants[resource]
        return released

    def holds(self, xid: int, resource: Hashable,
              mode: LockMode | None = None) -> bool:
        """Whether *xid* holds a lock (of *mode*, if given) on *resource*."""
        held = self._grants.get(resource, {}).get(xid)
        if held is None:
            return False
        if mode is None:
            return True
        return held == mode or held == LockMode.EXCLUSIVE

    def holders(self, resource: Hashable) -> dict[int, LockMode]:
        """Current holders of *resource* (copy)."""
        return dict(self._grants.get(resource, {}))
