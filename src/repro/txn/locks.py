"""Two-phase locking with shared/exclusive modes, blocking or no-wait.

The lock manager serves two deployment shapes:

* **Blocking (the default).**  A request that cannot be granted joins a
  FIFO wait queue and the calling thread sleeps until a release makes it
  grantable.  Before sleeping, the waiter runs **wait-for-graph deadlock
  detection**: as long as the new wait edge closes a cycle, the youngest
  transaction in that cycle is chosen as victim and re-detection runs —
  one new edge can close several cycles at once, and each needs its own
  victim.  A victim's ``acquire`` raises
  :class:`~repro.errors.DeadlockError` (the victim's session must then
  abort, which releases its locks and unblocks the survivors), and a
  victimized waiter is never granted — it always wakes into the error.
  Detection is synchronous and graph-based — no background thread, no
  timeout heuristics — so a two-session cycle is resolved within one
  wakeup.

  The wait-for graph can only see transactions that are *waiting*; a
  conflicting holder whose owning thread is the one about to park will
  never release (that thread would be asleep), so such a request raises
  :class:`~repro.errors.LockError` immediately instead of hanging — the
  single-threaded two-transaction conflict the no-wait policy used to
  reject stays an error, not a deadlock the detector cannot reach.

* **No-wait (``no_wait=True``), the paper-faithful policy.**  A lock that
  cannot be granted raises :class:`~repro.errors.LockError` immediately.
  The original POSTGRES library ran transactions cooperatively in one
  process, where blocking would hang the only thread and no-wait makes
  deadlock impossible by construction.

Locks are held until end of transaction (strict 2PL) and released in bulk
by the transaction manager.  Grant order is FIFO with two exceptions that
match classic lock managers: a SHARED→EXCLUSIVE *upgrade* depends only on
the other holders (it never queues behind fresh requests, which would
self-deadlock), and compatible re-acquisition is a no-op.

Resources are identified by arbitrary hashable keys; the conventional keys
are ``("relation", name)`` and ``("losize", oid)``.  A resource may also
be a :class:`~repro.txn.rangelock.RangeResource` — a byte interval of one
object — in which case two grants conflict only when their intervals
*overlap*: disjoint-range writers to one large object proceed in
parallel, a whole-object ``[0, inf)`` range conflicts with everyone.  All
ranges of an object share one FIFO wait queue (keyed by the range's
*group*), so fairness, upgrade queue-jumping, and the wait-for graph work
across granularities.  A holder extending its own coverage (requesting a
range that overlaps something it already holds) is treated like an
upgrade: it waits only on conflicting holders, never behind queued fresh
requests, which would self-deadlock.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable

from repro.errors import DeadlockError, LockError, LockTimeout
from repro.txn import lockdep
from repro.txn.rangelock import RangeResource


class LockMode(enum.Enum):
    """Lock compatibility: SHARED conflicts only with EXCLUSIVE."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


def _compatible(held: LockMode, wanted: LockMode) -> bool:
    return held is LockMode.SHARED and wanted is LockMode.SHARED


def _queue_key(resource: Hashable) -> Hashable:
    """The wait-queue key: ranges of one object share a queue."""
    return resource.group if isinstance(resource, RangeResource) else resource


def _resources_conflict(a: Hashable, b: Hashable) -> bool:
    """Whether grants on *a* and *b* can conflict at all (key level)."""
    if isinstance(a, RangeResource):
        return isinstance(b, RangeResource) and a.overlaps(b)
    return a == b


@dataclass
class LockStats:
    """Counters surfaced through ``db.statistics()["locks"]``."""

    #: Requests granted without blocking (includes no-op re-acquires).
    granted_immediately: int = 0
    #: Requests that had to join a wait queue.
    waits: int = 0
    #: Wall-clock seconds spent blocked, summed over all waiters.
    wait_time: float = 0.0
    #: Wait-for cycles found by the detector.
    deadlocks_detected: int = 0
    #: Waiters that raised :class:`DeadlockError` as the chosen victim.
    victims: int = 0
    #: Waiters that gave up after their timeout.
    timeouts: int = 0
    #: SHARED → EXCLUSIVE upgrades granted.
    upgrades: int = 0
    #: Locks dropped by :meth:`LockManager.release_all`.
    released: int = 0
    #: Byte-range lock requests granted (immediately or after a wait).
    range_locks: int = 0
    #: Byte-range lock requests that had to join a wait queue — the
    #: "disjoint writers do not serialize" metric: parallel writers to
    #: non-overlapping regions leave this at zero.
    range_waits: int = 0

    def as_dict(self) -> dict:
        return {
            "granted_immediately": self.granted_immediately,
            "waits": self.waits,
            "wait_time": self.wait_time,
            "deadlocks_detected": self.deadlocks_detected,
            "victims": self.victims,
            "timeouts": self.timeouts,
            "upgrades": self.upgrades,
            "released": self.released,
            "range_locks": self.range_locks,
            "range_waits": self.range_waits,
        }


class _Waiter:
    """One blocked ``acquire`` call, parked in a resource's FIFO queue."""

    __slots__ = ("xid", "resource", "mode", "upgrade", "granted", "victim",
                 "cycle", "grant_count")

    def __init__(self, xid: int, resource: Hashable, mode: LockMode,
                 upgrade: bool):
        self.xid = xid
        self.resource = resource
        self.mode = mode
        #: The waiter already holds a grant on this resource (classic
        #: SHARED→EXCLUSIVE upgrade) or on an overlapping range (a holder
        #: extending its coverage); either way it must wait only on the
        #: conflicting holders, never behind queued fresh requests.
        self.upgrade = upgrade
        self.granted = False
        self.victim = False
        self.cycle: list[int] | None = None
        #: Times a grant pass woke this waiter; must end up exactly 1.
        self.grant_count = 0


class LockManager:
    """Grant table + wait queues mapping resource keys to holder xids.

    Parameters
    ----------
    no_wait:
        Default conflict policy; ``True`` restores the paper's no-wait
        rejection.  Overridable per call.
    timeout:
        Default bound (seconds) on any blocking wait, raising
        :class:`LockTimeout` when exceeded; ``None`` waits forever.
        Deadlocks are detected by the graph check regardless — the
        timeout is a safety net for waits on sessions that simply never
        finish, not the detection mechanism.
    """

    def __init__(self, no_wait: bool = False,
                 timeout: float | None = None) -> None:
        self.no_wait = no_wait
        self.timeout = timeout
        self.stats = LockStats()
        self._cond = threading.Condition(threading.Lock())
        #: resource -> {xid: mode}
        self._grants: dict[Hashable, dict[int, LockMode]] = defaultdict(dict)
        #: range group -> granted RangeResources of that object (the
        #: conflict scan for a range walks its group, not the whole table)
        self._groups: dict[Hashable, set[RangeResource]] = {}
        #: queue key (resource, or range group) -> FIFO of blocked requests
        self._waiters: dict[Hashable, list[_Waiter]] = {}
        #: xid -> ident of the thread that last acquired for it; lets a
        #: blocking request detect that its wait chain dead-ends in a
        #: transaction its own (about-to-park) thread controls.
        self._xid_threads: dict[int, int] = {}

    # -- acquisition ---------------------------------------------------------------

    def acquire(self, xid: int, resource: Hashable, mode: LockMode, *,
                no_wait: bool | None = None,
                timeout: float | None = None) -> None:
        """Grant *mode* on *resource* to *xid*, waiting if necessary.

        Re-acquiring an already-held mode is a no-op; holding SHARED and
        asking for EXCLUSIVE upgrades when no other transaction holds the
        lock.  In no-wait mode an ungrantable request raises
        :class:`LockError`; in blocking mode the call sleeps until granted,
        raises :class:`DeadlockError` if this transaction is picked as a
        deadlock victim, or :class:`LockTimeout` after *timeout* seconds.
        """
        wait_allowed = not (self.no_wait if no_wait is None else no_wait)
        if timeout is None:
            timeout = self.timeout
        if lockdep.VALIDATOR.armed:
            # Raises LockOrderError *before* we can park: a heavy-lock
            # wait while holding the latch or a mutex is a hierarchy
            # violation regardless of whether this request would block.
            lockdep.VALIDATOR.heavy_acquiring(xid, resource)
        with self._cond:
            self._xid_threads[xid] = threading.get_ident()
            if self._try_grant(xid, resource, mode):
                self.stats.granted_immediately += 1
                if isinstance(resource, RangeResource):
                    self.stats.range_locks += 1
                return
            if not wait_allowed:
                raise LockError(self._conflict_message(xid, resource, mode))
            self._wait(xid, resource, mode, timeout)
            if isinstance(resource, RangeResource):
                self.stats.range_locks += 1

    def _wait(self, xid: int, resource: Hashable, mode: LockMode,
              timeout: float | None) -> None:
        """Park the caller until granted, victimized, or timed out.

        Runs with ``self._cond`` held (re-taken around each sleep).
        """
        waiter = _Waiter(xid, resource, mode,
                         upgrade=self._holds_conflictable(xid, resource))
        self._waiters.setdefault(_queue_key(resource), []).append(waiter)
        blocker = self._same_thread_blocker(xid)
        if blocker is not None:
            self._remove_waiter(waiter)
            raise LockError(
                f"txn {xid} cannot wait for {mode.value} lock on "
                f"{resource!r}: the wait depends on txn {blocker}, which "
                f"this same thread controls and could never release while "
                f"parked (self-deadlock)")
        self.stats.waits += 1
        if isinstance(resource, RangeResource):
            self.stats.range_waits += 1
        # repro: allow(R004): lock waits block real threads, and the
        # simulated clock does not advance while a thread sleeps —
        # wait timeouts must measure real elapsed (monotonic) time.
        started = time.monotonic()
        # One new wait edge can close several cycles; victimize one
        # transaction per cycle until none remains through us.  Each pass
        # marks a previously unmarked waiter (victims drop out of the
        # graph), so the loop terminates.
        while (cycle := self._find_cycle(xid)) is not None:
            self._victimize(cycle)
        try:
            while not waiter.granted and not waiter.victim:
                if timeout is None:
                    self._cond.wait()
                    continue
                waited = time.monotonic() - started  # repro: allow(R004): see above
                remaining = timeout - waited
                if remaining <= 0 or not self._cond.wait(remaining):
                    break
        finally:
            # repro: allow(R004): real blocked-thread time, see above.
            self.stats.wait_time += time.monotonic() - started
            if not waiter.granted:
                self._remove_waiter(waiter)
        if waiter.granted:
            return
        if waiter.victim:
            self.stats.victims += 1
            raise DeadlockError(
                f"txn {xid} chosen as deadlock victim waiting for "
                f"{mode.value} lock on {resource!r} "
                f"(wait-for cycle: {waiter.cycle})")
        self.stats.timeouts += 1
        raise LockTimeout(
            f"txn {xid} timed out after {timeout}s waiting for "
            f"{mode.value} lock on {resource!r} "
            f"(held by txns {sorted(self.holders(resource))})")

    # -- overlap-aware grant-table queries -------------------------------------------

    def _conflictable_resources(self, resource: Hashable):
        """Granted resource keys whose grants can conflict with *resource*.

        For a plain key, only the key itself; for a range, every granted
        range of the same group that overlaps it.
        """
        if isinstance(resource, RangeResource):
            return [res for res in self._groups.get(resource.group, ())
                    if resource.overlaps(res)]
        return [resource] if resource in self._grants else []

    def _conflicting_holders(self, xid: int, resource: Hashable,
                             mode: LockMode) -> dict[int, LockMode]:
        """Other transactions whose grants block this request."""
        out: dict[int, LockMode] = {}
        for res in self._conflictable_resources(resource):
            for x, m in self._grants.get(res, {}).items():
                if x != xid and not _compatible(m, mode):
                    # Report the strongest conflicting mode per holder.
                    if out.get(x) is not LockMode.EXCLUSIVE:
                        out[x] = m
        return out

    def _holds_conflictable(self, xid: int, resource: Hashable) -> bool:
        """Whether *xid* already holds the key (or an overlapping range)."""
        return any(xid in self._grants.get(res, {})
                   for res in self._conflictable_resources(resource))

    def _already_covered(self, xid: int, resource: Hashable,
                         mode: LockMode) -> bool:
        """Whether an existing grant of *xid* subsumes this request."""
        held = self._grants.get(resource, {}).get(xid)
        if held is LockMode.EXCLUSIVE or held is mode:
            return True
        if not isinstance(resource, RangeResource):
            return False
        for res in self._groups.get(resource.group, ()):
            m = self._grants.get(res, {}).get(xid)
            if m is None or (m is not LockMode.EXCLUSIVE and m is not mode):
                continue
            if res.contains(resource):
                return True
        return False

    def _record_grant(self, xid: int, resource: Hashable,
                      mode: LockMode) -> None:
        self._grants[resource][xid] = mode
        if isinstance(resource, RangeResource):
            self._groups.setdefault(resource.group, set()).add(resource)

    def _queue_blocks(self, resource: Hashable, mode: LockMode,
                      earlier: _Waiter) -> bool:
        """Whether FIFO fairness parks this request behind *earlier*."""
        if earlier.mode is LockMode.SHARED and mode is LockMode.SHARED:
            return False
        return _resources_conflict(earlier.resource, resource)

    def _try_grant(self, xid: int, resource: Hashable,
                   mode: LockMode) -> bool:
        """Grant immediately if compatible with holders and queue fairness."""
        if self._already_covered(xid, resource, mode):
            return True
        if self._conflicting_holders(xid, resource, mode):
            return False
        holders = self._grants[resource]
        if xid not in holders and not self._holds_conflictable(xid, resource):
            # Fairness: a fresh request never overtakes a conflicting
            # waiter (victims are leaving, not waiting — they don't
            # count).  A holder extending its coverage skips the queue,
            # like an upgrade: parking behind a request that conflicts
            # with its existing grant would self-deadlock.
            for earlier in self._waiters.get(_queue_key(resource), ()):
                if earlier.victim:
                    continue
                if self._queue_blocks(resource, mode, earlier):
                    return False
        if holders.get(xid) is LockMode.SHARED and mode is LockMode.EXCLUSIVE:
            self.stats.upgrades += 1
        self._record_grant(xid, resource, mode)
        return True

    def _conflict_message(self, xid: int, resource: Hashable,
                          mode: LockMode) -> str:
        holders = self._conflicting_holders(xid, resource, mode)
        if mode is LockMode.SHARED and any(
                m is LockMode.EXCLUSIVE for m in holders.values()):
            exclusive = next(x for x, m in holders.items()
                             if m is LockMode.EXCLUSIVE)
            return (f"txn {xid} cannot share-lock {resource!r}: "
                    f"exclusively held by txn {exclusive}")
        return (f"txn {xid} cannot {mode.value}-lock {resource!r}: "
                f"held by txns {sorted(holders)}")

    # -- wait-queue service ----------------------------------------------------------

    def _grantable_queued(self, waiter: _Waiter) -> bool:
        resource = waiter.resource
        if self._conflicting_holders(waiter.xid, resource, waiter.mode):
            return False
        if waiter.upgrade:  # upgrade/extension: depends only on holders
            return True
        for earlier in self._waiters.get(_queue_key(resource), ()):
            if earlier is waiter:
                return True
            if earlier.victim:  # leaving, not waiting
                continue
            if self._queue_blocks(resource, waiter.mode, earlier):
                return False
        return True

    def _grant_waiters(self, queue_key: Hashable) -> bool:
        """Grant every now-eligible waiter on *queue_key* (FIFO, upgrades
        by holder-compatibility).  Returns whether anything was granted.

        A victimized waiter is never granted, even if the conflict has
        cleared by the time it would be eligible: its ``acquire`` must
        raise so ``victims`` stays in lockstep with ``deadlocks_detected``
        and the caller's abort actually happens."""
        queue = self._waiters.get(queue_key)
        if not queue:
            return False
        granted_any = False
        progress = True
        while progress:
            progress = False
            for waiter in list(queue):
                if waiter.victim:
                    continue
                if not self._grantable_queued(waiter):
                    continue
                holders = self._grants[waiter.resource]
                if waiter.xid in holders:
                    self.stats.upgrades += 1
                    holders[waiter.xid] = LockMode.EXCLUSIVE
                else:
                    self._record_grant(waiter.xid, waiter.resource,
                                       waiter.mode)
                queue.remove(waiter)
                waiter.granted = True
                waiter.grant_count += 1
                granted_any = progress = True
        if not queue:
            del self._waiters[queue_key]
        return granted_any

    def _remove_waiter(self, waiter: _Waiter) -> None:
        queue_key = _queue_key(waiter.resource)
        queue = self._waiters.get(queue_key)
        if queue is None or waiter not in queue:
            return
        queue.remove(waiter)
        if not queue:
            del self._waiters[queue_key]
        # Our departure may unblock waiters that were queued behind us.
        elif self._grant_waiters(queue_key):
            self._cond.notify_all()

    # -- deadlock detection ------------------------------------------------------------

    def _waits_for(self) -> dict[int, set[int]]:
        """The wait-for graph: waiter xid → xids it cannot proceed past.

        Edges run to every conflicting *holder* and — for fresh requests,
        which queue FIFO — to every conflicting *earlier waiter* (that
        waiter will become a holder first).  Upgrades wait only on the
        other holders; the queue cannot delay them.  Victimized waiters
        are no longer waiting (they are about to wake and abort), so they
        contribute no edges in either direction — every cycle through a
        victim is already broken, and leaving its edges in would make
        re-detection find the same cycle forever.
        """
        edges: dict[int, set[int]] = defaultdict(set)
        for queue in self._waiters.values():
            for position, waiter in enumerate(queue):
                if waiter.victim:
                    continue
                for xid in self._conflicting_holders(
                        waiter.xid, waiter.resource, waiter.mode):
                    edges[waiter.xid].add(xid)
                if waiter.upgrade:
                    continue
                for earlier in queue[:position]:
                    if earlier.victim or earlier.xid == waiter.xid:
                        continue
                    if self._queue_blocks(waiter.resource, waiter.mode,
                                          earlier):
                        edges[waiter.xid].add(earlier.xid)
        return edges

    def _find_cycle(self, start: int) -> list[int] | None:
        """A wait-for cycle through *start*, or ``None``.

        Any new cycle must pass through the transaction that just blocked
        (edges are only added when an ``acquire`` blocks), so searching
        from *start* is complete.
        """
        edges = self._waits_for()
        stack: list[tuple[int, list[int]]] = [(start, [start])]
        visited: set[int] = set()
        while stack:
            node, path = stack.pop()
            for succ in edges.get(node, ()):
                if succ == start:
                    return path
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    def _same_thread_blocker(self, start: int) -> int | None:
        """An xid blocking *start* whose owning thread is the caller's.

        Follows the wait-for graph from *start* across waiters to the
        holders at the chain's ends.  Any transaction reached that this
        very thread controls can never release — the thread is about to
        park — yet it is not *waiting*, so no cycle exists for the
        deadlock detector to break.  The caller must refuse to wait.
        """
        me = threading.get_ident()
        edges = self._waits_for()
        stack = [start]
        seen = {start}
        while stack:
            node = stack.pop()
            for succ in edges.get(node, ()):
                if succ in seen:
                    continue
                seen.add(succ)
                if self._xid_threads.get(succ) == me:
                    return succ
                stack.append(succ)
        return None

    def _victimize(self, cycle: list[int]) -> None:
        """Abort-by-exception the youngest (highest-xid) cycle member.

        Every cycle member is blocked in ``acquire`` by construction, so
        the victim is always a parked waiter we can wake with an error.
        """
        self.stats.deadlocks_detected += 1
        victim_xid = max(cycle)
        for queue in self._waiters.values():
            for waiter in queue:
                if waiter.xid == victim_xid and not waiter.victim:
                    waiter.victim = True
                    waiter.cycle = sorted(cycle)
                    self._cond.notify_all()
                    return

    # -- release -----------------------------------------------------------------------

    def release_all(self, xid: int) -> int:
        """Drop every lock held by *xid* (end of transaction) and grant
        any waiters that become eligible.  Each blocked waiter is woken
        (granted) at most once.  Returns the number of locks released."""
        if lockdep.VALIDATOR.armed:
            lockdep.VALIDATOR.heavy_released_all(xid)
        with self._cond:
            self._xid_threads.pop(xid, None)
            released = 0
            touched = []
            for resource, holders in list(self._grants.items()):
                if holders.pop(xid, None) is not None:
                    released += 1
                    touched.append(_queue_key(resource))
                if not holders:
                    if isinstance(resource, RangeResource):
                        group = self._groups.get(resource.group)
                        if group is not None:
                            group.discard(resource)
                            if not group:
                                del self._groups[resource.group]
                        del self._grants[resource]
                    elif resource not in self._waiters:
                        del self._grants[resource]
            # A txn aborted from outside acquire() may still have a parked
            # waiter (e.g. a victimized thread racing its own cleanup).
            for queue_key, queue in list(self._waiters.items()):
                kept = [w for w in queue if w.xid != xid]
                if len(kept) != len(queue):
                    self._waiters[queue_key] = kept
                    if not kept:
                        del self._waiters[queue_key]
                    touched.append(queue_key)
            woke = False
            for queue_key in touched:
                woke |= self._grant_waiters(queue_key)
            if woke or released:
                self._cond.notify_all()
            self.stats.released += released
            return released

    # -- introspection --------------------------------------------------------------------

    def holds(self, xid: int, resource: Hashable,
              mode: LockMode | None = None) -> bool:
        """Whether *xid* holds a lock (of *mode*, if given) on *resource*."""
        with self._cond:
            held = self._grants.get(resource, {}).get(xid)
        if held is None:
            return False
        if mode is None:
            return True
        return held is mode or held is LockMode.EXCLUSIVE

    def holders(self, resource: Hashable) -> dict[int, LockMode]:
        """Current holders of *resource* (copy)."""
        with self._cond:
            return dict(self._grants.get(resource, {}))

    def holds_overlapping(self, xid: int, resource: Hashable) -> bool:
        """Whether *xid* holds any grant that can conflict with *resource*
        (for a range: any granted overlapping range of the same object)."""
        with self._cond:
            return self._holds_conflictable(xid, resource)

    def waiting(self, resource: Hashable | None = None) -> list[tuple]:
        """Parked requests, as ``(xid, resource, mode)``, FIFO per queue.

        *resource* may be a plain key, a :class:`RangeResource` (its
        group's queue is reported), or a range group key directly.
        """
        with self._cond:
            queues = ([(resource, self._waiters.get(_queue_key(resource),
                                                    []))]
                      if resource is not None
                      else list(self._waiters.items()))
            return [(w.xid, w.resource, w.mode)
                    for _res, queue in queues for w in queue]

    def grant_table_empty(self) -> bool:
        """Whether no locks are held and no waiters are parked."""
        with self._cond:
            return (not self._waiters
                    and not any(self._grants.values()))
