"""Transactions, visibility, and time travel.

POSTGRES had no write-ahead log: tuples are never overwritten, every tuple
version carries the inserting and deleting transaction ids, a commit log
(``pg_log``) records each transaction's fate and commit *time*, and commit
forces dirty pages to stable storage.  Time travel is then just a visibility
rule — read the version whose commit-time interval covers the requested
instant.  This is why the paper's f-chunk and v-segment large objects get
transactions **and** historical versions "automatically" (§6.3, §6.4).
"""

from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import Transaction, TransactionManager
from repro.txn.snapshot import Snapshot
from repro.txn.xlog import CommitLog, TxnStatus

__all__ = [
    "CommitLog",
    "TxnStatus",
    "Snapshot",
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionManager",
]
