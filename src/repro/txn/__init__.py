"""Transactions, visibility, and time travel.

POSTGRES had no write-ahead log: tuples are never overwritten, every tuple
version carries the inserting and deleting transaction ids, a commit log
(``pg_log``) records each transaction's fate and commit *time*, and commit
forces dirty pages to stable storage.  Time travel is then just a visibility
rule — read the version whose commit-time interval covers the requested
instant.  This is why the paper's f-chunk and v-segment large objects get
transactions **and** historical versions "automatically" (§6.3, §6.4).

The package ``__init__`` resolves its re-exports lazily (PEP 562): the
low-level storage and sim modules import ``repro.txn.lockdep`` for their
mutex instrumentation, and an eager ``from repro.txn.manager import ...``
here would close an import cycle through them.
"""

_EXPORTS = {
    "CommitLog": "repro.txn.xlog",
    "TxnStatus": "repro.txn.xlog",
    "Snapshot": "repro.txn.snapshot",
    "LockManager": "repro.txn.locks",
    "LockMode": "repro.txn.locks",
    "Transaction": "repro.txn.manager",
    "TransactionManager": "repro.txn.manager",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.txn' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
