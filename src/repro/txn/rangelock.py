"""Byte-range lock resources for large objects.

A :class:`RangeResource` names a half-open byte interval ``[start, stop)``
of one object (``stop=None`` means "to infinity").  The
:class:`~repro.txn.locks.LockManager` treats two range resources as
conflicting only when their intervals **overlap** (and their modes are
incompatible), so writers mutating disjoint regions of one large object
are granted in parallel, while truncate and unlink — which take the whole
``[0, inf)`` range — still conflict with every writer.

All ranges of one object share a *group* key ``(namespace, key)``; the
lock manager keeps one FIFO wait queue per group, which is what preserves
fairness and feeds the wait-for graph exactly as per-resource queues did
for plain keys.

The module also provides :class:`IntervalSet`, the small interval
arithmetic descriptors use to remember which spans they already locked
(re-locking a covered span must be a cheap no-op on the write hot path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable


@dataclass(frozen=True, slots=True)
class RangeResource:
    """A lockable half-open byte interval ``[start, stop)`` of one object.

    ``stop=None`` is the unbounded range end (truncate/unlink take
    ``[0, None)`` to conflict with every concurrent writer).
    """

    namespace: str
    key: Hashable
    start: int
    stop: int | None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"range start {self.start} < 0")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError(
                f"empty lock range [{self.start}, {self.stop})")

    @property
    def group(self) -> tuple:
        """The wait-queue / conflict-scan key shared by an object's ranges."""
        return (self.namespace, self.key)

    def overlaps(self, other: "RangeResource") -> bool:
        """Whether the two intervals share at least one byte."""
        if self.namespace != other.namespace or self.key != other.key:
            return False
        if self.stop is not None and self.stop <= other.start:
            return False
        if other.stop is not None and other.stop <= self.start:
            return False
        return True

    def contains(self, other: "RangeResource") -> bool:
        """Whether *other* lies entirely inside this interval."""
        if self.namespace != other.namespace or self.key != other.key:
            return False
        if other.start < self.start:
            return False
        if self.stop is None:
            return True
        return other.stop is not None and other.stop <= self.stop

    def __repr__(self) -> str:
        stop = "inf" if self.stop is None else self.stop
        return (f"RangeResource({self.namespace!r}, {self.key!r}, "
                f"[{self.start}, {stop}))")


def lo_range(oid: int, start: int, stop: int | None) -> RangeResource:
    """The byte-range lock resource for large object *oid*."""
    return RangeResource("largeobject", oid, start, stop)


def lo_whole(oid: int) -> RangeResource:
    """The whole-object ``[0, inf)`` range (truncate / unlink)."""
    return RangeResource("largeobject", oid, 0, None)


class IntervalSet:
    """A mutable set of disjoint half-open intervals over the naturals.

    Descriptors use one per open writable object to remember the spans
    they already hold range locks on: ``covers`` answers the hot-path
    "do I need to go to the lock manager at all?" question, ``add``
    merges a newly locked span in.  ``stop=None`` again means infinity.
    """

    __slots__ = ("_spans",)

    def __init__(self) -> None:
        #: sorted, disjoint, non-adjacent (start, stop) pairs.
        self._spans: list[tuple[int, int | None]] = []

    def covers(self, start: int, stop: int | None) -> bool:
        """Whether ``[start, stop)`` lies inside one recorded interval.

        (Recorded intervals are merged when adjacent or overlapping, so
        a span covered by the union is always covered by one member.)
        """
        for lo, hi in self._spans:
            if lo > start:
                return False
            if hi is None:
                return True
            if start < hi:
                return stop is not None and stop <= hi
        return False

    def add(self, start: int, stop: int | None) -> None:
        """Merge ``[start, stop)`` into the set."""
        merged: list[tuple[int, int | None]] = []
        for lo, hi in self._spans:
            disjoint = (stop is not None and stop < lo) or (
                hi is not None and hi < start)
            if disjoint:
                merged.append((lo, hi))
                continue
            start = min(start, lo)
            if stop is not None:
                stop = None if hi is None else max(stop, hi)
        merged.append((start, stop))
        merged.sort()
        self._spans = merged

    def __bool__(self) -> bool:
        return bool(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(
            f"[{lo}, {'inf' if hi is None else hi})"
            for lo, hi in self._spans)
        return f"IntervalSet({spans})"
