"""Performance trajectory: wall-clock micro/macro benchmarks over time.

The figure harness (:mod:`repro.bench.figures`) answers "does the
reproduction match the paper?" in **simulated** seconds.  This module
answers the orthogonal question "how fast is the Python engine itself,
and is it getting faster or slower?" in **wall-clock** time, and records
the answer in a schema-versioned ``BENCH_<n>.json`` snapshot at the repo
root — one per PR that touches performance, forming a tracked trajectory.

The fixed suite:

* 10 MB (1 MB in ``--mode smoke``) sequential large-object read and
  write through f-chunk and v-segment, one 4096-byte frame per call;
* the same f-chunk pass routed through the ``sharded`` storage manager
  (4 nodes, 3 replicas), tracking replication's Python overhead;
* page slot ``get``/``put`` micro-benchmarks over :class:`SlottedPage`;
* batch tuple encode/decode through the schema codec layer;
* compressor throughput per registered algorithm on a 4096-byte frame;
* the simulated Figure 2/3 seconds (exactly the figure harness's
  numbers), so a snapshot also proves the cost model did not drift.

Wall-clock numbers are normalized by a **calibration loop** (a fixed
pure-Python work unit timed on the same machine at snapshot time), so
``--compare`` can diff snapshots taken on machines of different speeds:
what is compared is ``us_per_op / calibration_us``, a dimensionless
"work units per operation".  Simulated numbers need no normalization and
are compared exactly.

This module is the one sanctioned home of wall-clock timing outside
``sim/clock.py``: it measures the *host*, not the simulation, which is
why the ``repro: allow(R004)`` annotations below are correct and not a
smell.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Object sizes for the large-object macro benchmarks.
FULL_OBJECT_BYTES = 10 * 1024 * 1024
SMOKE_OBJECT_BYTES = 1 * 1024 * 1024

#: One §9.1 frame: the unit of every LO read/write call in the suite.
FRAME_SIZE = 4096

#: Scale the simulated Figure 2/3 section always runs at, regardless of
#: ``--mode`` — simulated numbers must stay comparable across snapshots,
#: and the committed baseline pins this scale.
SIM_SCALE = 0.1

#: Default regression threshold for ``--compare`` (fraction of the
#: normalized baseline); CI uses a looser 0.25 to absorb runner noise.
DEFAULT_THRESHOLD = 0.10


def _now() -> float:
    # repro: allow(R004): this module *measures the host's wall clock*
    # by design (see the module docstring) — simulated time would show
    # nothing about Python-level speed.
    return time.perf_counter()


# -- measurement core ---------------------------------------------------------


@dataclass
class WallResult:
    """One wall-clock benchmark's numbers."""

    name: str
    ops: int
    bytes_per_op: int
    seconds: float
    alloc_blocks: int
    alloc_peak_kb: float

    @property
    def us_per_op(self) -> float:
        return self.seconds / self.ops * 1e6

    @property
    def mb_per_s(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.ops * self.bytes_per_op / self.seconds / 1e6

    def as_dict(self) -> dict:
        return {
            "ops": self.ops,
            "bytes_per_op": self.bytes_per_op,
            "seconds": round(self.seconds, 6),
            "us_per_op": round(self.us_per_op, 4),
            "mb_per_s": round(self.mb_per_s, 3),
            "alloc_blocks": self.alloc_blocks,
            "alloc_peak_kb": round(self.alloc_peak_kb, 1),
        }


def _measure(name: str, run: Callable[[], int], bytes_per_op: int,
             repeats: int = 3,
             reset: Callable[[], None] | None = None) -> WallResult:
    """Time ``run()`` (which returns its op count), best of *repeats*.

    A separate pass under :mod:`tracemalloc` records the live-block
    count and peak traced memory of one run — allocation pressure is
    reported, not gated on (it is the leading indicator the wall numbers
    lag).  ``reset`` runs before every timed repetition (e.g. emptying
    the buffer pool so each repetition starts cold).
    """
    best = float("inf")
    ops = 0
    for _ in range(repeats):
        if reset is not None:
            reset()
        # Collect, then keep the collector out of the timed region:
        # generational GC firing mid-run is the dominant noise source on
        # the allocation-heavy LO benches, and it hits snapshots taken
        # from different trees unequally.
        gc.collect()
        gc.disable()
        try:
            start = _now()
            ops = run()
            elapsed = _now() - start
        finally:
            gc.enable()
        best = min(best, elapsed)
    if reset is not None:
        reset()
    tracemalloc.start()
    try:
        run()
        _current, peak = tracemalloc.get_traced_memory()
        blocks = sum(stat.count for stat in
                     tracemalloc.take_snapshot().statistics("filename"))
    finally:
        tracemalloc.stop()
    return WallResult(name=name, ops=ops, bytes_per_op=bytes_per_op,
                      seconds=best, alloc_blocks=blocks,
                      alloc_peak_kb=peak / 1024.0)


def calibrate(iterations: int = 400) -> float:
    """Microseconds per fixed pure-Python work unit on this machine.

    The unit mixes the operations the engine hot paths live on — bytes
    slicing, ``struct`` packing, dict probes, integer arithmetic — so
    host-speed differences divide out of normalized comparisons.
    """
    import struct
    u32 = struct.Struct("<I")
    blob = bytes(range(256)) * 16  # 4 KB
    table: dict[int, int] = {}

    def unit() -> int:
        total = 0
        for i in range(64):
            total += u32.unpack_from(blob, i * 8)[0]
            table[i] = total & 0xFFFF
        scratch = bytearray(blob)
        scratch[0:2048] = blob[2048:]
        return total + len(scratch) + table[63]

    best = float("inf")
    for _ in range(3):
        start = _now()
        for _ in range(iterations):
            unit()
        best = min(best, _now() - start)
    return best / iterations * 1e6


# -- the suite ---------------------------------------------------------------


def _fresh_wall_db():
    """A throwaway in-memory database in wall-clock mode.

    ``charge_cpu=False`` turns off the simulated cost model: these
    benchmarks measure Python, and the engine's model-fidelity gates
    (see docs/performance.md) enable their fast paths exactly when the
    cost model is off.
    """
    from repro.db import Database
    return Database(pool_size=256, charge_cpu=False, debug_latch=False)


def _frames(count: int, generation: int = 0) -> list[bytes]:
    from repro.bench.datasets import frame_bytes
    return [frame_bytes(i, 0.0, FRAME_SIZE, generation=generation)
            for i in range(count)]


def _bench_lo_write(impl: str, object_bytes: int,
                    smgr: str | None = None) -> WallResult:
    frames = _frames(object_bytes // FRAME_SIZE)
    # One shared database: bootstrap (catalog creation) stays outside the
    # timed region, so per-op numbers are comparable across object sizes
    # (smoke vs full).  Each timed repeat writes a brand-new object.
    # ``smgr`` routes the object through a non-default storage manager
    # (the ``sharded`` cells track replication's Python overhead).
    db = _fresh_wall_db()
    prefix = f"{smgr}_" if smgr else ""

    def run() -> int:
        with db.begin() as txn:
            designator = db.lo.create(txn, impl, compression="none",
                                      smgr=smgr)
            with db.lo.open(designator, txn, "rw") as obj:
                for frame in frames:
                    obj.write(frame)
        return len(frames)

    try:
        return _measure(f"{prefix}{impl}_seq_write", run, FRAME_SIZE,
                        repeats=3)
    finally:
        db.close()


def _bench_lo_read(impl: str, object_bytes: int,
                   smgr: str | None = None) -> WallResult:
    frames = _frames(object_bytes // FRAME_SIZE)
    db = _fresh_wall_db()
    prefix = f"{smgr}_" if smgr else ""
    with db.begin() as txn:
        designator = db.lo.create(txn, impl, compression="none",
                                  smgr=smgr)
        with db.lo.open(designator, txn, "rw") as obj:
            for frame in frames:
                obj.write(frame)

    def reset() -> None:
        db.bufmgr.invalidate_all()

    def run() -> int:
        with db.lo.open(designator) as obj:
            for _ in range(len(frames)):
                obj.read(FRAME_SIZE)
        return len(frames)

    try:
        return _measure(f"{prefix}{impl}_seq_read", run, FRAME_SIZE,
                        repeats=3, reset=reset)
    finally:
        db.close()


def _bench_page_put() -> WallResult:
    from repro.errors import PageFullError
    from repro.storage.page import SlottedPage
    item = bytes(100)
    pages = 64

    def run() -> int:
        ops = 0
        for _ in range(pages):
            page = SlottedPage()
            while True:
                try:
                    page.add_item(item)
                except PageFullError:
                    break
                ops += 1
        return ops

    return _measure("page_slot_put", run, len(item))


def _bench_page_get() -> WallResult:
    from repro.errors import PageFullError
    from repro.storage.page import SlottedPage
    item = bytes(100)
    page = SlottedPage()
    while True:
        try:
            page.add_item(item)
        except PageFullError:
            break
    slots = list(range(page.slot_count))
    rounds = 200

    def run() -> int:
        get = page.get_item
        for _ in range(rounds):
            for slot in slots:
                get(slot)
        return rounds * len(slots)

    return _measure("page_slot_get", run, len(item))


def _codec_fixture():
    from repro.access.schema import Attribute, Schema
    schema = Schema([
        Attribute("id", "int4"),
        Attribute("oid", "oid"),
        Attribute("weight", "float8"),
        Attribute("live", "bool"),
        Attribute("label", "text"),
        Attribute("payload", "bytea"),
    ])
    rows = []
    for i in range(512):
        rows.append((i, i * 7, i * 0.5, i % 2 == 0,
                     None if i % 17 == 0 else f"row-{i}",
                     bytes((i + j) & 0xFF for j in range(120))))
    return schema, rows


def _bench_tuple_encode() -> WallResult:
    schema, rows = _codec_fixture()
    encode_many = getattr(
        schema, "encode_many",
        lambda batch: [schema.encode(row) for row in batch])
    rounds = 20
    row_bytes = len(schema.encode(rows[0]))

    def run() -> int:
        for _ in range(rounds):
            encode_many(rows)
        return rounds * len(rows)

    return _measure("tuple_encode_batch", run, row_bytes)


def _bench_tuple_decode() -> WallResult:
    schema, rows = _codec_fixture()
    images = [schema.encode(row) for row in rows]
    decode_many = getattr(
        schema, "decode_many",
        lambda batch: [schema.decode(image) for image in batch])
    rounds = 20

    def run() -> int:
        for _ in range(rounds):
            decode_many(images)
        return rounds * len(images)

    return _measure("tuple_decode_batch", run, len(images[0]))


def _bench_compressors() -> list[WallResult]:
    from repro.bench.datasets import frame_bytes
    from repro.compress.base import available_compressors, get_compressor
    frame = frame_bytes(7, 0.3, FRAME_SIZE)
    results = []
    for name in available_compressors():
        if name.startswith(("paper-", "ablate-")):
            continue  # CostedCompressor wrappers need a live simulation
        compressor = get_compressor(name)
        image = compressor.compress(frame)

        def _rounds_for(op: Callable[[], object]) -> int:
            # Autoscale so each timed repeat runs ~20 ms: a sub-µs codec
            # at a fixed count finishes in under a millisecond, where
            # timer jitter swamps the signal.  The count is recorded in
            # `ops`, so µs/op stays comparable across snapshots.
            start = _now()
            op()
            probe = max(_now() - start, 1e-7)
            return max(50, min(200_000, int(0.02 / probe)))

        rounds_c = _rounds_for(lambda: compressor.compress(frame))
        rounds_d = _rounds_for(lambda: compressor.decompress(image))

        def run_c(compressor=compressor, rounds=rounds_c) -> int:
            for _ in range(rounds):
                compressor.compress(frame)
            return rounds

        def run_d(compressor=compressor, image=image, rounds=rounds_d) -> int:
            for _ in range(rounds):
                compressor.decompress(image)
            return rounds

        results.append(_measure(f"compress_{name}", run_c, FRAME_SIZE))
        results.append(_measure(f"decompress_{name}", run_d, FRAME_SIZE))
    return results


def _simulated_section() -> dict:
    """Figure 2/3 simulated seconds at the pinned :data:`SIM_SCALE`.

    Full float precision: two snapshots of the same code must compare
    exactly equal, and any drift — however small — is a cost-model
    change that must be deliberate.
    """
    from repro.bench.figures import BenchConfig, run_figure2, run_figure3
    config = BenchConfig(scale=SIM_SCALE)
    section: dict = {"scale": SIM_SCALE}
    for key, runner in (("fig2", run_figure2), ("fig3", run_figure3)):
        figure = runner(config)
        section[key] = {
            row: {col: figure.cells[(row, col)]
                  for col in figure.col_labels if (row, col) in figure.cells}
            for row in figure.row_labels}
    return section


def run_suite(mode: str = "full", simulated: bool = True,
              progress: Callable[[str], None] | None = None) -> dict:
    """Run the fixed suite; returns the snapshot dictionary."""
    say = progress or (lambda _msg: None)
    object_bytes = (FULL_OBJECT_BYTES if mode == "full"
                    else SMOKE_OBJECT_BYTES)
    say(f"calibrating host ({mode} mode, "
        f"{object_bytes // (1024 * 1024)} MB objects)")
    calibration_us = calibrate()
    wall: dict[str, dict] = {}

    def record(result: WallResult) -> None:
        wall[result.name] = result.as_dict()
        say(f"  {result.name}: {result.us_per_op:.1f} us/op, "
            f"{result.mb_per_s:.1f} MB/s")

    for impl in ("fchunk", "vsegment"):
        say(f"{impl} sequential write/read")
        record(_bench_lo_write(impl, object_bytes))
        record(_bench_lo_read(impl, object_bytes))
    say("fchunk over the sharded backend (4 nodes, R=3)")
    record(_bench_lo_write("fchunk", object_bytes, smgr="sharded"))
    record(_bench_lo_read("fchunk", object_bytes, smgr="sharded"))
    say("page slot micro-benchmarks")
    record(_bench_page_put())
    record(_bench_page_get())
    say("batch tuple codecs")
    record(_bench_tuple_encode())
    record(_bench_tuple_decode())
    say("compressor throughput")
    for result in _bench_compressors():
        record(result)

    snapshot = {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "object_bytes": object_bytes,
        "python": ".".join(str(part) for part in sys.version_info[:3]),
        "calibration_us": round(calibration_us, 4),
        "wall": wall,
    }
    if simulated:
        say("simulated Figure 2/3 (cost model, scale "
            f"{SIM_SCALE:g})")
        snapshot["simulated"] = _simulated_section()
    return snapshot


# -- comparison --------------------------------------------------------------


@dataclass
class Comparison:
    """Outcome of diffing two snapshots."""

    lines: list[str]
    regressions: list[str]
    improvements: list[str]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        return "\n".join(self.lines)


def compare(baseline: dict, current: dict,
            threshold: float = DEFAULT_THRESHOLD) -> Comparison:
    """Diff *current* against *baseline*.

    Wall-clock numbers are compared as ``us_per_op / calibration_us``
    (host speed divides out); a normalized slowdown beyond *threshold*
    is a regression.  Simulated figures are compared exactly when both
    snapshots ran them at the same scale — any difference is flagged,
    because the cost model must only change deliberately.
    """
    lines: list[str] = []
    regressions: list[str] = []
    improvements: list[str] = []
    base_cal = baseline.get("calibration_us") or 1.0
    cur_cal = current.get("calibration_us") or 1.0
    lines.append(f"calibration: baseline {base_cal:.2f} us/unit, "
                 f"current {cur_cal:.2f} us/unit")
    if baseline.get("mode") != current.get("mode"):
        lines.append(
            f"note: comparing mode={current.get('mode')} against "
            f"mode={baseline.get('mode')} — macro benches use different "
            f"object sizes; per-op numbers remain normalized but are "
            f"advisory for the *_seq_* entries")

    base_wall = baseline.get("wall", {})
    cur_wall = current.get("wall", {})
    header = (f"{'benchmark':<26}{'base us/op':>12}{'cur us/op':>12}"
              f"{'norm ratio':>12}  verdict")
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(set(base_wall) & set(cur_wall)):
        old, new = base_wall[name], cur_wall[name]
        norm_old = old["us_per_op"] / base_cal
        norm_new = new["us_per_op"] / cur_cal
        ratio = norm_new / norm_old if norm_old else float("inf")
        if ratio > 1.0 + threshold:
            verdict = f"REGRESSION (> {threshold:.0%})"
            regressions.append(
                f"{name}: {ratio:.2f}x normalized slowdown "
                f"({old['us_per_op']:.1f} -> {new['us_per_op']:.1f} us/op)")
        elif ratio < 1.0 - threshold:
            verdict = "improved"
            improvements.append(f"{name}: {1 / ratio:.2f}x faster "
                                f"(normalized)")
        else:
            verdict = "ok"
        lines.append(f"{name:<26}{old['us_per_op']:>12.1f}"
                     f"{new['us_per_op']:>12.1f}{ratio:>12.2f}  {verdict}")
    for name in sorted(set(base_wall) - set(cur_wall)):
        lines.append(f"{name:<26}  missing from current snapshot")
    for name in sorted(set(cur_wall) - set(base_wall)):
        lines.append(f"{name:<26}  new in current snapshot")

    base_sim = baseline.get("simulated")
    cur_sim = current.get("simulated")
    if base_sim and cur_sim:
        if base_sim.get("scale") != cur_sim.get("scale"):
            lines.append(
                f"simulated: scales differ "
                f"({base_sim.get('scale')} vs {cur_sim.get('scale')}), "
                f"skipping exact comparison")
        else:
            drift = []
            for fig in ("fig2", "fig3"):
                for row, cols in base_sim.get(fig, {}).items():
                    for col, value in cols.items():
                        got = cur_sim.get(fig, {}).get(row, {}).get(col)
                        if got != value:
                            drift.append(
                                f"{fig}[{row!r}][{col!r}]: "
                                f"{value!r} -> {got!r}")
            if drift:
                regressions.extend(
                    f"simulated drift: {item}" for item in drift)
                lines.append(
                    f"simulated: {len(drift)} cell(s) DRIFTED "
                    f"(cost model changed):")
                lines.extend(f"  {item}" for item in drift)
            else:
                cells = sum(len(cols) for fig in ("fig2", "fig3")
                            for cols in base_sim.get(fig, {}).values())
                lines.append(f"simulated: all {cells} Figure 2/3 cells "
                             f"byte-identical")
    elif base_sim or cur_sim:
        lines.append("simulated: present in only one snapshot, skipped")

    if improvements:
        lines.append("improvements:")
        lines.extend(f"  {item}" for item in improvements)
    if regressions:
        lines.append("regressions:")
        lines.extend(f"  {item}" for item in regressions)
    else:
        lines.append(f"no wall-clock regressions beyond {threshold:.0%}")
    return Comparison(lines=lines, regressions=regressions,
                      improvements=improvements)


# -- CLI ---------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench trajectory",
        description="Run the wall-clock performance suite and/or compare "
                    "BENCH_*.json snapshots")
    parser.add_argument("--mode", choices=("full", "smoke"), default="full",
                        help="object size for the LO macro benches: "
                             "full=10MB, smoke=1MB (CI)")
    parser.add_argument("-o", "--out", default=None,
                        help="write the snapshot JSON here")
    parser.add_argument("--compare", nargs="+", default=None,
                        metavar="SNAPSHOT",
                        help="one path: run the suite and diff against it; "
                             "two paths: diff the second against the first "
                             "without running")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="normalized wall-clock regression threshold "
                             "(default 0.10; CI uses 0.25)")
    parser.add_argument("--no-simulated", action="store_true",
                        help="skip the simulated Figure 2/3 section")
    args = parser.parse_args(argv)

    if args.compare is not None and len(args.compare) > 2:
        parser.error("--compare takes one or two snapshot paths")

    def load(path: str) -> dict:
        with open(path, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
        version = snapshot.get("schema_version")
        if version != SCHEMA_VERSION:
            print(f"warning: {path} has schema_version {version}, "
                  f"this tool expects {SCHEMA_VERSION}", file=sys.stderr)
        return snapshot

    if args.compare is not None and len(args.compare) == 2:
        result = compare(load(args.compare[0]), load(args.compare[1]),
                         threshold=args.threshold)
        print(result.render())
        return 0 if result.ok else 2

    snapshot = run_suite(mode=args.mode,
                         simulated=not args.no_simulated,
                         progress=lambda msg: print(msg, flush=True))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"snapshot written to {args.out}")
    if args.compare is not None:
        result = compare(load(args.compare[0]), snapshot,
                         threshold=args.threshold)
        print(result.render())
        return 0 if result.ok else 2
    if not args.out:
        json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
