"""The paper's §9 claims, checked against regenerated figures.

The scanned paper's figure *tables* did not survive OCR, but §9's prose
states the relationships between the columns explicitly.  Those prose
claims are the ground truth this reproduction is judged against; each is
encoded with the paper's stated value and an acceptance band wide enough
for a simulator but narrow enough that the *shape* (who wins, by roughly
what factor) must hold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.figures import BenchConfig, run_figure1, run_figure2, \
    run_figure3

SEQ_READ = "10MB sequential read"
SEQ_WRITE = "10MB sequential write"
RAND_READ = "1MB random read"
RAND_WRITE = "1MB random write"
LOC_READ = "1MB read, 80/20 locality"


@dataclass
class Claim:
    """One §9 statement: expectation, measurement, verdict."""

    claim_id: str
    description: str
    paper_value: str
    measured: float
    band: tuple[float, float]

    @property
    def holds(self) -> bool:
        lo, hi = self.band
        return lo <= self.measured <= hi


def evaluate_claims(config: BenchConfig | None = None,
                    figures: dict | None = None) -> list[Claim]:
    """Run (or reuse) the figures and check every §9 prose claim."""
    config = config or BenchConfig()
    figures = figures or {}
    fig1 = figures.get("fig1") or run_figure1(config)
    fig2 = figures.get("fig2") or run_figure2(config)
    fig3 = figures.get("fig3") or run_figure3(config)
    claims: list[Claim] = []

    # -- Figure 2 prose ---------------------------------------------------------

    # Interpreted for reads: a no-overwrite *replace* necessarily performs
    # ~3x the I/O of an in-place file write (read old chunk + write the
    # xmax-stamped old version + write the new version), so the "within
    # 7%" sentence can only describe the read rows.  The measured write
    # ratio is recorded in EXPERIMENTS.md as a documented deviation.
    seq_ratio = fig2.ratio(SEQ_READ, "f-chunk 0%", "user file")
    claims.append(Claim(
        "fchunk-seq-near-native",
        "sequential f-chunk reads within ~7% of the native file system",
        "<= 1.07x native", seq_ratio, (0.7, 1.35)))

    rand_ratio = fig2.ratio(RAND_READ, "f-chunk 0%", "user file")
    claims.append(Claim(
        "fchunk-random-half-to-threequarters",
        "f-chunk random throughput 1/2 to 3/4 of native "
        "(elapsed 1.3x-2x native)",
        "1.33x - 2.0x native", rand_ratio, (1.05, 3.0)))

    c30_ratio = max(
        fig2.ratio(SEQ_READ, "f-chunk 30%", "f-chunk 0%"),
        fig2.ratio(SEQ_WRITE, "f-chunk 30%", "f-chunk 0%"))
    claims.append(Claim(
        "fchunk30-13pct-slower",
        "f-chunk with 30% compression ~13% slower than uncompressed",
        "~1.13x f-chunk 0%", c30_ratio, (1.0, 1.45)))

    vseg_ratio = fig2.ratio(RAND_READ, "v-segment 30%", "f-chunk 0%")
    claims.append(Claim(
        "vsegment-25pct-slower",
        "v-segment ~25% slower than uncompressed f-chunk "
        "(extra index hop per random read)",
        "~1.25x f-chunk 0%", vseg_ratio, (1.02, 2.2)))

    halved_io = fig2.ratio(SEQ_READ, "f-chunk 50%", "f-chunk 0%")
    claims.append(Claim(
        "fchunk50-compression-pays-on-disk",
        "at 50% the extra 20 instructions/byte are more than compensated "
        "for by the reduced disk traffic",
        "< 1.0x f-chunk 0%", halved_io, (0.3, 1.0)))

    beat_native = fig2.ratio(SEQ_READ, "f-chunk 50%", "user file")
    claims.append(Claim(
        "fchunk50-approaches-native",
        "f-chunk at 50% compression approaches (at full scale: beats) the "
        "native file system — half the pages to read",
        "< 1.0x native at full scale", beat_native, (0.3, 1.35)))

    # §10: "the Inversion approach is within 1/3 of the performance of
    # the native file system" — Inversion files *are* f-chunk objects, so
    # this is the geometric mean of the f-chunk read rows vs native.
    read_rows = (SEQ_READ, RAND_READ, LOC_READ)
    product = 1.0
    for row in read_rows:
        product *= fig2.ratio(row, "f-chunk 0%", "user file")
    inversion_mean = product ** (1 / len(read_rows))
    claims.append(Claim(
        "inversion-within-one-third",
        "Inversion (f-chunk) within 1/3 of the native file system "
        "(geometric mean of read operations)",
        "<= 1.33x native", inversion_mean, (0.8, 1.9)))

    # -- Figure 1 prose -----------------------------------------------------------

    waste30 = (fig1.get("f-chunk 30%", "data")
               / fig1.get("f-chunk 0%", "data"))
    claims.append(Claim(
        "fchunk30-saves-nothing",
        "30% compression saves no space in f-chunk (one compressed "
        "chunk per page)",
        "= 1.0x uncompressed", waste30, (0.97, 1.03)))

    save50 = (fig1.get("f-chunk 50%", "data")
              / fig1.get("f-chunk 0%", "data"))
    claims.append(Claim(
        "fchunk50-halves-space",
        "50% compression halves f-chunk data (two chunks per page)",
        "~0.5x uncompressed", save50, (0.45, 0.60)))

    vseg_save = (fig1.get("v-segment 30%", "data")
                 / fig1.get("f-chunk 0%", "data"))
    claims.append(Claim(
        "vsegment30-saves-space",
        "v-segment reflects any compression in object size "
        "(~0.71x at 30%)",
        "~0.71x uncompressed", vseg_save, (0.62, 0.85)))

    overhead = ((fig1.get("f-chunk 0%", "data")
                 + fig1.get("f-chunk 0%", "btree"))
                / fig1.get("user file", "data"))
    claims.append(Claim(
        "fchunk-storage-overhead",
        "f-chunk storage overhead (headers + B-tree) ~1.8%",
        "~1.018x raw bytes", overhead, (1.005, 1.08)))

    # -- Figure 3 prose --------------------------------------------------------------

    worm_seq = fig3.ratio(SEQ_READ, "f-chunk 0%", "special program")
    claims.append(Claim(
        "worm-special-20pct-faster-seq",
        "special program ~20% faster than f-chunk on large sequential "
        "WORM transfers (no cache/recovery overhead)",
        "f-chunk ~1.2x special", worm_seq, (1.02, 1.7)))

    worm_rand = fig3.ratio(RAND_READ, "special program", "f-chunk 0%")
    claims.append(Claim(
        "worm-fchunk-dramatic-random",
        "f-chunk dramatically superior on random WORM reads "
        "(disk cache absorbs jukebox seeks)",
        "special >> f-chunk", worm_rand, (1.2, float("inf"))))

    # The paper's wording ("most of the requests are satisfied from the
    # cache") is about the hit rate; the visible elapsed-time effect is
    # bounded because a jukebox *sequential* page transfer costs about as
    # much as a disk cache access — only the random jumps are saved.
    worm_loc = fig3.ratio(LOC_READ, "special program", "f-chunk 0%")
    claims.append(Claim(
        "worm-fchunk-dramatic-locality",
        "with 80/20 locality most requests are satisfied from the cache",
        "special >> f-chunk", worm_loc, (1.2, float("inf"))))

    worm_compression = fig3.ratio(SEQ_READ, "f-chunk 50%", "f-chunk 0%")
    claims.append(Claim(
        "worm-compression-pays",
        "on the WORM, compression pays: 50% f-chunk moves half the "
        "bytes off the slow device",
        "< 1.0x f-chunk 0%", worm_compression, (0.3, 1.0)))

    return claims


def render_claims(claims: list[Claim]) -> str:
    """Text checklist: one line per claim."""
    lines = ["Paper claims (section 9) vs this reproduction",
             "=" * 47]
    for claim in claims:
        mark = "PASS" if claim.holds else "FAIL"
        lines.append(f"[{mark}] {claim.claim_id}")
        lines.append(f"       {claim.description}")
        lines.append(f"       paper: {claim.paper_value}   "
                     f"measured: {claim.measured:.3f}   "
                     f"band: [{claim.band[0]:g}, {claim.band[1]:g}]")
    passed = sum(claim.holds for claim in claims)
    lines.append(f"{passed}/{len(claims)} claims hold")
    return "\n".join(lines)
