"""Topology benchmark: sharded write/read throughput vs node count.

The figure harness answers "does the reproduction match the paper?";
this module answers the scale-out question ROADMAP item 3 poses: *what
does adding storage nodes (and replicas) buy?*  A fleet of simulated
clients writes disjoint block ranges — one relation file per client, so
each stream is sequential — through a storage manager, then reads
everything back.  Every node owns a :class:`~repro.sim.devices.DevicePort`
whose ``busy_s`` accumulates that device's service time, so

    throughput  =  bytes moved / busiest node's busy_s

is the critical-path number N parallel clients actually wait on.  (The
shared simulation clock serializes *charges*; ``busy_s`` is per-device,
which is what makes parallel speedup visible at all.)

Scenarios chart two axes:

* **node count** — 1 plain disk, then sharded over 1/2/4/8 nodes at
  replication 1: near-linear write scaling, minus band-switch seeks;
* **replica factor** — 4 nodes at R=1/2/3: every extra replica writes
  each byte again, so write throughput falls ~linearly while read
  throughput holds (reads go to one replica).

``skew`` makes client 0 hotter than the rest (Zipf-ish weights), which
caps the critical-path win — the busiest node bounds the fleet.

CLI: ``repro-bench topology [--clients N] [--bands N] [--skew S]``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field

from repro.sim.clock import SimClock
from repro.smgr.base import StorageManager
from repro.smgr.disk import DiskStorageManager
from repro.smgr.sharded import (sharded_disk_manager,
                                sharded_memory_manager)
from repro.storage.constants import PAGE_SIZE

#: Blocks per placement band; matches the managers' default band size so
#: one client burst stays on one device.
BAND_BLOCKS = 16


@dataclass(frozen=True)
class Topology:
    """One storage layout to benchmark.

    ``n_nodes == 0`` selects the plain single-node ``disk`` manager (the
    baseline every sharded row is compared against); any other value
    builds a sharded manager over that many nodes.
    """

    name: str
    n_nodes: int
    replication: int = 1
    write_quorum: int | None = None
    placement: str = "range"


@dataclass
class TopologyResult:
    """Throughput of one scenario, critical-path accounting."""

    topology: Topology
    clients: int
    skew: float
    bytes_written: int
    bytes_read: int
    write_busy_max_s: float
    write_busy_total_s: float
    read_busy_max_s: float
    per_node_write_busy: dict[str, float] = field(default_factory=dict)

    @property
    def write_mb_s(self) -> float:
        if self.write_busy_max_s == 0:
            return 0.0
        return self.bytes_written / self.write_busy_max_s / 1e6

    @property
    def read_mb_s(self) -> float:
        if self.read_busy_max_s == 0:
            return 0.0
        return self.bytes_read / self.read_busy_max_s / 1e6

    @property
    def balance(self) -> float:
        """Busiest node's share of total write service time (1/N is
        perfect balance, 1.0 is one node doing everything)."""
        if self.write_busy_total_s == 0:
            return 1.0
        return self.write_busy_max_s / self.write_busy_total_s

    def as_dict(self) -> dict:
        return {
            "name": self.topology.name,
            "n_nodes": self.topology.n_nodes,
            "replication": self.topology.replication,
            "clients": self.clients,
            "skew": self.skew,
            "bytes_written": self.bytes_written,
            "write_mb_s": round(self.write_mb_s, 3),
            "read_mb_s": round(self.read_mb_s, 3),
            "balance": round(self.balance, 3),
            "per_node_write_busy_s": {
                node: round(busy, 6)
                for node, busy in self.per_node_write_busy.items()},
        }


def _make_manager(topology: Topology, clock: SimClock,
                  directory: str | None) -> StorageManager:
    if topology.n_nodes == 0:
        if directory is None:
            raise ValueError(
                "the single-disk baseline needs a directory")
        return DiskStorageManager(directory, clock)
    kwargs = dict(n_nodes=topology.n_nodes,
                  replication=topology.replication,
                  write_quorum=topology.write_quorum,
                  placement=topology.placement,
                  band_blocks=BAND_BLOCKS)
    if directory is None:
        return sharded_memory_manager(clock, **kwargs)
    return sharded_disk_manager(directory, clock, **kwargs)


def _node_busy(smgr: StorageManager) -> dict[str, float]:
    return {node.node_id: node.port.busy_s for node in smgr.nodes}


def _client_bands(clients: int, bands_per_client: int,
                  skew: float) -> list[int]:
    """Bands each client writes; ``skew`` concentrates load Zipf-style."""
    if skew <= 0:
        return [bands_per_client] * clients
    weights = [1.0 / (rank + 1) ** skew for rank in range(clients)]
    total = sum(weights)
    budget = clients * bands_per_client
    bands = [max(1, round(budget * weight / total)) for weight in weights]
    return bands


def _page(tag: int) -> bytes:
    return bytes([(tag * 31 + 7) % 251 + 1]) * PAGE_SIZE


def run_scenario(topology: Topology, clients: int = 4,
                 bands_per_client: int = 6, skew: float = 0.0,
                 directory: str | None = None) -> TopologyResult:
    """Drive the disjoint-range client fleet through one topology.

    Each client owns one relation file and writes it in band-sized
    sequential bursts; clients are interleaved round-robin band by band,
    which is the access pattern N concurrent writers present to the
    devices.  A full read-back pass follows.
    """
    clock = SimClock()
    smgr = _make_manager(topology, clock, directory)
    files = [f"bench_client{k}" for k in range(clients)]
    bands = _client_bands(clients, bands_per_client, skew)
    for fileid in files:
        smgr.create(fileid)

    written = [0] * clients  # next block per client file (dense contract)
    for band in range(max(bands)):
        for k, fileid in enumerate(files):
            if band >= bands[k]:
                continue
            for _ in range(BAND_BLOCKS):
                smgr.write_block(fileid, written[k], _page(written[k]))
                written[k] += 1
    write_busy = _node_busy(smgr)
    write_busy_max = max(write_busy.values())
    write_busy_total = sum(write_busy.values())
    bytes_written = sum(written) * PAGE_SIZE

    for k, fileid in enumerate(files):
        for blockno in range(written[k]):
            smgr.read_block(fileid, blockno)
    read_busy = {node: busy - write_busy[node]
                 for node, busy in _node_busy(smgr).items()}
    bytes_read = bytes_written

    close = getattr(smgr, "close", None)
    if close:
        close()
    return TopologyResult(
        topology=topology, clients=clients, skew=skew,
        bytes_written=bytes_written, bytes_read=bytes_read,
        write_busy_max_s=write_busy_max,
        write_busy_total_s=write_busy_total,
        read_busy_max_s=max(read_busy.values()),
        per_node_write_busy=write_busy)


#: The fixed chart: node-count axis, then replica-factor axis.  The
#: plain-disk baseline needs real files, so it only joins when the
#: caller provides a directory (``--dir`` on the CLI).
BASELINE = Topology("disk, 1 node (baseline)", 0)

DEFAULT_SCENARIOS = (
    Topology("sharded, 1 node, R=1", 1),
    Topology("sharded, 2 nodes, R=1", 2),
    Topology("sharded, 4 nodes, R=1", 4),
    Topology("sharded, 8 nodes, R=1", 8),
    Topology("sharded, 4 nodes, R=2", 4, replication=2),
    Topology("sharded, 4 nodes, R=3 (Q=2)", 4, replication=3,
             write_quorum=2),
)


def run_suite(clients: int = 4, bands_per_client: int = 6,
              skew: float = 0.0,
              scenarios: tuple[Topology, ...] = DEFAULT_SCENARIOS,
              directory: str | None = None) -> list[TopologyResult]:
    """All scenarios; with *directory* the nodes hit real files and the
    plain single-disk baseline joins the chart."""
    if directory is not None:
        scenarios = (BASELINE, *scenarios)
    results = []
    for index, topology in enumerate(scenarios):
        subdir = None
        if directory is not None:
            subdir = os.path.join(directory, f"topo{index}")
            os.makedirs(subdir, exist_ok=True)
        results.append(run_scenario(
            topology, clients=clients,
            bands_per_client=bands_per_client, skew=skew,
            directory=subdir))
    return results


def render(results: list[TopologyResult]) -> str:
    """A table plus an ASCII bar chart of write throughput."""
    baseline = results[0].write_mb_s if results else 0.0
    header = (f"{'topology':<28}{'write MB/s':>12}{'read MB/s':>12}"
              f"{'vs base':>9}{'balance':>9}")
    lines = [header, "-" * len(header)]
    for result in results:
        speedup = (result.write_mb_s / baseline) if baseline else 0.0
        lines.append(
            f"{result.topology.name:<28}{result.write_mb_s:>12.2f}"
            f"{result.read_mb_s:>12.2f}{speedup:>8.2f}x"
            f"{result.balance:>9.2f}")
    peak = max((r.write_mb_s for r in results), default=0.0)
    if peak > 0:
        lines.append("")
        lines.append("write throughput (critical path):")
        for result in results:
            bar = "#" * max(1, round(result.write_mb_s / peak * 40))
            lines.append(f"  {result.topology.name:<28}"
                         f"{bar} {result.write_mb_s:.2f}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench topology",
        description="Sharded-storage throughput vs node count and "
                    "replica factor (simulated, critical-path)")
    parser.add_argument("--clients", type=int, default=4,
                        help="disjoint-range writer fleet size "
                             "(default 4)")
    parser.add_argument("--bands", type=int, default=6,
                        help="16-block bands each client writes "
                             "(default 6 = 384 KB/client)")
    parser.add_argument("--skew", type=float, default=0.0,
                        help="client-load skew exponent (0 = uniform; "
                             "higher concentrates load on client 0)")
    parser.add_argument("--dir", default=None, metavar="PATH",
                        help="run against real files under PATH and "
                             "include the plain-disk baseline")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the results as JSON")
    args = parser.parse_args(argv)

    results = run_suite(clients=args.clients,
                        bands_per_client=args.bands, skew=args.skew,
                        directory=args.dir)
    print(render(results))
    if args.json:
        # Host-side results artifact, not engine block I/O (bench/ is
        # exempt from R003).
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump([result.as_dict() for result in results], fh,
                      indent=2)
            fh.write("\n")
        print(f"\nresults written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
