"""Benchmark harness reproducing the paper's evaluation (§9).

The benchmark (§9.1): a 51.2 MB large object treated as 12,500 frames of
4096 bytes, exercised by six operations — 10 MB sequential read/replace,
1 MB random read/replace, and 1 MB read/replace with 80/20 locality.

* :mod:`repro.bench.datasets` synthesizes frames with a controlled
  compressible fraction (the paper's 30 % / 50 % algorithms).
* :mod:`repro.bench.workload` generates the six §9.1 access patterns.
* :mod:`repro.bench.figures` runs the implementations and regenerates
  Figure 1 (storage), Figure 2 (disk elapsed time), Figure 3 (WORM
  elapsed time), and the ablation sweeps.
* :mod:`repro.bench.report` renders paper-style text tables.
* ``python -m repro.bench`` is the command-line entry point.
"""

from repro.bench.figures import (
    run_figure1,
    run_figure2,
    run_figure3,
)
from repro.bench.report import FigureResult, render_table
from repro.bench.workload import Workload

__all__ = [
    "Workload",
    "FigureResult",
    "render_table",
    "run_figure1",
    "run_figure2",
    "run_figure3",
]
