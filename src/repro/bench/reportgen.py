"""One-shot markdown report of the whole evaluation.

``repro-bench report --scale 1`` regenerates every figure and the claim
checklist and writes a self-contained markdown document — the executable
version of EXPERIMENTS.md's measured columns.
"""

from __future__ import annotations

from repro.bench.claims import evaluate_claims
from repro.bench.figures import (
    BenchConfig,
    run_figure1,
    run_figure2,
    run_figure3,
)
from repro.bench.report import (
    FigureResult,
    render_figure1_paper_layout,
)


def _figure_markdown(figure: FigureResult) -> str:
    header = "| " + " | ".join([""] + figure.col_labels) + " |"
    rule = "|" + "---|" * (len(figure.col_labels) + 1)
    lines = [f"### {figure.title}", "", header, rule]
    for row in figure.row_labels:
        cells = []
        for col in figure.col_labels:
            value = figure.cells.get((row, col))
            if value is None:
                cells.append("—")
            elif figure.unit == "bytes":
                cells.append(f"{int(value):,}")
            else:
                cells.append(f"{value:,.2f}")
        lines.append("| " + " | ".join([row] + cells) + " |")
    if figure.notes:
        lines.append("")
        for note in figure.notes:
            lines.append(f"*{note}*")
    return "\n".join(lines)


def generate_report(config: BenchConfig | None = None) -> str:
    """Run figures 1–3 and the claims; return a markdown report."""
    config = config or BenchConfig()
    fig1 = run_figure1(config)
    fig2 = run_figure2(config)
    fig3 = run_figure3(config)
    claims = evaluate_claims(config, figures={
        "fig1": fig1, "fig2": fig2, "fig3": fig3})

    lines = [
        "# Benchmark report — *Large Object Support in POSTGRES* "
        "reproduction",
        "",
        f"Scale: {config.scale:g} of the paper's 51.2 MB object; "
        f"CPU {config.mips:g} MIPS; buffer pool "
        f"{config.scaled_pool()} pages; WORM cache "
        f"{config.scaled_worm_cache()} blocks.",
        "",
        _figure_markdown(fig1),
        "",
        "```",
        render_figure1_paper_layout(fig1),
        "```",
        "",
        _figure_markdown(fig2),
        "",
        _figure_markdown(fig3),
        "",
        "## §9 prose claims",
        "",
        "| claim | paper | measured | verdict |",
        "|---|---|---|---|",
    ]
    for claim in claims:
        verdict = "PASS" if claim.holds else "FAIL"
        lines.append(f"| {claim.description} | {claim.paper_value} | "
                     f"{claim.measured:.3f} | {verdict} |")
    passed = sum(c.holds for c in claims)
    lines.append("")
    lines.append(f"**{passed}/{len(claims)} claims hold.**")
    return "\n".join(lines)


def write_report(path: str, config: BenchConfig | None = None) -> str:
    """Generate the report and write it to *path*; returns the text."""
    text = generate_report(config)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return text
