"""``python -m repro.bench`` delegates to the CLI."""

import sys

from repro.bench.cli import main

sys.exit(main())
