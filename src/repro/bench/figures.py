"""Regeneration of the paper's Figures 1, 2, and 3, plus ablations.

Each ``run_figure*`` function builds a fresh in-memory database whose
``"disk"`` storage manager charges the magnetic-disk cost model, loads the
§9.1 object through the implementation under test, runs the §9.1
operations, and reports **simulated elapsed seconds** from the shared
:class:`~repro.sim.clock.SimClock` — the reproduction of the paper's
wall-clock tables on hardware that no longer exists.

The column set matches §9's list:

1. user file as an ADT,
2. POSTGRES file as an ADT,
3. f-chunk (0 % / 30 % / 50 % compression),
4. v-segment (30 % compression),

with compression CPU priced at the paper's 8 (30 %) and 20 (50 %)
instructions per byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.datasets import frame_bytes
from repro.bench.report import FigureResult
from repro.bench.workload import Operation, Workload
from repro.compress.base import register_compressor
from repro.compress.costed import CostedCompressor
from repro.compress.rle import ZeroRunCompressor
from repro.db import Database
from repro.lo.manager import designator_oid
from repro.smgr.raw import RawWormDevice

#: (column label, implementation, compressible fraction, compressor name)
DISK_COLUMNS = [
    ("user file", "ufile", 0.0, "none"),
    ("POSTGRES file", "pfile", 0.0, "none"),
    ("f-chunk 0%", "fchunk", 0.0, "none"),
    ("f-chunk 30%", "fchunk", 0.3, "paper-8ipb"),
    ("v-segment 30%", "vsegment", 0.3, "paper-8ipb"),
    ("f-chunk 50%", "fchunk", 0.5, "paper-20ipb"),
]

WORM_COLUMNS = [
    ("special program", "raw", 0.0, "none"),
    ("f-chunk 0%", "fchunk", 0.0, "none"),
    ("f-chunk 30%", "fchunk", 0.3, "paper-8ipb"),
    ("v-segment 30%", "vsegment", 0.3, "paper-8ipb"),
    ("f-chunk 50%", "fchunk", 0.5, "paper-20ipb"),
]


@dataclass
class BenchConfig:
    """Knobs shared by all figure runs.

    ``pool_size`` and ``worm_cache_blocks`` are stated at full scale and
    shrink with ``scale`` so that cache-to-object ratios — which drive
    the benchmark's shape — are preserved at any scale.

    The default CPU speed is calibrated from the paper's own ratios: §9.2
    says the 8-instructions/byte algorithm made f-chunk "about 13 %
    slower", which on a 10 MB transfer implies an effective ~100 MIPS
    measurement platform (see EXPERIMENTS.md).
    """

    scale: float = 0.1
    seed: int = 1993
    pool_size: int = 256
    mips: float = 100.0
    worm_cache_blocks: int = 3200

    def scaled_pool(self) -> int:
        # Floor of 64: the pool must always cover the benchmark's *short*
        # reuse distance (a page's chunks are re-read within ~25 page
        # touches regardless of object size); only capacity-fraction
        # effects should scale.
        return max(64, round(self.pool_size * self.scale))

    def scaled_worm_cache(self) -> int:
        return max(48, round(self.worm_cache_blocks * self.scale))


def _fresh_db(config: BenchConfig) -> Database:
    db = Database(pool_size=config.scaled_pool(), mips=config.mips,
                  worm_cache_blocks=config.scaled_worm_cache())
    _register_paper_compressors(db)
    return db


def _register_paper_compressors(db: Database) -> None:
    """The §9.2 algorithms: ratio from the data, cost from the paper."""
    register_compressor(
        "paper-8ipb",
        lambda: CostedCompressor(ZeroRunCompressor(), 8.0, db.cpu,
                                 db.clock))
    register_compressor(
        "paper-20ipb",
        lambda: CostedCompressor(ZeroRunCompressor(), 20.0, db.cpu,
                                 db.clock))


def load_object(db: Database, impl: str, workload: Workload,
                fraction: float, compression: str,
                smgr: str | None = None) -> str:
    """Create and fill the benchmark object; returns its designator."""
    with db.begin() as txn:
        if impl == "ufile":
            designator = db.lo.create(txn, "ufile", path="/bench/object")
        else:
            designator = db.lo.create(txn, impl, smgr=smgr,
                                      compression=compression)
        with db.lo.open(designator, txn, "rw") as obj:
            for frame_no in range(workload.total_frames):
                obj.write(frame_bytes(frame_no, fraction,
                                      workload.frame_size,
                                      seed=workload.seed))
    return designator


def cool_down(db: Database) -> None:
    """Restart the DBMS between load and measurement.

    The buffer pool empties (a fresh server) and WORM data is archived to
    the media, but the jukebox's magnetic-disk cache keeps whatever it
    holds — the paper's §9.3 setup, where the cache still contains the
    most recently written blocks of the object and therefore "satisfies
    some of the block requests" of the random-read test.
    """
    db.bufmgr.invalidate_all()
    for smgr in db.switch.instances():
        sync_all = getattr(smgr, "sync_all", None)
        if sync_all is not None:
            sync_all()


def readpath_note(label: str, db: Database) -> str:
    """One-line read-path counter summary for a figure column.

    Makes the streaming-read machinery observable in the bench output:
    decoded B-tree node cache hits/misses (misses ≈ node *reads*) and
    readahead issued/used by the buffer pool.
    """
    stats = db.bufmgr.stats
    return (f"{label}: btree node cache {stats.node_cache_hits}h/"
            f"{stats.node_cache_misses}m, prefetch "
            f"{stats.prefetch_hits}/{stats.prefetched} used")


def run_operation(db: Database, designator: str, op: Operation,
                  workload: Workload, fraction: float,
                  generation: int) -> float:
    """Run one §9.1 operation; returns simulated elapsed seconds."""
    snap = db.clock.snapshot()
    frame_size = workload.frame_size
    if op.kind == "read":
        with db.lo.open(designator) as obj:
            for frame_no in op.frames:
                obj.seek(frame_no * frame_size)
                obj.read(frame_size)
    else:
        with db.begin() as txn:
            with db.lo.open(designator, txn, "rw") as obj:
                for frame_no in op.frames:
                    obj.seek(frame_no * frame_size)
                    obj.write(frame_bytes(frame_no, fraction, frame_size,
                                          generation=generation,
                                          seed=workload.seed))
    return snap.since(db.clock).elapsed


# -- Figure 1: storage used -------------------------------------------------------------


def run_figure1(config: BenchConfig | None = None) -> FigureResult:
    """Storage used by the implementations (paper Figure 1)."""
    config = config or BenchConfig()
    workload = Workload(config.scale, config.seed)
    figure = FigureResult(
        title=(f"Figure 1: storage used for a "
               f"{workload.object_size / 1e6:.1f} MB object"),
        row_labels=[], col_labels=[], unit="bytes")
    figure.notes.append(
        f"scale={config.scale:g} "
        f"({workload.total_frames} frames of {workload.frame_size} bytes)")
    columns = DISK_COLUMNS + [
        ("v-segment 50%", "vsegment", 0.5, "paper-20ipb")]
    for label, impl, fraction, compression in columns:
        db = _fresh_db(config)
        try:
            designator = load_object(db, impl, workload, fraction,
                                     compression)
            breakdown = db.lo.storage_breakdown(designator)
            for component, nbytes in breakdown.items():
                figure.set(label, component, nbytes)
            figure.set(label, "total", sum(breakdown.values()))
        finally:
            db.close()
    return figure


# -- Figure 2: disk performance -----------------------------------------------------------


def run_figure2(config: BenchConfig | None = None) -> FigureResult:
    """Elapsed time on the disk storage manager (paper Figure 2)."""
    config = config or BenchConfig()
    workload = Workload(config.scale, config.seed)
    figure = FigureResult(
        title="Figure 2: disk performance on the benchmark",
        row_labels=[op.name for op in workload.operations()],
        col_labels=[], unit="seconds")
    figure.notes.append(
        f"scale={config.scale:g}; simulated seconds on the "
        f"magnetic-disk cost model")
    for label, impl, fraction, compression in DISK_COLUMNS:
        db = _fresh_db(config)
        try:
            designator = load_object(db, impl, workload, fraction,
                                     compression)
            cool_down(db)
            for generation, op in enumerate(workload.operations(), 1):
                seconds = run_operation(db, designator, op, workload,
                                        fraction, generation)
                figure.set(op.name, label, seconds)
            figure.notes.append(readpath_note(label, db))
        finally:
            db.close()
    return figure


# -- Figure 3: WORM performance ---------------------------------------------------------------


def _run_raw_program(config: BenchConfig,
                     workload: Workload) -> dict[str, float]:
    """The special-purpose raw-device reader (Figure 3's baseline)."""
    from repro.sim.clock import SimClock
    clock = SimClock()
    device = RawWormDevice(clock)
    for frame_no in range(workload.total_frames):
        device.append(frame_bytes(frame_no, 0.0, workload.frame_size,
                                  seed=workload.seed))
    device.seal()
    results = {}
    for op in workload.operations(include_writes=False):
        snap = clock.snapshot()
        for frame_no in op.frames:
            device.read(frame_no * workload.frame_size,
                        workload.frame_size)
        results[op.name] = snap.since(clock).elapsed
    return results


def run_figure3(config: BenchConfig | None = None) -> FigureResult:
    """Elapsed time on the WORM jukebox (paper Figure 3, reads only)."""
    config = config or BenchConfig()
    workload = Workload(config.scale, config.seed)
    read_ops = workload.operations(include_writes=False)
    figure = FigureResult(
        title="Figure 3: WORM performance on the benchmark",
        row_labels=[op.name for op in read_ops],
        col_labels=[], unit="seconds")
    figure.notes.append(
        f"scale={config.scale:g}; jukebox cost model with a "
        f"{config.worm_cache_blocks}-block magnetic-disk cache")
    for label, impl, fraction, compression in WORM_COLUMNS:
        if impl == "raw":
            for name, seconds in _run_raw_program(config,
                                                  workload).items():
                figure.set(name, label, seconds)
            continue
        db = _fresh_db(config)
        try:
            designator = load_object(db, impl, workload, fraction,
                                     compression, smgr="worm")
            cool_down(db)
            for op in read_ops:
                seconds = run_operation(db, designator, op, workload,
                                        fraction, generation=0)
                figure.set(op.name, label, seconds)
            figure.notes.append(readpath_note(label, db))
        finally:
            db.close()
    return figure


# -- Ablations (design choices called out in DESIGN.md) ------------------------------------------


def run_ablation_chunk_size(
        config: BenchConfig | None = None,
        payloads: tuple[int, ...] = (2000, 4000, 8000)) -> FigureResult:
    """Why 8000-byte chunks: page fill vs. chunk count."""
    from repro.compress.null import NullCompressor
    from repro.lo.fchunk import FChunkObject

    config = config or BenchConfig()
    workload = Workload(config.scale, config.seed)
    figure = FigureResult(
        title="Ablation: f-chunk payload size",
        row_labels=["load seconds", "1MB random read seconds",
                    "data bytes"],
        col_labels=[], unit="mixed")
    for payload in payloads:
        label = f"{payload}B chunks"
        db = _fresh_db(config)
        try:
            with db.begin() as txn:
                designator = db.lo.create(txn, "fchunk")
                oid = designator_oid(designator)
                snap = db.clock.snapshot()
                obj = FChunkObject(db, oid, NullCompressor(), txn, True,
                                   chunk_payload=payload)
                for frame_no in range(workload.total_frames):
                    obj.write(frame_bytes(frame_no, 0.0,
                                          workload.frame_size,
                                          seed=workload.seed))
                obj.close()
            figure.set("load seconds", label,
                       snap.since(db.clock).elapsed)
            figure.set("data bytes", label,
                       db.lo.storage_breakdown(designator)["data"])
            cool_down(db)
            op = workload.operations()[2]  # 1MB random read
            snap = db.clock.snapshot()
            reader = FChunkObject(db, oid, NullCompressor(), None, False,
                                  chunk_payload=payload)
            for frame_no in op.frames:
                reader.seek(frame_no * workload.frame_size)
                reader.read(workload.frame_size)
            reader.close()
            figure.set("1MB random read seconds", label,
                       snap.since(db.clock).elapsed)
        finally:
            db.close()
    return figure


def run_ablation_buffer_pool(
        config: BenchConfig | None = None,
        pool_sizes: tuple[int, ...] = (32, 128, 512)) -> FigureResult:
    """Buffer-pool size vs. the locality benchmark."""
    config = config or BenchConfig()
    workload = Workload(config.scale, config.seed)
    figure = FigureResult(
        title="Ablation: buffer pool size (f-chunk, disk)",
        row_labels=["1MB random read seconds",
                    "1MB 80/20 read seconds", "buffer hit rate"],
        col_labels=[], unit="mixed")
    for pool_size in pool_sizes:
        label = f"{pool_size} pages"
        db = Database(pool_size=pool_size, mips=config.mips)
        _register_paper_compressors(db)
        try:
            designator = load_object(db, "fchunk", workload, 0.0, "none")
            cool_down(db)
            ops = workload.operations()
            random_read, locality_read = ops[2], ops[4]
            figure.set("1MB random read seconds", label,
                       run_operation(db, designator, random_read,
                                     workload, 0.0, 0))
            figure.set("1MB 80/20 read seconds", label,
                       run_operation(db, designator, locality_read,
                                     workload, 0.0, 0))
            figure.set("buffer hit rate", label,
                       db.bufmgr.stats.hit_rate())
        finally:
            db.close()
    return figure


def run_ablation_worm_cache(
        config: BenchConfig | None = None,
        cache_sizes: tuple[int, ...] = (64, 256, 1024)) -> FigureResult:
    """The Figure 3 effect as a function of disk-cache size."""
    config = config or BenchConfig()
    workload = Workload(config.scale, config.seed)
    figure = FigureResult(
        title="Ablation: WORM disk-cache size (f-chunk)",
        row_labels=["1MB random read seconds",
                    "1MB 80/20 read seconds", "cache hit rate"],
        col_labels=[], unit="mixed")
    for cache_blocks in cache_sizes:
        label = f"{cache_blocks} blocks"
        db = Database(pool_size=config.scaled_pool(), mips=config.mips,
                      worm_cache_blocks=cache_blocks)
        _register_paper_compressors(db)
        try:
            designator = load_object(db, "fchunk", workload, 0.0, "none",
                                     smgr="worm")
            cool_down(db)
            ops = workload.operations(include_writes=False)
            figure.set("1MB random read seconds", label,
                       run_operation(db, designator, ops[1], workload,
                                     0.0, 0))
            figure.set("1MB 80/20 read seconds", label,
                       run_operation(db, designator, ops[2], workload,
                                     0.0, 0))
            worm = db.storage_manager("worm")
            figure.set("cache hit rate", label, worm.hit_rate())
        finally:
            db.close()
    return figure


def run_ablation_compression_cost(
        config: BenchConfig | None = None,
        costs: tuple[float, ...] = (0.0, 8.0, 20.0, 60.0)) -> FigureResult:
    """When does compression CPU outweigh the saved I/O? (§9.2's race)"""
    config = config or BenchConfig()
    workload = Workload(config.scale, config.seed)
    figure = FigureResult(
        title="Ablation: compression cost vs saved I/O "
              "(f-chunk, 50% compressible)",
        row_labels=["10MB sequential read seconds", "data bytes"],
        col_labels=[], unit="mixed")
    for cost in costs:
        label = f"{cost:g} instr/byte"
        db = _fresh_db(config)
        name = f"ablate-{cost:g}ipb"
        register_compressor(
            name, lambda cost=cost: CostedCompressor(
                ZeroRunCompressor(), cost, db.cpu, db.clock))
        try:
            designator = load_object(db, "fchunk", workload, 0.5, name)
            figure.set("data bytes", label,
                       db.lo.storage_breakdown(designator)["data"])
            cool_down(db)
            op = workload.operations()[0]
            figure.set("10MB sequential read seconds", label,
                       run_operation(db, designator, op, workload, 0.5, 0))
        finally:
            db.close()
    return figure


def run_ablation_inversion_overhead(
        config: BenchConfig | None = None) -> FigureResult:
    """What the Inversion layer itself costs over a bare f-chunk object.

    §10 claims Inversion is "within 1/3 of the native file system"; this
    ablation separates the file-system overhead (path resolution through
    DIRECTORY/STORAGE, FILESTAT updates) from the underlying large-object
    cost.
    """
    config = config or BenchConfig()
    workload = Workload(config.scale, config.seed)
    figure = FigureResult(
        title="Ablation: Inversion file-system overhead over raw f-chunk",
        row_labels=["load seconds", "1MB sequential read seconds",
                    "open+stat per 100 calls (seconds)"],
        col_labels=[], unit="mixed")
    for label, via_inversion in (("raw f-chunk", False),
                                 ("Inversion file", True)):
        db = _fresh_db(config)
        try:
            snap = db.clock.snapshot()
            with db.begin() as txn:
                if via_inversion:
                    fs = db.inversion
                    handle = fs.create(txn, "/bench.object")
                else:
                    designator = db.lo.create(txn, "fchunk")
                    handle = db.lo.open(designator, txn, "rw")
                with handle:
                    for frame_no in range(workload.total_frames // 5):
                        handle.write(frame_bytes(frame_no, 0.0,
                                                 workload.frame_size,
                                                 seed=workload.seed))
            figure.set("load seconds", label,
                       snap.since(db.clock).elapsed)
            cool_down(db)

            snap = db.clock.snapshot()
            if via_inversion:
                reader = db.inversion.open("/bench.object")
            else:
                reader = db.lo.open(designator)
            with reader:
                reader.seek(0)
                while reader.read(workload.frame_size):
                    pass
            figure.set("1MB sequential read seconds", label,
                       snap.since(db.clock).elapsed)

            snap = db.clock.snapshot()
            for _ in range(100):
                if via_inversion:
                    db.inversion.stat("/bench.object")
                else:
                    db.lo.stat(designator)
            figure.set("open+stat per 100 calls (seconds)", label,
                       snap.since(db.clock).elapsed)
        finally:
            db.close()
    return figure


ALL_FIGURES = {
    "fig1": run_figure1,
    "fig2": run_figure2,
    "fig3": run_figure3,
    "ablate-chunk": run_ablation_chunk_size,
    "ablate-pool": run_ablation_buffer_pool,
    "ablate-cache": run_ablation_worm_cache,
    "ablate-cost": run_ablation_compression_cost,
    "ablate-inversion": run_ablation_inversion_overhead,
}
