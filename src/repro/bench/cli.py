"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``.

Examples::

    repro-bench fig2                 # Figure 2 at the default 1/10 scale
    repro-bench fig1 fig3 --scale 1  # full 51.2 MB object
    repro-bench all --scale 0.05     # quick smoke of every figure
    repro-bench claims               # paper-claim checklist (see below)
    repro-bench trajectory --out BENCH_7.json --compare BENCH_6.json
    repro-bench topology             # sharded throughput vs node count
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.claims import evaluate_claims, render_claims
from repro.bench.figures import ALL_FIGURES, BenchConfig
from repro.bench.report import render_table


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # The trajectory suite has its own option set (modes, snapshot
    # comparison) orthogonal to the figure knobs, so it dispatches before
    # the figure parser sees the arguments.
    if argv and argv[0] == "trajectory":
        from repro.bench.trajectory import main as trajectory_main
        return trajectory_main(argv[1:])
    if argv and argv[0] == "topology":
        from repro.bench.topology import main as topology_main
        return topology_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables of 'Large Object Support in "
                    "POSTGRES' (ICDE 1993)")
    parser.add_argument(
        "figures", nargs="+",
        choices=sorted(ALL_FIGURES) + ["all", "claims", "report"],
        help="which figure(s) to regenerate ('report' writes a full "
             "markdown report)")
    parser.add_argument("-o", "--output", default="benchmark_report.md",
                        help="output path for 'report' "
                             "(default benchmark_report.md)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="fraction of the paper's 51.2 MB object "
                             "(default 0.1)")
    parser.add_argument("--seed", type=int, default=1993)
    parser.add_argument("--pool-size", type=int, default=256,
                        help="buffer pool pages (default 256 = 2 MB)")
    parser.add_argument("--mips", type=float, default=100.0,
                        help="simulated CPU speed (default 100 MIPS, "
                             "calibrated from the paper's ratios)")
    parser.add_argument("--worm-cache", type=int, default=3200,
                        help="WORM disk-cache blocks (default 3200 = 25 MB "
                             "at full scale)")
    args = parser.parse_args(argv)

    config = BenchConfig(scale=args.scale, seed=args.seed,
                         pool_size=args.pool_size, mips=args.mips,
                         worm_cache_blocks=args.worm_cache)

    wanted = list(dict.fromkeys(
        sorted(ALL_FIGURES) if "all" in args.figures else args.figures))
    for name in wanted:
        if name == "claims":
            print(render_claims(evaluate_claims(config)))
            print()
            continue
        if name == "report":
            from repro.bench.reportgen import write_report
            write_report(args.output, config)
            print(f"report written to {args.output}")
            print()
            continue
        figure = ALL_FIGURES[name](config)
        print(render_table(figure))
        if name == "fig1":
            from repro.bench.report import render_figure1_paper_layout
            print()
            print(render_figure1_paper_layout(figure))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
