"""Paper-style text tables for benchmark results."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FigureResult:
    """One reproduced figure: a labelled grid of numbers."""

    title: str
    row_labels: list[str]
    col_labels: list[str]
    cells: dict[tuple[str, str], float] = field(default_factory=dict)
    unit: str = "seconds"
    notes: list[str] = field(default_factory=list)

    def set(self, row: str, col: str, value: float) -> None:
        if row not in self.row_labels:
            self.row_labels.append(row)
        if col not in self.col_labels:
            self.col_labels.append(col)
        self.cells[(row, col)] = value

    def get(self, row: str, col: str) -> float:
        return self.cells[(row, col)]

    def column(self, col: str) -> dict[str, float]:
        return {row: self.cells[(row, col)] for row in self.row_labels
                if (row, col) in self.cells}

    def ratio(self, row: str, col_a: str, col_b: str) -> float:
        """cells[row, col_a] / cells[row, col_b]."""
        return self.get(row, col_a) / self.get(row, col_b)


def _format_value(value: float, unit: str) -> str:
    if unit == "bytes":
        return f"{int(value):,}"
    if value >= 100:
        return f"{value:,.0f}"
    if value >= 1:
        return f"{value:,.1f}"
    return f"{value:.2f}"


#: Figure 1's row layout in the paper, as (label, column label, component).
_PAPER_FIG1_ROWS = [
    ("User file", "user file", "data"),
    ("POSTGRES file", "POSTGRES file", "data"),
    ("f-chunk data", "f-chunk 0%", "data"),
    ("f-chunk B-tree index", "f-chunk 0%", "btree"),
    ("f-chunk data (30% compression)", "f-chunk 30%", "data"),
    ("f-chunk B-tree index", "f-chunk 30%", "btree"),
    ("v-segment data (30% compression)", "v-segment 30%", "data"),
    ("v-segment 2-level map", "v-segment 30%", "segment_map"),
    ("v-segment B-tree index", "v-segment 30%", "btree"),
    ("f-chunk data (50% compression)", "f-chunk 50%", "data"),
    ("f-chunk B-tree index", "f-chunk 50%", "btree"),
    ("v-segment data (50% compression)", "v-segment 50%", "data"),
    ("v-segment 2-level map", "v-segment 50%", "segment_map"),
    ("v-segment B-tree index", "v-segment 50%", "btree"),
]


def render_figure1_paper_layout(figure: FigureResult) -> str:
    """Figure 1 in the paper's own row order and labels."""
    lines = ["Storage Used by the Various Large Object Implementations",
             "-" * 56]
    for label, column, component in _PAPER_FIG1_ROWS:
        value = figure.cells.get((column, component))
        if value is None:
            continue
        lines.append(f"{label:<42}{int(value):>14,}")
    return "\n".join(lines)


def render_table(figure: FigureResult) -> str:
    """Monospace rendering, one row per row label."""
    col_width = max((len(c) for c in figure.col_labels), default=8)
    col_width = max(col_width, 10)
    row_width = max((len(r) for r in figure.row_labels), default=10) + 2
    lines = [figure.title, "=" * len(figure.title)]
    header = " " * row_width + "".join(
        f"{c:>{col_width + 2}}" for c in figure.col_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for row in figure.row_labels:
        cells = []
        for col in figure.col_labels:
            value = figure.cells.get((row, col))
            text = "-" if value is None else _format_value(value,
                                                           figure.unit)
            cells.append(f"{text:>{col_width + 2}}")
        lines.append(f"{row:<{row_width}}" + "".join(cells))
    lines.append(f"(values in {figure.unit})")
    for note in figure.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
