"""The §9.1 benchmark workload.

    "a 51.2 MB large object was created and then logically considered a
    group of 12,500 frames, each of size 4096 bytes"

Six operations:

1. read 2,500 frames (10 MB) sequentially;
2. replace 2,500 frames sequentially;
3. read 250 frames (1 MB) randomly distributed;
4. replace 250 randomly distributed frames;
5. read 250 frames with 80/20 locality (80 % sequential-next, 20 % jump);
6. replace 250 frames with the same distribution.

A scale factor shrinks the object and the operation counts together so
the access-pattern *shape* (fractions of the object touched) is preserved
at any scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.constants import FRAME_COUNT, FRAME_SIZE


@dataclass(frozen=True)
class Operation:
    """One benchmark operation: an ordered list of frame numbers."""

    name: str
    kind: str  # "read" | "write"
    frames: tuple[int, ...]

    @property
    def bytes_touched(self) -> int:
        return len(self.frames) * FRAME_SIZE


class Workload:
    """Frame counts and access sequences for one benchmark run."""

    def __init__(self, scale: float = 1.0, seed: int = 1993,
                 frame_size: int = FRAME_SIZE):
        if scale <= 0 or scale > 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        self.scale = scale
        self.seed = seed
        self.frame_size = frame_size
        self.total_frames = max(50, int(FRAME_COUNT * scale))
        #: 2,500 at full scale (10 MB).
        self.sequential_frames = max(10, self.total_frames // 5)
        #: 250 at full scale (1 MB).
        self.scattered_frames = max(5, self.total_frames // 50)

    @property
    def object_size(self) -> int:
        return self.total_frames * self.frame_size

    # -- access sequences --------------------------------------------------------------

    def sequential(self) -> tuple[int, ...]:
        """The first fifth of the object, in order."""
        return tuple(range(self.sequential_frames))

    def random_frames(self, salt: int = 0) -> tuple[int, ...]:
        """Uniformly random frames across the whole object."""
        rng = random.Random(f"{self.seed}-random-{salt}")
        return tuple(rng.randrange(self.total_frames)
                     for _ in range(self.scattered_frames))

    def locality_frames(self, salt: int = 0) -> tuple[int, ...]:
        """80/20: 'the next frame was read sequentially 80% of the time
        and a new random frame was read 20% of the time'."""
        rng = random.Random(f"{self.seed}-locality-{salt}")
        frames = []
        current = rng.randrange(self.total_frames)
        for _ in range(self.scattered_frames):
            frames.append(current)
            if rng.random() < 0.8:
                current = (current + 1) % self.total_frames
            else:
                current = rng.randrange(self.total_frames)
        return tuple(frames)

    # -- the six operations -----------------------------------------------------------------

    def operations(self, include_writes: bool = True) -> list[Operation]:
        """The §9.1 operations, in the paper's order.

        ``include_writes=False`` gives the read-only subset used for the
        WORM benchmark (Figure 3: "this special program cannot update
        frames, so we have restricted our attention to the read portion").
        """
        ops = [
            Operation("10MB sequential read", "read", self.sequential()),
            Operation("10MB sequential write", "write", self.sequential()),
            Operation("1MB random read", "read", self.random_frames(1)),
            Operation("1MB random write", "write", self.random_frames(2)),
            Operation("1MB read, 80/20 locality", "read",
                      self.locality_frames(3)),
            Operation("1MB write, 80/20 locality", "write",
                      self.locality_frames(4)),
        ]
        if not include_writes:
            ops = [op for op in ops if op.kind == "read"]
        return ops
