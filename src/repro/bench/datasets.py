"""Synthetic media frames with a controlled compressible fraction.

The paper's §9.2 compression algorithms "achieved 30 % compression on
4096-byte frames" (8 instructions/byte) and "50 % compression"
(20 instructions/byte).  Those algorithms are lost; we reproduce their
*effect* by generating frames whose redundancy is exactly the target
fraction — a literal region that run-length coding cannot squeeze followed
by a zero region it removes entirely — and pricing the CPU via
:class:`~repro.compress.costed.CostedCompressor`.  The achieved ratio of
``zero-rle`` on these frames lands within a percent of the target, and
every byte still round-trips losslessly.

Frames are deterministic in (frame number, seed), so replace operations
can write *different* bytes (generation counter) with identical
compressibility, and verification can recompute expected contents.
"""

from __future__ import annotations

import struct

_UNIT = struct.Struct("<IIHH4x")  # frame, generation, seed, salt; 16 bytes


def frame_bytes(frame_no: int, compressible_fraction: float = 0.0,
                frame_size: int = 4096, generation: int = 0,
                seed: int = 1993) -> bytes:
    """One deterministic frame.

    The first ``(1 - fraction)`` of the frame is an incompressible-to-RLE
    literal pattern unique to (frame, generation, seed); the rest is
    zeros.  ``fraction = 0.3`` therefore compresses to ~70 % under
    ``zero-rle``, matching the paper's "30 % compression".
    """
    if not 0.0 <= compressible_fraction <= 1.0:
        raise ValueError(
            f"compressible fraction must be in [0, 1], "
            f"got {compressible_fraction}")
    zero_len = int(frame_size * compressible_fraction)
    literal_len = frame_size - zero_len
    if literal_len == 0:
        return bytes(frame_size)
    unit = _UNIT.pack(frame_no & 0xFFFFFFFF, generation & 0xFFFFFFFF,
                      seed & 0xFFFF, (frame_no * 2654435761) & 0xFFFF)
    repeats = literal_len // len(unit) + 1
    literal = (unit * repeats)[:literal_len]
    return literal + bytes(zero_len)


def build_object_bytes(frames: int, compressible_fraction: float = 0.0,
                       frame_size: int = 4096, seed: int = 1993) -> bytes:
    """The whole benchmark object, concatenated (for baselines/tests)."""
    return b"".join(
        frame_bytes(i, compressible_fraction, frame_size, seed=seed)
        for i in range(frames))


def measured_ratio(compressible_fraction: float,
                   frame_size: int = 4096) -> float:
    """Achieved ``zero-rle`` compression (space saved / original) on one
    frame — used by tests to confirm the dataset hits its target."""
    from repro.compress.rle import ZeroRunCompressor
    frame = frame_bytes(0, compressible_fraction, frame_size)
    packed = ZeroRunCompressor().compress(frame)
    return 1.0 - len(packed) / frame_size
