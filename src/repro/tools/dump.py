"""Logical dump and restore (a miniature ``pg_dump``).

A dump is a directory containing:

* ``schema.json`` — classes (with storage managers), indexes, and large
  ADT definitions;
* ``data.jsonl`` — one JSON record per visible tuple, per class;
* ``objects/`` — one file per reachable large object (bytes), plus a
  manifest mapping old designators to implementation/compression so
  restore can recreate them faithfully.

Restore loads everything into a (fresh) database, allocating **new**
designators for large objects and rewriting the designator values stored
in large-ADT columns — oids are never guaranteed stable across databases.

History is not dumped: like ``pg_dump``, this captures the current state
(pass ``as_of`` for a point-in-time dump of some past state — the
no-overwrite storage system makes that trivial).
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.db import Database

_SYSTEM_CLASSES = {"pg_largeobject"}


def _user_classes(db: "Database") -> list[str]:
    return [name for name in db.catalog.relation_names()
            if name not in _SYSTEM_CLASSES
            and not name.startswith(("lo_", "a_"))]


def _encode_value(value):
    if isinstance(value, bytes):
        return {"$bytes": value.hex()}
    return value


def _decode_value(value):
    if isinstance(value, dict) and "$bytes" in value:
        return bytes.fromhex(value["$bytes"])
    return value


def dump_database(db: "Database", target_dir: str,
                  as_of: float | None = None) -> dict:
    """Write a logical dump of *db* into *target_dir*; returns a summary."""
    os.makedirs(target_dir, exist_ok=True)
    objects_dir = os.path.join(target_dir, "objects")
    os.makedirs(objects_dir, exist_ok=True)

    large_columns: dict[str, list[int]] = {}
    schema = {"classes": [], "indexes": [], "large_types": []}
    for name in _user_classes(db):
        entry = db.catalog.get_relation(name)
        schema["classes"].append({
            "name": name,
            "smgr": entry.smgr_name,
            "columns": entry.schema.to_dict(),
        })
        large_columns[name] = [
            i for i, attr in enumerate(entry.schema.attributes)
            if db.types.exists(attr.type_name)
            and db.types.get(attr.type_name).is_large]
    for index_name, entry in sorted(db.catalog.indexes.items()):
        if entry.relation in _SYSTEM_CLASSES \
                or entry.relation.startswith(("lo_", "a_")):
            continue
        schema["indexes"].append({"name": index_name,
                                  "relation": entry.relation,
                                  "attribute": entry.attribute})
    for type_name in db.types.large_names():
        definition = db.types.get(type_name)
        schema["large_types"].append({
            "name": type_name, "storage": definition.storage,
            "compression": definition.compression})
    with open(os.path.join(target_dir, "schema.json"), "w") as fh:
        json.dump(schema, fh, indent=2, sort_keys=True)

    manifest: dict[str, dict] = {}
    tuples = 0
    with open(os.path.join(target_dir, "data.jsonl"), "w") as fh:
        for name in _user_classes(db):
            for tup in db.scan(name, as_of=as_of):
                values = [_encode_value(v) for v in tup.values]
                for position in large_columns[name]:
                    designator = tup.values[position]
                    if designator:
                        _dump_object(db, designator, objects_dir,
                                     manifest, as_of)
                fh.write(json.dumps({"class": name, "values": values})
                         + "\n")
                tuples += 1
    with open(os.path.join(target_dir, "objects.json"), "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    return {"classes": len(schema["classes"]), "tuples": tuples,
            "objects": len(manifest)}


def _dump_object(db: "Database", designator: str, objects_dir: str,
                 manifest: dict, as_of: float | None) -> None:
    if designator in manifest:
        return
    filename = f"obj{len(manifest)}.bin"
    try:
        with db.lo.open(designator, as_of=as_of) as obj:
            data = obj.read()
    except ReproError:
        # Native-file objects cannot time travel; dump current contents.
        with db.lo.open(designator) as obj:
            data = obj.read()
    with open(os.path.join(objects_dir, filename), "wb") as fh:
        fh.write(data)
    info = db.lo.stat(designator)
    manifest[designator] = {"file": filename, "impl": info["impl"],
                            "compression": info["compression"]}


def restore_database(db: "Database", source_dir: str) -> dict:
    """Load a dump produced by :func:`dump_database` into *db*."""
    with open(os.path.join(source_dir, "schema.json")) as fh:
        schema = json.load(fh)
    with open(os.path.join(source_dir, "objects.json")) as fh:
        manifest = json.load(fh)

    for large_type in schema["large_types"]:
        if not db.types.exists(large_type["name"]):
            db.create_large_type(large_type["name"],
                                 storage=large_type["storage"],
                                 compression=large_type["compression"])
    large_columns: dict[str, list[int]] = {}
    for cls in schema["classes"]:
        columns = [(c["name"], c["type"]) for c in cls["columns"]]
        db.create_class(cls["name"], columns, smgr=cls["smgr"])
        large_columns[cls["name"]] = [
            i for i, (_n, type_name) in enumerate(columns)
            if db.types.exists(type_name)
            and db.types.get(type_name).is_large]
    for index in schema["indexes"]:
        db.create_index(index["name"], index["relation"],
                        index["attribute"])

    new_designators: dict[str, str] = {}
    tuples = 0
    with db.begin() as txn:
        for old, info in manifest.items():
            impl = info["impl"]
            if impl == "ufile":
                designator = db.lo.create_ufile(old)
            elif impl == "pfile":
                designator = db.lo.newfilename(txn)
            else:
                designator = db.lo.create(txn, impl,
                                          compression=info["compression"])
            with open(os.path.join(source_dir, "objects", info["file"]),
                      "rb") as fh:
                data = fh.read()
            with db.lo.open(designator, txn, "rw") as obj:
                obj.write(data)
            new_designators[old] = designator

        with open(os.path.join(source_dir, "data.jsonl")) as fh:
            for line in fh:
                record = json.loads(line)
                values = [_decode_value(v) for v in record["values"]]
                for position in large_columns[record["class"]]:
                    if values[position]:
                        values[position] = new_designators[values[position]]
                db.insert(txn, record["class"], tuple(values))
                tuples += 1
    return {"classes": len(schema["classes"]), "tuples": tuples,
            "objects": len(new_designators)}
