"""Operational tools: logical dump and restore."""

from repro.tools.dump import dump_database, restore_database

__all__ = ["dump_database", "restore_database"]
