"""User-defined functions and operators over ADTs.

The paper's motivating example (§5)::

    retrieve (clip(EMP.picture, "0,0,20,20"::rect)) where EMP.name = "Mike"

``clip`` is a registered function taking an ``image`` (a large ADT —
delivered to the function as an open, file-oriented
:class:`~repro.lo.interface.LargeObject` so it never has to fit in memory)
and a ``rect``, returning a new ``image`` — which the function must
materialize as a **temporary large object** (§5), garbage-collected at end
of query unless the result is stored.

Functions that create large objects declare ``needs_context=True`` and
receive a context object exposing ``create_temporary()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import UnknownFunction


@dataclass(frozen=True)
class FunctionDef:
    """One registered function signature."""

    name: str
    arg_types: tuple[str, ...]
    return_type: str
    fn: Callable[..., Any]
    #: If true, the executor passes a FunctionContext as first argument.
    needs_context: bool = False

    def signature(self) -> str:
        return f"{self.name}({', '.join(self.arg_types)})"


class FunctionRegistry:
    """Functions and operators known to one database.

    Resolution is exact on (name, argument types); ``"*"`` in a registered
    signature matches any type, supporting generic functions like
    ``length(*)``.
    """

    def __init__(self) -> None:
        self._functions: dict[tuple[str, tuple[str, ...]], FunctionDef] = {}
        self._by_name: dict[str, list[FunctionDef]] = {}
        self._operators: dict[tuple[str, str, str], str] = {}
        self._register_builtins()

    def _register_builtins(self) -> None:
        for t in ("int4", "int8", "float8"):
            self.register("abs", (t,), t, abs)
        self.register("length", ("text",), "int4", len)
        self.register("length", ("bytea",), "int4", len)
        self.register("upper", ("text",), "text", str.upper)
        self.register("lower", ("text",), "text", str.lower)
        for sym, name in (("+", "plus"), ("-", "minus"),
                          ("*", "times"), ("/", "divide")):
            for t in ("int4", "int8", "float8"):
                self.register_operator(sym, t, t, name)
        import operator
        arith = {"plus": operator.add, "minus": operator.sub,
                 "times": operator.mul, "divide": self._divide}
        for fname, fn in arith.items():
            for t in ("int4", "int8", "float8"):
                self.register(fname, (t, t), t, fn)

    @staticmethod
    def _divide(a, b):
        if isinstance(a, int) and isinstance(b, int):
            return a // b
        return a / b

    # -- registration ---------------------------------------------------------------

    def register(self, name: str, arg_types: tuple[str, ...],
                 return_type: str, fn: Callable[..., Any],
                 needs_context: bool = False) -> FunctionDef:
        """Register *fn* under (*name*, *arg_types*) returning *return_type*."""
        definition = FunctionDef(name=name, arg_types=tuple(arg_types),
                                 return_type=return_type, fn=fn,
                                 needs_context=needs_context)
        self._functions[(name, definition.arg_types)] = definition
        self._by_name.setdefault(name, []).append(definition)
        return definition

    def register_operator(self, symbol: str, left_type: str,
                          right_type: str, function_name: str) -> None:
        """Bind binary operator *symbol* over the given types to a function."""
        self._operators[(symbol, left_type, right_type)] = function_name

    # -- resolution ------------------------------------------------------------------

    def resolve(self, name: str,
                arg_types: tuple[str, ...]) -> FunctionDef:
        """The function matching *name* applied to *arg_types*."""
        exact = self._functions.get((name, tuple(arg_types)))
        if exact is not None:
            return exact
        for candidate in self._by_name.get(name, []):
            if len(candidate.arg_types) != len(arg_types):
                continue
            if all(want in ("*", got)
                   for want, got in zip(candidate.arg_types, arg_types)):
                return candidate
        have = [d.signature() for d in self._by_name.get(name, [])]
        raise UnknownFunction(
            f"no function {name}({', '.join(arg_types)})"
            + (f"; candidates: {have}" if have else ""))

    def resolve_operator(self, symbol: str, left_type: str,
                         right_type: str) -> FunctionDef:
        """The function bound to *symbol* over (*left_type*, *right_type*)."""
        fname = self._operators.get((symbol, left_type, right_type))
        if fname is None:
            fname = self._operators.get((symbol, "*", "*"))
        if fname is None:
            raise UnknownFunction(
                f"no operator {left_type} {symbol} {right_type}")
        return self.resolve(fname, (left_type, right_type))

    def exists(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        return sorted(self._by_name)
