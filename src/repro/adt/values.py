"""Typed values flowing through the query executor."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Datum:
    """A value tagged with its ADT name.

    The executor carries Datums so operator/function resolution can
    dispatch on argument types — e.g. ``clip(image, rect)`` finds the
    registered ``clip`` over exactly those types.
    """

    type_name: str
    value: Any

    def __bool__(self) -> bool:
        return bool(self.value)

    @staticmethod
    def infer(value: Any) -> "Datum":
        """Wrap a Python literal in its natural ADT."""
        if isinstance(value, bool):
            return Datum("bool", value)
        if isinstance(value, int):
            return Datum("int4" if -2**31 <= value < 2**31 else "int8",
                         value)
        if isinstance(value, float):
            return Datum("float8", value)
        if isinstance(value, bytes):
            return Datum("bytea", value)
        if isinstance(value, str):
            return Datum("text", value)
        raise TypeError(f"cannot infer an ADT for {value!r}")
